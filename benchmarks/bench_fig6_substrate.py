"""Fig. 6 bench: ΔT vs substrate thickness (the non-monotonic result)."""

import pytest

from repro import Model1D, ModelA, ModelB, PowerSpec, paper_stack, paper_tsv
from repro.analysis import crossover_points
from repro.experiments import fig6_substrate
from repro.fem import FEMReference
from repro.units import um

from conftest import print_experiment


@pytest.fixture(scope="module")
def fig6_point():
    stack = paper_stack(t_si_upper=um(20.0), t_ild=um(7.0), t_bond=um(1.0))
    via = paper_tsv(radius=um(8.0), liner_thickness=um(1.0))
    return stack, via, PowerSpec()


@pytest.mark.parametrize(
    "model",
    [ModelA(), ModelB(100), Model1D(), FEMReference("medium")],
    ids=["model_a", "model_b_100", "model_1d", "fem"],
)
def test_fig6_point_solve(benchmark, fig6_point, model):
    """Solve time at the ΔT-minimum substrate thickness (20 um)."""
    stack, via, power = fig6_point
    result = benchmark(model.solve, stack, via, power)
    assert result.max_rise > 0


def test_fig6_reproduction(benchmark):
    """Regenerate Fig. 6 and check the non-monotonicity headline."""
    result = benchmark.pedantic(
        lambda: fig6_substrate.run(fem_resolution="medium", fast=False),
        rounds=1,
        iterations=1,
    )
    minima = crossover_points(result.x_values, result.series["fem"])
    print_experiment(
        result,
        extra=f"FEM ΔT minimum near tSi ≈ {minima[0]:.1f} um (paper: ≈ 20 um)"
        if minima
        else "no FEM minimum found",
    )
    assert minima, "FEM curve should be non-monotonic in substrate thickness"
