"""Benchmark-regression harness entry point.

Thin wrapper so the harness can be launched either way:

    python -m repro bench [options]          # preferred
    PYTHONPATH=src python benchmarks/regression.py [options]

The implementation lives in :mod:`repro.perf.bench`; see
``benchmarks/run_bench.sh`` for the CI quick-mode gate.
"""

import sys

from repro.perf.bench import main

if __name__ == "__main__":
    sys.exit(main())
