"""Fig. 4 bench: ΔT vs via radius — regeneration plus per-model timings."""

import pytest

from repro import Model1D, ModelA, ModelB
from repro.experiments import fig4_radius
from repro.experiments.params import fig4_config
from repro.fem import FEMReference

from conftest import print_experiment


@pytest.fixture(scope="module")
def fig4_point():
    cfg = fig4_config(5.0)  # mid-sweep point
    return cfg.stack, cfg.via, cfg.power


@pytest.mark.parametrize(
    "model",
    [ModelA(), ModelB(100), Model1D(), FEMReference("medium")],
    ids=["model_a", "model_b_100", "model_1d", "fem"],
)
def test_fig4_point_solve(benchmark, fig4_point, model):
    """Solve time of each Fig. 4 curve's model at r = 5 um."""
    stack, via, power = fig4_point
    result = benchmark(model.solve, stack, via, power)
    assert result.max_rise > 0


def test_fig4_reproduction(benchmark):
    """Regenerate the full Fig. 4 series (all models, all radii)."""
    result = benchmark.pedantic(
        lambda: fig4_radius.run(fem_resolution="medium", fast=False),
        rounds=1,
        iterations=1,
    )
    print_experiment(result)
    # the paper's qualitative claim: every model falls with r in each regime
    a = result.series["model_a"]
    assert a[0] > a[-1]
