"""Shared benchmark fixtures and the experiment report printer.

Each ``bench_*`` module does two things:

* micro-benchmarks the models that make up one paper table/figure
  (pytest-benchmark timings — the paper's runtime comparisons), and
* regenerates the table/figure itself once per session and prints it, so
  ``pytest benchmarks/ --benchmark-only`` reproduces every row/series the
  paper reports.
"""

from __future__ import annotations

import pytest

from repro import PowerSpec, paper_stack, paper_tsv
from repro.units import um


def print_experiment(result, *, extra: str = "") -> None:
    """Print one experiment's regenerated figure/table."""
    print()
    print("=" * 78)
    print(result.title)
    print("=" * 78)
    print(result.table_text())
    print()
    print("errors vs our FEM reference:")
    from repro.analysis import format_table

    print(format_table(result.error_rows()))
    print()
    print(result.plot_text())
    if extra:
        print(extra)
    print("=" * 78)


@pytest.fixture(scope="session")
def fig5_block():
    """The Fig. 5 geometry at tL = 1 um (shared micro-benchmark subject)."""
    stack = paper_stack(t_si_upper=um(45.0), t_ild=um(7.0), t_bond=um(1.0))
    via = paper_tsv(radius=um(5.0), liner_thickness=um(1.0))
    return stack, via, PowerSpec()
