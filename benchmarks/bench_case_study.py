"""Section IV-E bench: the 3-D DRAM-µP system.

Regenerates the paper's four-number comparison (A / B(1000) / FEM / 1-D)
and benchmarks each model on the per-via unit cell — including the paper's
runtime story (seconds of analytics vs minutes of FEM, here milliseconds
vs tens of milliseconds on the reduced cell).
"""

import pytest

from repro import Model1D, ModelA, ModelB
from repro.analysis import format_table
from repro.casestudy import build_case_study
from repro.experiments import case_study
from repro.fem import FEMReference
from repro.resistances import FittingCoefficients


@pytest.fixture(scope="module")
def system():
    return build_case_study()


@pytest.mark.parametrize(
    "make_model",
    [
        lambda: ModelA(FittingCoefficients.paper_case_study()),
        lambda: ModelB(1000, bond_factor=3.5),
        lambda: Model1D(),
    ],
    ids=["model_a", "model_b_1000", "model_1d"],
)
def test_case_study_models(benchmark, system, make_model):
    """Solve time of each analytical model on the case-study unit cell."""
    model = make_model()
    result = benchmark(model.solve, system.cell_stack, system.via, system.cell_power)
    assert result.max_rise > 0


def test_case_study_fem(benchmark, system):
    """FEM solve time on the (bond-enhanced) case-study unit cell."""
    stack = system.cell_stack.with_bond_conductivity_factor(3.5)
    model = FEMReference("medium")
    result = benchmark.pedantic(
        model.solve, args=(stack, system.via, system.cell_power), rounds=3, iterations=1
    )
    assert result.max_rise > 0


def test_case_study_reproduction(benchmark):
    """Regenerate the Section IV-E table with recalibration."""
    exp = benchmark.pedantic(
        lambda: case_study.run(fem_resolution="medium", recalibrate=True),
        rounds=1,
        iterations=1,
    )
    print()
    print(case_study.TITLE)
    print(format_table(exp.rows(), float_format="{:.2f}"))
    print("paper: A = 12.8, B(1000) = 13.9, FEM = 12, 1-D = 20 °C")
    rises = exp.report.rises()
    assert rises["model_1d"] > 1.5 * rises["fem"]  # the paper's headline
