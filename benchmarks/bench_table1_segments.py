"""Table I bench: Model B accuracy/runtime vs segment count.

The timing columns of the paper's Table I are exactly what
pytest-benchmark measures here; the error columns are regenerated from the
Fig. 5 sweep and printed.
"""

import pytest

from repro import Model1D, ModelA, ModelB
from repro.analysis import format_table
from repro.experiments import fig5_liner, table1_segments


@pytest.mark.parametrize("segments", [1, 20, 100, 500], ids=lambda n: f"B({n})")
def test_model_b_segment_scaling(benchmark, fig5_block, segments):
    """The paper's runtime column: Model B solve time vs segments."""
    stack, via, power = fig5_block
    model = ModelB(segments)
    result = benchmark(model.solve, stack, via, power)
    assert result.max_rise > 0


@pytest.mark.parametrize(
    "model", [ModelA(), Model1D()], ids=["model_a", "model_1d"]
)
def test_reference_models(benchmark, fig5_block, model):
    """Model A / 1-D rows of Table I (time column)."""
    stack, via, power = fig5_block
    benchmark(model.solve, stack, via, power)


def test_table1_reproduction(benchmark):
    """Regenerate Table I (errors vs FEM over the Fig. 5 sweep)."""
    def build():
        fig5 = fig5_liner.run(fem_resolution="medium", fast=False, calibrate=False)
        return table1_segments.run(fig5_result=fig5)

    result = benchmark.pedantic(build, rounds=1, iterations=1)
    print()
    print(table1_segments.TITLE)
    print(format_table(result.metadata["table_rows"]))
    errs = [
        result.errors[f"model_b({n})"].avg_error for n in (1, 20, 100, 500)
    ]
    assert errs[0] > errs[2]  # accuracy improves with segments
