"""Solver micro-benchmarks and ablations.

Not a paper artefact — engineering data for the library itself: network
assembly/solve scaling, FVM mesh scaling, the dense/sparse crossover and
the Model B discretisation-scheme ablation.
"""

import numpy as np
import pytest

from repro import ModelB, PowerSpec, paper_stack, paper_tsv
from repro.fem import FEMReference, build_axisym_grids, solve_axisymmetric
from repro.network import GROUND, ThermalCircuit
from repro.units import um


def build_ladder(n: int) -> ThermalCircuit:
    circuit = ThermalCircuit()
    prev = GROUND
    for i in range(n):
        circuit.add_resistor(prev, i, 1.0)
        circuit.add_source(i, 0.01)
        prev = i
    return circuit


@pytest.mark.parametrize("n", [50, 500, 5000], ids=lambda n: f"nodes={n}")
def test_network_solve_scaling(benchmark, n):
    """Sparse KCL solve across three orders of network size."""
    circuit = build_ladder(n)
    solution = benchmark(circuit.solve)
    assert solution.max_rise > 0


@pytest.mark.parametrize("resolution", ["coarse", "medium", "fine"])
def test_fem_mesh_scaling(benchmark, fig5_block, resolution):
    """Axisymmetric FVM wall-time vs mesh preset."""
    stack, via, power = fig5_block
    model = FEMReference(resolution)
    result = benchmark.pedantic(
        model.solve, args=(stack, via, power), rounds=3, iterations=1
    )
    assert result.max_rise > 0


def test_fem_assembly_only(benchmark, fig5_block):
    """Grid construction cost (voxelisation without the solve)."""
    stack, via, power = fig5_block
    grids = benchmark(build_axisym_grids, stack, via, power)
    assert grids.conductivity.shape[0] == grids.r_edges.size - 1


def test_fem_solve_only(benchmark, fig5_block):
    """Sparse solve cost on a prebuilt medium grid."""
    stack, via, power = fig5_block
    grids = build_axisym_grids(stack, via, power)
    field = benchmark(
        solve_axisymmetric,
        grids.r_edges,
        grids.z_edges,
        grids.conductivity,
        grids.source_density,
    )
    assert field.max_rise > 0


@pytest.mark.parametrize("scheme", ["paper", "uniform"])
def test_model_b_scheme_ablation(benchmark, fig5_block, scheme):
    """Eq. (21) assignment vs per-height continuum discretisation."""
    stack, via, power = fig5_block
    model = ModelB(100, scheme=scheme)
    result = benchmark(model.solve, stack, via, power)
    assert result.max_rise > 0


def test_mesh_convergence_report(benchmark, fig5_block):
    """Richardson check: the medium preset is within ~2% of extrapolation."""
    from repro.analysis import mesh_convergence, richardson_extrapolate

    stack, via, power = fig5_block
    points = benchmark.pedantic(
        lambda: mesh_convergence(stack, via, power), rounds=1, iterations=1
    )
    coarse, medium, fine = (p.max_rise for p in points)
    limit = richardson_extrapolate(medium, fine)
    print(f"\nFVM mesh convergence: coarse={coarse:.2f} medium={medium:.2f} "
          f"fine={fine:.2f} -> Richardson limit {limit:.2f} K")
    assert abs(medium - limit) / limit < 0.05
