#!/usr/bin/env sh
# CI benchmark-regression gate: run the harness in quick mode and fail on
# >25% best-of-N regression against the most recent committed BENCH_*.json.
#
# Usage:  benchmarks/run_bench.sh [extra `python -m repro bench` flags]
#   JOBS=N   worker count for the parallel measurement (default 4)
#
# Quick mode reuses the full-mode scenario sizes with fewer repeats, so the
# comparison against a full-mode baseline stays apples-to-apples.  The new
# report is not written in CI mode (--no-write): the committed baseline only
# moves when a PR regenerates it deliberately via `python -m repro bench`.
set -eu
cd "$(dirname "$0")/.."

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m repro bench --quick --no-write \
    --jobs "${JOBS:-4}" --tolerance 0.25 "$@"
