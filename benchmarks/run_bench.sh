#!/usr/bin/env sh
# CI benchmark-regression gate: run the harness in quick mode and fail on
# >25% best-of-N regression against the most recent committed BENCH_*.json.
#
# Usage:  benchmarks/run_bench.sh [extra `python -m repro bench` flags]
#   JOBS=N   worker count for the parallel measurement (default 4)
#
# Quick mode reuses the full-mode scenario sizes with fewer repeats, so the
# comparison against a full-mode baseline stays apples-to-apples.  The new
# report is not written in CI mode (--no-write): the committed baseline only
# moves when a PR regenerates it deliberately via `python -m repro bench`.
set -eu
cd "$(dirname "$0")/.."

# --require hardens the gate: the matrix-batched entries and the fem3d
# scenario must exist in every report (a silently dropped entry would let
# a regression through unmeasured).  On any failure — regression, missing
# entry, or a failed identity check — the harness prints the per-entry
# speedup table instead of a bare assertion.
#
# Tolerance 0.50: measured run-to-run wall-clock drift on this shared
# 1-CPU container reaches ~1.45x on identical code (observed across a
# session: the same serial sweep spans 81-118 ms) — any tighter gate
# flakes on healthy commits.  (The committed baseline is regenerated
# right after a pytest run, mimicking CI's hot state, to centre it in
# that band; the comparison anchors on the baseline's *median*, not its
# lucky minimum, for the same reason.)  Entries
# flagged "noisy" in the report (process-pool spawns, big 3-D
# factorizations) get double tolerance on top.  The real structural
# guarantees are carried by the load-immune same-run checks
# (multi_rhs_batched_wins, parallel_group_dispatch_wins, *_identical),
# which fail the gate at any load.
# --min-delta-ms 25: tens-of-ms entries swing by >1.5x ratios that are
# still only ~20 ms of absolute drift; a real regression on this
# harness's entries moves both the ratio AND tens of milliseconds.
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m repro bench --quick --no-write \
    --jobs "${JOBS:-4}" --tolerance 0.50 --min-delta-ms 25 \
    --require multi_rhs_per_point,multi_rhs_batched,parallel_group_dispatch,stacked_per_point,stacked_vs_per_point,fem3d_power_cold,transient_planned_cold,transient_planned_resume,nonlinear_planned,fault_recovery_overhead,fleet_single_process,fleet_four_workers,flat_lookup_10k,sharded_lookup_10k,checksum_overhead \
    "$@"
