"""Fig. 5 bench: ΔT vs liner thickness — regeneration plus model timings."""

import pytest

from repro import Model1D, ModelA, ModelB
from repro.experiments import fig5_liner
from repro.fem import FEMReference

from conftest import print_experiment


@pytest.mark.parametrize(
    "model",
    [ModelA(), ModelB(100), Model1D(), FEMReference("medium")],
    ids=["model_a", "model_b_100", "model_1d", "fem"],
)
def test_fig5_point_solve(benchmark, fig5_block, model):
    """Solve time of each Fig. 5 model at tL = 1 um."""
    stack, via, power = fig5_block
    result = benchmark(model.solve, stack, via, power)
    assert result.max_rise > 0


def test_fig5_reproduction(benchmark):
    """Regenerate Fig. 5: A, B(1/20/100/500), 1-D and FEM across liners."""
    result = benchmark.pedantic(
        lambda: fig5_liner.run(fem_resolution="medium", fast=False),
        rounds=1,
        iterations=1,
    )
    print_experiment(result)
    # liner thickening heats the stack for the lateral-aware models
    fem = result.series["fem"]
    assert fem[-1] > fem[0]
