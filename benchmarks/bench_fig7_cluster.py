"""Fig. 7 bench: ΔT vs cluster size at constant metal area."""

import pytest

from repro import ModelA, PowerSpec, TSVCluster, paper_tsv
from repro.experiments import fig7_cluster
from repro.experiments.params import fig7_config
from repro.fem import FEMReference
from repro.units import um

from conftest import print_experiment


@pytest.mark.parametrize("n", [1, 4, 16], ids=lambda n: f"n={n}")
def test_model_a_cluster_solve(benchmark, n):
    """Model A solve time is cluster-size independent (Eq. (22) is O(1))."""
    cfg = fig7_config()
    cluster = TSVCluster(cfg.via, n)
    result = benchmark(ModelA(cfg.fit).solve, cfg.stack, cluster, cfg.power)
    assert result.max_rise > 0


@pytest.mark.parametrize("n", [1, 4, 16], ids=lambda n: f"n={n}")
def test_fem_unit_cell_solve(benchmark, n):
    """FEM unit-cell solve time per cluster size."""
    cfg = fig7_config()
    cluster = TSVCluster(cfg.via, n)
    model = FEMReference("medium")
    result = benchmark.pedantic(
        model.solve, args=(cfg.stack, cluster, cfg.power), rounds=3, iterations=1
    )
    assert result.max_rise > 0


def test_fig7_reproduction(benchmark):
    """Regenerate Fig. 7; the 1-D curve must be flat, the others falling."""
    result = benchmark.pedantic(
        lambda: fig7_cluster.run(fem_resolution="medium", fast=False),
        rounds=1,
        iterations=1,
    )
    print_experiment(result)
    fem = result.series["fem"]
    one_d = result.series["model_1d"]
    assert fem[0] > fem[-1]
    assert (max(one_d) - min(one_d)) / min(one_d) < 0.02
