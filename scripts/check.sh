#!/usr/bin/env sh
# One-command local PR gate: lint + tier-1 tests + benchmark quick mode.
#
# Usage:  scripts/check.sh
#   JOBS=N   worker count for the parallel bench measurement (default 4)
#
# Lint runs only when ruff is installed (the base image does not ship it);
# the tier-1 suite and the benchmark-regression quick gate always run.
set -eu
cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "== lint (ruff check)"
    ruff check src tests benchmarks
else
    echo "== lint skipped: ruff not installed (pip install ruff)" >&2
fi

echo "== tier-1 tests"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -x -q

echo "== physics-kind quick scenarios (transient + nonlinear)"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro run transient_spike --fast >/dev/null
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m repro run nonlinear_hotspot --fast >/dev/null

echo "== fault-injection matrix (crash/error/delay/corrupt at rate 0.2)"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python scripts/fault_matrix.py

echo "== chaos soak (supervised fleet under kills + faults + laggy renames)"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python scripts/chaos_soak.py

echo "== fsck CLI on a post-run store"
fsck_tmp=$(mktemp -d)
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m repro run fig7 --fast --store "$fsck_tmp/store" >/dev/null
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m repro fsck "$fsck_tmp/store"
rm -rf "$fsck_tmp"

echo "== benchmark quick gate"
benchmarks/run_bench.sh

echo "== all checks passed"
