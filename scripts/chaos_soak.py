#!/usr/bin/env python
"""Chaos soak: a supervised fleet survives kills, faults and laggy renames.

The self-healing stack (PR 9) makes four promises — supervision respawns
the dead, leases fence the commits, the store heals what breaks, drains
are graceful.  This harness checks them *together*, because the failure
modes compose: a worker SIGKILLed mid-``put_point`` while the rename
seam is laggy and a retry storm is in flight is exactly the state no
unit test constructs.

One soak cycle:

1. a **clean baseline**: the scenario batch runs single-process,
   fault-free, into its own store;
2. a **chaos run**: the same batch runs on a ``--workers`` supervised
   fleet while

   * a killer thread SIGKILLs random live workers (pids read from the
     fleet's heartbeat files) on a seeded schedule,
   * the :mod:`repro.faults` registry injects transient solver errors
     and delays (``error``/``delay`` kinds — ``crash`` is carried by the
     real SIGKILLs and ``corrupt`` is exercised by the fsck test suite;
     deterministically corrupting the same store write on every retry
     would *force* double-solves by design),
   * the :mod:`repro.fsshim` laggy-rename shim stretches every
     ``os.replace``/``os.link`` so lease renewals and steals race for
     real,
   * every worker appends its fenced point commits to a per-pid solve
     ledger (``REPRO_SOLVE_LEDGER``);

3. the gate asserts:

   * the fleet **completes** and every rank's final incarnation exits 0;
   * the chaos store is **byte-identical** to the clean baseline — every
     assembled run payload (modulo wall-clock ``runtimes_ms``) and every
     point artifact (modulo ``solve_time``);
   * **zero double-solves**: no node key appears twice in the union of
     solve ledgers — the lease fencing held under every kill;
   * ``repro fsck`` finds **no damage** in the surviving store (notes
     such as tmp litter from killed writers are expected and allowed).

Usage::

    PYTHONPATH=src python scripts/chaos_soak.py [--seed 11] [--kills 2]
        [--workers 3] [--scenario fig7] [--deadline 300]
"""

from __future__ import annotations

import argparse
import os
import random
import shutil
import signal
import sys
import tempfile
import threading
import time
import warnings
from pathlib import Path

from repro import faults, fsshim
from repro.perf import RetryPolicy
from repro.scenarios import RunStore, run_batch, scrub
from repro.scenarios.fleet import run_fleet
from repro.scenarios.scheduler import SOLVE_LEDGER_ENV
from repro.scenarios.supervisor import read_heartbeat

#: retry budget matched to the soak's error rate (0.15): six independent
#: draws leave ~1e-5 per node of exhausting the budget — a failed soak
#: means broken machinery, not an unlucky seed
SOAK_RETRY = RetryPolicy(max_attempts=6, backoff_s=0.0)

FAULT_RATE = 0.15
FAULT_DELAY_S = 0.02
FSSHIM_DELAY_S = 0.01


def normalized_run(payload: dict) -> dict:
    payload = dict(payload)
    payload.pop("runtimes_ms", None)
    return payload


def normalized_point(payload: dict) -> dict:
    payload = dict(payload)
    payload.pop("solve_time", None)
    return payload


class Killer(threading.Thread):
    """Seeded SIGKILLs against live fleet workers, via their heartbeats."""

    def __init__(
        self, root: Path, workers: int, kills: int, seed: int
    ) -> None:
        super().__init__(daemon=True)
        self.root = root
        self.workers = workers
        self.kills = kills
        self.rng = random.Random(seed)
        self.stop = threading.Event()
        self.killed: list[int] = []

    def _live_pids(self) -> list[int]:
        pids = []
        for rank in range(self.workers):
            beat = read_heartbeat(self.root, rank)
            # a fresh beat is the only evidence the pid is still the
            # worker's (stale heartbeats may name an exited incarnation,
            # and a killed pid stays signal-able as a zombie until the
            # supervisor reaps it — never spend a kill on it twice)
            if beat is None or beat.age_s() > 5.0 or beat.pid == os.getpid():
                continue
            if beat.pid in self.killed:
                continue
            # a worker that already reported full progress is finishing
            # up (or a completed zombie) — killing it proves nothing
            if beat.total > 0 and beat.done >= beat.total:
                continue
            try:
                os.kill(beat.pid, 0)
            except (ProcessLookupError, PermissionError):
                continue
            pids.append(beat.pid)
        return pids

    def run(self) -> None:
        delay = self.rng.uniform(0.2, 0.5)  # first kill lands early
        while len(self.killed) < self.kills and not self.stop.wait(delay):
            delay = self.rng.uniform(0.4, 1.0)
            pids = self._live_pids()
            if not pids:
                continue
            pid = self.rng.choice(sorted(pids))
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                continue
            self.killed.append(pid)


def soak(args: argparse.Namespace, work: Path) -> list[str]:
    """One soak cycle; returns the list of failed assertions."""
    clean_root = work / "clean"
    chaos_root = work / "chaos"
    ledger_dir = work / "ledger"
    ledger_dir.mkdir()
    problems: list[str] = []

    # ---- clean single-process baseline ------------------------------
    print(f"[soak] baseline: {args.scenario} single-process, fault-free")
    faults.reset()
    clean = RunStore(clean_root)
    run_batch(
        list(args.scenario), store=clean, fast=args.fast, retry=SOAK_RETRY
    )

    # ---- chaos fleet ------------------------------------------------
    print(
        f"[soak] chaos: {args.workers} supervised workers, "
        f"{args.kills} kills, faults armed (seed {args.seed})"
    )
    faults.configure(
        rate=FAULT_RATE,
        kinds=("error", "delay"),
        sites=faults.SITES,
        seed=args.seed,
        delay_s=FAULT_DELAY_S,
    )
    os.environ[fsshim.ENV_DELAY_S] = repr(FSSHIM_DELAY_S)
    os.environ[fsshim.ENV_SEED] = str(args.seed)
    os.environ[SOLVE_LEDGER_ENV] = str(ledger_dir)
    killer = Killer(chaos_root, args.workers, args.kills, args.seed)
    start = time.perf_counter()
    try:
        killer.start()
        outcome = run_fleet(
            list(args.scenario),
            store=chaos_root,
            workers=args.workers,
            fast=args.fast,
            ttl_s=2.0,
            retry=SOAK_RETRY,
            supervise=True,
            max_respawns=args.kills + 3,
            stall_timeout_s=30.0,
            deadline_s=args.deadline,
        )
    finally:
        killer.stop.set()
        killer.join(2.0)
        faults.reset()
        for var in (fsshim.ENV_DELAY_S, fsshim.ENV_SEED, SOLVE_LEDGER_ENV):
            os.environ.pop(var, None)
    elapsed = time.perf_counter() - start
    print(
        f"[soak] fleet finished in {elapsed:.1f}s: exit_codes="
        f"{outcome.exit_codes} kills={len(killer.killed)} "
        f"respawns={len(outcome.respawns)}"
    )
    for event in outcome.respawns:
        print(
            f"[soak]   respawned rank {event['rank']} "
            f"(#{event['respawn']}, {event['reason']}, "
            f"prior exit {event['exit_code']}) at t+{event['at_s']}s"
        )

    # ---- gate: completion -------------------------------------------
    if not outcome.complete:
        problems.append("fleet did not complete the batch")
    if outcome.deadline_exceeded:
        problems.append("fleet hit the soak deadline")
    if any(code != 0 for code in outcome.exit_codes):
        problems.append(f"non-zero final exit codes: {outcome.exit_codes}")
    if killer.killed and not outcome.respawns:
        problems.append("workers were killed but no respawn was recorded")

    # ---- gate: byte-identity with the clean baseline ----------------
    chaos = RunStore(chaos_root)
    if sorted(clean.keys()) != sorted(chaos.keys()):
        problems.append(
            f"run-key mismatch: clean={sorted(clean.keys())} "
            f"chaos={sorted(chaos.keys())}"
        )
    run_diffs = sum(
        1
        for key in clean.keys()
        if normalized_run(clean.get(key) or {})
        != normalized_run(chaos.get(key) or {})
    )
    if run_diffs:
        problems.append(f"{run_diffs} assembled run payloads differ")
    clean_points = {k: clean.get_point(k) for k in clean.point_keys()}
    chaos_points = {k: chaos.get_point(k) for k in chaos.point_keys()}
    if sorted(clean_points) != sorted(chaos_points):
        only_clean = sorted(set(clean_points) - set(chaos_points))
        only_chaos = sorted(set(chaos_points) - set(clean_points))
        problems.append(
            f"point-key mismatch: {len(only_clean)} only-clean, "
            f"{len(only_chaos)} only-chaos"
        )
    point_diffs = sum(
        1
        for key in set(clean_points) & set(chaos_points)
        if normalized_point(clean_points[key] or {})
        != normalized_point(chaos_points[key] or {})
    )
    if point_diffs:
        problems.append(f"{point_diffs} point payloads differ")
    print(
        f"[soak] byte-identity: {len(clean_points)} points, "
        f"{len(clean.keys())} runs compared"
    )

    # ---- gate: zero double-solves -----------------------------------
    committed: list[str] = []
    for ledger in sorted(ledger_dir.glob("*.solves")):
        committed.extend(ledger.read_text().splitlines())
    doubles = sorted(
        {key for key in committed if committed.count(key) > 1}
    )
    if doubles:
        problems.append(
            f"{len(doubles)} keys committed twice (fencing broken): "
            f"{doubles[:3]}"
        )
    print(
        f"[soak] solve ledger: {len(committed)} fenced commits across "
        f"{len(list(ledger_dir.glob('*.solves')))} worker incarnations, "
        f"{len(doubles)} doubles"
    )

    # ---- gate: fsck finds no damage ---------------------------------
    report = scrub(chaos_root)
    if report.damage:
        problems.append(
            f"fsck found damage: "
            f"{[(f.kind, f.key) for f in report.damage][:5]}"
        )
    print(
        f"[soak] fsck: {report.scanned} artifacts scanned, "
        f"{len(report.damage)} damage, {len(report.notes)} notes"
    )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenario",
        nargs="+",
        default=["fig7", "fig5", "transient_spike"],
        help="scenario ids to soak (default: fig7 fig5 transient_spike — "
        "enough plan nodes that every kill lands on a worker with work "
        "left, so each one exercises a real respawn-and-resume)",
    )
    parser.add_argument("--workers", type=int, default=3)
    parser.add_argument(
        "--kills",
        type=int,
        default=2,
        help="SIGKILLs delivered to random live workers (default 2)",
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--deadline",
        type=float,
        default=300.0,
        help="whole-soak supervision deadline in seconds (default 300)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full-size sweeps (default: fast mode)",
    )
    parser.add_argument(
        "--keep",
        type=Path,
        default=None,
        metavar="DIR",
        help="keep the stores/ledgers under DIR instead of a tempdir",
    )
    args = parser.parse_args(argv)
    args.fast = not args.full

    warnings.filterwarnings("ignore")
    if args.keep is not None:
        args.keep.mkdir(parents=True, exist_ok=True)
        work, cleanup = args.keep, False
    else:
        work, cleanup = Path(tempfile.mkdtemp(prefix="chaos-soak-")), True
    try:
        problems = soak(args, work)
    finally:
        if cleanup:
            shutil.rmtree(work, ignore_errors=True)
    if problems:
        print("[soak] FAILED:")
        for problem in problems:
            print(f"[soak]   - {problem}")
        return 1
    print("[soak] PASSED: completion, byte-identity, zero double-solves, fsck clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
