#!/usr/bin/env python
"""CI fault matrix: every injection kind against a small builtin scenario.

For each fault kind (``crash``, ``error``, ``delay``, ``corrupt``) the
builtin ``fig7`` scenario runs (fast mode) with the :mod:`repro.faults`
registry armed at a fixed rate and seed, under a retry budget matched to
the rate.  The gate asserts the fault-tolerance invariant end to end:

* the run completes (no kind at the matrix rate may exhaust the matched
  retry budget and fail the scenario);
* the assembled payload is byte-identical to a fault-free run (modulo
  the wall-clock ``runtimes_ms`` metadata);
* every point artifact that survived in the store decodes to exactly the
  fault-free point payload (modulo wall-clock ``solve_time``) — corrupt
  writes may heal away, but never to *different physics*.

The ``crash`` kind runs under a 2-worker process pool so the injected
``os._exit`` kills a real worker and exercises the pool-rebuild path;
the other kinds run serially (faster, and the capture path is shared).

A further cell arms *only* the ``stacked-solve`` site with crashes at
rate 1.0: every cross-matrix stacked batch dies on dispatch, so a
completing, byte-identical run proves crashed stacked batches degrade to
per-point solo dispatch (the PR-6 contract) rather than retrying forever
or failing the scenario.

The final cell kills a fleet worker: one worker of a 3-worker fleet is
armed (via per-rank environment) to crash the moment it holds a lease
claim.  The gate asserts the armed worker dies with the injected exit
code, the survivors steal its expired claims, the shared store finishes
byte-identical to the fault-free run, and no completed point is lost.

Usage::

    PYTHONPATH=src python scripts/fault_matrix.py [--rate 0.2] [--seed 0]
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import warnings
from pathlib import Path

from repro import faults, perf
from repro.perf import ParallelExecutor, RetryPolicy, counter
from repro.scenarios import SCENARIOS, RunStore, run_scenario, scrub
from repro.scenarios.fleet import run_fleet

SCENARIO = "fig7"

#: the matrix retry budget is matched to its rate: at rate 0.2 a node
#: needs 5 independent draws for a ~3e-4 chance of exhausting them, so a
#: failed matrix means broken recovery machinery, not an unlucky seed
MATRIX_RETRY = RetryPolicy(max_attempts=5, backoff_s=0.0)


def normalized_run(result) -> dict:
    payload = result.to_payload()
    payload.pop("runtimes_ms", None)
    return payload


def normalized_point(payload: dict) -> dict:
    payload = dict(payload)
    payload.pop("solve_time", None)
    return payload


def fsck_verdicts(store_dir: Path, *, damage_expected: bool) -> list[str]:
    """Post-run integrity scrub for one cell (run *before* point reads —
    a verified ``get_point`` heals corrupt artifacts to misses, which
    would hide exactly the on-disk damage fsck exists to find).

    Cells whose faults never touch payload bytes must leave a store with
    zero damage (notes — tmp litter from killed writers, expired claims —
    are live-protocol residue and allowed).  The corrupt cell is the one
    legitimate source of damage: there ``--repair`` must clear every
    finding and a re-scrub must come back clean.
    """
    report = scrub(store_dir)
    if not report.damage:
        return []
    if not damage_expected:
        kinds = sorted({f.kind for f in report.damage})
        return [f"fsck found {len(report.damage)} damaged artifact(s): {kinds}"]
    repaired = scrub(store_dir, repair=True)
    if repaired.exit_code != 0:
        return ["fsck --repair could not heal the damage"]
    after = scrub(store_dir)
    if after.damage:
        return [f"fsck --repair left {len(after.damage)} finding(s) behind"]
    return []


def run_once(
    kind: str | None,
    rate: float,
    seed: int,
    store_dir: Path,
    sites: tuple[str, ...] | None = None,
):
    """One matrix cell: ``kind`` armed (or a fault-free baseline for None)."""
    perf.reset()
    faults.reset()
    store = RunStore(store_dir)
    executor = ParallelExecutor(2) if kind == "crash" else None
    if kind is not None:
        if sites is None:
            sites = faults.SITES
        faults.configure(rate=rate, kinds=(kind,), sites=sites, seed=seed)
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            run = run_scenario(
                SCENARIO,
                fast=True,
                store=store,
                executor=executor,
                retry=MATRIX_RETRY,
            )
    finally:
        faults.reset()
    injected = counter(f"fault_injected_{kind}") if kind else 0
    return run, store, injected


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rate", type=float, default=0.2)
    # seed 5: every kind (including store-write corruption) fires at
    # least once on this scenario at the default rate — re-picked for the
    # stacked dispatch shape, whose batches replace the old per-point
    # fault-draw keys
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args(argv)

    root = Path(tempfile.mkdtemp(prefix="fault_matrix_"))
    failures: list[str] = []
    try:
        baseline_run, baseline_store, _ = run_once(
            None, args.rate, args.seed, root / "baseline"
        )
        baseline_payload = normalized_run(baseline_run.result)
        baseline_points = {
            key: normalized_point(baseline_store.get_point(key))
            for key in baseline_store.point_keys()
        }

        for kind in faults.KINDS:
            run, store, injected = run_once(
                kind, args.rate, args.seed, root / kind
            )
            verdicts = []
            if injected == 0:
                verdicts.append(f"no {kind} fault fired at rate {args.rate}")
            if run.failed:
                verdicts.append(
                    f"scenario failed ({len(run.failures)} quarantined node(s))"
                )
            elif normalized_run(run.result) != baseline_payload:
                verdicts.append("assembled payload differs from fault-free run")
            verdicts.extend(
                fsck_verdicts(store.root, damage_expected=kind == "corrupt")
            )
            for key in store.point_keys():
                payload = store.get_point(key)
                if payload is None:
                    continue  # healed-away corruption: a legitimate miss
                if normalized_point(payload) != baseline_points.get(key):
                    verdicts.append(f"point {key[:16]}... differs")
                    break
            status = "FAIL: " + "; ".join(verdicts) if verdicts else "ok"
            print(
                f"[fault-matrix] kind={kind:<7} injected={injected:<3} "
                f"points={len(store.point_keys()):<3} {status}"
            )
            failures.extend(f"{kind}: {v}" for v in verdicts)

        # stacked-degradation cell: every stacked batch crashes (rate 1.0,
        # only the stacked-solve site armed), so the only way the run can
        # complete — let alone byte-identically — is the PR-6 degradation
        # contract: the crashed batch splits into per-point solo dispatches
        # whose "solve" site is NOT armed.  plan_group_degradations > 0 with
        # only stacked-solve armed proves the degradations came from
        # stacked batches.
        run, store, injected = run_once(
            "crash", 1.0, args.seed, root / "stacked", sites=("stacked-solve",)
        )
        verdicts = []
        if injected == 0:
            verdicts.append("no stacked-solve crash fired at rate 1.0")
        if counter("plan_stacked_batches") == 0:
            verdicts.append("no stacked batch was dispatched")
        if counter("plan_group_degradations") == 0:
            verdicts.append("crashed stacked batch did not degrade")
        if run.failed:
            verdicts.append(
                f"scenario failed ({len(run.failures)} quarantined node(s))"
            )
        elif normalized_run(run.result) != baseline_payload:
            verdicts.append("assembled payload differs from fault-free run")
        verdicts.extend(fsck_verdicts(store.root, damage_expected=False))
        for key in store.point_keys():
            payload = store.get_point(key)
            if payload is None:
                continue
            if normalized_point(payload) != baseline_points.get(key):
                verdicts.append(f"point {key[:16]}... differs")
                break
        status = "FAIL: " + "; ".join(verdicts) if verdicts else "ok"
        print(
            f"[fault-matrix] site=stacked-solve (crash@1.0) "
            f"injected={injected:<3} "
            f"degradations={counter('plan_group_degradations'):<3} {status}"
        )
        failures.extend(f"stacked-solve: {v}" for v in verdicts)

        # fleet worker-kill cell: worker 0 of a 3-worker fleet is armed to
        # crash (rate 1.0) the moment it holds a lease claim — os._exit,
        # no cleanup, no report.  The survivors must steal its expired
        # claims, finish the store byte-identically, and lose none of the
        # points any worker completed.
        perf.reset()
        faults.reset()
        outcome = run_fleet(
            [SCENARIO],
            store=root / "fleet",
            workers=3,
            fast=True,
            ttl_s=1.0,
            retry=MATRIX_RETRY,
            timeout_s=600.0,
            extra_env={
                0: {
                    faults.ENV_RATE: "1.0",
                    faults.ENV_SITES: "lease",
                    faults.ENV_KINDS: "crash",
                    faults.ENV_SEED: "1",
                }
            },
        )
        verdicts = []
        if outcome.exit_codes[0] != faults.CRASH_EXIT_CODE:
            verdicts.append(
                f"armed worker exited {outcome.exit_codes[0]}, "
                f"expected {faults.CRASH_EXIT_CODE}"
            )
        if any(code != 0 for code in outcome.exit_codes[1:]):
            verdicts.append(f"survivor exit codes {outcome.exit_codes[1:]}")
        if not outcome.complete:
            verdicts.append("fleet store incomplete after worker kill")
        verdicts.extend(fsck_verdicts(root / "fleet", damage_expected=False))
        fleet_store = RunStore(root / "fleet")
        fleet_key = SCENARIOS.get(SCENARIO).resolved(fast=True).content_hash()
        stored = fleet_store.get(fleet_key)
        # compare stored-to-stored: both sides went through one JSON
        # round-trip, unlike the in-memory baseline_payload
        reference = baseline_store.get(fleet_key)
        if stored is None or reference is None:
            verdicts.append("run artifact missing from the fleet store")
        else:
            stored.pop("runtimes_ms", None)
            reference.pop("runtimes_ms", None)
            if stored != reference:
                verdicts.append("fleet payload differs from fault-free run")
        for key in fleet_store.point_keys():
            payload = fleet_store.get_point(key)
            if payload is None:
                continue
            if normalized_point(payload) != baseline_points.get(key):
                verdicts.append(f"point {key[:16]}... differs")
                break
        missing = set(baseline_points) - set(fleet_store.point_keys())
        if missing:
            verdicts.append(f"{len(missing)} completed point(s) lost")
        status = "FAIL: " + "; ".join(verdicts) if verdicts else "ok"
        steals = outcome.counters.get("lease_steals", 0)
        print(
            f"[fault-matrix] fleet worker-kill (lease crash@1.0) "
            f"exits={list(outcome.exit_codes)} steals={steals:<3} {status}"
        )
        failures.extend(f"fleet-kill: {v}" for v in verdicts)
    finally:
        shutil.rmtree(root, ignore_errors=True)

    if failures:
        print(f"[fault-matrix] {len(failures)} check(s) failed", file=sys.stderr)
        return 1
    print("[fault-matrix] all kinds recovered byte-identically")
    return 0


if __name__ == "__main__":
    sys.exit(main())
