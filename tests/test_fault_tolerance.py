"""Fault-tolerant plan execution, end to end.

Every test drives real failures through :mod:`repro.faults` — injected
solver errors, worker crashes (``os._exit`` inside a pool process),
delays against wall-clock deadlines, corrupted store writes — and
asserts the retry/quarantine/recovery machinery restores the invariant
that matters: completed points are byte-identical to a fault-free run
(modulo ``runtimes_ms``, which is wall-clock).
"""

import warnings

import pytest

from repro import Model1D, PowerSpec, faults, paper_stack, paper_tsv, perf
from repro.perf import (
    ParallelExecutor,
    PointTask,
    RetryPolicy,
    SerialExecutor,
    TaskFailure,
)
from repro.perf.executors import solve_work_safe
from repro.scenarios import RunStore, ScenarioSpec, run_scenario
from repro.scenarios.spec import AxisSpec
from repro.units import um


@pytest.fixture(autouse=True)
def _clean_slate():
    """Cold caches/counters and a disarmed registry around every test."""
    perf.reset()
    faults.reset()
    yield
    perf.reset()
    faults.reset()


def ft_spec(values=(2.0, 3.0, 4.0, 5.0, 6.0)):
    return ScenarioSpec(
        scenario_id="ft_tiny",
        title="Fault-tolerance sweep",
        axis=AxisSpec(parameter="radius_um", values=values),
        models=("1d",),
        reference="fem:coarse",
        calibrate=False,
        calibration_samples=2,
    )


def normalized(result):
    """A result payload with the wall-clock metadata stripped."""
    payload = result.to_payload()
    payload.pop("runtimes_ms")
    return payload


@pytest.fixture(scope="module")
def baseline_payload():
    """The fault-free reference payload every recovery test compares to."""
    perf.reset()
    faults.reset()
    payload = normalized(run_scenario(ft_spec()).result)
    perf.reset()
    return payload


class TestExecutorCapture:
    def _task(self, index=0, attempt=0):
        return PointTask(
            index=index,
            value=5.0,
            stack=paper_stack(),
            via=paper_tsv(radius=um(5), liner_thickness=um(1)),
            power=PowerSpec(),
            models=(Model1D(),),
            attempt=attempt,
        )

    def test_serial_safe_stream_captures_injected_errors(self):
        faults.configure(rate=1.0, kinds=("error",), sites=("solve",), seed=0)
        [(task, result)] = list(
            SerialExecutor().submit_stream_safe([self._task()])
        )
        assert isinstance(result, TaskFailure)
        assert result.error_class == "SolverError"
        assert result.transient
        assert result.traceback_digest and result.traceback_tail

    def test_crash_in_parent_is_captured_not_fatal(self):
        faults.configure(rate=1.0, kinds=("crash",), sites=("solve",), seed=0)
        [(_, result)] = list(
            SerialExecutor().submit_stream_safe([self._task()])
        )
        assert isinstance(result, TaskFailure)
        assert result.error_class == "WorkerCrashError" and result.transient

    def test_timeout_is_a_transient_task_failure(self):
        faults.configure(
            rate=1.0, kinds=("delay",), sites=("solve",), delay_s=0.5, seed=0
        )
        result = solve_work_safe(self._task(), 0.1)
        assert isinstance(result, TaskFailure)
        assert result.error_class == "NodeTimeoutError" and result.transient

    def test_retry_attempt_rolls_a_fresh_fault_draw(self):
        # rate 0.5: across a few task indices at least one flips between
        # attempt 0 and attempt 1 — the transience the scheduler relies on
        faults.configure(rate=0.5, kinds=("error",), sites=("solve",), seed=0)
        outcomes = []
        for i in range(8):
            first = solve_work_safe(self._task(index=i, attempt=0))
            second = solve_work_safe(self._task(index=i, attempt=1))
            outcomes.append(
                (isinstance(first, TaskFailure), isinstance(second, TaskFailure))
            )
        assert any(a != b for a, b in outcomes)

    def test_parallel_pool_survives_worker_crashes(self):
        """A worker ``os._exit`` breaks the pool; the stream rebuilds it and
        every task still lands, bit-identical where it succeeded."""
        tasks = [self._task(index=i) for i in range(5)]
        expected = [r for _, r in SerialExecutor().submit_stream_safe(tasks)]
        perf.reset()
        faults.configure(rate=0.35, kinds=("crash",), sites=("solve",), seed=0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            landed = dict(
                (t.index, r)
                for t, r in ParallelExecutor(2).submit_stream_safe(tasks)
            )
        assert sorted(landed) == [0, 1, 2, 3, 4]  # nothing lost to the crash
        assert perf.stats()["counters"]["pool_rebuilds"] >= 1
        for i, reference in enumerate(expected):
            if isinstance(landed[i], TaskFailure):
                assert landed[i].error_class == "WorkerCrashError"
            else:
                # the same deterministic draw either failed both or solved both
                assert not isinstance(reference, TaskFailure)
                assert (
                    landed[i]["model_1d"].max_rise
                    == reference["model_1d"].max_rise
                )


class TestPlanRecovery:
    def test_injected_errors_retry_to_byte_identical_completion(
        self, baseline_payload
    ):
        # the fem reference points ride the stacked tier, so arm its
        # fault site too — a failing batch is what degrades to solo;
        # this (rate, seed) draw fails the batch once and lets every
        # solo retry land within its budget
        faults.configure(
            rate=0.35,
            kinds=("error",),
            sites=("solve", "stacked-solve"),
            seed=4,
        )
        run = run_scenario(
            ft_spec(), retry=RetryPolicy(max_attempts=3, backoff_s=0.0)
        )
        faults.reset()
        assert not run.failed
        assert normalized(run.result) == baseline_payload
        counters = perf.stats()["counters"]
        assert counters["plan_retries"] >= 1
        assert counters["plan_group_degradations"] >= 1
        assert counters["fault_injected_error"] >= 1

    def test_killed_workers_recover_byte_identical(self, baseline_payload):
        """The acceptance scenario: pool workers die mid-batch (os._exit via
        the crash fault at rate 0.2, fixed seed); the batch completes and is
        byte-identical to the fault-free run, with the retries counted."""
        faults.configure(rate=0.2, kinds=("crash",), sites=("solve",), seed=0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            run = run_scenario(
                ft_spec(),
                executor=ParallelExecutor(2),
                retry=RetryPolicy(backoff_s=0.0),
            )
        faults.reset()
        assert not run.failed
        assert normalized(run.result) == baseline_payload
        counters = perf.stats()["counters"]
        assert counters["fault_injected_crash"] >= 1  # workers really died
        assert counters["pool_rebuilds"] >= 1  # the pool really broke
        assert counters["plan_retries"] >= 1  # recovery charged retries

    def test_quarantine_then_resume_retries_only_the_failed_nodes(
        self, tmp_path, baseline_payload
    ):
        store = RunStore(tmp_path / "store")
        # no retry budget: every injected failure quarantines immediately
        faults.configure(rate=0.3, kinds=("error",), sites=("solve",), seed=0)
        run = run_scenario(
            ft_spec(),
            store=store,
            retry=RetryPolicy(max_attempts=1, backoff_s=0.0),
        )
        faults.reset()
        assert run.failed and run.result is None
        quarantined = set(store.failure_keys())
        completed = set(store.point_keys())
        assert quarantined and completed  # a genuinely partial run
        assert quarantined.isdisjoint(completed)
        assert {f.key for f in run.failures} <= quarantined
        assert all(f.error_class == "SolverError" for f in run.failures)

        # second invocation, faults disarmed and caches cold (a fresh
        # process): --resume must re-attempt exactly the quarantined nodes
        # and serve the rest from the store
        perf.reset()
        events = []
        resumed = run_scenario(
            ft_spec(), store=store, resume=True, progress=events.append
        )
        assert not resumed.failed
        assert normalized(resumed.result) == baseline_payload
        by_source = {}
        for event in events:
            by_source.setdefault(event["source"], set()).add(event["key"])
        assert by_source["solved"] == quarantined  # only the failures re-ran
        assert by_source["store"] == completed  # everything else resumed
        assert store.failure_keys() == []  # the ledger emptied on success

    def test_retry_none_restores_raise_on_failure(self):
        from repro.errors import SolverError

        faults.configure(rate=1.0, kinds=("error",), sites=("solve",), seed=0)
        with pytest.raises(SolverError):
            run_scenario(ft_spec(), retry=None)


class TestStoreDurability:
    def test_corrupt_point_write_heals_to_a_miss(self, tmp_path):
        from repro.errors import CorruptArtifactError
        from repro.scenarios.store import parse_artifact

        store = RunStore(tmp_path / "store")
        faults.configure(
            rate=1.0, kinds=("corrupt",), sites=("store-write",), seed=0
        )
        path = store.put_point("k1", {"kind": "solve", "max_rise": 1.0})
        faults.reset()
        assert path.exists()
        # the truncated write fails its own envelope checksum — the
        # corruption is detectable from the artifact bytes alone
        with pytest.raises(CorruptArtifactError):
            parse_artifact(path.read_text())
        assert store.get_point("k1") is None  # reader treats it as a miss
        assert not path.exists()  # and heals the object away
        counters = perf.stats()["counters"]
        assert counters["fault_injected_corrupt"] >= 1
        assert counters["store_integrity_heals"] >= 1

    def test_corrupt_run_write_heals_manifest(self, tmp_path):
        store = RunStore(tmp_path / "store")
        spec = ft_spec()
        faults.configure(
            rate=1.0, kinds=("corrupt",), sites=("store-write",), seed=0
        )
        store.put("rk", {"experiment_id": "x"}, spec)
        faults.reset()
        assert "rk" in store
        assert store.get("rk") is None
        assert "rk" not in store  # manifest entry healed away

    def test_failure_ledger_roundtrip_and_clear(self, tmp_path):
        from repro.perf import NodeFailure

        store = RunStore(tmp_path / "store")
        failure = NodeFailure(
            key="nk",
            kind="solve",
            error_class="SolverError",
            message="boom",
            traceback_digest="abc123",
            attempts=3,
        )
        store.put_failure("nk", failure)
        assert store.failure_keys() == ["nk"]
        assert store.get_failure("nk") == failure
        # a reopened store sees the ledger and can clear it
        reopened = RunStore(tmp_path / "store")
        reopened.clear_failure("nk")
        assert reopened.failure_keys() == []
        assert reopened.get_failure("nk") is None

    def test_corrupt_ledger_record_reads_as_none(self, tmp_path):
        store = RunStore(tmp_path / "store")
        (store.failures / "bad.json").write_text("{ not json")
        assert store.get_failure("bad") is None
        assert not (store.failures / "bad.json").exists()

    def test_heal_point_drops_wrong_shape_payloads(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.put_point("k", {"kind": "something-else"})
        assert store.get_point("k") is not None  # readable JSON...
        store.heal_point("k")  # ...but the scheduler decided it decodes wrong
        assert store.get_point("k") is None


class TestCLI:
    def _spec_file(self, tmp_path):
        path = tmp_path / "ft_tiny.json"
        ft_spec().dump(path)
        return str(path)

    def test_run_flags_parse(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(
            ["run", "x", "--max-retries", "5", "--node-timeout", "2.5"]
        )
        assert args.max_retries == 5 and args.node_timeout == 2.5
        defaults = build_parser().parse_args(["run", "x"])
        assert defaults.max_retries == 2 and defaults.node_timeout is None

    def test_negative_max_retries_rejected(self, tmp_path):
        from repro.__main__ import main

        with pytest.raises(SystemExit, match="--max-retries"):
            main(["run", self._spec_file(tmp_path), "--max-retries", "-1"])

    def test_failed_run_exits_3_and_prints_the_ledger(self, tmp_path, capsys):
        from repro.__main__ import main

        spec_file = self._spec_file(tmp_path)
        store_dir = str(tmp_path / "store")
        faults.configure(rate=0.3, kinds=("error",), sites=("solve",), seed=0)
        code = main(
            ["run", spec_file, "--store", store_dir, "--max-retries", "0"]
        )
        faults.reset()
        captured = capsys.readouterr()
        assert code == 3
        assert "FAILED" in captured.out
        assert "quarantined" in captured.err
        assert "SolverError" in captured.err
        assert "--store/--resume" in captured.err

        # the advertised recovery: disarm faults, resume, exit 0
        code = main(
            ["run", spec_file, "--store", store_dir, "--resume"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "solved (key" in captured.out
        assert RunStore(store_dir).failure_keys() == []
