"""Model B: segment schemes, ladder assembly, convergence, conservation."""

import pytest

from repro import ModelB, SegmentScheme, TSVCluster, paper_tsv
from repro.errors import ValidationError
from repro.network import GROUND
from repro.units import um


class TestSegmentScheme:
    def test_paper_convention(self):
        scheme = SegmentScheme.paper(100)
        assert scheme.plane_segments == (10, 100, 100)

    def test_paper_convention_minimum_one(self):
        assert SegmentScheme.paper(1).plane_segments == (1, 1, 1)

    def test_paper_table1_pairs(self):
        # Table I: (1,1), (2,20), (10,100), (50,500)
        assert SegmentScheme.paper(20, n_first=2).plane_segments == (2, 20, 20)
        assert SegmentScheme.paper(500).plane_segments == (50, 500, 500)

    def test_total(self):
        assert SegmentScheme((2, 20, 20)).total == 42

    def test_split_plane1_is_all_ild(self, block_stack):
        scheme = SegmentScheme.paper(100)
        n_si, n_ild = scheme.split(block_stack, 0)
        assert n_si == 0
        assert n_ild == 10

    def test_split_proportional_to_thickness(self, block_stack):
        # plane 2: tSi = 45, tD = 7 -> most segments in silicon
        n_si, n_ild = SegmentScheme.paper(100).split(block_stack, 1)
        assert n_si + n_ild == 100
        assert n_si > n_ild
        assert n_ild >= 1

    def test_split_single_segment(self, block_stack):
        assert SegmentScheme.paper(1).split(block_stack, 1) == (0, 1)

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            SegmentScheme(())

    def test_rejects_non_positive(self):
        with pytest.raises(Exception):
            SegmentScheme((0, 10, 10))


class TestModelB:
    def test_n_unknowns_tracks_segments(self, block_stack, block_tsv, block_power):
        result = ModelB(20).solve(block_stack, block_tsv, block_power)
        scheme = SegmentScheme.paper(20)
        # 2 nodes per segment + t0; top-plane metal column may be shorter
        assert result.n_unknowns <= 2 * scheme.total + 1
        assert result.n_unknowns > scheme.total

    def test_refinement_converges(self, block_stack, block_tsv, block_power):
        rises = [
            ModelB(n).solve(block_stack, block_tsv, block_power).max_rise
            for n in (1, 10, 50, 200, 400)
        ]
        gaps = [abs(a - b) for a, b in zip(rises, rises[1:])]
        assert gaps[-1] < gaps[0] / 5.0  # Cauchy-ish convergence
        assert abs(rises[-1] - rises[-2]) / rises[-1] < 0.01

    def test_b1_close_to_model_a_unity_shape(self, block_stack, block_tsv, block_power):
        # B(1) is a lumped network like Model A without coefficients;
        # it should land in the same range (the paper: 23% max error)
        from repro import ModelA
        from repro.resistances import FittingCoefficients

        b1 = ModelB(1).solve(block_stack, block_tsv, block_power).max_rise
        a_unity = ModelA(FittingCoefficients.unity()).solve(
            block_stack, block_tsv, block_power
        ).max_rise
        assert b1 == pytest.approx(a_unity, rel=0.15)

    def test_energy_conservation(self, block_stack, block_tsv, block_power):
        model = ModelB(50)
        scheme = model.segment_scheme(block_stack)
        from repro.core.model_b import _paper_segments, build_model_b_circuit
        from repro.geometry import as_cluster
        from repro.resistances import compute_model_b_resistances

        segments = _paper_segments(
            block_stack, as_cluster(block_tsv), scheme, block_power, 1.0, False
        )
        rs = compute_model_b_resistances(block_stack, block_tsv).rs
        circuit, _tops = build_model_b_circuit(segments, rs)
        solution = circuit.solve()
        assert solution.sink_heat() == pytest.approx(
            block_power.total_heat(block_stack), rel=1e-9
        )

    def test_top_plane_hottest(self, block_stack, block_tsv, block_power):
        result = ModelB(100).solve(block_stack, block_tsv, block_power)
        assert result.max_rise == pytest.approx(result.plane_rises[-1], rel=1e-6)

    def test_uniform_scheme_close_to_paper_scheme(
        self, block_stack, block_tsv, block_power
    ):
        paper = ModelB(100).solve(block_stack, block_tsv, block_power).max_rise
        uniform = ModelB(100, scheme="uniform").solve(
            block_stack, block_tsv, block_power
        ).max_rise
        assert uniform == pytest.approx(paper, rel=0.10)

    def test_cluster_support(self, thin_stack, block_power):
        via = paper_tsv(radius=um(10), liner_thickness=um(1))
        rises = [
            ModelB(50).solve(thin_stack, TSVCluster(via, n), block_power).max_rise
            for n in (1, 4, 16)
        ]
        assert rises == sorted(rises, reverse=True)

    def test_explicit_scheme_plane_count_checked(
        self, block_stack, block_tsv, block_power
    ):
        model = ModelB(SegmentScheme((5, 50)))
        with pytest.raises(ValidationError):
            model.solve(block_stack, block_tsv, block_power)

    def test_invalid_scheme_name(self):
        with pytest.raises(ValidationError):
            ModelB(10, scheme="magic")

    def test_name_includes_segments(self):
        assert ModelB(250).name == "model_b(250)"

    def test_metadata(self, block_stack, block_tsv, block_power):
        result = ModelB(20).solve(block_stack, block_tsv, block_power)
        assert result.metadata["plane_segments"] == (2, 20, 20)
        assert result.metadata["scheme"] == "paper"

    def test_ground_not_in_temperatures(self, block_stack, block_tsv, block_power):
        result = ModelB(10).solve(block_stack, block_tsv, block_power)
        assert GROUND not in result.node_temperatures
