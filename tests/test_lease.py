"""Lease protocol races and the sharded store layout.

Two :class:`LeaseManager` drivers on one store stand in for two fleet
workers: claim conflicts, renewals, expiry, steals of stale and corrupt
claims, and the fencing-token guard that stops a zombie holder from
publishing over its usurper.  The store half covers the sharded layout's
transparent legacy (flat) read-back and the ``migrate`` sweep.
"""

import json
import time

import pytest

from repro import perf
from repro.errors import LeaseLostError, ValidationError
from repro.perf import counter
from repro.perf.retry import NodeFailure
from repro.scenarios import RunStore
from repro.scenarios.lease import Lease, LeaseManager
from repro.scenarios.store import shard_prefix


@pytest.fixture
def store(tmp_path):
    perf.reset()
    return RunStore(tmp_path / "store")


def manager(store, owner, ttl_s=30.0):
    return LeaseManager(store, owner=owner, ttl_s=ttl_s)


KEY = "deadbeef" * 8


class TestLeaseProtocol:
    def test_claim_is_exclusive_between_drivers(self, store):
        w1, w2 = manager(store, "w1"), manager(store, "w2")
        assert w1.acquire(KEY)
        assert not w2.acquire(KEY)
        assert counter("lease_conflicts") == 1
        # the claim file lives in the sharded leases space
        claim = store.leases / shard_prefix(KEY) / f"{KEY}.claim"
        assert claim.exists()
        payload = json.loads(claim.read_text())
        assert payload["owner"] == "w1"
        # the wall-clock twin of the monotonic deadline rides along for
        # offline tooling (fsck after a reboot / on a foreign host)
        assert payload["deadline_unix"] == pytest.approx(
            time.time() + 30.0, abs=5.0
        )

    def test_renewal_refreshes_the_wall_clock_deadline(self, store):
        w1 = manager(store, "w1")
        assert w1.acquire(KEY)
        first = w1.peek(KEY).deadline_unix
        assert first > 0.0
        assert w1.renew(KEY)
        assert w1.peek(KEY).deadline_unix >= first
        # legacy claims without the field parse with the 0.0 sentinel
        legacy = dict(w1.peek(KEY).to_payload())
        legacy.pop("deadline_unix")
        assert Lease.from_payload(legacy).deadline_unix == 0.0

    def test_reacquire_is_reentrant_and_renews(self, store):
        w1 = manager(store, "w1")
        assert w1.acquire(KEY)
        first_deadline = w1.peek(KEY).deadline
        assert w1.acquire(KEY)  # same holder: refresh, not a race with self
        assert len(w1.held) == 1
        assert w1.peek(KEY).deadline >= first_deadline
        assert counter("lease_renewals") == 1

    def test_release_frees_the_key_for_a_peer(self, store):
        w1, w2 = manager(store, "w1"), manager(store, "w2")
        assert w1.acquire(KEY)
        w1.release(KEY)
        assert not w1.held
        assert w2.acquire(KEY)

    def test_expired_claim_is_stolen_not_conflicted(self, store):
        w1 = manager(store, "w1", ttl_s=0.05)
        w2 = manager(store, "w2")
        assert w1.acquire(KEY)
        time.sleep(0.06)
        assert w2.acquire(KEY)
        assert counter("lease_steals") == 1
        assert w2.peek(KEY).owner == "w2"

    def test_stale_holder_cannot_renew_or_release_over_usurper(self, store):
        w1 = manager(store, "w1", ttl_s=0.05)
        w2 = manager(store, "w2")
        assert w1.acquire(KEY)
        time.sleep(0.06)
        assert w2.acquire(KEY)
        assert not w1.renew(KEY)
        assert KEY not in w1.held
        assert counter("lease_lost") == 1
        # release by the old holder is a no-op on the usurper's claim
        w1.held[KEY] = 123  # resurrect the zombie's bookkeeping
        w1.release(KEY)
        assert w2.peek(KEY).owner == "w2"

    def test_zombie_write_guard_raises_after_steal(self, store):
        w1 = manager(store, "w1", ttl_s=0.05)
        w2 = manager(store, "w2")
        assert w1.acquire(KEY)
        time.sleep(0.06)
        assert w2.acquire(KEY)
        with pytest.raises(LeaseLostError):
            w1.check(KEY)
        # the usurper's own guard still passes
        w2.check(KEY)

    def test_fencing_token_rejects_same_owner_stale_claim(self, store):
        # even with the owner id matching, an outdated fencing token is
        # rejected: a zombie that somehow re-reads a newer claim written
        # under its own name (e.g. after a restart reusing the owner id)
        # must not publish with its old token
        w1 = manager(store, "w1")
        assert w1.acquire(KEY)
        claim_path = store.leases / shard_prefix(KEY) / f"{KEY}.claim"
        newer = Lease(
            key=KEY,
            owner="w1",
            token=w1.held[KEY] + 1,
            deadline=time.monotonic() + 30.0,
            ttl_s=30.0,
        )
        claim_path.write_text(json.dumps(newer.to_payload()))
        with pytest.raises(LeaseLostError):
            w1.check(KEY)
        assert counter("lease_lost") == 1

    def test_corrupt_claim_heals_by_steal(self, store):
        w2 = manager(store, "w2")
        claim_path = store.leases / shard_prefix(KEY) / f"{KEY}.claim"
        claim_path.parent.mkdir(exist_ok=True)
        claim_path.write_text('{"torn')  # a worker died mid-write
        assert w2.peek(KEY) is None
        assert w2.acquire(KEY)
        assert counter("lease_steals") == 1
        assert w2.peek(KEY).owner == "w2"

    def test_renew_refuses_an_already_expired_claim(self, store):
        w1 = manager(store, "w1", ttl_s=0.05)
        assert w1.acquire(KEY)
        time.sleep(0.06)
        # a stealer may own the name the moment the deadline passed; the
        # old holder must treat its own expired claim as lost
        assert not w1.renew(KEY)
        assert KEY not in w1.held

    def test_acquire_many_reports_only_wins(self, store):
        w1, w2 = manager(store, "w1"), manager(store, "w2")
        keys = [f"{i:02x}" * 32 for i in range(4)]
        assert w1.acquire(keys[1])
        assert w2.acquire_many(keys) == [keys[0], keys[2], keys[3]]

    def test_ttl_must_be_positive(self, store):
        with pytest.raises(ValueError, match="ttl_s"):
            LeaseManager(store, ttl_s=0.0)

    def test_concurrent_steal_of_one_stale_claim_has_one_winner(self, store):
        # both drivers see the same expired claim; the rename-tombstone
        # dance lets exactly one of them through
        w0 = manager(store, "w0", ttl_s=0.05)
        assert w0.acquire(KEY)
        time.sleep(0.06)
        w1, w2 = manager(store, "w1"), manager(store, "w2")
        wins = [w.acquire(KEY) for w in (w1, w2)]
        assert wins == [True, False]
        assert counter("lease_steals") == 1


class TestShardedLayout:
    def test_writes_land_sharded(self, store):
        store.put_point(KEY, {"x": 1})
        assert (store.points / shard_prefix(KEY) / f"{KEY}.json").exists()

    def test_legacy_flat_points_read_back(self, store):
        legacy = store.points / f"{KEY}.json"
        legacy.write_text(json.dumps({"x": 41}))
        assert store.get_point(KEY) == {"x": 41}
        # a rewrite lands sharded and retires the flat twin
        store.put_point(KEY, {"x": 42})
        assert not legacy.exists()
        assert store.get_point(KEY) == {"x": 42}
        assert KEY in store.point_keys()

    def test_legacy_flat_runs_read_back(self, store, tmp_path):
        from repro.scenarios import SCENARIOS

        spec = SCENARIOS.get("fig7").resolved(fast=True)
        key = spec.content_hash()
        store.put(key, {"kind": "sweep"}, spec)
        # rewrite history: flatten the object like a pre-shard store
        sharded = store.objects / shard_prefix(key) / f"{key}.json"
        flat = store.objects / f"{key}.json"
        flat.write_text(sharded.read_text())
        sharded.unlink()
        reopened = RunStore(store.root)
        assert reopened.get(key) == {"kind": "sweep"}

    def test_migrate_moves_flat_artifacts_and_is_idempotent(self, store):
        from repro.scenarios import SCENARIOS

        spec = SCENARIOS.get("fig7").resolved(fast=True)
        run_key = spec.content_hash()
        store.put(run_key, {"kind": "sweep"}, spec)
        # flatten every space the way a legacy store laid them out
        for space, key, suffix, text in (
            (store.objects, run_key, ".json", None),
            (store.points, KEY, ".json", json.dumps({"x": 1})),
            (store.failures, "ab" * 32, ".json", None),
            (store.leases, "cd" * 32, ".claim", json.dumps({"torn": 1})),
        ):
            if text is None and suffix == ".json" and space is store.objects:
                sharded = space / shard_prefix(key) / f"{key}{suffix}"
                (space / f"{key}{suffix}").write_text(sharded.read_text())
                sharded.unlink()
                continue
            if space is store.failures:
                failure = NodeFailure(
                    key=key, kind="solve", error_class="SolverError",
                    message="m", traceback_digest="d", attempts=1,
                )
                (space / f"{key}{suffix}").write_text(
                    json.dumps(failure.to_payload())
                )
                continue
            (space / f"{key}{suffix}").write_text(text)

        migrated = RunStore(store.root)
        moved = migrated.migrate()
        assert moved == {
            "objects": 1, "points": 1, "failures": 1, "blame": 0, "leases": 1,
        }
        assert migrated.get(run_key) == {"kind": "sweep"}
        assert migrated.get_point(KEY) == {"x": 1}
        assert migrated.get_failure("ab" * 32) is not None
        entry = migrated.manifest["runs"][run_key]
        assert entry["path"].startswith(f"objects/{shard_prefix(run_key)}/")
        # idempotent: nothing flat remains
        assert RunStore(store.root).migrate() == {
            "objects": 0, "points": 0, "failures": 0, "blame": 0, "leases": 0,
        }

    def test_short_keys_pad_into_a_distinct_shard(self, store):
        store.put_point("a", {"v": 1})
        assert shard_prefix("a") == "a_"
        assert store.get_point("a") == {"v": 1}


class TestLaggyFilesystem:
    """The steal dance under :mod:`repro.fsshim`'s laggy renames.

    The shim injects deterministic sleeps before every ``os.replace`` /
    ``os.rename`` / ``os.link``, widening exactly the windows — between
    reading an expired claim and tombstoning it, between tombstoning and
    re-linking — where NFS-grade latency could let two workers disagree
    about who stole a lease.
    """

    def test_shim_installs_and_uninstalls_cleanly(self):
        import os as os_mod

        from repro import fsshim

        originals = (os_mod.replace, os_mod.rename, os_mod.link)
        with fsshim.installed(0.0, seed=1):
            assert fsshim.active()
            assert os_mod.replace is not originals[0]
        assert not fsshim.active()
        assert (os_mod.replace, os_mod.rename, os_mod.link) == originals

    def test_expired_claim_steal_survives_laggy_renames(self, store):
        from repro import fsshim

        w1 = manager(store, "w1", ttl_s=0.05)
        w2 = manager(store, "w2")
        assert w1.acquire(KEY)
        time.sleep(0.06)
        with fsshim.installed(0.02, seed=3):
            assert w2.acquire(KEY)
        assert counter("lease_steals") == 1
        assert w2.peek(KEY).owner == "w2"
        # the tombstone dance never leaves the claim itself torn
        claim = store.leases / shard_prefix(KEY) / f"{KEY}.claim"
        json.loads(claim.read_text())

    def test_zombie_is_fenced_out_despite_slow_commit(self, store):
        from repro import fsshim

        w1 = manager(store, "w1", ttl_s=0.05)
        w2 = manager(store, "w2")
        assert w1.acquire(KEY)
        time.sleep(0.06)
        with fsshim.installed(0.02, seed=5):
            assert w2.acquire(KEY)
            # the usurped holder discovers the loss at its write guard no
            # matter how slowly the steal's renames landed
            with pytest.raises(LeaseLostError):
                w1.check(KEY)
            w2.check(KEY)

    def test_concurrent_steal_race_has_exactly_one_winner(self, store):
        import threading

        from repro import fsshim

        w1 = manager(store, "w1", ttl_s=0.05)
        assert w1.acquire(KEY)
        time.sleep(0.06)
        contenders = [manager(store, f"s{i}") for i in range(3)]
        results = {}
        with fsshim.installed(0.02, seed=7):
            threads = [
                threading.Thread(
                    target=lambda m: results.__setitem__(m.owner, m.acquire(KEY)),
                    args=(m,),
                )
                for m in contenders
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert sum(results.values()) == 1
        (winner,) = [owner for owner, won in results.items() if won]
        final = manager(store, "observer").peek(KEY)
        assert final.owner == winner
        # and the loser(s) recorded a conflict or lost the tombstone race;
        # either way nobody tore the claim file
        claim = store.leases / shard_prefix(KEY) / f"{KEY}.claim"
        json.loads(claim.read_text())
