"""Error metrics, crossovers, monotonicity."""

import pytest

from repro.analysis import (
    crossover_points,
    is_monotonic,
    relative_errors,
    series_errors,
)
from repro.errors import ValidationError


class TestSeriesErrors:
    def test_exact_match(self):
        err = series_errors([1.0, 2.0], [1.0, 2.0])
        assert err.max_error == 0.0
        assert err.avg_error == 0.0

    def test_known_values(self):
        # +10% and -20% errors
        err = series_errors([1.1, 0.8], [1.0, 1.0])
        assert err.max_error == pytest.approx(0.2)
        assert err.avg_error == pytest.approx(0.15)
        assert err.signed_mean == pytest.approx(-0.05)

    def test_rms(self):
        err = series_errors([1.1, 0.9], [1.0, 1.0])
        assert err.rms_error == pytest.approx(0.1)

    def test_percentages(self):
        pct = series_errors([1.1], [1.0]).as_percentages()
        assert pct["max_%"] == pytest.approx(10.0)

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            series_errors([1.0], [1.0, 2.0])

    def test_zero_reference_rejected(self):
        with pytest.raises(ValidationError):
            series_errors([1.0], [0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            relative_errors([], [])


class TestCrossovers:
    def test_v_shape_minimum_found(self):
        xs = [5.0, 10.0, 20.0, 40.0, 80.0]
        ys = [30.0, 25.0, 22.0, 24.0, 30.0]
        points = crossover_points(xs, ys)
        assert len(points) == 1
        assert 10.0 < points[0] < 40.0

    def test_monotonic_has_none(self):
        assert crossover_points([1, 2, 3, 4], [1.0, 2.0, 3.0, 4.0]) == []

    def test_flat_segment_reported(self):
        points = crossover_points([1, 2, 3], [1.0, 1.0, 2.0])
        assert points == [2.0]

    def test_too_short_rejected(self):
        with pytest.raises(ValidationError):
            crossover_points([1, 2], [1.0, 2.0])


class TestMonotonic:
    def test_increasing(self):
        assert is_monotonic([1.0, 2.0, 2.0, 3.0], increasing=True)
        assert not is_monotonic([1.0, 0.5], increasing=True)

    def test_decreasing(self):
        assert is_monotonic([3.0, 2.0, 2.0], increasing=False)
        assert not is_monotonic([1.0, 2.0], increasing=False)

    def test_short_rejected(self):
        with pytest.raises(ValidationError):
            is_monotonic([1.0], increasing=True)
