"""Cartesian FVM solver: analytic checks and conservation."""

import numpy as np
import pytest

from repro.errors import SolverError, ValidationError
from repro.fem import solve_cartesian


def grids(n=4, nz=40, side=5e-4, height=1e-3):
    x = np.linspace(0.0, side, n + 1)
    y = np.linspace(0.0, side, n + 1)
    z = np.linspace(0.0, height, nz + 1)
    return x, y, z


class TestAnalytic:
    def test_uniform_slab_parabola(self):
        k0, q0, height = 10.0, 1e9, 1e-3
        x, y, z = grids(nz=80)
        k = np.full((4, 4, 80), k0)
        q = np.full((4, 4, 80), q0)
        field = solve_cartesian(x, y, z, k, q)
        zc = 0.5 * (z[:-1] + z[1:])
        expected = q0 / k0 * (height * zc - zc**2 / 2.0)
        top = q0 * height**2 / (2.0 * k0)
        assert np.allclose(field.temperatures[0, 0], expected, atol=5e-3 * top)

    def test_lateral_symmetry(self):
        x, y, z = grids(n=6)
        k = np.full((6, 6, 40), 3.0)
        q = np.zeros((6, 6, 40))
        q[2:4, 2:4, -1] = 1e9  # centred source
        field = solve_cartesian(x, y, z, k, q)
        t = field.temperatures
        assert np.allclose(t, t[::-1, :, :], rtol=1e-10)
        assert np.allclose(t, t[:, ::-1, :], rtol=1e-10)
        assert np.allclose(t, np.transpose(t, (1, 0, 2)), rtol=1e-10)

    def test_energy_balance(self):
        x, y, z = grids(n=5, nz=20)
        rng = np.random.default_rng(3)
        k = 1.0 + 5.0 * rng.random((5, 5, 20))
        q = 1e8 * rng.random((5, 5, 20))
        field = solve_cartesian(x, y, z, k, q)
        area = np.outer(np.diff(x), np.diff(y))
        dz0 = z[1] - z[0]
        flux_out = np.sum(area * k[:, :, 0] * field.temperatures[:, :, 0] / (dz0 / 2.0))
        volume = (
            np.diff(x)[:, None, None]
            * np.diff(y)[None, :, None]
            * np.diff(z)[None, None, :]
        )
        assert flux_out == pytest.approx(np.sum(q * volume), rel=1e-8)

    def test_matches_axisym_for_1d_problem(self):
        from repro.fem import solve_axisymmetric

        x, y, z = grids(nz=50)
        k3 = np.full((4, 4, 50), 7.0)
        q3 = np.full((4, 4, 50), 2e8)
        cart = solve_cartesian(x, y, z, k3, q3)
        r = np.linspace(0.0, 3e-4, 5)
        axi = solve_axisymmetric(r, z, np.full((4, 50), 7.0), np.full((4, 50), 2e8))
        assert cart.max_rise == pytest.approx(axi.max_rise, rel=1e-10)


class TestAccessors:
    def test_top_map_shape(self):
        x, y, z = grids(n=5)
        field = solve_cartesian(x, y, z, np.full((5, 5, 40), 1.0), np.zeros((5, 5, 40)))
        assert field.top_map().shape == (5, 5)

    def test_max_rise_in_band(self):
        x, y, z = grids(nz=10, height=1.0)
        k = np.full((4, 4, 10), 1.0)
        q = np.full((4, 4, 10), 1.0)
        field = solve_cartesian(x, y, z, k, q)
        assert field.max_rise_in_band(0.9, 1.0) == pytest.approx(field.max_rise)

    def test_band_empty(self):
        x, y, z = grids(height=1.0)
        field = solve_cartesian(x, y, z, np.full((4, 4, 40), 1.0), np.zeros((4, 4, 40)))
        with pytest.raises(ValidationError):
            field.max_rise_in_band(5.0, 6.0)


class TestValidation:
    def test_shape_mismatch(self):
        x, y, z = grids()
        with pytest.raises(ValidationError):
            solve_cartesian(x, y, z, np.ones((2, 2, 2)), np.zeros((2, 2, 2)))

    def test_non_positive_conductivity(self):
        x, y, z = grids()
        k = np.full((4, 4, 40), 1.0)
        k[1, 1, 1] = -1.0
        with pytest.raises(SolverError):
            solve_cartesian(x, y, z, k, np.zeros((4, 4, 40)))
