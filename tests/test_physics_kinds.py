"""Physics kinds: transient/nonlinear specs, plans, scheduling and storage."""

import json

import numpy as np
import pytest

from repro import perf
from repro.__main__ import main
from repro.core.factory import make_model
from repro.core.nonlinear import NonlinearResult, NonlinearSolver
from repro.errors import ValidationError
from repro.network import (
    TransientResult,
    pulse_train_scales,
    step_response,
    transient_lhs,
)
from repro.network.solve import factorized_solver
from repro.scenarios import (
    SCENARIOS,
    AxisSpec,
    NonlinearParams,
    RunStore,
    ScenarioSpec,
    TransientParams,
    build_transient_circuit,
    compile_plan,
    execute_plan,
    run_batch,
    run_nonlinear_spec_direct,
    run_scenario,
    run_transient_spec_direct,
)
from repro.scenarios.physics import (
    NonlinearExperiment,
    TransientExperiment,
    default_observed_nodes,
)
from repro.scenarios.plan import (
    NonlinearNode,
    SolveNode,
    TransientNode,
    scenario_axis_points,
)


def transient_spec(scenario_id="phys_transient", **overrides):
    kwargs = dict(
        scenario_id=scenario_id,
        title="Transient test",
        kind="transient",
        models=("a:paper",),
        calibrate=False,
        transient=TransientParams(t_end_s=1e-3, n_steps=40),
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


def nonlinear_spec(scenario_id="phys_nonlinear", **overrides):
    kwargs = dict(
        scenario_id=scenario_id,
        title="Nonlinear test",
        kind="nonlinear",
        models=("a:paper",),
        calibrate=False,
        nonlinear=NonlinearParams(tolerance=1e-8),
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


def nonlinear_payload_content(payload):
    """The deterministic slice of a nonlinear payload (solve_time dropped)."""
    return {
        "series": payload["series"],
        "x_values": payload["x_values"],
        "results": {
            name: [
                (
                    r["history"],
                    r["iterations"],
                    r["result"]["max_rise"],
                    r["result"]["plane_rises"],
                )
                for r in results
            ]
            for name, results in payload["results"].items()
        },
    }


# ---------------------------------------------------------------------------
# spec validation and round-trip
# ---------------------------------------------------------------------------
class TestSpecValidation:
    def test_transient_requires_params(self):
        with pytest.raises(ValidationError, match="transient"):
            ScenarioSpec(
                scenario_id="x", title="t", kind="transient",
                models=("a:paper",), calibrate=False,
            )

    def test_nonlinear_requires_params(self):
        with pytest.raises(ValidationError, match="nonlinear"):
            ScenarioSpec(
                scenario_id="x", title="t", kind="nonlinear",
                models=("a:paper",), calibrate=False,
            )

    def test_physics_kinds_reject_calibration(self):
        with pytest.raises(ValidationError, match="calibrate"):
            transient_spec(calibrate=True)
        with pytest.raises(ValidationError, match="calibrate"):
            nonlinear_spec(calibrate=True)

    def test_transient_models_must_be_model_a(self):
        with pytest.raises(ValidationError, match="Model A"):
            transient_spec(models=("b:100",))

    def test_params_rejected_on_wrong_kind(self):
        with pytest.raises(ValidationError, match="only apply"):
            ScenarioSpec(
                scenario_id="x", title="t",
                axis=AxisSpec(parameter="radius_um", values=(5.0,)),
                transient=TransientParams(t_end_s=1e-3),
            )
        with pytest.raises(ValidationError, match="only apply"):
            ScenarioSpec(
                scenario_id="x", title="t",
                axis=AxisSpec(parameter="radius_um", values=(5.0,)),
                nonlinear=NonlinearParams(),
            )

    def test_postprocess_rejected_on_physics_kinds(self):
        with pytest.raises(ValidationError, match="postprocess"):
            transient_spec(postprocess="table1")

    def test_transient_param_bounds(self):
        with pytest.raises(ValidationError):
            TransientParams(t_end_s=0.0)
        with pytest.raises(ValidationError):
            TransientParams(t_end_s=1e-3, n_steps=0)
        with pytest.raises(ValidationError):
            TransientParams(t_end_s=1e-3, capacitance="per_resistor")
        with pytest.raises(ValidationError):
            TransientParams(t_end_s=1e-3, power_scale=0.0)
        with pytest.raises(ValidationError):
            TransientParams(t_end_s=1e-3, observe=("bulk1", ""))

    def test_nonlinear_param_bounds(self):
        with pytest.raises(ValidationError):
            NonlinearParams(tolerance=0.0)
        with pytest.raises(ValidationError):
            NonlinearParams(max_iterations=0)
        with pytest.raises(ValidationError):
            NonlinearParams(relaxation=0.0)
        with pytest.raises(ValidationError):
            NonlinearParams(relaxation=1.5)

    def test_unknown_param_fields_rejected(self):
        with pytest.raises(ValidationError, match="unknown"):
            TransientParams.from_dict({"t_end_s": 1e-3, "dt": 1.0})
        with pytest.raises(ValidationError, match="unknown"):
            NonlinearParams.from_dict({"tol": 1.0})


class TestSpecRoundTrip:
    def test_transient_dict_round_trip(self):
        spec = transient_spec(
            axis=AxisSpec(parameter="radius_um", values=(2.0, 5.0)),
            transient=TransientParams(
                t_end_s=2e-3, n_steps=100, capacitance="substrate_ild",
                power_scale=3.0, observe=("bulk3",),
            ),
        )
        restored = ScenarioSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.content_hash() == spec.content_hash()

    def test_nonlinear_dict_round_trip(self):
        spec = nonlinear_spec(
            nonlinear=NonlinearParams(
                tolerance=1e-9, max_iterations=50, relaxation=0.7, slope_scale=2.0
            ),
        )
        restored = ScenarioSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.content_hash() == spec.content_hash()

    def test_file_round_trip(self, tmp_path):
        spec = transient_spec()
        path = spec.dump(tmp_path / "t.json")
        assert ScenarioSpec.load(path) == spec

    def test_content_hash_tracks_physics_params(self):
        base = transient_spec()
        changed = transient_spec(
            transient=TransientParams(t_end_s=1e-3, n_steps=41)
        )
        assert base.content_hash() != changed.content_hash()
        assert nonlinear_spec().content_hash() != nonlinear_spec(
            nonlinear=NonlinearParams(tolerance=1e-8, slope_scale=2.0)
        ).content_hash()

    def test_builtin_physics_scenarios_registered(self):
        assert "transient_spike" in SCENARIOS
        assert "nonlinear_hotspot" in SCENARIOS
        assert SCENARIOS.get("transient_spike").kind == "transient"
        assert SCENARIOS.get("nonlinear_hotspot").kind == "nonlinear"


def pulse_params(**overrides):
    kwargs = dict(
        t_end_s=1e-3, n_steps=40, drive="pulse_train", period_s=2e-4, duty=0.5
    )
    kwargs.update(overrides)
    return TransientParams(**kwargs)


class TestDriveShapes:
    def test_drive_grammar_bounds(self):
        with pytest.raises(ValidationError, match="drive"):
            TransientParams(t_end_s=1e-3, drive="sawtooth")
        with pytest.raises(ValidationError, match="period_s and duty"):
            TransientParams(t_end_s=1e-3, drive="pulse_train", period_s=1e-4)
        with pytest.raises(ValidationError, match="period_s and duty"):
            TransientParams(t_end_s=1e-3, drive="pulse_train", duty=0.5)
        with pytest.raises(ValidationError, match="period_s"):
            pulse_params(period_s=0.0)
        with pytest.raises(ValidationError, match="duty"):
            pulse_params(duty=0.0)
        with pytest.raises(ValidationError, match="duty"):
            pulse_params(duty=1.5)
        with pytest.raises(ValidationError, match="pulse_train"):
            TransientParams(t_end_s=1e-3, period_s=1e-4)
        with pytest.raises(ValidationError, match="pulse_train"):
            TransientParams(t_end_s=1e-3, duty=0.5)

    def test_step_spec_serialization_unchanged(self):
        # the grammar extension must not disturb existing specs: a step
        # drive serializes without the drive keys, so stored content
        # hashes from before the extension still match
        data = TransientParams(t_end_s=1e-3, n_steps=40).to_dict()
        assert "drive" not in data
        assert "period_s" not in data
        assert TransientParams.from_dict(data).drive == "step"

    def test_pulse_train_dict_round_trip(self):
        spec = transient_spec(transient=pulse_params())
        restored = ScenarioSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.content_hash() == spec.content_hash()
        assert spec.content_hash() != transient_spec().content_hash()

    def test_pulse_train_scales_square_wave(self):
        scales = pulse_train_scales(8.0, 8, 4.0, 0.5)
        assert np.array_equal(
            scales, [1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0]
        )
        with pytest.raises(ValidationError, match="duty"):
            pulse_train_scales(8.0, 8, 4.0, 1.5)

    def test_duty_one_pulse_is_bitwise_step_response(self):
        step = run_transient_spec_direct(transient_spec())
        pulse = run_transient_spec_direct(
            transient_spec(transient=pulse_params(duty=1.0, period_s=1e-3))
        )
        for name, trajectories in step.results.items():
            for solo, driven in zip(trajectories, pulse.results[name]):
                assert np.array_equal(solo.temperatures, driven.temperatures)

    def test_drive_rejects_wrong_length_and_negative_scales(self):
        spec = transient_spec()
        params = spec.transient
        stack, via, power = scenario_axis_points(spec)[2][0]
        circuit = build_transient_circuit(
            make_model("a:paper"), stack, via, power, params.capacitance
        )
        with pytest.raises(ValidationError, match="one scale per step"):
            step_response(
                circuit, t_end=1e-3, n_steps=40, drive=np.ones(39)
            )
        with pytest.raises(ValidationError, match="finite"):
            step_response(
                circuit, t_end=1e-3, n_steps=40, drive=np.full(40, -1.0)
            )

    def test_pulse_planned_equals_direct(self):
        spec = transient_spec(
            scenario_id="pulse_planned",
            axis=AxisSpec(parameter="radius_um", values=(3.0, 6.0)),
            transient=pulse_params(),
        ).resolved()
        direct = run_transient_spec_direct(spec)
        perf.reset()
        run = run_scenario(spec)
        assert run.result.to_payload() == direct.to_payload()

    def test_pulse_grouped_and_ungrouped_identical(self):
        specs = [
            transient_spec(
                scenario_id=f"pulse_g_{s}",
                transient=pulse_params(power_scale=s),
            ).resolved()
            for s in (1.0, 2.0)
        ]
        perf.reset()
        grouped = execute_plan(compile_plan(specs))
        assert perf.stats()["counters"]["plan_matrix_groups"] == 1
        perf.reset()
        ungrouped = execute_plan(compile_plan(specs), group_matrices=False)
        assert grouped.results.keys() == ungrouped.results.keys()
        for key in grouped.results:
            assert np.array_equal(
                grouped.results[key].temperatures,
                ungrouped.results[key].temperatures,
            )

    def test_off_phase_cools_and_peak_stays_below_step(self):
        # 40 steps of 25µs; period 200µs, duty 0.5 → 4 steps on, 4 off
        step = run_transient_spec_direct(transient_spec())
        pulse = run_transient_spec_direct(
            transient_spec(transient=pulse_params(period_s=2e-4, duty=0.5))
        )
        for name, trajectories in pulse.results.items():
            for driven, solo in zip(trajectories, step.results[name]):
                trace = driven.temperatures.max(axis=1)
                # cooling during the first off-phase (steps 5..8)
                assert trace[8] < trace[4]
                # and re-heating once the drive returns (steps 9..12)
                assert trace[12] > trace[8]
                assert driven.peak_rise <= solo.peak_rise


# ---------------------------------------------------------------------------
# solver-module round-trips and refactor hooks
# ---------------------------------------------------------------------------
class TestResultPayloads:
    def _trajectory(self):
        spec = transient_spec()
        _, _, points = scenario_axis_points(spec)
        stack, via, power = points[0]
        circuit = build_transient_circuit(
            make_model("a:paper"), stack, via, power
        )
        return step_response(circuit, t_end=1e-3, n_steps=20)

    def test_transient_result_round_trip_exact(self):
        result = self._trajectory()
        restored = TransientResult.from_payload(
            json.loads(json.dumps(result.to_payload()))
        )
        assert np.array_equal(restored.times, result.times)
        assert np.array_equal(restored.temperatures, result.temperatures)
        assert restored.nodes == result.nodes

    def test_transient_payload_rejects_tuple_nodes(self):
        result = self._trajectory()
        bad = TransientResult(
            times=result.times, temperatures=result.temperatures,
            nodes=[("a", 1)] * len(result.nodes),
        )
        with pytest.raises(ValidationError):
            bad.to_payload()

    def test_observed_subset_is_exact(self):
        result = self._trajectory()
        sub = result.observed(["bulk2", "bulk1"])
        assert sub.nodes == ["bulk2", "bulk1"]
        assert np.array_equal(sub.trace("bulk2"), result.trace("bulk2"))
        with pytest.raises(ValidationError):
            result.observed(["no_such_node"])

    def test_nonlinear_result_round_trip_exact(self):
        spec = nonlinear_spec()
        _, _, points = scenario_axis_points(spec)
        result = NonlinearSolver(make_model("a:paper"), tolerance=1e-8).solve(
            *points[0]
        )
        restored = NonlinearResult.from_payload(
            json.loads(json.dumps(result.to_payload()))
        )
        assert restored.history == result.history
        assert restored.iterations == result.iterations
        assert restored.max_rise == result.max_rise
        assert restored.result.plane_rises == result.result.plane_rises

    def test_step_solver_hook_is_bit_identical(self):
        spec = transient_spec()
        _, _, points = scenario_axis_points(spec)
        stack, via, power = points[0]
        circuit = build_transient_circuit(make_model("a:paper"), stack, via, power)
        plain = step_response(circuit, t_end=1e-3, n_steps=20)
        solver = factorized_solver(transient_lhs(circuit, 1e-3 / 20))
        seeded = step_response(
            circuit, t_end=1e-3, n_steps=20, step_solver=solver
        )
        assert np.array_equal(plain.temperatures, seeded.temperatures)

    def test_nonlinear_initial_seed_is_bit_identical(self):
        spec = nonlinear_spec()
        _, _, points = scenario_axis_points(spec)
        stack, via, power = points[0]
        model = make_model("a:paper")
        solver = NonlinearSolver(model, tolerance=1e-8)
        plain = solver.solve(stack, via, power)
        seeded = solver.solve(
            stack, via, power, initial=model.solve(stack, via, power)
        )
        assert seeded.history == plain.history
        assert seeded.result.plane_rises == plain.result.plane_rises

    def test_slope_scale_zero_recovers_linear(self):
        spec = nonlinear_spec()
        _, _, points = scenario_axis_points(spec)
        result = NonlinearSolver(
            make_model("a:paper"), tolerance=1e-8, slope_scale=0.0
        ).solve(*points[0])
        assert result.max_rise == result.linear_rise
        assert result.iterations == 1

    def test_slope_scale_strengthens_feedback(self):
        spec = nonlinear_spec()
        _, _, points = scenario_axis_points(spec)
        mild = NonlinearSolver(make_model("a:paper"), tolerance=1e-8).solve(
            *points[0]
        )
        strong = NonlinearSolver(
            make_model("a:paper"), tolerance=1e-8, slope_scale=3.0
        ).solve(*points[0])
        # silicon k falls with T, so stronger slopes mean hotter stacks
        assert strong.max_rise > mild.max_rise > mild.linear_rise


# ---------------------------------------------------------------------------
# plan compilation
# ---------------------------------------------------------------------------
class TestCompile:
    def test_transient_nodes_and_assembly(self):
        spec = transient_spec(
            axis=AxisSpec(parameter="radius_um", values=(3.0, 6.0))
        ).resolved()
        plan = compile_plan([spec])
        assert plan.stats["transient_nodes"] == 2
        assert plan.stats["solve_nodes"] == 0
        nodes = [n for n in plan.nodes.values() if isinstance(n, TransientNode)]
        # different radii -> different networks -> different assembly keys
        assert len({n.assembly_key for n in nodes}) == 2
        assert all(n.deps == () for n in nodes)
        entry = plan.scenarios[0]
        assert entry.physics is not None and entry.physics.kind == "transient"
        assert entry.physics.model_names == ("transient(model_a)",)

    def test_transient_drive_levels_share_assembly(self):
        specs = [
            transient_spec(
                scenario_id=f"drive_{s}",
                transient=TransientParams(t_end_s=1e-3, n_steps=40, power_scale=s),
            ).resolved()
            for s in (1.0, 2.0)
        ]
        plan = compile_plan(specs)
        nodes = [n for n in plan.nodes.values() if isinstance(n, TransientNode)]
        assert len(nodes) == 2  # different drives: distinct nodes...
        assert len({n.assembly_key for n in nodes}) == 1  # ...same matrix

    def test_nonlinear_nodes_depend_on_linear_baseline(self):
        spec = nonlinear_spec(
            axis=AxisSpec(parameter="power_scale", values=(1.0, 2.0))
        ).resolved()
        plan = compile_plan([spec])
        assert plan.stats["nonlinear_nodes"] == 2
        assert plan.stats["solve_nodes"] == 2  # the linear baselines
        for node in plan.nodes.values():
            if isinstance(node, NonlinearNode):
                assert node.deps == (node.linear,)
                assert isinstance(plan.nodes[node.linear], SolveNode)

    def test_mixed_batch_dedups_linear_baseline_with_steady_sweep(self):
        # the steady sweep solves model_a at the same (stack, via, power)
        # points the nonlinear scenario's baselines need -> shared nodes
        steady = ScenarioSpec(
            scenario_id="steady_share", title="t",
            axis=AxisSpec(parameter="power_scale", values=(1.0, 2.0)),
            models=("a:paper",), reference="fem:coarse", calibrate=False,
        ).resolved()
        nl = nonlinear_spec(
            axis=AxisSpec(parameter="power_scale", values=(1.0, 2.0))
        ).resolved()
        plan = compile_plan([steady, nl])
        assert plan.stats["nodes_deduped"] == 2  # both baselines shared
        transient = transient_spec().resolved()
        mixed = compile_plan([steady, nl, transient, SCENARIOS.get(
            "case_study").resolved(fast=True, calibrate=False)])
        kinds = {n.kind for n in mixed.nodes.values()}
        assert kinds == {"solve", "nonlinear", "transient", "case_study"}


# ---------------------------------------------------------------------------
# execution: byte-identity, grouping, parallel dispatch
# ---------------------------------------------------------------------------
class TestExecution:
    def test_transient_planned_equals_direct(self):
        spec = SCENARIOS.get("transient_spike").resolved(fast=True)
        direct = run_transient_spec_direct(spec, fast=True)
        perf.reset()
        run = run_scenario("transient_spike", fast=True)
        assert run.result.to_payload() == direct.to_payload()

    def test_nonlinear_planned_equals_direct(self):
        spec = SCENARIOS.get("nonlinear_hotspot").resolved(fast=True)
        direct = run_nonlinear_spec_direct(spec, fast=True)
        perf.reset()
        run = run_scenario("nonlinear_hotspot", fast=True)
        assert nonlinear_payload_content(
            run.result.to_payload()
        ) == nonlinear_payload_content(direct.to_payload())

    def test_grouped_and_ungrouped_transient_identical(self):
        specs = [
            transient_spec(
                scenario_id=f"g_{s}",
                transient=TransientParams(t_end_s=1e-3, n_steps=40, power_scale=s),
            ).resolved()
            for s in (1.0, 2.0, 3.0)
        ]
        perf.reset()
        grouped = execute_plan(compile_plan(specs))
        assert perf.stats()["counters"]["plan_matrix_groups"] == 1
        perf.reset()
        ungrouped = execute_plan(compile_plan(specs), group_matrices=False)
        assert perf.stats()["counters"].get("plan_matrix_groups", 0) == 0
        assert grouped.results.keys() == ungrouped.results.keys()
        for key in grouped.results:
            assert np.array_equal(
                grouped.results[key].temperatures,
                ungrouped.results[key].temperatures,
            )

    def test_parallel_dispatch_identical(self):
        from repro.perf import ParallelExecutor

        spec = transient_spec(
            axis=AxisSpec(parameter="radius_um", values=(3.0, 6.0))
        ).resolved()
        nl = nonlinear_spec(scenario_id="par_nl").resolved()
        perf.reset()
        serial = run_batch([spec, nl])
        perf.reset()
        parallel = run_batch([spec, nl], executor=ParallelExecutor(2))
        assert serial.runs[0].result.to_payload() == (
            parallel.runs[0].result.to_payload()
        )
        assert nonlinear_payload_content(
            serial.runs[1].result.to_payload()
        ) == nonlinear_payload_content(parallel.runs[1].result.to_payload())

    def test_mixed_batch_each_node_solved_once(self):
        steady = ScenarioSpec(
            scenario_id="once_steady", title="t",
            axis=AxisSpec(parameter="power_scale", values=(1.0, 2.0)),
            models=("a:paper",), reference="fem:coarse", calibrate=False,
        )
        nl = nonlinear_spec(
            scenario_id="once_nl",
            axis=AxisSpec(parameter="power_scale", values=(1.0, 2.0)),
        )
        tr = transient_spec(scenario_id="once_tr")
        perf.reset()
        batch = run_batch([steady, nl, tr])
        stats = batch.stats
        assert stats["nodes_deduped"] == 2
        counters = perf.stats()["counters"]
        dispatchable = (
            stats["solve_nodes"]
            + stats["transient_nodes"]
            + stats["nonlinear_nodes"]
        )
        assert counters["plan_point_solves"] == dispatchable
        assert counters["plan_transient_solves"] == stats["transient_nodes"]
        assert counters["plan_nonlinear_solves"] == stats["nonlinear_nodes"]


# ---------------------------------------------------------------------------
# store round-trips and resume
# ---------------------------------------------------------------------------
class TestStoreAndResume:
    def test_experiment_payload_round_trips(self):
        spec = transient_spec().resolved()
        direct = run_transient_spec_direct(spec)
        restored = TransientExperiment.from_payload(
            json.loads(json.dumps(direct.to_payload()))
        )
        assert restored.to_payload() == direct.to_payload()

        nl_direct = run_nonlinear_spec_direct(nonlinear_spec().resolved())
        nl_restored = NonlinearExperiment.from_payload(
            json.loads(json.dumps(nl_direct.to_payload()))
        )
        assert nl_restored.to_payload() == nl_direct.to_payload()

    def test_run_store_hit_reconstructs_kind(self, tmp_path):
        store = RunStore(tmp_path)
        first = run_scenario("transient_spike", fast=True, store=store)
        assert not first.from_store
        again = run_scenario("transient_spike", fast=True, store=store)
        assert again.from_store
        assert isinstance(again.result, TransientExperiment)
        assert again.result.to_payload() == first.result.to_payload()

        nl_first = run_scenario("nonlinear_hotspot", fast=True, store=store)
        nl_again = run_scenario("nonlinear_hotspot", fast=True, store=store)
        assert nl_again.from_store
        assert isinstance(nl_again.result, NonlinearExperiment)
        assert nl_again.result.to_payload() == nl_first.result.to_payload()

    def test_resume_after_killed_transient_batch(self, tmp_path):
        spec = transient_spec(
            axis=AxisSpec(parameter="radius_um", values=(3.0, 5.0, 8.0))
        )
        store = RunStore(tmp_path)

        class Killed(RuntimeError):
            pass

        def kill_after_two(event):
            if event["done"] == 2:
                raise Killed()

        perf.reset()
        with pytest.raises(Killed):
            run_batch([spec], store=store, progress=kill_after_two)
        assert len(store.point_keys()) == 2
        assert len(store) == 0  # no run-level artifact landed

        perf.reset()
        run = run_batch([spec], store=store, resume=True).runs[0]
        counters = perf.stats()["counters"]
        assert counters["point_store_hits"] == 2
        assert counters["plan_point_solves"] == 1  # only the third trajectory
        # the resumed payload is byte-identical to an uninterrupted run
        direct = run_transient_spec_direct(spec.resolved())
        assert run.result.to_payload() == direct.to_payload()

    def test_resume_nonlinear_from_points(self, tmp_path):
        spec = nonlinear_spec()
        store = RunStore(tmp_path)
        run_batch([spec], store=store)
        # drop the run-level artifact, keep the points: recompiles + resumes
        store._read_path(store.objects, spec.resolved().content_hash()).unlink()
        perf.reset()
        run = run_batch([spec], store=store, resume=True).runs[0]
        counters = perf.stats()["counters"]
        assert counters.get("plan_point_solves", 0) == 0
        assert nonlinear_payload_content(
            run.result.to_payload()
        ) == nonlinear_payload_content(
            run_nonlinear_spec_direct(spec.resolved()).to_payload()
        )


# ---------------------------------------------------------------------------
# Model B matrix groups (satellite)
# ---------------------------------------------------------------------------
class TestModelBGroups:
    def test_solve_batch_matches_per_point(self):
        from repro.experiments.params import fig5_config

        cfg = fig5_config(1.0)
        model = make_model("b:50,500,500")
        powers = [cfg.power.scaled(s) for s in (0.5, 1.0, 2.0)]
        batch = model.solve_batch(cfg.stack, cfg.via, powers)
        for result, power in zip(batch, powers):
            single = model.solve(cfg.stack, cfg.via, power)
            assert result.max_rise == single.max_rise
            assert result.plane_rises == single.plane_rises
            assert result.node_temperatures == single.node_temperatures
            assert result.metadata == single.metadata

    def test_power_sweep_rides_grouped_dispatch(self):
        spec = ScenarioSpec(
            scenario_id="b_group", title="t",
            axis=AxisSpec(parameter="power_scale", values=(0.5, 1.0, 1.5)),
            models=("b:20,200,200",), reference="fem:coarse", calibrate=False,
        ).resolved()
        perf.reset()
        grouped = execute_plan(compile_plan([spec]))
        counters = perf.stats()["counters"]
        assert counters["plan_matrix_groups"] >= 1
        perf.reset()
        ungrouped = execute_plan(compile_plan([spec]), group_matrices=False)
        model_b_keys = [
            key
            for key, node in compile_plan([spec]).nodes.items()
            if node.model_name.startswith("model_b")
        ]
        assert model_b_keys
        for key in model_b_keys:
            assert grouped.results[key].max_rise == ungrouped.results[key].max_rise
            assert (
                grouped.results[key].plane_rises
                == ungrouped.results[key].plane_rises
            )


# ---------------------------------------------------------------------------
# CLI (satellite): kind awareness + --progress json
# ---------------------------------------------------------------------------
class TestCLI:
    def test_run_transient_via_cli(self, capsys, tmp_path):
        code = main(
            ["run", "transient_spike", "--fast", "--output-dir", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "transient(model_a)" in out and "t90" in out
        payload = json.loads((tmp_path / "transient_spike.json").read_text())
        assert payload["kind"] == "transient"

    def test_run_nonlinear_via_cli(self, capsys):
        code = main(["run", "nonlinear_hotspot", "--fast"])
        assert code == 0
        assert "nonlinear(model_a)" in capsys.readouterr().out

    def test_progress_json_stream(self, capsys):
        code = main(["run", "transient_spike", "--fast", "--progress", "json"])
        assert code == 0
        err_lines = [
            line
            for line in capsys.readouterr().err.splitlines()
            if line.startswith("{")
        ]
        events = [json.loads(line) for line in err_lines]
        node_events = [e for e in events if e["event"] == "node"]
        assert node_events, "expected one JSON event per completed node"
        for event in node_events:
            assert event["kind"] == "transient"
            assert event["source"] in ("solved", "cache", "store")
            assert event["elapsed_s"] >= 0.0
            assert event["total"] >= event["done"] >= 1
        assert events[-1]["event"] == "done"

    def test_list_shows_kind_column(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "kind" in out
        assert "transient" in out and "nonlinear" in out

    def test_batch_mixed_kinds(self, capsys, tmp_path):
        transient_spec(scenario_id="batch_tr").dump(tmp_path / "a.json")
        nonlinear_spec(scenario_id="batch_nl").dump(tmp_path / "b.json")
        code = main(["batch", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "[batch_tr] solved" in out
        assert "[batch_nl] solved" in out


class TestObservedNodes:
    def test_observe_restricts_stored_trace(self):
        spec = transient_spec(
            transient=TransientParams(
                t_end_s=1e-3, n_steps=40, observe=("bulk3",)
            ),
        )
        run = run_scenario(spec)
        result = run.result.result_at("transient(model_a)", "base")
        assert result.nodes == ["bulk3"]
        # the kept trace is bitwise the full solve's trace of that node
        full_spec = transient_spec(scenario_id="full_obs")
        full = run_scenario(full_spec).result.result_at(
            "transient(model_a)", "base"
        )
        assert np.array_equal(result.trace("bulk3"), full.trace("bulk3"))

    def test_default_observe_is_plane_bulks(self):
        spec = transient_spec().resolved()
        _, _, points = scenario_axis_points(spec)
        assert default_observed_nodes(points[0][0]) == ("bulk1", "bulk2", "bulk3")
