"""The declarative scenario subsystem: specs, registry, runner, run store."""

import json

import pytest

from repro import perf
from repro.errors import ValidationError
from repro.experiments import fig4_radius, fig7_cluster
from repro.experiments.harness import ExperimentResult
from repro.scenarios import (
    SCENARIOS,
    AxisSpec,
    GeometryParams,
    GeometryRule,
    RunStore,
    ScenarioRegistry,
    ScenarioSpec,
    run_scenario,
)


def tiny_spec(**overrides) -> ScenarioSpec:
    """A two-point, coarse, calibration-free sweep (fast to solve)."""
    kwargs = dict(
        scenario_id="tiny",
        title="Tiny radius sweep",
        axis=AxisSpec(parameter="radius_um", values=(3.0, 5.0)),
        models=("1d",),
        reference="fem:coarse",
        calibrate=False,
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


class TestSpecRoundTrip:
    def test_dict_round_trip(self):
        spec = SCENARIOS.get("fig4")
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_preserves_hash(self):
        spec = SCENARIOS.get("fig5")
        data = json.loads(json.dumps(spec.to_dict()))
        assert ScenarioSpec.from_dict(data).content_hash() == spec.content_hash()

    def test_file_round_trip(self, tmp_path):
        spec = tiny_spec()
        path = spec.dump(tmp_path / "tiny.json")
        loaded = ScenarioSpec.load(path)
        assert loaded == spec
        assert loaded.content_hash() == spec.content_hash()

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError):
            ScenarioSpec.load(path)

    def test_unknown_keys_rejected(self):
        data = tiny_spec().to_dict()
        data["surprise"] = 1
        with pytest.raises(ValidationError):
            ScenarioSpec.from_dict(data)
        axis_bad = tiny_spec().to_dict()
        axis_bad["axis"]["step"] = 0.5
        with pytest.raises(ValidationError):
            ScenarioSpec.from_dict(axis_bad)

    def test_bad_model_spec_fails_at_load(self):
        with pytest.raises(ValidationError):
            tiny_spec(models=("model_c",))
        with pytest.raises(ValidationError):
            tiny_spec(reference="fem:gigantic")

    def test_sweep_requires_axis_and_models(self):
        with pytest.raises(ValidationError):
            tiny_spec(axis=None)
        with pytest.raises(ValidationError):
            tiny_spec(models=())

    def test_axis_validation(self):
        with pytest.raises(ValidationError):
            AxisSpec(parameter="voltage", values=(1.0,))
        with pytest.raises(ValidationError):
            AxisSpec(parameter="radius_um", values=())
        with pytest.raises(ValidationError):
            AxisSpec(parameter="cluster_count", values=(1.5,))

    def test_rule_validation(self):
        with pytest.raises(ValidationError):
            GeometryRule(set={"warp_factor": 9.0}, upto=1.0)
        with pytest.raises(ValidationError):
            GeometryRule(set={"radius_um": 1.0})  # no bounds

    def test_power_keys_validated(self):
        with pytest.raises(ValidationError):
            tiny_spec(power={"laser_power": 1.0})


class TestContentHash:
    def test_stable(self):
        assert tiny_spec().content_hash() == tiny_spec().content_hash()

    def test_sensitive_to_values(self):
        base = tiny_spec()
        changed = tiny_spec(axis=AxisSpec(parameter="radius_um", values=(3.0, 6.0)))
        assert base.content_hash() != changed.content_hash()

    def test_sensitive_to_models_and_reference(self):
        base = tiny_spec()
        assert base.content_hash() != tiny_spec(models=("a:paper",)).content_hash()
        assert base.content_hash() != tiny_spec(reference="fem:fine").content_hash()

    def test_resolved_folds_overrides_into_hash(self):
        spec = SCENARIOS.get("fig4")
        fast = spec.resolved(fast=True)
        assert fast.axis.values == spec.axis.fast_values
        assert fast.content_hash() != spec.content_hash()
        coarse = spec.resolved(fem_resolution="coarse")
        assert coarse.reference == "fem:coarse"
        nocal = spec.resolved(calibrate=False)
        assert not nocal.calibrate
        assert spec.resolved() == spec


class TestRegistry:
    def test_builtin_scenarios_present(self):
        assert {"fig4", "fig5", "fig6", "fig7", "table1", "case_study"} <= set(
            SCENARIOS.ids()
        )

    def test_decorator_registration(self):
        registry = ScenarioRegistry()

        @registry.register
        def my_scenario():
            return tiny_spec(scenario_id="mine")

        assert "mine" in registry
        assert registry.get("mine").scenario_id == "mine"

    def test_duplicate_id_rejected(self):
        registry = ScenarioRegistry()
        registry.add(tiny_spec())
        with pytest.raises(ValidationError):
            registry.add(tiny_spec())
        registry.add(tiny_spec(title="Replaced"), replace=True)
        assert registry.get("tiny").title == "Replaced"

    def test_unknown_id(self):
        with pytest.raises(ValidationError):
            SCENARIOS.get("fig99")


class TestLegacyEquivalence:
    """`run <id>` (registry path) must match the legacy module runs exactly."""

    def test_fig4_matches_legacy(self):
        legacy = fig4_radius.run(fem_resolution="coarse", fast=True, calibrate=True)
        run = run_scenario("fig4", fast=True, fem_resolution="coarse")
        assert run.result.x_values == legacy.x_values
        assert run.result.series == legacy.series  # exact float equality
        assert run.result.errors == legacy.errors
        assert run.result.reference_name == legacy.reference_name

    def test_fig7_matches_legacy_without_calibration(self):
        legacy = fig7_cluster.run(fem_resolution="coarse", fast=True, calibrate=False)
        run = run_scenario("fig7", fast=True, fem_resolution="coarse", calibrate=False)
        assert run.result.series == legacy.series
        assert run.result.errors == legacy.errors

    def test_table1_postprocess_rows(self):
        run = run_scenario("table1", fast=True, fem_resolution="coarse", calibrate=False)
        rows = run.result.metadata["table_rows"]
        assert [r[0] for r in rows[1:]] == [
            "model_b(1)", "model_b(20)", "model_b(100)", "model_b(500)",
            "model_a", "model_1d",
        ]


class TestRunStore:
    def test_miss_then_hit(self, tmp_path):
        store = RunStore(tmp_path / "store")
        spec = tiny_spec()
        first = run_scenario(spec, store=store)
        assert not first.from_store
        assert first.key in store and len(store) == 1
        manifest = store.manifest["runs"][first.key]
        assert manifest["scenario_id"] == "tiny"
        assert ScenarioSpec.from_dict(manifest["spec"]) == spec

        hits_before = perf.stats()["counters"].get("run_store_hits", 0)
        cache_misses_before = perf.stats()["caches"]["result_cache"]["misses"]
        second = run_scenario(spec, store=store)
        assert second.from_store
        assert perf.stats()["counters"]["run_store_hits"] == hits_before + 1
        # a store hit never consults the solver-level caches: nothing solved
        assert (
            perf.stats()["caches"]["result_cache"]["misses"] == cache_misses_before
        )
        assert isinstance(second.result, ExperimentResult)
        assert second.result.series == first.result.series
        assert second.result.errors == first.result.errors
        assert second.result.runtimes_ms == first.result.runtimes_ms

    def test_reopened_store_still_hits(self, tmp_path):
        spec = tiny_spec()
        run_scenario(spec, store=RunStore(tmp_path / "store"))
        again = run_scenario(spec, store=RunStore(tmp_path / "store"))
        assert again.from_store

    def test_changed_spec_misses(self, tmp_path):
        store = RunStore(tmp_path / "store")
        run_scenario(tiny_spec(), store=store)
        changed = run_scenario(tiny_spec(reference="fem:36x90"), store=store)
        assert not changed.from_store
        assert len(store) == 2

    def test_corrupt_manifest_rejected(self, tmp_path):
        root = tmp_path / "store"
        RunStore(root)
        (root / "manifest.json").write_text("{oops")
        with pytest.raises(ValidationError):
            RunStore(root)

    def test_corrupt_object_is_a_healed_miss(self, tmp_path):
        store = RunStore(tmp_path / "store")
        spec = tiny_spec()
        first = run_scenario(spec, store=store)
        # a killed process can no longer truncate an object (writes are
        # atomic), but disk corruption still can: get() must miss, not raise
        store._read_path(store.objects, first.key).write_text('{"series": tru')
        misses_before = perf.stats()["counters"].get("run_store_misses", 0)
        assert store.get(first.key) is None
        assert perf.stats()["counters"]["run_store_misses"] == misses_before + 1
        # the manifest entry is healed away, so a fresh store agrees
        assert first.key not in store
        assert first.key not in RunStore(tmp_path / "store")
        # and the next run re-solves and re-stores cleanly
        again = run_scenario(spec, store=store)
        assert not again.from_store
        assert first.key in store

    def test_writes_leave_no_tmp_files(self, tmp_path):
        store = RunStore(tmp_path / "store")
        run_scenario(tiny_spec(), store=store)
        leftovers = list((tmp_path / "store").rglob("*.tmp"))
        assert leftovers == []

    def test_point_round_trip_and_corruption(self, tmp_path):
        store = RunStore(tmp_path / "store")
        payload = {"model_name": "m", "max_rise": 1.25}
        store.put_point("abc123", payload)
        hits_before = perf.stats()["counters"].get("point_store_hits", 0)
        assert store.get_point("abc123") == payload
        assert perf.stats()["counters"]["point_store_hits"] == hits_before + 1
        store._read_path(store.points, "abc123").write_text("{nope")
        assert store.get_point("abc123") is None
        assert store._read_path(store.points, "abc123") is None  # healed away
        assert store.get_point("missing") is None
        assert store.point_keys() == []

    def test_unserialisable_point_payload_skipped(self, tmp_path):
        store = RunStore(tmp_path / "store")
        assert store.put_point("bad", {"value": object()}) is None
        assert store.get_point("bad") is None
        assert perf.stats()["counters"].get("point_store_skipped", 0) >= 1


class TestScenarioFromJson:
    """A brand-new scenario defined purely as data runs end-to-end."""

    def test_json_scenario_end_to_end(self, tmp_path):
        data = {
            "scenario_id": "bank9",
            "title": "9-TSV bank, liner sweep",
            "axis": {"parameter": "cluster_count", "values": [1, 9]},
            "geometry": {"radius_um": 12.0, "liner_um": 1.0, "t_si_upper_um": 20.0},
            "models": ["a:paper", "1d"],
            "reference": "fem:coarse",
            "calibrate": False,
        }
        path = tmp_path / "bank9.json"
        path.write_text(json.dumps(data))
        store = RunStore(tmp_path / "store")
        run = run_scenario(ScenarioSpec.load(path), store=store)
        assert not run.from_store
        assert set(run.result.series) == {"model_a", "model_1d", "fem"}
        assert len(run.result.x_values) == 2
        # the Eq.-(22) cluster transform helps: ΔT falls with n
        assert run.result.series["fem"][1] < run.result.series["fem"][0]
        again = run_scenario(ScenarioSpec.load(path), store=store)
        assert again.from_store

    def test_geometry_rules_apply_piecewise(self):
        spec = tiny_spec(
            axis=AxisSpec(parameter="radius_um", values=(3.0, 8.0)),
            rules=(
                GeometryRule(set={"t_si_upper_um": 5.0}, upto=5.0),
                GeometryRule(set={"t_si_upper_um": 45.0}, above=5.0),
            ),
        )
        from repro.scenarios.runner import _configurator

        configure = _configurator(spec)
        thin_stack, _, _ = configure(3.0)
        thick_stack, _, _ = configure(8.0)
        assert thin_stack.planes[1].substrate.thickness == pytest.approx(5e-6)
        assert thick_stack.planes[1].substrate.thickness == pytest.approx(45e-6)

    def test_power_mapping(self):
        spec = tiny_spec(power={"plane_powers": (1.0, 2.0, 3.0), "ild_fraction": 0.2})
        from repro.scenarios.runner import _power_spec

        power = _power_spec(spec)
        assert power.plane_powers == (1.0, 2.0, 3.0)
        assert power.ild_fraction == 0.2


class TestShippedExample:
    def test_custom_scenario_json_runs(self, tmp_path):
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "examples" / "custom_scenario.json"
        spec = ScenarioSpec.load(path)
        assert spec.scenario_id == "tsv_bank_9"
        run = run_scenario(spec, fast=True, store=RunStore(tmp_path / "store"))
        assert set(run.result.series) >= {"model_a", "model_a_cal", "model_1d", "fem"}
        assert run.result.x_values == [1, 9]
        again = run_scenario(spec, fast=True, store=RunStore(tmp_path / "store"))
        assert again.from_store


class TestCaseStudyScenario:
    def test_case_study_store_round_trip(self, tmp_path):
        store = RunStore(tmp_path / "store")
        first = run_scenario(
            "case_study", fast=True, fem_resolution="coarse", calibrate=False,
            store=store,
        )
        assert not first.from_store
        second = run_scenario(
            "case_study", fast=True, fem_resolution="coarse", calibrate=False,
            store=store,
        )
        assert second.from_store
        assert second.result.rises() == first.result.report.rises()
        # the store-served view must render the same table as the live run
        # (guards StoredCaseStudy against drifting from CaseStudyExperiment)
        assert second.result.rows() == first.result.rows()

    def test_fast_segments_match_content_hash(self):
        # a case-study spec below the fast threshold must actually run at
        # its own segment count under --fast (same content hash => same run)
        spec = SCENARIOS.get("case_study")
        small = spec.resolved(calibrate=False, fem_resolution="coarse")
        from dataclasses import replace

        small = replace(small, model_b_segments=50)
        assert small.resolved(fast=True) == small  # hash-identical
        run = run_scenario(small, fast=True)
        assert run.result.metadata["model_b_segments"] == 50
        assert "model_b(50)" in run.result.report.rises()


class TestPayloadRoundTrip:
    def test_experiment_result_from_payload_exact(self):
        result = run_scenario(
            "fig7", fast=True, fem_resolution="coarse", calibrate=False
        ).result
        payload = json.loads(json.dumps(result.to_payload()))
        loaded = ExperimentResult.from_payload(payload)
        assert loaded.series == result.series
        assert loaded.errors == result.errors  # exact, via the raw fractions
        assert loaded.x_values == result.x_values
        assert loaded.runtimes_ms == result.runtimes_ms
        assert loaded.table_text() == result.table_text()

    def test_from_payload_accepts_legacy_percent_only(self):
        result = run_scenario(
            "fig7", fast=True, fem_resolution="coarse", calibrate=False
        ).result
        payload = result.to_payload()
        del payload["errors"]  # pre-store payloads had only errors_pct
        loaded = ExperimentResult.from_payload(json.loads(json.dumps(payload)))
        for name, err in loaded.errors.items():
            assert err.max_error == pytest.approx(result.errors[name].max_error)

    def test_malformed_payload(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            ExperimentResult.from_payload({"experiment_id": "x"})
