"""Store integrity: envelopes, read-side healing, blame, fsck, poison.

The contract under test is PR 9's integrity layer: every artifact is
wrapped in a checksum envelope, a flipped bit reads as a miss-plus-heal
(never as different physics), ``fsck`` finds and repairs whole-store
damage offline, and the fleet-wide blame ledger isolates poison units
before they burn every worker's executor budget.
"""

import json

import pytest

from repro import faults, perf
from repro.errors import CorruptArtifactError
from repro.perf import RetryPolicy, counter
from repro.scenarios import AxisSpec, RunStore, ScenarioSpec, run_scenario, scrub
from repro.scenarios.store import (
    ENVELOPE_PREFIX,
    artifact_checksum,
    parse_artifact,
    render_artifact,
    shard_prefix,
)
from repro.__main__ import main


@pytest.fixture(autouse=True)
def _reset_counters():
    perf.reset()
    yield
    perf.reset()


KEY = "ab" * 32
KEY2 = "cd" * 32

SPEC = ScenarioSpec(
    scenario_id="integrity_tiny",
    title="Integrity sweep",
    axis=AxisSpec(parameter="radius_um", values=(2.0, 3.0, 4.0, 5.0)),
    models=("a:paper", "1d"),
    calibrate=False,
).resolved()
RUN_KEY = SPEC.content_hash()


def flip_last_digit(path):
    """Flip one bit of the artifact's final payload digit.

    The body stays valid JSON (``1.0`` becomes ``1.1``) so only the
    checksum can tell the difference — exactly the silent-corruption
    shape the envelope exists to catch.
    """
    blob = bytearray(path.read_bytes())
    blob[-4] ^= 0x01
    path.write_bytes(bytes(blob))


def seeded_store(root):
    """A small store with one indexed run and two points."""
    store = RunStore(root)
    store.put(RUN_KEY, {"experiment": {"v": 1}}, SPEC)
    store.put_point(KEY, {"kind": "solve", "max_rise": 1.0})
    store.put_point(KEY2, {"kind": "solve", "max_rise": 2.0})
    return store


class TestEnvelope:
    def test_render_parse_round_trip(self):
        text = render_artifact({"max_rise": 4.0})
        assert text.startswith(ENVELOPE_PREFIX)
        payload, enveloped = parse_artifact(text)
        assert payload == {"max_rise": 4.0}
        assert enveloped

    def test_legacy_document_parses_without_envelope(self):
        payload, enveloped = parse_artifact('{"max_rise": 4.0}\n')
        assert payload == {"max_rise": 4.0}
        assert not enveloped

    def test_tampered_body_fails_its_checksum(self):
        text = render_artifact({"max_rise": 4.0})
        header, _, body = text.partition("\n")
        tampered = header + "\n" + body.replace("4.0", "5.0")
        with pytest.raises(CorruptArtifactError):
            parse_artifact(tampered)
        assert counter("store_checksum_failures") == 1
        # the tampered body is valid JSON: without verification it would
        # have been silently accepted as different physics
        payload, _ = parse_artifact(tampered, verify=False)
        assert payload == {"max_rise": 5.0}

    def test_checksum_covers_exact_body_bytes(self):
        body = json.dumps({"a": 1}, indent=2) + "\n"
        assert artifact_checksum(body) != artifact_checksum(body + " ")

    def test_torn_header_and_garbage_raise(self):
        with pytest.raises(CorruptArtifactError):
            parse_artifact(ENVELOPE_PREFIX)  # envelope with no body
        with pytest.raises(CorruptArtifactError):
            parse_artifact("{ not json")


class TestReadSideHealing:
    def test_point_bit_flip_heals_to_a_miss(self, tmp_path):
        store = RunStore(tmp_path / "store")
        path = store.put_point(KEY, {"kind": "solve", "max_rise": 1.0})
        flip_last_digit(path)
        assert store.get_point(KEY) is None
        assert not path.exists()  # healed away, re-solves on resume
        assert counter("store_checksum_failures") == 1
        assert counter("store_integrity_heals") == 1
        assert counter("point_store_misses") == 1

    def test_run_bit_flip_heals_artifact_and_manifest(self, tmp_path):
        store = seeded_store(tmp_path / "store")
        path = store._sharded_path(store.objects, RUN_KEY)
        flip_last_digit(path)
        assert store.get(RUN_KEY) is None
        assert not path.exists()
        assert RUN_KEY not in RunStore(tmp_path / "store")
        assert counter("store_integrity_heals") == 1

    def test_verify_off_accepts_the_flipped_artifact(self, tmp_path):
        store = RunStore(tmp_path / "store")
        path = store.put_point(KEY, {"kind": "solve", "max_rise": 1.0})
        flip_last_digit(path)
        raw = RunStore(tmp_path / "store", verify=False)
        assert raw.get_point(KEY) == {"kind": "solve", "max_rise": 1.1}
        assert path.exists()  # the unverified reader never heals

    def test_legacy_flat_plain_artifact_still_reads(self, tmp_path):
        store = RunStore(tmp_path / "store")
        (store.points / f"{KEY}.json").write_text('{"max_rise": 1.0}')
        assert store.get_point(KEY) == {"max_rise": 1.0}


class TestBlameLedger:
    def test_blame_round_trip_and_persistence(self, tmp_path):
        store = RunStore(tmp_path / "store")
        assert store.get_blame(KEY) == 0
        assert store.add_blame(KEY) == 1
        assert store.add_blame(KEY) == 2
        assert store.blame_counts() == {KEY: 2}
        # the ledger is fleet-wide: a fresh driver on the same store
        # (another worker, a respawned incarnation) sees the counts
        reopened = RunStore(tmp_path / "store")
        assert reopened.get_blame(KEY) == 2
        reopened.clear_blame(KEY)
        assert reopened.get_blame(KEY) == 0
        assert reopened.blame_counts() == {}

    def test_blame_records_shard_and_survive_corruption(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.add_blame(KEY)
        path = store._sharded_path(store.blame, KEY)
        assert path.parent.name == shard_prefix(KEY)
        path.write_text("torn")
        assert store.get_blame(KEY) == 0  # corrupt count reads as absent


class TestFsck:
    def test_clean_store(self, tmp_path):
        store = seeded_store(tmp_path / "store")
        report = scrub(store.root)
        assert report.clean
        assert report.exit_code == 0
        assert not report.findings
        assert report.scanned["points"] == 2

    def test_corrupt_point_detected_and_repaired(self, tmp_path):
        store = seeded_store(tmp_path / "store")
        flip_last_digit(store._sharded_path(store.points, KEY))
        report = scrub(store.root)
        assert {f.kind for f in report.damage} == {"corrupt"}
        assert report.exit_code == 1
        repaired = scrub(store.root, repair=True)
        assert repaired.exit_code == 0
        assert scrub(store.root).clean
        assert RunStore(store.root).get_point(KEY) is None

    def test_orphaned_manifest_entry(self, tmp_path):
        store = seeded_store(tmp_path / "store")
        store._sharded_path(store.objects, RUN_KEY).unlink()
        report = scrub(store.root)
        assert {f.kind for f in report.damage} == {"orphaned-manifest-entry"}
        assert scrub(store.root, repair=True).exit_code == 0
        assert scrub(store.root).clean
        assert RUN_KEY not in RunStore(store.root)

    def test_unindexed_object_is_unreachable_and_removed(self, tmp_path):
        store = seeded_store(tmp_path / "store")
        stray = store.objects / shard_prefix(KEY2) / f"{KEY2}.json"
        stray.parent.mkdir(exist_ok=True)
        stray.write_text(render_artifact({"experiment": {"v": 2}}))
        report = scrub(store.root)
        assert {f.kind for f in report.damage} == {"unindexed-object"}
        assert scrub(store.root, repair=True).exit_code == 0
        assert not stray.exists()

    def test_mis_sharded_artifact_moves_back_into_reach(self, tmp_path):
        store = seeded_store(tmp_path / "store")
        good = store._sharded_path(store.points, KEY)
        wrong = store.points / "zz" / good.name
        wrong.parent.mkdir()
        good.replace(wrong)
        assert RunStore(store.root).get_point(KEY) is None  # invisible
        report = scrub(store.root)
        assert {f.kind for f in report.damage} == {"mis-sharded"}
        assert scrub(store.root, repair=True).exit_code == 0
        assert good.exists()
        assert RunStore(store.root).get_point(KEY) is not None

    def test_corrupt_manifest_repair_keeps_objects_for_a_second_pass(
        self, tmp_path
    ):
        store = seeded_store(tmp_path / "store")
        obj = store._sharded_path(store.objects, RUN_KEY)
        (store.root / "manifest.json").write_text("{ torn")
        report = scrub(store.root)
        assert "corrupt-manifest" in {f.kind for f in report.damage}
        # the first repair resets the index — which makes every healthy
        # run object read as unindexed.  Deleting them now would turn a
        # one-byte manifest corruption into losing the whole objects
        # space, so they are reported, kept, and the pass exits non-zero
        repaired = scrub(store.root, repair=True)
        assert {f.kind for f in repaired.damage} == {
            "corrupt-manifest",
            "unindexed-object",
        }
        assert repaired.exit_code == 1
        assert obj.exists()
        # only a deliberate second --repair removes the orphans
        second = scrub(store.root, repair=True)
        assert second.exit_code == 0
        assert not obj.exists()
        assert scrub(store.root).clean

    def test_live_protocol_residue_is_notes_not_damage(self, tmp_path):
        import time as _time

        store = seeded_store(tmp_path / "store")
        shard = store.leases / shard_prefix(KEY)
        shard.mkdir(exist_ok=True)
        (shard / f"{KEY}.claim").write_text(
            json.dumps(
                {
                    "key": KEY,
                    "owner": "w1",
                    "token": 1,
                    "ttl_s": 0.01,
                    "deadline": _time.monotonic() - 1.0,
                }
            )
        )
        (shard / f"{KEY2}.claim").write_text("{ torn")
        (shard / f"{KEY}.stale.w1.deadbeef").write_text("tombstone")
        (store.points / "x.1234.tmp").write_text("half a write")
        report = scrub(store.root)
        assert report.clean  # none of this is damage
        assert report.exit_code == 0
        assert {f.kind for f in report.notes} >= {
            "expired-claim",
            "torn-claim",
            "stale-tombstone",
            "tmp-litter",
        }
        scrub(store.root, repair=True)
        assert not list(store.leases.glob("**/*.claim"))
        assert not list(store.root.glob("**/*.tmp"))

    def test_claim_expiry_is_judged_by_wall_clock(self, tmp_path):
        import time as _time

        store = seeded_store(tmp_path / "store")

        def write_claim(key, **fields):
            shard = store.leases / shard_prefix(key)
            shard.mkdir(exist_ok=True)
            payload = {"key": key, "owner": "w1", "token": 1, "ttl_s": 30.0}
            payload.update(fields)
            (shard / f"{key}.claim").write_text(json.dumps(payload))

        # a live claim scanned from a machine with much longer uptime
        # than the writer: the monotonic deadline reads as long past,
        # but the wall deadline says the holder is alive — not expired
        write_claim(
            KEY,
            deadline=_time.monotonic() - 1e6,
            deadline_unix=_time.time() + 30.0,
        )
        # a dead claim whose monotonic deadline looks far in the future
        # (written before a reboot): wall clock tells the truth
        write_claim(
            KEY2,
            deadline=_time.monotonic() + 1e6,
            deadline_unix=_time.time() - 1.0,
        )
        report = scrub(store.root)
        expired = [f for f in report.notes if f.kind == "expired-claim"]
        assert [f.key for f in expired] == [KEY2]

    def test_legacy_claim_from_another_boot_reads_as_expired(self, tmp_path):
        import time as _time

        store = seeded_store(tmp_path / "store")
        shard = store.leases / shard_prefix(KEY)
        shard.mkdir(exist_ok=True)
        # no deadline_unix (pre-wall-clock claim), and a monotonic
        # deadline no renewal on this boot could have produced: the
        # writer's clock belonged to another boot, its holder cannot
        # be alive here
        (shard / f"{KEY}.claim").write_text(
            json.dumps(
                {
                    "key": KEY,
                    "owner": "w1",
                    "token": 1,
                    "ttl_s": 30.0,
                    "deadline": _time.monotonic() + 1e9,
                }
            )
        )
        report = scrub(store.root)
        (finding,) = [f for f in report.notes if f.kind == "expired-claim"]
        assert finding.key == KEY
        assert "another boot" in finding.detail

    def test_cli_exit_codes_and_repair(self, tmp_path, capsys):
        store = seeded_store(tmp_path / "store")
        root = str(store.root)
        assert main(["fsck", root]) == 0
        assert "store is clean" in capsys.readouterr().out
        flip_last_digit(store._sharded_path(store.points, KEY))
        assert main(["fsck", root]) == 1
        assert "DAMAGED" in capsys.readouterr().out
        assert main(["fsck", root, "--repair"]) == 0
        assert main(["fsck", root]) == 0


@pytest.fixture(scope="class")
def harvested(tmp_path_factory):
    """The tiny spec's point keys, harvested from one clean run."""
    store = RunStore(tmp_path_factory.mktemp("harvest") / "store")
    perf.reset()
    run_scenario(SPEC, store=store)
    return sorted(store.point_keys())


POISON_RETRY = RetryPolicy(
    max_attempts=3,
    backoff_s=0.0,
    poison_solo_after=1,
    poison_quarantine_after=2,
)


class TestPoisonIsolation:
    def test_blamed_unit_quarantines_without_dispatch(self, harvested, tmp_path):
        victim = harvested[0]
        store = RunStore(tmp_path / "store")
        store.add_blame(victim)
        store.add_blame(victim)
        run = run_scenario(SPEC, store=store, retry=POISON_RETRY)
        assert run.failed
        assert any(
            f.key == victim and f.error_class == "PoisonedUnitError"
            for f in run.failures
        )
        assert counter("plan_poison_quarantined") == 1

    def test_blame_below_threshold_forces_solo_then_absolves(
        self, harvested, tmp_path
    ):
        victim = harvested[0]
        store = RunStore(tmp_path / "store")
        store.add_blame(victim)
        retry = RetryPolicy(
            max_attempts=3,
            backoff_s=0.0,
            poison_solo_after=1,
            poison_quarantine_after=5,
        )
        run = run_scenario(SPEC, store=store, retry=retry)
        assert not run.failed
        assert counter("plan_poison_degradations") == 1
        # it solved cleanly this time: the ledger absolves it so a stale
        # count cannot quarantine future runs
        assert store.get_blame(victim) == 0

    def test_executor_crashes_accrue_blame_then_quarantine(self, tmp_path):
        store = RunStore(tmp_path / "store")
        faults.configure(
            rate=1.0,
            kinds=("crash",),
            sites=("solve", "group-solve", "stacked-solve"),
            seed=0,
        )
        try:
            run = run_scenario(SPEC, store=store, retry=POISON_RETRY)
        finally:
            faults.reset()
        assert run.failed
        assert counter("plan_poison_quarantined") >= 1
        counts = store.blame_counts()
        assert counts
        assert all(c >= POISON_RETRY.poison_quarantine_after for c in counts.values())

        # a later run against the same store (a peer, a respawn) sees the
        # ledger and quarantines the poison units before dispatching them
        perf.reset()
        run2 = run_scenario(SPEC, store=store, retry=POISON_RETRY)
        assert run2.failed
        assert counter("plan_point_solves") == 0
        assert counter("plan_poison_quarantined") == len(counts)
