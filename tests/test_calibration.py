"""Calibration: fitting k1/k2 against a reference model."""

import pytest

from repro import ModelA, paper_tsv
from repro.calibration import fit_coefficients, radius_sweep_samples
from repro.errors import CalibrationError
from repro.resistances import FittingCoefficients
from repro.units import um


class TestFit:
    def test_recovers_known_coefficients(self, block_stack, block_power):
        # use Model A itself as the "reference": the fit must recover its
        # coefficients (well-posedness of the calibration problem)
        truth = FittingCoefficients(k1=1.42, k2=0.61)
        reference = ModelA(truth)
        samples = radius_sweep_samples(
            block_stack,
            paper_tsv(radius=um(5), liner_thickness=um(1)),
            block_power,
            [um(2), um(5), um(10), um(15)],
        )
        result = fit_coefficients(samples, reference)
        assert result.coefficients.k1 == pytest.approx(1.42, rel=1e-3)
        assert result.coefficients.k2 == pytest.approx(0.61, rel=1e-3)
        assert result.residual_rms < 1e-6

    def test_fit_against_fem_is_accurate(self, block_stack, block_power):
        from repro.fem import FEMReference

        samples = radius_sweep_samples(
            block_stack,
            paper_tsv(radius=um(5), liner_thickness=um(1)),
            block_power,
            [um(2), um(5), um(12)],
        )
        result = fit_coefficients(samples, FEMReference("coarse"))
        assert result.residual_rms < 0.05
        assert 0.5 < result.coefficients.k1 < 3.0

    def test_needs_enough_samples(self, block_stack, block_power):
        samples = radius_sweep_samples(
            block_stack, paper_tsv(), block_power, [um(5)]
        )
        with pytest.raises(CalibrationError):
            fit_coefficients(samples, ModelA())

    def test_c_bond_needs_three_samples(self, block_stack, block_power):
        samples = radius_sweep_samples(
            block_stack, paper_tsv(), block_power, [um(3), um(8)]
        )
        with pytest.raises(CalibrationError):
            fit_coefficients(samples, ModelA(), fit_c_bond=True)

    def test_radius_sweep_samples_empty(self, block_stack, block_power):
        with pytest.raises(CalibrationError):
            radius_sweep_samples(block_stack, paper_tsv(), block_power, [])

    def test_summary_format(self, block_stack, block_power):
        truth = FittingCoefficients(1.3, 0.55)
        samples = radius_sweep_samples(
            block_stack, paper_tsv(liner_thickness=um(1)), block_power, [um(3), um(9)]
        )
        result = fit_coefficients(samples, ModelA(truth))
        text = result.summary()
        assert "k1" in text and "k2" in text and "%" in text
