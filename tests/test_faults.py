"""The deterministic fault-injection registry (:mod:`repro.faults`)."""

import json
import os
import time

import pytest

from repro import faults
from repro.errors import SolverError, ValidationError, WorkerCrashError


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends with the registry (and env) disarmed."""
    faults.reset()
    yield
    faults.reset()


class TestConfigure:
    def test_inactive_by_default(self):
        assert not faults.active()
        assert faults.config() == faults.FaultConfig()
        assert faults.decide("solve", "anything") is None

    def test_configure_arms_and_reset_disarms(self):
        cfg = faults.configure(rate=0.5, kinds=("error",), seed=7)
        assert faults.active()
        assert cfg.armed and cfg.rate == 0.5 and cfg.kinds == ("error",)
        faults.reset()
        assert not faults.active()
        assert faults.config() == faults.FaultConfig()

    def test_rate_zero_is_unarmed(self):
        faults.configure(rate=0.0)
        assert not faults.active()

    def test_comma_separated_strings_accepted(self):
        cfg = faults.configure(
            rate=1.0, kinds="error,delay", sites="solve,store-write"
        )
        assert cfg.kinds == ("error", "delay")
        assert cfg.sites == ("solve", "store-write")

    def test_validation(self):
        with pytest.raises(ValidationError):
            faults.configure(rate=1.5)
        with pytest.raises(ValidationError):
            faults.configure(rate=-0.1)
        with pytest.raises(ValidationError):
            faults.configure(rate=0.5, kinds=("segfault",))
        with pytest.raises(ValidationError):
            faults.configure(rate=0.5, sites=("teleport",))
        with pytest.raises(ValidationError):
            faults.configure(rate=0.5, delay_s=-1.0)

    def test_env_propagation_to_workers(self, monkeypatch):
        """Workers resolve the parent's exported env, not the parent object."""
        faults.configure(
            rate=0.25, kinds=("crash", "error"), sites=("solve",), seed=42,
            delay_s=0.01,
        )
        parent_cfg = faults.config()
        assert os.environ[faults.ENV_RATE] == "0.25"
        assert os.environ[faults.ENV_SEED] == "42"
        # a fresh pool worker has no explicit configuration — only the env
        monkeypatch.setattr(faults, "_config", None)
        assert faults.config() == parent_cfg
        assert faults.active()

    def test_invalid_env_is_a_clear_error(self, monkeypatch):
        monkeypatch.setattr(faults, "_config", None)
        monkeypatch.setenv(faults.ENV_RATE, "lots")
        with pytest.raises(ValidationError):
            faults.config()


class TestDecide:
    def test_deterministic_across_calls(self):
        faults.configure(rate=0.5, kinds=("error", "delay"), seed=3)
        keys = [f"0/model_1d#a{i}" for i in range(64)]
        first = [faults.decide("solve", k) for k in keys]
        second = [faults.decide("solve", k) for k in keys]
        assert first == second
        # a 50% rate over 64 independent draws fires at least once
        assert any(first)

    def test_seed_changes_the_draw_pattern(self):
        keys = [f"k{i}" for i in range(64)]
        faults.configure(rate=0.5, kinds=("error",), seed=1)
        pattern_a = [faults.decide("solve", k) for k in keys]
        faults.configure(rate=0.5, kinds=("error",), seed=2)
        pattern_b = [faults.decide("solve", k) for k in keys]
        assert pattern_a != pattern_b

    def test_attempt_number_gives_an_independent_draw(self):
        """A retried dispatch (key carries the attempt) re-rolls the fault —
        that is what makes injected faults *transient*."""
        faults.configure(rate=0.5, kinds=("error",), seed=0)
        flips = [
            key
            for key in (f"{i}/model_1d" for i in range(32))
            if faults.decide("solve", f"{key}#a0")
            != faults.decide("solve", f"{key}#a1")
        ]
        assert flips  # at least one node's retry draws differently

    def test_rate_one_always_fires_an_allowed_kind(self):
        faults.configure(rate=1.0, kinds=("error", "delay"), seed=9)
        for i in range(16):
            assert faults.decide("solve", f"k{i}") in ("error", "delay")

    def test_site_filtering(self):
        # 'corrupt' is data-only: it never fires at an execution site, and
        # the execution kinds never fire at the store site
        faults.configure(rate=1.0, kinds=("corrupt",), seed=0)
        assert faults.decide("solve", "k") is None
        assert faults.decide("group-solve", "k") is None
        assert faults.decide("store-write", "k") == "corrupt"
        faults.configure(rate=1.0, kinds=("crash", "error"), seed=0)
        assert faults.decide("store-write", "k") is None

    def test_unconfigured_site_never_fires(self):
        faults.configure(rate=1.0, kinds=("error",), sites=("solve",))
        assert faults.decide("group-solve", "k") is None


class TestInject:
    def test_error_kind_raises_solver_error(self):
        faults.configure(rate=1.0, kinds=("error",), seed=0)
        with pytest.raises(SolverError, match="injected fault at solve:k"):
            faults.inject("solve", "k")

    def test_crash_outside_a_pool_worker_raises(self):
        # in-parent (serial execution, degraded pool) a crash must be a
        # catchable exception, not an os._exit of the test process
        faults.configure(rate=1.0, kinds=("crash",), seed=0)
        with pytest.raises(WorkerCrashError):
            faults.inject("solve", "k")

    def test_delay_kind_sleeps(self):
        faults.configure(rate=1.0, kinds=("delay",), delay_s=0.05, seed=0)
        start = time.perf_counter()
        faults.inject("solve", "k")
        assert time.perf_counter() - start >= 0.05

    def test_no_fault_is_a_no_op(self):
        faults.configure(rate=0.0)
        faults.inject("solve", "k")  # must not raise

    def test_corrupt_never_fires_through_inject(self):
        faults.configure(rate=1.0, kinds=("corrupt",), seed=0)
        faults.inject("store-write", "k")  # corruption applies to bytes only


class TestCorruptText:
    def test_truncates_json_beyond_repair(self):
        faults.configure(rate=1.0, kinds=("corrupt",), seed=0)
        text = json.dumps({"a": 1, "b": [1, 2, 3]}, indent=2) + "\n"
        broken = faults.corrupt_text("store-write", "k", text)
        assert broken != text and len(broken) < len(text)
        with pytest.raises(json.JSONDecodeError):
            json.loads(broken)

    def test_passthrough_when_disarmed(self):
        assert faults.corrupt_text("store-write", "k", "payload") == "payload"

    def test_passthrough_for_other_kinds(self):
        faults.configure(rate=1.0, kinds=("delay",), seed=0)
        assert faults.corrupt_text("store-write", "k", "payload") == "payload"
