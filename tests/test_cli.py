"""The ``python -m repro`` command-line interface."""

import json

import pytest

from repro import perf
from repro.__main__ import build_parser, main
from repro.experiments.harness import ExperimentResult
from repro.scenarios import RunStore, ScenarioSpec


class TestParser:
    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig4"])
        assert args.fem_resolution == "medium"
        assert not args.fast

    def test_flags(self):
        args = build_parser().parse_args(
            ["fig6", "--fast", "--fem-resolution", "coarse", "--no-calibrate"]
        )
        assert args.fast and args.no_calibrate
        assert args.fem_resolution == "coarse"


class TestMain:
    def test_fig7_fast(self, capsys):
        code = main(["fig7", "--fast", "--fem-resolution", "coarse", "--no-calibrate"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 7" in out
        assert "model_a" in out and "fem" in out

    def test_table1_fast_writes_json(self, capsys, tmp_path):
        code = main(
            [
                "table1",
                "--fast",
                "--fem-resolution",
                "coarse",
                "--no-calibrate",
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        payload = json.loads((tmp_path / "table1.json").read_text())
        assert payload["experiment_id"] == "table1"
        out = capsys.readouterr().out
        assert "model_b(500)" in out

    def test_case_study_fast(self, capsys):
        code = main(
            ["case_study", "--fast", "--fem-resolution", "coarse", "--no-calibrate"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "DRAM" in out
        assert "model_1d" in out

    def test_table1_segments_table_printed_once(self, capsys):
        code = main(["table1", "--fast", "--fem-resolution", "coarse", "--no-calibrate"])
        assert code == 0
        out = capsys.readouterr().out
        # the segments table appears exactly once (it used to be printed
        # twice: table_text() up front plus metadata["table_rows"] again);
        # the other "max err %" header belongs to the error table
        assert out.count("max err %") == 2
        # --no-calibrate reaches the fig5 sweep behind table1
        assert "model_a_cal" not in out


FAST_FLAGS = ["--fast", "--fem-resolution", "coarse", "--no-calibrate"]


class TestRunSubcommand:
    def test_run_registry_id(self, capsys):
        code = main(["run", "fig7", *FAST_FLAGS])
        assert code == 0
        out = capsys.readouterr().out
        assert "[fig7] solved" in out
        assert "Fig. 7" in out and "model_a" in out and "fem" in out

    def test_run_unknown_target(self, capsys):
        code = main(["run", "fig99"])
        assert code == 2
        assert "python -m repro list" in capsys.readouterr().err

    def test_run_output_dir_round_trips(self, capsys, tmp_path):
        code = main(
            ["run", "fig7", *FAST_FLAGS, "--output-dir", str(tmp_path)]
        )
        assert code == 0
        payload = json.loads((tmp_path / "fig7.json").read_text())
        loaded = ExperimentResult.from_payload(payload)
        assert loaded.experiment_id == "fig7"
        assert set(loaded.series) == {"model_a", "model_b(100)", "model_1d", "fem"}
        spec = ScenarioSpec.load(tmp_path / "fig7.spec.json")
        assert spec.scenario_id == "fig7"
        assert spec.reference == "fem:coarse"  # the CLI override, folded in
        assert not spec.calibrate

    def test_run_store_hit_on_second_invocation(self, capsys, tmp_path):
        store_dir = str(tmp_path / "store")
        assert main(["run", "fig7", *FAST_FLAGS, "--store", store_dir]) == 0
        first = capsys.readouterr().out
        assert "[fig7] solved" in first
        assert main(["run", "fig7", *FAST_FLAGS, "--store", store_dir]) == 0
        second = capsys.readouterr().out
        assert "[fig7] served from run store" in second
        # identical tables either way
        assert first.split("\n", 1)[1] == second.split("\n", 1)[1]

    def test_run_scenario_file(self, capsys, tmp_path):
        spec_path = tmp_path / "custom.json"
        spec_path.write_text(
            json.dumps(
                {
                    "scenario_id": "custom_tiny",
                    "title": "Custom tiny sweep",
                    "axis": {"parameter": "radius_um", "values": [3.0, 5.0]},
                    "models": ["1d"],
                    "reference": "fem:coarse",
                    "calibrate": False,
                }
            )
        )
        code = main(["run", str(spec_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "[custom_tiny] solved" in out
        assert "model_1d" in out


class TestListSubcommand:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for scenario_id in ("fig4", "fig5", "fig6", "fig7", "table1", "case_study"):
            assert scenario_id in out


class TestBatchSubcommand:
    @pytest.fixture()
    def scenario_dir(self, tmp_path):
        base = {
            "title": "Batch sweep",
            "axis": {"parameter": "radius_um", "values": [3.0, 5.0]},
            "models": ["1d"],
            "reference": "fem:coarse",
            "calibrate": False,
        }
        for i in (1, 2):
            spec = dict(base)
            spec["scenario_id"] = f"batch{i}"
            spec["axis"] = {"parameter": "radius_um", "values": [3.0, 5.0 + i]}
            (tmp_path / f"batch{i}.json").write_text(json.dumps(spec))
        return tmp_path

    def test_batch_solves_then_skips(self, capsys, scenario_dir):
        assert main(["batch", str(scenario_dir)]) == 0
        first = capsys.readouterr().out
        assert first.count("solved") >= 2 and "store hit" not in first

        store = RunStore(scenario_dir / "runs")
        assert len(store) == 2
        hits_before = perf.stats()["counters"].get("run_store_hits", 0)
        assert main(["batch", str(scenario_dir)]) == 0
        second = capsys.readouterr().out
        assert second.count("store hit") == 2
        assert "2 served from store" in second
        assert perf.stats()["counters"]["run_store_hits"] == hits_before + 2
        assert len(RunStore(scenario_dir / "runs")) == 2  # nothing re-stored

    def test_batch_output_dir(self, capsys, scenario_dir, tmp_path):
        out_dir = tmp_path / "payloads"
        assert main(["batch", str(scenario_dir), "--output-dir", str(out_dir)]) == 0
        capsys.readouterr()
        for scenario_id in ("batch1", "batch2"):
            payload = json.loads((out_dir / f"{scenario_id}.json").read_text())
            assert ExperimentResult.from_payload(payload).experiment_id == scenario_id
            assert ScenarioSpec.load(out_dir / f"{scenario_id}.spec.json").scenario_id == scenario_id

    def test_batch_rejects_empty_dir(self, capsys, tmp_path):
        assert main(["batch", str(tmp_path)]) == 2
        assert "no scenario" in capsys.readouterr().err

    def test_batch_missing_dir(self, capsys, tmp_path):
        assert main(["batch", str(tmp_path / "nope")]) == 2

    def test_batch_reports_plan_stats(self, capsys, scenario_dir):
        assert main(["batch", str(scenario_dir)]) == 0
        out = capsys.readouterr().out
        assert "plan:" in out and "deduplicated across scenarios" in out

    def test_batch_resume_after_lost_run_artifacts(self, capsys, scenario_dir):
        assert main(["batch", str(scenario_dir)]) == 0
        capsys.readouterr()
        # simulate a batch killed before the run-level artifacts landed:
        # the point space survives, manifest and objects do not
        runs = scenario_dir / "runs"
        (runs / "manifest.json").unlink()
        for path in (runs / "objects").glob("*.json"):
            path.unlink()
        perf.reset()  # fresh-process caches
        hits_before = perf.stats()["counters"].get("point_store_hits", 0)
        assert main(["batch", str(scenario_dir), "--resume"]) == 0
        out = capsys.readouterr().out
        assert out.count("solved") >= 2  # scenarios re-assembled, not hits
        assert perf.stats()["counters"]["point_store_hits"] > hits_before
        assert perf.stats()["counters"].get("plan_point_solves", 0) == 0
        assert "resumed from point store" in out

    def test_run_resume_without_store_noted(self, capsys):
        assert main(["run", "fig7", *FAST_FLAGS, "--resume"]) == 0
        assert "--resume needs a --store" in capsys.readouterr().err
