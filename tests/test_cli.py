"""The ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig4"])
        assert args.fem_resolution == "medium"
        assert not args.fast

    def test_flags(self):
        args = build_parser().parse_args(
            ["fig6", "--fast", "--fem-resolution", "coarse", "--no-calibrate"]
        )
        assert args.fast and args.no_calibrate
        assert args.fem_resolution == "coarse"


class TestMain:
    def test_fig7_fast(self, capsys):
        code = main(["fig7", "--fast", "--fem-resolution", "coarse", "--no-calibrate"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 7" in out
        assert "model_a" in out and "fem" in out

    def test_table1_fast_writes_json(self, capsys, tmp_path):
        code = main(
            [
                "table1",
                "--fast",
                "--fem-resolution",
                "coarse",
                "--no-calibrate",
                "--output-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        payload = json.loads((tmp_path / "table1.json").read_text())
        assert payload["experiment_id"] == "table1"
        out = capsys.readouterr().out
        assert "model_b(500)" in out

    def test_case_study_fast(self, capsys):
        code = main(
            ["case_study", "--fast", "--fem-resolution", "coarse", "--no-calibrate"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "DRAM" in out
        assert "model_1d" in out
