"""The matrix-batched solve plane: multi-RHS identity, group scheduling,
calibration-fit caching and the power_scale axis."""

import json

import numpy as np
import pytest
import scipy.sparse as sp

from repro import perf
from repro.core.factory import make_model
from repro.errors import SolverError, ValidationError
from repro.experiments.params import fig5_config
from repro.fem import (
    FEMReference,
    build_axisym_grids,
    build_cartesian_grids,
    grid_via_positions,
    solve_axisymmetric,
    solve_axisymmetric_multi,
    solve_cartesian,
    solve_cartesian_multi,
)
from repro.geometry import PowerSpec, TSVCluster
from repro.network.solve import (
    solve_linear_system,
    solve_linear_system_multi,
    solve_sparse,
    solve_sparse_multi,
)
from repro.perf import MatrixGroupTask, ParallelExecutor, SerialExecutor
from repro.scenarios import SCENARIOS, AxisSpec, ScenarioSpec, run_scenario
from repro.scenarios.plan import _configurator
from repro.scenarios.runner import _run_scenario_eager


def _spd_sparse(n: int, seed: int = 0) -> sp.csr_matrix:
    rng = np.random.RandomState(seed)
    a = sp.random(n, n, density=0.05, random_state=rng, format="csr")
    return (a + a.T + sp.diags(np.full(n, 10.0))).tocsr()


def _rhs_block(n: int, k: int, seed: int = 1) -> np.ndarray:
    return np.random.RandomState(seed).randn(n, k)


def power_scale_spec(scenario_id="ps_sweep", values=(0.5, 1.0, 1.5), **overrides):
    kwargs = dict(
        scenario_id=scenario_id,
        title="Power-scale sweep",
        axis=AxisSpec(parameter="power_scale", values=values),
        models=("1d",),
        reference="fem:coarse",
        calibrate=False,
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


class TestSolveMulti:
    def test_sparse_columns_bitwise_equal_single_solves(self):
        matrix = _spd_sparse(400)
        block = _rhs_block(400, 5)
        multi = solve_sparse_multi(matrix, block)
        for j in range(block.shape[1]):
            assert np.array_equal(multi[:, j], solve_sparse(matrix, block[:, j]))

    def test_dense_columns_bitwise_equal_single_solves(self):
        rng = np.random.RandomState(2)
        a = rng.randn(60, 60)
        matrix = a @ a.T + 60.0 * np.eye(60)
        block = _rhs_block(60, 4)
        multi = solve_linear_system_multi(matrix, block)
        for j in range(block.shape[1]):
            assert np.array_equal(
                multi[:, j], solve_linear_system(matrix, block[:, j])
            )

    def test_small_sparse_matrix_dispatches_dense(self):
        matrix = _spd_sparse(50)
        block = _rhs_block(50, 3)
        multi = solve_linear_system_multi(matrix, block)
        for j in range(block.shape[1]):
            assert np.array_equal(
                multi[:, j], solve_linear_system(matrix, block[:, j])
            )

    def test_cg_path_columns_match_single_solves(self, monkeypatch):
        import repro.network.solve as solve_mod

        monkeypatch.setattr(solve_mod, "ITERATIVE_CUTOFF", 10)
        matrix = _spd_sparse(300)
        block = _rhs_block(300, 3)
        multi = solve_sparse_multi(matrix, block)
        for j in range(block.shape[1]):
            assert np.array_equal(multi[:, j], solve_sparse(matrix, block[:, j]))

    def test_factorizes_once(self):
        perf.reset()
        matrix = _spd_sparse(400)
        solve_sparse_multi(matrix, _rhs_block(400, 6))
        stats = perf.factor_cache.stats()
        assert stats["misses"] == 1  # one factorization for six columns

    def test_singular_matrix_raises(self):
        from repro.errors import SingularNetworkError

        matrix = sp.csr_matrix((300, 300))  # all-zero: exactly singular
        with pytest.raises(SingularNetworkError):
            solve_sparse_multi(matrix, _rhs_block(300, 2))

    def test_nonfinite_guard_names_columns(self, monkeypatch):
        import repro.network.solve as solve_mod

        class BadFactorCache:
            def solver(self, matrix, permc_spec=None):
                def solve(rhs):
                    out = np.zeros(rhs.shape[0])
                    out[0] = np.inf
                    return out

                return solve

        monkeypatch.setattr(solve_mod, "factor_cache", BadFactorCache())
        with pytest.raises(SolverError, match=r"column\(s\) \[0, 1\]"):
            solve_sparse_multi(_spd_sparse(300), _rhs_block(300, 2))

    def test_one_dimensional_rhs_rejected(self):
        with pytest.raises(SolverError, match="block"):
            solve_sparse_multi(_spd_sparse(300), np.ones(300))

    def test_empty_block_returns_empty(self):
        out = solve_sparse_multi(_spd_sparse(300), np.empty((300, 0)))
        assert out.shape == (300, 0)


class TestFEMMultiSolvers:
    def test_axisym_multi_bitwise_equals_single(self):
        cfg = fig5_config(1.0)
        grids = build_axisym_grids(cfg.stack, cfg.via, cfg.power, nr=20, nz=50)
        sources = [grids.source_density * s for s in (0.5, 1.0, 2.0)]
        fields = solve_axisymmetric_multi(
            grids.r_edges, grids.z_edges, grids.conductivity, sources
        )
        for field, source in zip(fields, sources):
            single = solve_axisymmetric(
                grids.r_edges, grids.z_edges, grids.conductivity, source
            )
            assert np.array_equal(field.temperatures, single.temperatures)

    def test_cartesian_multi_bitwise_equals_single(self):
        cfg = fig5_config(1.0)
        grids = build_cartesian_grids(
            cfg.stack, cfg.via, cfg.power, nx=10, ny=10, nz=20
        )
        sources = [grids.source_density * s for s in (0.5, 1.5)]
        fields = solve_cartesian_multi(
            grids.x_edges, grids.y_edges, grids.z_edges,
            grids.conductivity, sources,
        )
        for field, source in zip(fields, sources):
            single = solve_cartesian(
                grids.x_edges, grids.y_edges, grids.z_edges,
                grids.conductivity, source,
            )
            assert np.array_equal(field.temperatures, single.temperatures)

    def test_empty_source_list(self):
        cfg = fig5_config(1.0)
        grids = build_axisym_grids(cfg.stack, cfg.via, cfg.power, nr=20, nz=50)
        assert solve_axisymmetric_multi(
            grids.r_edges, grids.z_edges, grids.conductivity, []
        ) == []


def assert_results_identical(batched, individual):
    assert batched.max_rise == individual.max_rise
    assert batched.plane_rises == individual.plane_rises
    assert batched.n_unknowns == individual.n_unknowns
    assert batched.model_name == individual.model_name
    assert batched.metadata == individual.metadata


class TestFEMReferenceBatch:
    def powers(self, base, scales=(0.5, 1.0, 1.5)):
        return [base.scaled(s) for s in scales]

    def test_axisym_batch_identical_to_per_point(self):
        cfg = fig5_config(1.0)
        model = FEMReference("coarse")
        powers = self.powers(cfg.power)
        batched = model.solve_batch(cfg.stack, cfg.via, powers)
        for result, power in zip(batched, powers):
            assert_results_identical(result, model.solve(cfg.stack, cfg.via, power))

    def test_axisym_cluster_batch_identical(self):
        cfg = fig5_config(1.0)
        model = FEMReference("coarse")
        cluster = TSVCluster(cfg.via, 4)
        powers = self.powers(cfg.power, (0.5, 1.25))
        batched = model.solve_batch(cfg.stack, cluster, powers)
        for result, power in zip(batched, powers):
            assert_results_identical(result, model.solve(cfg.stack, cluster, power))

    def test_cartesian_batch_identical_to_per_point(self):
        cfg = fig5_config(1.0)
        model = FEMReference((10, 10, 20), solver="cartesian")
        powers = self.powers(cfg.power, (0.75, 1.0))
        batched = model.solve_batch(cfg.stack, cfg.via, powers)
        for result, power in zip(batched, powers):
            assert_results_identical(result, model.solve(cfg.stack, cfg.via, power))

    def test_network_model_default_batch_loops_solve(self):
        cfg = fig5_config(1.0)
        model = make_model("a:paper")
        powers = self.powers(cfg.power)
        batched = model.solve_batch(cfg.stack, cfg.via, powers)
        for result, power in zip(batched, powers):
            single = model.solve(cfg.stack, cfg.via, power)
            assert result.max_rise == single.max_rise
            assert result.plane_rises == single.plane_rises

    def test_empty_batch(self):
        cfg = fig5_config(1.0)
        assert FEMReference("coarse").solve_batch(cfg.stack, cfg.via, []) == []

    def test_batch_validates_geometry(self):
        from repro.errors import GeometryError
        from repro.geometry import paper_tsv

        cfg = fig5_config(1.0)
        huge = paper_tsv(radius=cfg.stack.footprint_side)  # cannot fit
        with pytest.raises(GeometryError):
            FEMReference("coarse").solve_batch(
                cfg.stack, huge, self.powers(cfg.power)
            )


class TestAssemblyKey:
    def test_power_independent(self):
        cfg = fig5_config(1.0)
        model = FEMReference("coarse")
        key = model.assembly_key(cfg.stack, cfg.via)
        assert key is not None
        # the key ignores power entirely (it has no power argument); two
        # sweep points differing only in power share it by construction
        assert key == model.assembly_key(cfg.stack, cfg.via)

    def test_geometry_and_resolution_change_key(self):
        cfg1, cfg2 = fig5_config(1.0), fig5_config(2.0)
        model = FEMReference("coarse")
        assert model.assembly_key(cfg1.stack, cfg1.via) != model.assembly_key(
            cfg2.stack, cfg2.via
        )
        assert FEMReference("coarse").assembly_key(
            cfg1.stack, cfg1.via
        ) != FEMReference("medium").assembly_key(cfg1.stack, cfg1.via)

    def test_cluster_normalisation(self):
        cfg = fig5_config(1.0)
        model = FEMReference("coarse")
        assert model.assembly_key(cfg.stack, cfg.via) == model.assembly_key(
            cfg.stack, TSVCluster(cfg.via, 1)
        )
        assert model.assembly_key(cfg.stack, cfg.via) != model.assembly_key(
            cfg.stack, TSVCluster(cfg.via, 4)
        )

    def test_lumped_network_models_opt_out(self):
        # Model A and the 1-D baseline stay per-point; Model B's π-segment
        # matrix is power-independent and declares an assembly since PR 5
        cfg = fig5_config(1.0)
        for spec in ("a:paper", "1d"):
            assert make_model(spec).assembly_key(cfg.stack, cfg.via) is None
        assert make_model("b:10").assembly_key(cfg.stack, cfg.via) is not None

    def test_model_b_assembly_key_semantics(self):
        cfg1, cfg2 = fig5_config(1.0), fig5_config(2.0)
        model = make_model("b:10")
        # power-independent, geometry- and configuration-dependent
        assert model.assembly_key(cfg1.stack, cfg1.via) == make_model(
            "b:10"
        ).assembly_key(cfg1.stack, cfg1.via)
        assert model.assembly_key(cfg1.stack, cfg1.via) != model.assembly_key(
            cfg2.stack, cfg2.via
        )
        assert model.assembly_key(cfg1.stack, cfg1.via) != make_model(
            "b:20"
        ).assembly_key(cfg1.stack, cfg1.via)
        # cluster-normalised like the FEM keys
        assert model.assembly_key(cfg1.stack, cfg1.via) == model.assembly_key(
            cfg1.stack, TSVCluster(cfg1.via, 1)
        )


class TestMatrixGroupTask:
    def _group(self, powers):
        cfg = fig5_config(1.0)
        return MatrixGroupTask(
            index=0,
            stack=cfg.stack,
            via=cfg.via,
            model=FEMReference("coarse"),
            powers=tuple(cfg.power.scaled(s) for s in powers),
        )

    def test_serial_executor_solves_groups(self):
        task = self._group((0.5, 1.0))
        ((out_task, results),) = list(SerialExecutor().submit_stream([task]))
        assert out_task is task
        assert len(results) == 2
        assert results[0].max_rise < results[1].max_rise

    def test_parallel_executor_solves_groups(self):
        task = self._group((0.5, 1.0))
        serial = SerialExecutor().run_tasks([task])
        parallel = ParallelExecutor(2).run_tasks([task, self._group((1.5, 2.0))])
        assert [r.max_rise for r in parallel[0]] == [
            r.max_rise for r in serial[0]
        ]

    def test_parallel_executor_splits_large_groups(self):
        # a lone big group must not serialise onto one worker: the
        # executor splits it into per-worker RHS sub-blocks with offsets
        task = self._group((0.5, 0.75, 1.0, 1.25, 1.5))
        executor = ParallelExecutor(2)
        sub_tasks = executor._split_groups([task])
        assert len(sub_tasks) == 2
        assert [t.offset for t in sub_tasks] == [0, 3]
        assert sum(len(t.powers) for t in sub_tasks) == 5
        # streamed results realign with the original member order
        landed = {}
        for sub, results in executor.submit_stream([task]):
            for i, result in enumerate(results):
                landed[sub.offset + i] = result.max_rise
        serial = SerialExecutor().run_tasks([task])[0]
        assert [landed[i] for i in range(5)] == [r.max_rise for r in serial]

    def test_no_split_when_pool_already_saturated(self):
        # two groups with jobs=2: workers are busy either way, and every
        # extra sub-block would re-factorise in a cold worker for nothing
        tasks = [self._group((0.5, 1.0, 1.5)), self._group((2.0, 2.5))]
        assert ParallelExecutor(2)._split_groups(tasks) == tasks

    def test_split_fills_idle_workers_only(self):
        task = self._group((0.5, 0.75, 1.0, 1.25, 1.5, 1.75))
        sub_tasks = ParallelExecutor(3)._split_groups([task])
        assert len(sub_tasks) == 3
        assert [t.offset for t in sub_tasks] == [0, 2, 4]

    def test_serial_executor_never_splits(self):
        task = self._group((0.5, 1.0, 1.5))
        ((out_task, results),) = list(SerialExecutor().submit_stream([task]))
        assert out_task is task and len(results) == 3


class TestGroupedScheduling:
    def test_grouping_counters(self):
        spec = power_scale_spec(values=(0.5, 1.0, 1.5, 2.0))
        perf.reset()
        run_scenario(spec)
        counters = perf.stats()["counters"]
        # the four fem reference solves share one matrix; the 1d solves
        # opt out of grouping
        assert counters["plan_matrix_groups"] == 1
        assert counters["plan_grouped_solves"] == 4
        assert counters["plan_point_solves"] == 8

    def test_no_grouping_when_disabled(self):
        perf.reset()
        run_scenario(power_scale_spec(), group_matrices=False)
        counters = perf.stats()["counters"]
        assert counters.get("plan_matrix_groups", 0) == 0

    def test_geometry_sweep_has_no_groups(self):
        perf.reset()
        run_scenario(
            power_scale_spec(
                scenario_id="radius_sweep",
                axis=AxisSpec(parameter="radius_um", values=(3.0, 5.0)),
            )
        )
        assert perf.stats()["counters"].get("plan_matrix_groups", 0) == 0

    @staticmethod
    def _strip_wallclock(payload):
        """Drop wall-clock runtimes: two live runs always differ there."""
        payload.pop("runtimes_ms")
        table_rows = payload.get("metadata", {}).get("table_rows")
        if table_rows:  # table1: [model, max%, avg%, time ms] — drop time
            payload["metadata"]["table_rows"] = [
                row[:3] for row in table_rows
            ]
        return payload

    @pytest.mark.parametrize(
        "scenario_id",
        ["fig4", "fig5", "fig6", "fig7", "table1", "fem3d_power"],
    )
    def test_builtin_grouped_vs_ungrouped_byte_identical(self, scenario_id):
        # fem3d_power keeps its own (small) explicit mesh; the classic
        # figures drop to the coarse preset for speed
        resolution = None if scenario_id == "fem3d_power" else "coarse"
        perf.reset()
        grouped = run_scenario(
            scenario_id, fast=True, fem_resolution=resolution
        )
        perf.reset()
        ungrouped = run_scenario(
            scenario_id, fast=True, fem_resolution=resolution,
            group_matrices=False,
        )
        pg = self._strip_wallclock(grouped.result.to_payload())
        pu = self._strip_wallclock(ungrouped.result.to_payload())
        # both runs solved live, so wall-clock runtimes were dropped;
        # everything numeric must match bit-for-bit
        assert json.dumps(pg, sort_keys=True) == json.dumps(pu, sort_keys=True)

    def test_group_dispatch_under_jobs_identical(self):
        spec = power_scale_spec(values=(0.5, 1.0, 1.5, 2.0))
        perf.reset()
        serial = run_scenario(spec).result
        perf.reset()
        parallel = run_scenario(spec, executor=ParallelExecutor(2)).result
        assert serial.series == parallel.series  # exact float equality
        assert serial.errors == parallel.errors

    def test_grouped_nodes_land_in_result_cache_and_store(self, tmp_path):
        from repro.scenarios import RunStore

        spec = power_scale_spec()
        store = RunStore(tmp_path / "store")
        perf.reset()
        run_scenario(spec, store=store)
        # every node (grouped fem + ungrouped 1d) persisted
        from repro.scenarios.plan import compile_plan

        plan = compile_plan([spec.resolved()])
        assert len(store.point_keys()) == plan.stats["nodes_total"]
        # a rerun without the run-level artifact is served from the result
        # cache the grouped solves populated (counters zeroed, caches kept)
        from repro.perf.stats import reset_counters

        (tmp_path / "store" / "manifest.json").unlink()
        for path in (tmp_path / "store" / "objects").glob("*.json"):
            path.unlink()
        reset_counters()
        run_scenario(spec, store=RunStore(tmp_path / "store"))
        assert perf.stats()["counters"].get("plan_point_solves", 0) == 0


class TestFem3dScenario:
    def test_registered(self):
        assert "fem3d_power" in SCENARIOS.ids()
        spec = SCENARIOS.get("fem3d_power")
        assert spec.reference.startswith("fem3d:")
        assert spec.axis.parameter == "power_scale"

    def test_planned_matches_eager(self):
        perf.reset()
        eager = _run_scenario_eager("fem3d_power", fast=True)
        perf.reset()
        planned = run_scenario("fem3d_power", fast=True)
        assert planned.result.series == eager.result.series
        assert planned.result.errors == eager.result.errors
        assert "fem3d" in planned.result.series

    def test_power_scale_series_scales_linearly(self):
        run = run_scenario("fem3d_power", fast=True)
        values = run.result.x_values
        fem = run.result.series["fem3d"]
        # steady-state conduction is linear in the heat load
        ratio = fem[1] / fem[0]
        assert ratio == pytest.approx(values[1] / values[0], rel=1e-9)


class TestCalibrationFitCache:
    def cal_spec(self, scenario_id="fit_cache_sweep"):
        return power_scale_spec(
            scenario_id=scenario_id,
            axis=AxisSpec(parameter="radius_um", values=(3.0, 5.0)),
            calibrate=True,
            calibration_samples=2,
        )

    def test_planned_repeat_skips_fit(self):
        spec = self.cal_spec()
        perf.reset()
        run_scenario(spec)
        counters = perf.stats()["counters"]
        assert counters["calibration_fit_misses"] == 1
        assert counters["plan_calibrations"] == 1
        run_scenario(spec)
        counters = perf.stats()["counters"]
        assert counters["calibration_fit_hits"] == 1
        assert counters["plan_calibrations"] == 1  # the fit did not rerun

    def test_eager_repeat_skips_fit(self):
        spec = self.cal_spec("fit_cache_eager")
        perf.reset()
        first = _run_scenario_eager(spec)
        assert perf.stats()["counters"]["calibration_fit_misses"] == 1
        second = _run_scenario_eager(spec)
        counters = perf.stats()["counters"]
        assert counters["calibration_fit_hits"] == 1
        assert first.result.series == second.result.series

    def test_fit_cached_across_eager_and_planned(self):
        spec = self.cal_spec("fit_cache_cross")
        perf.reset()
        eager = _run_scenario_eager(spec)
        planned = run_scenario(spec)
        counters = perf.stats()["counters"]
        assert counters["calibration_fit_misses"] == 1
        assert counters["calibration_fit_hits"] == 1
        assert counters.get("plan_calibrations", 0) == 0  # served from cache
        assert planned.result.series == eager.result.series

    def test_disabled_result_cache_disables_fit_cache(self):
        spec = self.cal_spec("fit_cache_disabled")
        perf.reset()
        perf.configure(result_cache_size=0)
        try:
            run_scenario(spec)
            run_scenario(spec)
        finally:
            perf.configure(result_cache_size=256)
        assert perf.stats()["counters"]["plan_calibrations"] == 2

    def test_key_helpers_propagate_none(self):
        from repro.perf import calibration_fit_key, calibration_key

        assert calibration_key(None, ("a",), "m") is None
        assert calibration_key("ref", ("a", None), "m") is None
        assert calibration_fit_key(None) is None
        key = calibration_key("ref", ("a", "b"), "m")
        assert key is not None and calibration_fit_key(key) != key


class TestPowerScaleAxis:
    def test_axis_accepts_power_scale(self):
        axis = AxisSpec(parameter="power_scale", values=(0.5, 1.0))
        assert axis.x_label == "power scale"
        with pytest.raises(ValidationError):
            AxisSpec(parameter="power_scale", values=(0.0,))

    def test_spec_round_trips(self):
        spec = power_scale_spec()
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.content_hash() == spec.content_hash()

    def test_configurator_scales_power_only(self):
        spec = power_scale_spec(values=(0.5, 2.0)).resolved()
        configure = _configurator(spec)
        stack1, via1, power1 = configure(0.5)
        stack2, via2, power2 = configure(2.0)
        assert stack1 == stack2 and via1 == via2
        assert power2.device_power_density == pytest.approx(
            4.0 * power1.device_power_density
        )

    def test_power_spec_scaled(self):
        base = PowerSpec(
            plane_powers=(70.0, 7.0, 7.0), ild_fraction=0.2,
        )
        scaled = base.scaled(0.5)
        assert scaled.plane_powers == (35.0, 3.5, 3.5)
        assert scaled.ild_fraction == 0.2
        assert PowerSpec().scaled(2.0).device_power_density == pytest.approx(
            2.0 * PowerSpec().device_power_density
        )
        with pytest.raises(ValidationError):
            base.scaled(-1.0)
        with pytest.raises(ValidationError):
            base.scaled(True)
