"""Sensitivity analysis: signs must match the paper's Section IV findings."""

import pytest

from repro import PowerSpec, paper_stack, paper_tsv
from repro.analysis import sensitivity, sensitivity_table
from repro.errors import ValidationError
from repro.units import um


@pytest.fixture()
def operating_point():
    stack = paper_stack(t_si_upper=um(45), t_ild=um(7), t_bond=um(1))
    return stack, paper_tsv(radius=um(5), liner_thickness=um(1)), PowerSpec()


class TestSigns:
    def test_radius_cools(self, operating_point):
        s = sensitivity(*operating_point, "radius")
        assert s.direction == "cools"
        assert s.derivative < 0.0

    def test_liner_heats(self, operating_point):
        s = sensitivity(*operating_point, "liner_thickness")
        assert s.direction == "heats"

    def test_substrate_sign_flips_across_the_fig6_minimum(self):
        via = paper_tsv(radius=um(8), liner_thickness=um(1))
        power = PowerSpec()
        thin = paper_stack(t_si_upper=um(8), t_ild=um(7), t_bond=um(1))
        thick = paper_stack(t_si_upper=um(70), t_ild=um(7), t_bond=um(1))
        s_thin = sensitivity(thin, via, power, "substrate_thickness")
        s_thick = sensitivity(thick, via, power, "substrate_thickness")
        assert s_thin.direction == "cools"   # thinning past the optimum heats
        assert s_thick.direction == "heats"  # thickening past it also heats


class TestMechanics:
    def test_normalised_is_elasticity(self, operating_point):
        stack, via, power = operating_point
        s = sensitivity(stack, via, power, "radius")
        assert s.normalised == pytest.approx(
            s.derivative * via.radius
            / __import__("repro").ModelA().solve(stack, via, power).max_rise,
            rel=1e-9,
        )

    def test_unknown_parameter(self, operating_point):
        with pytest.raises(ValidationError):
            sensitivity(*operating_point, "bond_flavour")

    def test_table_covers_all_parameters(self, operating_point):
        table = sensitivity_table(*operating_point)
        names = {s.parameter for s in table}
        assert names == {"radius", "liner_thickness", "substrate_thickness"}

    def test_step_affects_nothing_to_first_order(self, operating_point):
        s_small = sensitivity(*operating_point, "radius", step=0.01)
        s_large = sensitivity(*operating_point, "radius", step=0.05)
        assert s_small.derivative == pytest.approx(s_large.derivative, rel=0.05)

    def test_custom_model(self, operating_point):
        from repro import Model1D

        s = sensitivity(*operating_point, "liner_thickness", model=Model1D())
        # the 1-D model barely sees the liner
        assert abs(s.normalised) < 0.02
