"""End-to-end integration: public API workflows a downstream user would run."""

import pytest

from repro import (
    Model1D,
    ModelA,
    ModelB,
    PowerSpec,
    TSVCluster,
    make_model,
    paper_stack,
    paper_tsv,
    sweep,
)
from repro.analysis import export_series_csv, read_series_csv, series_errors
from repro.calibration import fit_coefficients, radius_sweep_samples
from repro.fem import FEMReference
from repro.units import um


class TestFullWorkflow:
    def test_calibrate_then_design(self, block_stack, block_power):
        """The intended usage loop: calibrate once on FEM, then sweep
        designs with the cheap analytical model."""
        base = paper_tsv(radius=um(5), liner_thickness=um(1))
        samples = radius_sweep_samples(
            block_stack, base, block_power, [um(3), um(6), um(12)]
        )
        fem = FEMReference("coarse")
        fit = fit_coefficients(samples, fem)
        model = ModelA(fit.coefficients)

        # now a 20-point design scan at analytic cost
        radii = [um(r) for r in range(2, 21)]
        rises = [
            model.solve(block_stack, base.with_radius(r), block_power).max_rise
            for r in radii
        ]
        assert rises == sorted(rises, reverse=True)
        # spot-check a non-calibration point against FEM
        probe = fem.solve(block_stack, base.with_radius(um(9)), block_power)
        mid = model.solve(block_stack, base.with_radius(um(9)), block_power)
        assert mid.max_rise == pytest.approx(probe.max_rise, rel=0.08)

    def test_sweep_export_roundtrip(self, block_stack, block_power, tmp_path):
        def configure(r_um):
            via = paper_tsv(radius=um(r_um), liner_thickness=um(1))
            return block_stack, via, block_power

        result = sweep(
            "radius", [3.0, 6.0, 12.0], [ModelA(), ModelB(50), Model1D()], configure
        )
        series = {name: result.series(name) for name in result.model_names}
        path = export_series_csv(tmp_path / "sweep.csv", "radius", result.values, series)
        label, xs, back = read_series_csv(path)
        assert label == "radius"
        assert back["model_a"] == pytest.approx(series["model_a"])

    def test_factory_models_interchangeable(self, block_stack, block_tsv, block_power):
        for spec in ("a", "b:50", "1d"):
            result = make_model(spec).solve(block_stack, block_tsv, block_power)
            assert result.max_rise > 0
            assert len(result.plane_rises) == 3

    def test_cluster_against_explicit_cartesian(self, block_power):
        """Unit-cell axisym FEM vs full 3-D Cartesian with explicit vias:
        the two independent discretisations must agree on the trend and
        roughly on magnitude."""
        stack = paper_stack(t_si_upper=um(20), t_ild=um(4), t_bond=um(1))
        via = paper_tsv(radius=um(10), liner_thickness=um(1))
        cluster = TSVCluster(via, 4)
        axi = FEMReference("coarse").solve(stack, cluster, block_power)
        cart = FEMReference((20, 20, 40), solver="cartesian").solve(
            stack, cluster, block_power
        )
        assert cart.max_rise == pytest.approx(axi.max_rise, rel=0.15)

    def test_absolute_temperature_readout(self, block_stack, block_tsv, block_power):
        result = ModelA().solve(block_stack, block_tsv, block_power)
        assert result.max_temperature == pytest.approx(27.0 + result.max_rise)
