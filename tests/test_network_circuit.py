"""ThermalCircuit: stamping, validation, solving, conservation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import NetworkError
from repro.network import GROUND, ThermalCircuit


def ladder(n: int, r: float = 1.0, q: float = 1.0) -> ThermalCircuit:
    """A simple n-node series ladder to ground with heat at the far end."""
    circuit = ThermalCircuit()
    prev = GROUND
    for i in range(n):
        circuit.add_resistor(prev, f"n{i}", r)
        prev = f"n{i}"
    circuit.add_source(prev, q)
    return circuit


class TestConstruction:
    def test_nodes_created_implicitly(self):
        c = ThermalCircuit()
        c.add_resistor("a", "b", 1.0)
        assert set(c.nodes) == {"a", "b"}

    def test_ground_not_a_node(self):
        c = ThermalCircuit()
        c.add_resistor("a", GROUND, 1.0)
        assert c.nodes == ["a"]

    def test_self_loop_rejected(self):
        c = ThermalCircuit()
        with pytest.raises(NetworkError):
            c.add_resistor("a", "a", 1.0)

    def test_non_positive_resistance_rejected(self):
        c = ThermalCircuit()
        with pytest.raises(Exception):
            c.add_resistor("a", "b", 0.0)

    def test_source_into_ground_rejected(self):
        c = ThermalCircuit()
        with pytest.raises(NetworkError):
            c.add_source(GROUND, 1.0)

    def test_node_index_unknown(self):
        c = ThermalCircuit()
        c.add_resistor("a", GROUND, 1.0)
        with pytest.raises(NetworkError):
            c.node_index("zzz")


class TestValidation:
    def test_floating_node_detected(self):
        c = ThermalCircuit()
        c.add_resistor("a", GROUND, 1.0)
        c.add_resistor("x", "y", 1.0)  # island
        with pytest.raises(NetworkError, match="no path to ground"):
            c.validate()

    def test_empty_circuit_rejected(self):
        with pytest.raises(NetworkError):
            ThermalCircuit().validate()

    def test_connected_circuit_passes(self):
        ladder(5).validate()


class TestSolve:
    def test_single_resistor(self):
        c = ThermalCircuit()
        c.add_resistor("a", GROUND, 2.0)
        c.add_source("a", 3.0)
        assert c.solve()["a"] == pytest.approx(6.0)

    def test_series_ladder(self):
        # q=1 W through 3 series 1-K/W resistors: T = 3, 2, 1 from the top
        sol = ladder(3).solve()
        assert sol["n0"] == pytest.approx(1.0)
        assert sol["n1"] == pytest.approx(2.0)
        assert sol["n2"] == pytest.approx(3.0)

    def test_parallel_resistors(self):
        c = ThermalCircuit()
        c.add_resistor("a", GROUND, 2.0)
        c.add_resistor("a", GROUND, 2.0)
        c.add_source("a", 1.0)
        assert c.solve()["a"] == pytest.approx(1.0)

    def test_ground_reads_zero(self):
        sol = ladder(2).solve()
        assert sol[GROUND] == 0.0

    def test_unknown_node_in_solution(self):
        sol = ladder(2).solve()
        with pytest.raises(NetworkError):
            sol["missing"]

    def test_max_rise_and_hottest_node(self):
        sol = ladder(4).solve()
        assert sol.max_rise == pytest.approx(4.0)
        assert sol.hottest_node == "n3"

    def test_negative_source_cools(self):
        c = ThermalCircuit()
        c.add_resistor("a", GROUND, 1.0)
        c.add_source("a", -2.0)
        assert c.solve()["a"] == pytest.approx(-2.0)

    def test_energy_conservation(self):
        c = ladder(6, r=0.7, q=2.5)
        c.add_resistor("n5", GROUND, 3.0)  # extra parallel path
        sol = c.solve()
        assert sol.sink_heat() == pytest.approx(2.5, rel=1e-10)

    def test_heat_flow_through_edge(self):
        sol = ladder(3).solve()
        assert sol.heat_flow("n2", "n1") == pytest.approx(1.0)
        assert sol.heat_flow("n1", "n2") == pytest.approx(-1.0)

    def test_heat_flow_requires_edge(self):
        sol = ladder(3).solve()
        with pytest.raises(NetworkError):
            sol.heat_flow("n0", "n2")

    def test_superposition(self):
        c1 = ladder(4, q=1.0)
        c2 = ladder(4, q=2.0)
        c3 = ladder(4, q=3.0)
        t1 = c1.solve()["n3"]
        t2 = c2.solve()["n3"]
        t3 = c3.solve()["n3"]
        assert t1 + t2 == pytest.approx(t3)


class TestMatrixAssembly:
    def test_matrix_is_symmetric(self):
        c = ladder(8)
        c.add_resistor("n2", "n6", 0.5)
        g = c.conductance_matrix(sparse=False)
        assert np.allclose(g, g.T)

    def test_sparse_dense_agree(self):
        c = ladder(10)
        dense = c.conductance_matrix(sparse=False)
        sparse = c.conductance_matrix(sparse=True)
        assert sp.issparse(sparse)
        assert np.allclose(dense, sparse.toarray())

    def test_diagonal_dominance(self):
        c = ladder(5)
        c.add_resistor("n1", "n3", 2.0)
        g = c.conductance_matrix(sparse=False)
        off = np.abs(g).sum(axis=1) - np.abs(np.diag(g))
        assert np.all(np.diag(g) >= off - 1e-12)

    def test_source_vector_accumulates(self):
        c = ThermalCircuit()
        c.add_resistor("a", GROUND, 1.0)
        c.add_source("a", 1.0)
        c.add_source("a", 2.5)
        assert c.source_vector()[c.node_index("a")] == pytest.approx(3.5)

    def test_large_ladder_sparse_path(self):
        # exceeds the dense cutoff; exercises the sparse solver
        sol = ladder(500).solve()
        assert sol["n499"] == pytest.approx(500.0)


class TestResistorAdjacency:
    def test_in_place_replacement_invalidates_index(self):
        """Replacing a resistor in the public list (same length) must not
        serve stale conductances from the adjacency index."""
        from repro.network import GROUND, ThermalCircuit

        circuit = ThermalCircuit()
        circuit.add_resistor(GROUND, "a", 2.0)
        circuit.add_source("a", 1.0)
        first = circuit.solve()
        flow_before = first.heat_flow("a", GROUND)

        from repro.network.elements import Resistor

        circuit.resistors[0] = Resistor(GROUND, "a", 4.0, "")
        second = circuit.solve()
        flow_after = second.heat_flow("a", GROUND)
        # both flows equal the injected 1 W, but via different conductances,
        # which only works if the index was rebuilt after the replacement
        assert flow_before == pytest.approx(1.0)
        assert flow_after == pytest.approx(1.0)
        assert second["a"] == pytest.approx(first["a"] * 2.0)

    def test_validate_uses_fresh_index_after_append(self):
        from repro.errors import NetworkError
        from repro.network import GROUND, ThermalCircuit

        circuit = ThermalCircuit()
        circuit.add_resistor(GROUND, "a", 1.0)
        circuit.validate()
        circuit.add_resistor("b", "c", 1.0)  # floating pair
        with pytest.raises(NetworkError):
            circuit.validate()
