"""Sweep executors: parallel results must match serial bit-for-bit."""

import pytest

from repro import Model1D, ModelA, perf, paper_tsv, sweep
from repro.errors import ValidationError
from repro.experiments import fig5_liner, fig7_cluster
from repro.perf import (
    ParallelExecutor,
    PointTask,
    SerialExecutor,
    get_executor,
    solve_task,
)
from repro.units import um


@pytest.fixture(autouse=True)
def _cold_caches():
    """Serial/parallel comparisons must not short-circuit through caches."""
    perf.reset()
    yield
    perf.reset()


def _exact_equal(a, b):
    """Bitwise equality of two experiment results (series + planes)."""
    assert a.x_values == b.x_values
    assert a.series == b.series  # float lists compared exactly, not approx
    for pa, pb in zip(a.sweep_result.points, b.sweep_result.points):
        for name in pa.results:
            assert pa.results[name].plane_rises == pb.results[name].plane_rises
            assert pa.results[name].max_rise == pb.results[name].max_rise


class TestExecutors:
    def test_get_executor_dispatch(self):
        assert isinstance(get_executor(None), SerialExecutor)
        assert isinstance(get_executor(1), SerialExecutor)
        assert isinstance(get_executor(3), ParallelExecutor)
        assert get_executor(3).jobs == 3

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValidationError):
            ParallelExecutor(0)
        with pytest.raises(ValidationError):
            ParallelExecutor(2, chunksize=0)

    def test_solve_task_runs_all_models(self, block_stack, block_power):
        task = PointTask(
            index=0,
            value=5.0,
            stack=block_stack,
            via=paper_tsv(radius=um(5), liner_thickness=um(1)),
            power=block_power,
            models=(ModelA(), Model1D()),
        )
        out = solve_task(task)
        assert set(out) == {"model_a", "model_1d"}
        assert all(r.max_rise > 0 for r in out.values())

    def _tasks(self, block_stack, block_power, n=4):
        return [
            PointTask(
                index=i,
                value=r,
                stack=block_stack,
                via=paper_tsv(radius=um(r), liner_thickness=um(1)),
                power=block_power,
                models=(Model1D(),),
            )
            for i, r in enumerate([2.0, 4.0, 6.0, 8.0][:n])
        ]

    def test_serial_submit_stream_matches_run_tasks(self, block_stack, block_power):
        tasks = self._tasks(block_stack, block_power)
        streamed = list(SerialExecutor().submit_stream(tasks))
        batch = SerialExecutor().run_tasks(tasks)
        assert [t.index for t, _ in streamed] == [0, 1, 2, 3]  # in order
        for (_, solved), expected in zip(streamed, batch):
            assert solved["model_1d"].max_rise == expected["model_1d"].max_rise

    def test_parallel_submit_stream_complete_and_identical(
        self, block_stack, block_power
    ):
        tasks = self._tasks(block_stack, block_power)
        streamed = dict(
            (t.index, solved)
            for t, solved in ParallelExecutor(2).submit_stream(tasks)
        )
        batch = SerialExecutor().run_tasks(tasks)
        assert sorted(streamed) == [0, 1, 2, 3]  # every task lands once
        for i, expected in enumerate(batch):
            assert streamed[i]["model_1d"].max_rise == expected["model_1d"].max_rise

    def test_default_submit_stream_covers_custom_executors(
        self, block_stack, block_power
    ):
        from repro.perf import SweepExecutor

        class BatchOnly(SweepExecutor):
            def run_tasks(self, tasks):
                return [solve_task(t) for t in tasks]

        tasks = self._tasks(block_stack, block_power, n=2)
        streamed = list(BatchOnly().submit_stream(tasks))
        assert [t.index for t, _ in streamed] == [0, 1]
        assert all(solved["model_1d"].max_rise > 0 for _, solved in streamed)

    def test_parallel_single_task_stays_serial(self, block_stack, block_power):
        # one task never pays pool startup; exercised via the sweep API
        def configure(r_um):
            return block_stack, paper_tsv(radius=um(r_um), liner_thickness=um(1)), block_power

        result = sweep(
            "radius", [5.0], [Model1D()], configure,
            executor=ParallelExecutor(4), cache=False,
        )
        assert result.series("model_1d")[0] > 0


class TestParallelEqualsSerial:
    def test_sweep_equality_network_models(self, block_stack, block_power):
        """Exact array equality, serial vs 2 worker processes."""

        def configure(r_um):
            return block_stack, paper_tsv(radius=um(r_um), liner_thickness=um(1)), block_power

        models = [ModelA(), Model1D()]
        values = [2.0, 5.0, 10.0, 15.0]
        serial = sweep("radius", values, models, configure, cache=False)
        parallel = sweep(
            "radius", values, models, configure,
            executor=ParallelExecutor(2), cache=False,
        )
        assert serial.values == parallel.values
        for name in ("model_a", "model_1d"):
            assert serial.series(name) == parallel.series(name)

    def test_fig5_sweep_equality(self):
        """Fig. 5 liner sweep: parallel run is byte-identical to serial."""
        perf.reset()
        serial = fig5_liner.run(
            fem_resolution="coarse", fast=True, calibrate=False,
            segment_counts=(20,),
        )
        perf.reset()
        parallel = fig5_liner.run(
            fem_resolution="coarse", fast=True, calibrate=False,
            segment_counts=(20,), jobs=2,
        )
        _exact_equal(serial, parallel)

    def test_fig7_sweep_equality(self):
        """Fig. 7 cluster sweep: parallel run is byte-identical to serial."""
        perf.reset()
        serial = fig7_cluster.run(
            fem_resolution="coarse", fast=True, calibrate=False
        )
        perf.reset()
        parallel = fig7_cluster.run(
            fem_resolution="coarse", fast=True, calibrate=False, jobs=3
        )
        _exact_equal(serial, parallel)

    def test_warm_cache_rerun_identical(self):
        """A cache-warm rerun returns the same numbers as the cold run."""
        perf.reset()
        cold = fig7_cluster.run(fem_resolution="coarse", fast=True, calibrate=False)
        warm = fig7_cluster.run(fem_resolution="coarse", fast=True, calibrate=False)
        _exact_equal(cold, warm)
        assert perf.result_cache.stats()["hits"] > 0


class TestSweepEngineContract:
    def test_model_order_preserved_with_partial_cache_hits(
        self, block_stack, block_power
    ):
        """Cached and fresh results merge back in model declaration order."""

        def configure(r_um):
            return block_stack, paper_tsv(radius=um(r_um), liner_thickness=um(1)), block_power

        # prime only model_1d's entries
        sweep("radius", [2.0, 5.0], [Model1D()], configure)
        result = sweep("radius", [2.0, 5.0], [ModelA(), Model1D()], configure)
        assert result.model_names == ["model_a", "model_1d"]

    def test_empty_values_still_rejected(self, block_stack, block_power):
        def configure(v):
            return block_stack, paper_tsv(), block_power

        with pytest.raises(ValidationError):
            sweep("x", [], [ModelA()], configure)
