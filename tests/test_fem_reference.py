"""FEMReference facade: presets, agreement with Model B, unit cells."""

import pytest

from repro import ModelB, TSVCluster, paper_tsv
from repro.errors import ValidationError
from repro.fem import FEMReference
from repro.units import um


class TestConstruction:
    def test_presets(self):
        assert FEMReference("coarse").resolution == (24, 60)
        assert FEMReference("fine").resolution == (56, 140)

    def test_explicit_resolution(self):
        assert FEMReference((20, 50)).resolution == (20, 50)

    def test_unknown_preset(self):
        with pytest.raises(ValidationError):
            FEMReference("ultra")

    def test_wrong_tuple_length(self):
        with pytest.raises(ValidationError):
            FEMReference((10, 10, 10), solver="axisym")

    def test_unknown_solver(self):
        with pytest.raises(ValidationError):
            FEMReference(solver="spectral")

    def test_names(self):
        assert FEMReference().name == "fem"
        assert FEMReference("coarse", solver="cartesian").name == "fem3d"


class TestSolutions:
    def test_tracks_model_b(self, block_stack, block_tsv, block_power):
        fem = FEMReference("coarse").solve(block_stack, block_tsv, block_power)
        model_b = ModelB(100).solve(block_stack, block_tsv, block_power)
        assert fem.max_rise == pytest.approx(model_b.max_rise, rel=0.12)

    def test_mesh_refinement_moves_little(self, block_stack, block_tsv, block_power):
        coarse = FEMReference("coarse").solve(block_stack, block_tsv, block_power)
        medium = FEMReference("medium").solve(block_stack, block_tsv, block_power)
        assert medium.max_rise == pytest.approx(coarse.max_rise, rel=0.05)

    def test_plane_rises_increase_upward(self, block_stack, block_tsv, block_power):
        result = FEMReference("coarse").solve(block_stack, block_tsv, block_power)
        assert list(result.plane_rises) == sorted(result.plane_rises)

    def test_cluster_unit_cell_reduction(self, thin_stack, block_power):
        via = paper_tsv(radius=um(10), liner_thickness=um(1))
        single = FEMReference("coarse").solve(thin_stack, via, block_power)
        clustered = FEMReference("coarse").solve(
            thin_stack, TSVCluster(via, 4), block_power
        )
        assert clustered.max_rise < single.max_rise
        assert clustered.metadata["unit_cell"] is True

    def test_metadata_mesh_shape(self, block_stack, block_tsv, block_power):
        result = FEMReference("coarse").solve(block_stack, block_tsv, block_power)
        assert result.metadata["nr"] >= 24
        assert result.n_unknowns == result.metadata["nr"] * result.metadata["nz"]
