"""Conduction primitives: slabs, cylinders, shells, combinators."""

import math

import pytest

from repro.errors import ValidationError
from repro.resistances import (
    annulus_axial_resistance,
    cylinder_axial_resistance,
    cylindrical_shell_resistance,
    parallel,
    series,
    slab_resistance,
)
from repro.units import um


class TestSlab:
    def test_value(self):
        assert slab_resistance(um(7), 1.4, 1e-8) == pytest.approx(um(7) / (1.4 * 1e-8))

    def test_scales_linearly_with_thickness(self):
        r1 = slab_resistance(um(1), 148.0, 1e-8)
        r2 = slab_resistance(um(2), 148.0, 1e-8)
        assert r2 == pytest.approx(2 * r1)

    def test_rejects_bad_inputs(self):
        with pytest.raises(Exception):
            slab_resistance(0.0, 1.0, 1.0)


class TestCylinder:
    def test_value(self):
        r = cylinder_axial_resistance(um(50), 400.0, um(5))
        assert r == pytest.approx(um(50) / (400.0 * math.pi * um(5) ** 2))

    def test_quarters_when_radius_doubles(self):
        r1 = cylinder_axial_resistance(um(50), 400.0, um(5))
        r2 = cylinder_axial_resistance(um(50), 400.0, um(10))
        assert r1 == pytest.approx(4 * r2)


class TestShell:
    def test_matches_eq9_closed_form(self):
        # Eq. (9): ln((r+tL)/r) / (2 pi kL L)
        r, tl, h = um(5), um(0.5), um(8)
        expected = math.log((r + tl) / r) / (2 * math.pi * 1.4 * h)
        assert cylindrical_shell_resistance(r, r + tl, 1.4, h) == pytest.approx(expected)

    def test_thin_shell_limit(self):
        # for tL << r, R -> tL/(2 pi r k h), the flat-wall limit
        r, tl, h = um(50), um(0.005), um(10)
        shell = cylindrical_shell_resistance(r, r + tl, 1.4, h)
        flat = tl / (2 * math.pi * r * 1.4 * h)
        assert shell == pytest.approx(flat, rel=1e-3)

    def test_outer_must_exceed_inner(self):
        with pytest.raises(ValidationError):
            cylindrical_shell_resistance(um(5), um(5), 1.4, um(1))

    def test_grows_with_liner_thickness(self):
        rs = [
            cylindrical_shell_resistance(um(5), um(5) + um(t), 1.4, um(8))
            for t in (0.5, 1.0, 2.0, 3.0)
        ]
        assert rs == sorted(rs)


class TestAnnulus:
    def test_value(self):
        r = annulus_axial_resistance(um(10), 1.4, um(5), um(6))
        area = math.pi * (um(6) ** 2 - um(5) ** 2)
        assert r == pytest.approx(um(10) / (1.4 * area))

    def test_degenerate_rejected(self):
        with pytest.raises(ValidationError):
            annulus_axial_resistance(um(10), 1.4, um(6), um(5))


class TestCombinators:
    def test_series(self):
        assert series([1.0, 2.0, 3.0]) == pytest.approx(6.0)

    def test_parallel(self):
        assert parallel([2.0, 2.0]) == pytest.approx(1.0)

    def test_parallel_dominated_by_smallest(self):
        assert parallel([1e-3, 1e6]) == pytest.approx(1e-3, rel=1e-3)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            series([])
        with pytest.raises(ValidationError):
            parallel([])

    def test_negative_rejected(self):
        with pytest.raises(Exception):
            series([1.0, -1.0])
