"""Stack3D tests: layout, z-coordinates, sweep helpers."""

import math

import pytest

from repro import constants, paper_stack
from repro.errors import GeometryError
from repro.geometry import LayerKind, Stack3D, bond, paper_tsv
from repro.materials import POLYIMIDE
from repro.units import um


class TestConstruction:
    def test_paper_stack_has_three_planes(self):
        assert paper_stack().n_planes == 3

    def test_bond_count_must_match(self):
        stack = paper_stack()
        with pytest.raises(GeometryError):
            Stack3D(
                planes=stack.planes,
                bonds=stack.bonds[:1],
                footprint_area=stack.footprint_area,
            )

    def test_bond_kind_enforced(self):
        stack = paper_stack()
        bad = stack.planes[0].ild  # a dielectric, not a bond
        with pytest.raises(GeometryError):
            Stack3D(
                planes=stack.planes,
                bonds=(bad, stack.bonds[1]),
                footprint_area=stack.footprint_area,
            )

    def test_needs_at_least_one_plane(self):
        with pytest.raises(GeometryError):
            Stack3D(planes=(), bonds=(), footprint_area=1e-8)

    def test_single_plane_stack_allowed(self):
        stack = paper_stack(n_planes=1)
        assert stack.n_planes == 1
        assert stack.bonds == ()

    def test_footprint_side_and_radius(self):
        stack = paper_stack()
        assert stack.footprint_side == pytest.approx(um(100))
        assert stack.equivalent_radius == pytest.approx(
            math.sqrt(constants.PAPER_FOOTPRINT_AREA / math.pi)
        )


class TestZCoordinates:
    def test_layer_intervals_are_contiguous(self):
        stack = paper_stack()
        intervals = stack.layer_intervals()
        assert intervals[0].z0 == 0.0
        for a, b in zip(intervals, intervals[1:]):
            assert b.z0 == pytest.approx(a.z1)
        assert intervals[-1].z1 == pytest.approx(stack.total_height)

    def test_layer_order_within_plane(self):
        kinds = [iv.kind for iv in paper_stack().layer_intervals()]
        assert kinds == [
            LayerKind.SUBSTRATE, LayerKind.DIELECTRIC, LayerKind.BOND,
            LayerKind.SUBSTRATE, LayerKind.DIELECTRIC, LayerKind.BOND,
            LayerKind.SUBSTRATE, LayerKind.DIELECTRIC,
        ]

    def test_substrate_top_first_plane(self):
        stack = paper_stack()
        assert stack.substrate_top(0) == pytest.approx(constants.PAPER_T_SI1)

    def test_ild_interval_belongs_to_plane(self):
        stack = paper_stack()
        iv = stack.ild_interval(1)
        assert iv.plane_index == 1
        assert iv.kind is LayerKind.DIELECTRIC

    def test_tsv_span(self):
        stack = paper_stack()
        z0, z1 = stack.tsv_span(um(1))
        assert z0 == pytest.approx(constants.PAPER_T_SI1 - um(1))
        assert z1 == pytest.approx(stack.substrate_top(2))

    def test_tsv_span_rejects_deep_extension(self):
        stack = paper_stack()
        with pytest.raises(GeometryError):
            stack.tsv_span(um(600))

    def test_substrate_top_out_of_range(self):
        with pytest.raises(GeometryError):
            paper_stack().substrate_top(7)


class TestSweepHelpers:
    def test_with_substrate_thickness_default_skips_first(self):
        stack = paper_stack().with_substrate_thickness(um(20))
        assert stack.planes[0].substrate.thickness == pytest.approx(constants.PAPER_T_SI1)
        assert stack.planes[1].substrate.thickness == pytest.approx(um(20))
        assert stack.planes[2].substrate.thickness == pytest.approx(um(20))

    def test_with_substrate_thickness_explicit_planes(self):
        stack = paper_stack().with_substrate_thickness(um(20), planes=(2,))
        assert stack.planes[1].substrate.thickness != pytest.approx(um(20))
        assert stack.planes[2].substrate.thickness == pytest.approx(um(20))

    def test_with_substrate_thickness_bad_plane(self):
        with pytest.raises(GeometryError):
            paper_stack().with_substrate_thickness(um(20), planes=(5,))

    def test_with_footprint_area(self):
        cell = paper_stack().with_footprint_area(1e-9)
        assert cell.footprint_area == pytest.approx(1e-9)

    def test_with_bond_conductivity_factor(self):
        stack = paper_stack().with_bond_conductivity_factor(3.5)
        for b in stack.bonds:
            assert b.material.thermal_conductivity == pytest.approx(0.15 * 3.5)
        # original untouched
        for b in paper_stack().bonds:
            assert b.material.thermal_conductivity == pytest.approx(0.15)

    def test_bond_below(self):
        stack = paper_stack()
        assert stack.bond_below(1) is stack.bonds[0]
        with pytest.raises(GeometryError):
            stack.bond_below(0)
