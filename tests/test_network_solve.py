"""Linear-system back-ends: dispatch, singularity detection, agreement."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import SingularNetworkError
from repro.network.solve import (
    DENSE_CUTOFF,
    solve_dense,
    solve_linear_system,
    solve_sparse,
)


def laplacian_chain(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Grounded 1-D chain conductance matrix and a unit-source RHS."""
    g = np.zeros((n, n))
    for i in range(n):
        g[i, i] = 2.0
        if i > 0:
            g[i, i - 1] = -1.0
        if i < n - 1:
            g[i, i + 1] = -1.0
    g[n - 1, n - 1] = 1.0  # free top end; grounded at the bottom
    rhs = np.zeros(n)
    rhs[-1] = 1.0
    return g, rhs


class TestBackends:
    def test_dense_solves_chain(self):
        g, rhs = laplacian_chain(5)
        t = solve_dense(g, rhs)
        assert t[-1] == pytest.approx(5.0)

    def test_sparse_matches_dense(self):
        g, rhs = laplacian_chain(50)
        dense = solve_dense(g, rhs)
        sparse = solve_sparse(sp.csr_matrix(g), rhs)
        assert np.allclose(dense, sparse)

    def test_dispatch_small_dense_input(self):
        g, rhs = laplacian_chain(10)
        assert np.allclose(solve_linear_system(g, rhs), solve_dense(g, rhs))

    def test_dispatch_small_sparse_input(self):
        g, rhs = laplacian_chain(10)
        out = solve_linear_system(sp.csr_matrix(g), rhs)
        assert np.allclose(out, solve_dense(g, rhs))

    def test_dispatch_large(self):
        n = DENSE_CUTOFF + 50
        g, rhs = laplacian_chain(n)
        out = solve_linear_system(sp.csr_matrix(g), rhs)
        assert out[-1] == pytest.approx(float(n))

    def test_dense_singular_raises(self):
        g = np.zeros((3, 3))
        with pytest.raises(SingularNetworkError):
            solve_dense(g, np.ones(3))

    def test_sparse_nonfinite_detected(self):
        # a floating block makes the system singular; SuperLU returns inf/nan
        g = sp.csr_matrix(np.diag([1.0, 0.0, 1.0]))
        with pytest.raises(Exception):
            solve_sparse(g, np.array([1.0, 1.0, 1.0]))
