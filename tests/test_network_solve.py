"""Linear-system back-ends: dispatch, singularity detection, agreement."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro import perf
from repro.errors import SingularNetworkError, SolverError
from repro.network import solve as solve_module
from repro.network.solve import (
    DENSE_CUTOFF,
    factorized_solver,
    solve_dense,
    solve_linear_system,
    solve_sparse,
)


def laplacian_chain(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Grounded 1-D chain conductance matrix and a unit-source RHS."""
    g = np.zeros((n, n))
    for i in range(n):
        g[i, i] = 2.0
        if i > 0:
            g[i, i - 1] = -1.0
        if i < n - 1:
            g[i, i + 1] = -1.0
    g[n - 1, n - 1] = 1.0  # free top end; grounded at the bottom
    rhs = np.zeros(n)
    rhs[-1] = 1.0
    return g, rhs


class TestBackends:
    def test_dense_solves_chain(self):
        g, rhs = laplacian_chain(5)
        t = solve_dense(g, rhs)
        assert t[-1] == pytest.approx(5.0)

    def test_sparse_matches_dense(self):
        g, rhs = laplacian_chain(50)
        dense = solve_dense(g, rhs)
        sparse = solve_sparse(sp.csr_matrix(g), rhs)
        assert np.allclose(dense, sparse)

    def test_dispatch_small_dense_input(self):
        g, rhs = laplacian_chain(10)
        assert np.allclose(solve_linear_system(g, rhs), solve_dense(g, rhs))

    def test_dispatch_small_sparse_input(self):
        g, rhs = laplacian_chain(10)
        out = solve_linear_system(sp.csr_matrix(g), rhs)
        assert np.allclose(out, solve_dense(g, rhs))

    def test_dispatch_large(self):
        n = DENSE_CUTOFF + 50
        g, rhs = laplacian_chain(n)
        out = solve_linear_system(sp.csr_matrix(g), rhs)
        assert out[-1] == pytest.approx(float(n))

    def test_dense_singular_raises(self):
        g = np.zeros((3, 3))
        with pytest.raises(SingularNetworkError):
            solve_dense(g, np.ones(3))

    def test_sparse_nonfinite_detected(self):
        # a floating block makes the system singular; SuperLU returns inf/nan
        g = sp.csr_matrix(np.diag([1.0, 0.0, 1.0]))
        with pytest.raises(Exception):
            solve_sparse(g, np.array([1.0, 1.0, 1.0]))


class TestIterativePath:
    """The CG branch of solve_sparse, forced by lowering ITERATIVE_CUTOFF."""

    def test_cg_success_matches_direct(self, monkeypatch):
        g, rhs = laplacian_chain(80)
        expected = solve_dense(g, rhs)
        calls = []
        real_cg = spla.cg

        def spying_cg(*args, **kwargs):
            calls.append(1)
            return real_cg(*args, **kwargs)

        monkeypatch.setattr(solve_module, "ITERATIVE_CUTOFF", 10)
        monkeypatch.setattr(solve_module.spla, "cg", spying_cg)
        out = solve_sparse(sp.csr_matrix(g), rhs)
        assert calls, "CG was not used despite n > ITERATIVE_CUTOFF"
        assert np.allclose(out, expected, rtol=1e-8)

    def test_ilu_failure_falls_back_to_direct(self, monkeypatch):
        g, rhs = laplacian_chain(80)
        monkeypatch.setattr(solve_module, "ITERATIVE_CUTOFF", 10)

        def broken_spilu(*args, **kwargs):
            raise RuntimeError("factor is exactly singular")

        monkeypatch.setattr(solve_module.spla, "spilu", broken_spilu)
        before = perf.counter("cg_ilu_fallbacks")
        with pytest.warns(RuntimeWarning, match="ILU preconditioner failed"):
            out = solve_sparse(sp.csr_matrix(g), rhs)
        assert perf.counter("cg_ilu_fallbacks") == before + 1
        assert np.allclose(out, solve_dense(g, rhs))

    def test_cg_nonconvergence_falls_back_to_direct(self, monkeypatch):
        g, rhs = laplacian_chain(80)
        monkeypatch.setattr(solve_module, "ITERATIVE_CUTOFF", 10)

        def stalled_cg(A, b, **kwargs):
            return np.zeros_like(b), 7  # info != 0: not converged

        monkeypatch.setattr(solve_module.spla, "cg", stalled_cg)
        before = perf.counter("cg_convergence_fallbacks")
        with pytest.warns(RuntimeWarning, match="did not converge"):
            out = solve_sparse(sp.csr_matrix(g), rhs)
        assert perf.counter("cg_convergence_fallbacks") == before + 1
        assert np.allclose(out, solve_dense(g, rhs))


class TestFactorizedSolver:
    def test_reusable_solve_matches_direct(self):
        g, rhs = laplacian_chain(50)
        solve = factorized_solver(sp.csr_matrix(g))
        assert np.allclose(solve(rhs), solve_dense(g, rhs))
        assert np.allclose(solve(2.0 * rhs), 2.0 * solve_dense(g, rhs))

    def test_nonfinite_solve_raises(self, monkeypatch):
        # same finite-temperature guard as solve_sparse: a numerically
        # singular factor that SuperLU accepts must not propagate NaNs
        # (transient stepping reuses the returned solve for every step)
        g, rhs = laplacian_chain(5)

        def degenerate_factor(matrix):
            return lambda r: np.full(r.shape, np.inf)

        monkeypatch.setattr(
            solve_module.factor_cache, "solver", degenerate_factor
        )
        solve = factorized_solver(g)
        with pytest.raises(SolverError):
            solve(rhs)
