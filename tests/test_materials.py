"""Material type, library and effective-medium tests."""

import pytest

from repro import constants
from repro.errors import MaterialError
from repro.materials import (
    COPPER,
    POLYIMIDE,
    SILICON,
    SILICON_DIOXIDE,
    Material,
    effective_ild_conductivity,
    get,
    maxwell_eucken,
    names,
    parallel_bound,
    register,
    series_bound,
)


class TestMaterial:
    def test_basic_construction(self):
        m = Material("test", thermal_conductivity=10.0)
        assert m.k == 10.0

    def test_rejects_non_positive_conductivity(self):
        with pytest.raises(Exception):
            Material("bad", thermal_conductivity=0.0)

    def test_rejects_empty_name(self):
        with pytest.raises(MaterialError):
            Material("", thermal_conductivity=1.0)

    def test_volumetric_heat_capacity(self):
        m = Material("m", thermal_conductivity=1.0, density=1000.0, specific_heat=500.0)
        assert m.volumetric_heat_capacity == pytest.approx(5e5)

    def test_volumetric_heat_capacity_requires_data(self):
        m = Material("m", thermal_conductivity=1.0)
        with pytest.raises(MaterialError):
            _ = m.volumetric_heat_capacity

    def test_conductivity_at_reference(self):
        assert SILICON.conductivity_at(300.0) == pytest.approx(SILICON.k)

    def test_conductivity_falls_with_temperature_for_silicon(self):
        assert SILICON.conductivity_at(350.0) < SILICON.k

    def test_conductivity_at_rejects_nonpositive_result(self):
        m = Material("m", thermal_conductivity=1.0, conductivity_slope=-1.0)
        with pytest.raises(MaterialError):
            m.conductivity_at(400.0)

    def test_with_conductivity_copies(self):
        m = SILICON_DIOXIDE.with_conductivity(2.0)
        assert m.k == 2.0
        assert SILICON_DIOXIDE.k == constants.K_SILICON_DIOXIDE

    def test_frozen(self):
        with pytest.raises(Exception):
            SILICON.thermal_conductivity = 5.0


class TestLibrary:
    def test_paper_conductivities(self):
        assert SILICON_DIOXIDE.k == pytest.approx(1.4)
        assert POLYIMIDE.k == pytest.approx(0.15)
        assert COPPER.k == pytest.approx(400.0)

    def test_get_known(self):
        assert get("silicon") is SILICON

    def test_get_unknown_lists_names(self):
        with pytest.raises(MaterialError, match="silicon"):
            get("unobtainium")

    def test_names_sorted(self):
        ns = names()
        assert ns == sorted(ns)
        assert "copper" in ns

    def test_register_and_get(self):
        m = Material("test_register_xyz", thermal_conductivity=3.0)
        register(m)
        try:
            assert get("test_register_xyz") is m
        finally:
            register(m, overwrite=True)  # leave registry consistent

    def test_register_duplicate_rejected(self):
        with pytest.raises(MaterialError):
            register(SILICON)


class TestEffectiveMedium:
    def test_parallel_upper_bound(self):
        assert parallel_bound(1.0, 100.0, 0.5) == pytest.approx(50.5)

    def test_series_lower_bound(self):
        assert series_bound(1.0, 100.0, 0.5) == pytest.approx(1.0 / (0.5 + 0.005))

    def test_maxwell_between_bounds(self):
        km, ki, f = 1.4, 400.0, 0.2
        me = maxwell_eucken(km, ki, f)
        assert series_bound(km, ki, f) < me < parallel_bound(km, ki, f)

    def test_maxwell_limits(self):
        assert maxwell_eucken(1.4, 400.0, 0.0) == pytest.approx(1.4)
        assert maxwell_eucken(1.4, 400.0, 1.0) == pytest.approx(400.0)

    def test_effective_ild_increases_kd(self):
        eff = effective_ild_conductivity(SILICON_DIOXIDE, COPPER, 0.2)
        assert eff.k > SILICON_DIOXIDE.k

    def test_effective_ild_unknown_model(self):
        with pytest.raises(MaterialError):
            effective_ild_conductivity(SILICON_DIOXIDE, COPPER, 0.2, model="magic")

    def test_effective_ild_name_mentions_components(self):
        eff = effective_ild_conductivity(SILICON_DIOXIDE, COPPER, 0.25)
        assert "copper" in eff.name

    def test_monotonic_in_fraction(self):
        ks = [maxwell_eucken(1.4, 400.0, f) for f in (0.0, 0.1, 0.2, 0.4)]
        assert ks == sorted(ks)
