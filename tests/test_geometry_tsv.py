"""TSV and TSVCluster (Eq. (22) transform) tests."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry import TSV, TSVCluster, as_cluster, paper_tsv
from repro.materials import SILICON_DIOXIDE, TUNGSTEN
from repro.units import um


class TestTSV:
    def test_outer_radius(self):
        via = TSV(radius=um(5), liner_thickness=um(0.5))
        assert via.outer_radius == pytest.approx(um(5.5))

    def test_metal_area(self):
        via = TSV(radius=um(5), liner_thickness=um(0.5))
        assert via.metal_area == pytest.approx(math.pi * um(5) ** 2)

    def test_occupied_area_includes_liner(self):
        via = TSV(radius=um(5), liner_thickness=um(0.5))
        assert via.occupied_area == pytest.approx(math.pi * um(5.5) ** 2)

    def test_aspect_ratio(self):
        via = TSV(radius=um(5), liner_thickness=um(0.5))
        assert via.aspect_ratio(um(50)) == pytest.approx(5.0)

    def test_default_materials(self):
        via = paper_tsv()
        assert via.fill.name == "copper"
        assert via.liner.name == "silicon_dioxide"

    def test_custom_fill(self):
        via = TSV(radius=um(2), liner_thickness=um(0.1), fill=TUNGSTEN)
        assert via.fill is TUNGSTEN

    def test_with_radius(self):
        via = paper_tsv(radius=um(5))
        assert via.with_radius(um(10)).radius == pytest.approx(um(10))
        assert via.radius == pytest.approx(um(5))

    def test_with_liner_thickness(self):
        via = paper_tsv(liner_thickness=um(0.5))
        assert via.with_liner_thickness(um(2)).liner_thickness == pytest.approx(um(2))

    def test_rejects_zero_radius(self):
        with pytest.raises(Exception):
            TSV(radius=0.0, liner_thickness=um(0.5))

    def test_negative_extension_rejected(self):
        with pytest.raises(Exception):
            TSV(radius=um(5), liner_thickness=um(0.5), extension=-um(1))

    def test_zero_extension_allowed(self):
        assert TSV(radius=um(5), liner_thickness=um(0.5), extension=0.0).extension == 0.0


class TestTSVCluster:
    def test_member_radius_scaling(self):
        cluster = TSVCluster(paper_tsv(radius=um(10)), 4)
        assert cluster.member_radius == pytest.approx(um(5))

    def test_metal_area_preserved(self):
        base = paper_tsv(radius=um(10))
        for n in (1, 2, 4, 9, 16):
            cluster = TSVCluster(base, n)
            assert cluster.total_metal_area == pytest.approx(base.metal_area)

    def test_occupied_area_grows_with_count(self):
        base = paper_tsv(radius=um(10), liner_thickness=um(1))
        areas = [TSVCluster(base, n).total_occupied_area for n in (1, 4, 16)]
        assert areas[0] < areas[1] < areas[2]

    def test_lateral_perimeter_grows_sqrt_n(self):
        base = paper_tsv(radius=um(10))
        p1 = TSVCluster(base, 1).total_lateral_perimeter
        p4 = TSVCluster(base, 4).total_lateral_perimeter
        assert p4 == pytest.approx(2.0 * p1)

    def test_member_geometry(self):
        cluster = TSVCluster(paper_tsv(radius=um(10), liner_thickness=um(1)), 4)
        member = cluster.member
        assert member.radius == pytest.approx(um(5))
        assert member.liner_thickness == pytest.approx(um(1))

    def test_with_count(self):
        cluster = TSVCluster(paper_tsv(), 1)
        assert cluster.with_count(9).count == 9

    def test_count_must_be_positive_int(self):
        with pytest.raises(Exception):
            TSVCluster(paper_tsv(), 0)

    def test_as_cluster_normalises(self):
        via = paper_tsv()
        cluster = as_cluster(via)
        assert isinstance(cluster, TSVCluster)
        assert cluster.count == 1
        assert as_cluster(cluster) is cluster

    def test_as_cluster_rejects_other(self):
        with pytest.raises(GeometryError):
            as_cluster("via")
