"""Execution-plan compiler + scheduler: dedup, byte-equivalence, resume."""

import json

import pytest

from repro import perf
from repro.errors import ExperimentError
from repro.scenarios import (
    SCENARIOS,
    AxisSpec,
    RunStore,
    ScenarioSpec,
    compile_plan,
    execute_plan,
    run_batch,
    run_scenario,
)
from repro.scenarios.plan import (
    CalibrationNode,
    CaseStudyNode,
    SolveNode,
    assemble_scenario,
)
from repro.scenarios.runner import _run_scenario_eager
from repro.scenarios.store import parse_artifact


def tiny_spec(scenario_id="plan_tiny", models=("1d",), calibrate=False, **overrides):
    kwargs = dict(
        scenario_id=scenario_id,
        title="Tiny plan sweep",
        axis=AxisSpec(parameter="radius_um", values=(3.0, 5.0)),
        models=models,
        reference="fem:coarse",
        calibrate=calibrate,
        calibration_samples=2,
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


def shared_calibration_pair():
    """Two scenarios identical up to their model lists: the reference
    solves, the coefficient fit and the calibrated-model solves are all
    shared between them."""
    return [
        tiny_spec(scenario_id="shared_a", models=("1d",), calibrate=True),
        tiny_spec(scenario_id="shared_b", models=("a:paper",), calibrate=True),
    ]


class TestCompile:
    def test_uncalibrated_node_count(self):
        plan = compile_plan([tiny_spec().resolved()])
        # 2 values x (1 model + 1 reference)
        assert plan.stats["solve_nodes"] == 4
        assert plan.stats["calibrate_nodes"] == 0
        assert plan.stats["nodes_deduped"] == 0
        assert all(isinstance(n, SolveNode) for n in plan.nodes.values())

    def test_calibrated_adds_fit_and_cal_solves(self):
        plan = compile_plan([tiny_spec(calibrate=True).resolved()])
        # 4 concrete solves + 2 calibrated-model solves + the fit itself
        assert plan.stats["solve_nodes"] == 6
        assert plan.stats["calibrate_nodes"] == 1
        cal = next(
            n for n in plan.nodes.values() if isinstance(n, CalibrationNode)
        )
        # the fit's dependencies are the sweep's own reference nodes
        entry = plan.scenarios[0]
        ref_keys = entry.assembly.node_keys["fem"]
        assert set(cal.sample_keys) <= set(ref_keys)
        # calibrated solve nodes depend on the fit
        cal_solves = [
            n
            for n in plan.nodes.values()
            if isinstance(n, SolveNode) and n.calibration is not None
        ]
        assert len(cal_solves) == 2
        assert all(n.deps == (cal.key,) for n in cal_solves)
        assert all(n.model is None for n in cal_solves)

    def test_cross_scenario_dedup(self):
        plan = compile_plan([s.resolved() for s in shared_calibration_pair()])
        # per scenario: 2 ref + 2 model + 1 fit + 2 cal solves = 7;
        # shared between them: 2 ref + 1 fit + 2 cal solves = 5
        assert plan.stats["nodes_total"] == 9
        assert plan.stats["nodes_deduped"] == 5
        assert len(plan.scenarios) == 2

    def test_solve_keys_match_result_cache_keys(self):
        from repro.core.factory import make_model
        from repro.perf import solve_key
        from repro.scenarios.plan import _configurator

        spec = tiny_spec().resolved()
        plan = compile_plan([spec])
        configure = _configurator(spec)
        stack, via, power = configure(3.0)
        expected = solve_key(make_model("1d"), stack, via, power)
        assert expected in plan.nodes

    def test_duplicate_model_names_rejected(self):
        spec = tiny_spec(models=("fem:coarse",))  # collides with the reference
        with pytest.raises(ExperimentError):
            compile_plan([spec.resolved()])

    def test_case_study_compiles_to_one_node(self):
        spec = SCENARIOS.get("case_study").resolved(
            fast=True, fem_resolution="coarse", calibrate=False
        )
        plan = compile_plan([spec])
        assert plan.stats["case_study_nodes"] == 1
        assert plan.stats["solve_nodes"] == 0
        (node,) = plan.nodes.values()
        assert isinstance(node, CaseStudyNode)
        assert plan.scenarios[0].node_key == node.key


class TestScheduling:
    def test_execute_and_assemble_matches_run_scenario(self):
        spec = tiny_spec(calibrate=True).resolved()
        plan = compile_plan([spec])
        outcome = execute_plan(plan)
        result = assemble_scenario(plan.scenarios[0], outcome.results)
        via_runner = run_scenario(spec).result
        assert result.series == via_runner.series
        assert result.errors == via_runner.errors

    def test_shared_nodes_solved_exactly_once(self):
        perf.reset()
        batch = run_batch([s for s in shared_calibration_pair()])
        counters = perf.stats()["counters"]
        assert batch.stats["nodes_deduped"] == 5
        # every unique solve node dispatched exactly once, the shared fit
        # computed exactly once
        assert counters["plan_point_solves"] == batch.stats["solve_nodes"] == 8
        assert counters["plan_calibrations"] == 1
        assert counters["plan_nodes_deduped"] == 5

    def test_progress_callback_sees_every_node(self):
        perf.reset()
        events = []
        spec = tiny_spec(calibrate=True)
        run_scenario(spec, progress=events.append)
        plan = compile_plan([spec.resolved()])
        assert len(events) == plan.stats["nodes_total"]
        assert events[-1]["done"] == events[-1]["total"]
        assert {e["source"] for e in events} <= {"solved", "cache", "store"}

    def test_streaming_parallel_executor_identical(self):
        from repro.perf import ParallelExecutor

        spec = tiny_spec(models=("1d", "a:paper"), calibrate=True)
        perf.reset()
        serial = run_scenario(spec).result
        perf.reset()
        parallel = run_scenario(spec, executor=ParallelExecutor(2)).result
        assert serial.series == parallel.series  # exact float equality
        assert serial.errors == parallel.errors


class TestPlannedEqualsEager:
    """The acceptance criterion: plan-compiled payloads are byte-identical
    to the historical eager path for every builtin scenario."""

    @pytest.mark.parametrize(
        "scenario_id", ["fig4", "fig5", "fig6", "fig7", "table1"]
    )
    def test_builtin_sweeps_byte_identical(self, scenario_id):
        eager = _run_scenario_eager(
            scenario_id, fast=True, fem_resolution="coarse"
        )
        planned = run_scenario(scenario_id, fast=True, fem_resolution="coarse")
        assert json.dumps(
            planned.result.to_payload(), sort_keys=True
        ) == json.dumps(eager.result.to_payload(), sort_keys=True)

    def test_case_study_identical_up_to_wallclock(self):
        # the case study runs the same legacy code on both paths; only the
        # recorded wall-clock runtimes differ between two live runs
        eager = _run_scenario_eager(
            "case_study", fast=True, fem_resolution="coarse", calibrate=False
        )
        planned = run_scenario(
            "case_study", fast=True, fem_resolution="coarse", calibrate=False
        )
        pe = eager.result.to_payload()
        pp = planned.result.to_payload()
        pe.pop("runtimes_ms")
        pp.pop("runtimes_ms")
        assert json.dumps(pp, sort_keys=True) == json.dumps(pe, sort_keys=True)


class TestResume:
    def _wipe_run_level(self, store_root):
        (store_root / "manifest.json").unlink()
        for path in (store_root / "objects").glob("**/*.json"):
            path.unlink()

    def test_resume_skips_stored_points(self, tmp_path):
        specs = shared_calibration_pair()
        store = RunStore(tmp_path / "store")
        first = run_batch(specs, store=store)
        assert len(store.point_keys()) == first.stats["nodes_total"]

        # simulate a batch killed after solving everything but before the
        # run-level artifacts landed: point space survives, runs don't
        self._wipe_run_level(tmp_path / "store")
        perf.reset()  # cold caches, as in a fresh process
        resumed = run_batch(specs, store=RunStore(tmp_path / "store"), resume=True)
        counters = perf.stats()["counters"]
        assert counters.get("plan_point_solves", 0) == 0
        assert counters["point_store_hits"] == resumed.stats["nodes_total"]
        assert resumed.stats["store"] == resumed.stats["nodes_total"]
        # byte-identical to the original run (solve times round-trip)
        for a, b in zip(first.runs, resumed.runs):
            assert json.dumps(a.result.to_payload(), sort_keys=True) == json.dumps(
                b.result.to_payload(), sort_keys=True
            )

    def test_partial_resume_solves_only_missing_points(self, tmp_path):
        specs = shared_calibration_pair()
        store = RunStore(tmp_path / "store")
        run_batch(specs, store=store)
        self._wipe_run_level(tmp_path / "store")
        # lose one solved point (pick a model solve, not the calibration)
        victim = next(
            p
            for p in (tmp_path / "store" / "points").glob("**/*.json")
            if "model_name" in parse_artifact(p.read_text())[0]
        )
        victim.unlink()
        perf.reset()
        run_batch(specs, store=RunStore(tmp_path / "store"), resume=True)
        assert perf.stats()["counters"]["plan_point_solves"] == 1

    def test_without_resume_points_are_not_read(self, tmp_path):
        spec = tiny_spec()
        store = RunStore(tmp_path / "store")
        batch = run_batch([spec], store=store)
        self._wipe_run_level(tmp_path / "store")
        perf.reset()
        rerun = run_batch([spec], store=RunStore(tmp_path / "store"))
        counters = perf.stats()["counters"]
        assert counters["plan_point_solves"] == rerun.stats["solve_nodes"]
        assert counters.get("point_store_hits", 0) == 0
        assert batch.runs[0].result.series == rerun.runs[0].result.series

    def test_corrupt_point_is_resolved(self, tmp_path):
        spec = tiny_spec()
        store = RunStore(tmp_path / "store")
        run_batch([spec], store=store)
        self._wipe_run_level(tmp_path / "store")
        for path in (tmp_path / "store" / "points").glob("**/*.json"):
            path.write_text("{truncated")
        perf.reset()
        rerun = run_batch([spec], store=RunStore(tmp_path / "store"), resume=True)
        counters = perf.stats()["counters"]
        assert counters["plan_point_solves"] == rerun.stats["solve_nodes"]
        assert counters.get("point_store_hits", 0) == 0


class TestPartialBatchFailure:
    def test_finished_scenarios_are_stored_before_a_later_failure(
        self, tmp_path, monkeypatch
    ):
        from repro.core.model_1d import Model1D
        from repro.errors import SolverError

        ok = tiny_spec(scenario_id="ok_first")
        bad = tiny_spec(
            scenario_id="fails_second",
            axis=AxisSpec(parameter="radius_um", values=(3.0, 7.0)),
        )
        real_solve = Model1D.solve

        def failing_solve(self, stack, via, power):
            if abs(via.radius - 7e-6) < 1e-12:
                raise SolverError("injected failure at r=7um")
            return real_solve(self, stack, via, power)

        monkeypatch.setattr(Model1D, "solve", failing_solve)
        perf.reset()  # the poisoned point must not be served from cache
        store = RunStore(tmp_path / "store")
        # retry=None restores the historical contract: the first worker
        # exception unwinds the whole batch
        with pytest.raises(SolverError):
            run_batch([ok, bad], store=store, retry=None)
        # the scenario that finished before the failure kept its artifact
        assert ok.resolved().content_hash() in store
        assert bad.resolved().content_hash() not in store

    def test_persistent_failure_quarantines_instead_of_unwinding(
        self, tmp_path, monkeypatch
    ):
        from repro.core.model_1d import Model1D
        from repro.errors import SolverError
        from repro.perf import RetryPolicy

        ok = tiny_spec(scenario_id="ok_first")
        bad = tiny_spec(
            scenario_id="fails_second",
            axis=AxisSpec(parameter="radius_um", values=(3.0, 7.0)),
        )
        real_solve = Model1D.solve

        def failing_solve(self, stack, via, power):
            if abs(via.radius - 7e-6) < 1e-12:
                raise SolverError("injected failure at r=7um")
            return real_solve(self, stack, via, power)

        monkeypatch.setattr(Model1D, "solve", failing_solve)
        perf.reset()
        store = RunStore(tmp_path / "store")
        batch = run_batch(
            [ok, bad],
            store=store,
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
        )
        good, failed = batch.runs
        assert not good.failed and good.result is not None
        assert failed.failed and failed.result is None
        assert {f.error_class for f in failed.failures} == {"SolverError"}
        assert all(f.attempts == 2 for f in failed.failures)
        # the healthy scenario's artifact landed; the failed one did not,
        # and its quarantine records are in the store's ledger
        assert ok.resolved().content_hash() in store
        assert bad.resolved().content_hash() not in store
        assert set(store.failure_keys()) == {f.key for f in failed.failures}
        counters = perf.stats()["counters"]
        assert counters["plan_quarantined"] == len(failed.failures)
        assert counters["plan_retries"] >= 1


class TestSingleScenarioStore:
    def test_run_scenario_with_store_writes_points(self, tmp_path):
        store = RunStore(tmp_path / "store")
        run = run_scenario(tiny_spec(), store=store)
        assert not run.from_store
        plan = compile_plan([tiny_spec().resolved()])
        assert len(store.point_keys()) == plan.stats["nodes_total"]
        # and the run-level hit still short-circuits everything
        again = run_scenario(tiny_spec(), store=store)
        assert again.from_store
