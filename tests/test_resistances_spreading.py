"""Spreading-resistance primitives (planning extension)."""

import pytest

from repro.errors import ValidationError
from repro.resistances import (
    finite_slab_spreading,
    semi_infinite_spreading,
    truncated_cone_resistance,
    via_cell_spreading,
)
from repro.units import um


class TestSemiInfinite:
    def test_value(self):
        assert semi_infinite_spreading(um(10), 148.0) == pytest.approx(
            1.0 / (4 * 148.0 * um(10))
        )

    def test_falls_with_radius(self):
        assert semi_infinite_spreading(um(20), 148.0) < semi_infinite_spreading(
            um(10), 148.0
        )


class TestFiniteSlab:
    def test_small_source_approaches_semi_infinite(self):
        # deep slab, tiny source: should be close to 1/(4ka)
        a = um(1)
        spread = finite_slab_spreading(a, um(500), um(2000), 148.0)
        semi = semi_infinite_spreading(a, 148.0)
        assert spread == pytest.approx(semi, rel=0.15)

    def test_source_must_be_smaller(self):
        with pytest.raises(ValidationError):
            finite_slab_spreading(um(10), um(10), um(5), 148.0)

    def test_positive(self):
        assert finite_slab_spreading(um(5), um(50), um(20), 148.0) > 0.0

    def test_grows_as_source_shrinks(self):
        big = finite_slab_spreading(um(20), um(50), um(100), 148.0)
        small = finite_slab_spreading(um(2), um(50), um(100), 148.0)
        assert small > big


class TestCone:
    def test_reduces_to_cylinder(self):
        import math
        cone = truncated_cone_resistance(um(5), um(5), um(50), 400.0)
        cylinder = um(50) / (400.0 * math.pi * um(5) ** 2)
        assert cone == pytest.approx(cylinder)

    def test_wider_base_lowers_resistance(self):
        narrow = truncated_cone_resistance(um(5), um(5), um(50), 400.0)
        wide = truncated_cone_resistance(um(5), um(20), um(50), 400.0)
        assert wide < narrow


class TestViaCell:
    def test_wraps_finite_slab(self):
        import math
        cell_area = 1e-8
        direct = finite_slab_spreading(
            um(5), math.sqrt(cell_area / math.pi), um(45), 148.0
        )
        assert via_cell_spreading(um(5), cell_area, um(45), 148.0) == pytest.approx(
            direct
        )
