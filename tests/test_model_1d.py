"""The 1-D baseline: its defining blind spots are features to test."""

import pytest

from repro import Model1D, ModelA, TSVCluster, paper_stack, paper_tsv
from repro.core.model_1d import build_1d_links
from repro.geometry import as_cluster
from repro.units import um


class TestModel1D:
    def test_insensitive_to_cluster_splitting(self, thin_stack, block_power):
        # constant metal area -> the 1-D model cannot see the split (the
        # only residual coupling is the liner footprint nibbling the bulk
        # area, a fraction of a percent)
        via = paper_tsv(radius=um(10), liner_thickness=um(1))
        rises = [
            Model1D(include_liner_area=False)
            .solve(thin_stack, TSVCluster(via, n), block_power)
            .max_rise
            for n in (1, 2, 4, 9, 16)
        ]
        assert max(rises) - min(rises) < 0.005 * max(rises)

    def test_nearly_insensitive_to_liner(self, block_stack, block_power):
        rises = [
            Model1D().solve(
                block_stack, paper_tsv(radius=um(5), liner_thickness=um(t)), block_power
            ).max_rise
            for t in (0.5, 3.0)
        ]
        spread = abs(rises[1] - rises[0]) / rises[0]
        assert spread < 0.02  # the paper's FEM moves ~11% over this range

    def test_monotonic_in_substrate_thickness(self, block_power):
        # no lateral relief: thicker substrate only adds vertical resistance
        via = paper_tsv(radius=um(8), liner_thickness=um(1))
        rises = []
        for t_si in (5.0, 20.0, 45.0, 80.0):
            stack = paper_stack(t_si_upper=um(t_si), t_ild=um(7), t_bond=um(1))
            rises.append(Model1D().solve(stack, via, block_power).max_rise)
        assert rises == sorted(rises)

    def test_overestimates_coefficient_models(self, block_stack, block_tsv, block_power):
        one_d = Model1D().solve(block_stack, block_tsv, block_power).max_rise
        model_a = ModelA().solve(block_stack, block_tsv, block_power).max_rise
        assert one_d > model_a

    def test_rise_falls_with_radius(self, block_stack, block_power):
        rises = [
            Model1D().solve(
                block_stack, paper_tsv(radius=um(r), liner_thickness=um(1)), block_power
            ).max_rise
            for r in (2.0, 10.0, 20.0)
        ]
        assert rises == sorted(rises, reverse=True)

    def test_links_structure(self, block_stack, block_tsv):
        links, rs = build_1d_links(block_stack, as_cluster(block_tsv))
        assert len(links) == 3
        assert rs > 0.0
        for link in links:
            assert link.combined < link.bulk
            assert link.combined < link.via

    def test_plane_rises_monotone_upward(self, block_stack, block_tsv, block_power):
        result = Model1D().solve(block_stack, block_tsv, block_power)
        assert list(result.plane_rises) == sorted(result.plane_rises)

    def test_liner_area_option_changes_little(self, block_stack, block_tsv, block_power):
        with_liner = Model1D(include_liner_area=True).solve(
            block_stack, block_tsv, block_power
        ).max_rise
        without = Model1D(include_liner_area=False).solve(
            block_stack, block_tsv, block_power
        ).max_rise
        assert with_liner == pytest.approx(without, rel=0.05)
        assert with_liner <= without  # the ring is an extra parallel path
