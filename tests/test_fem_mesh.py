"""Mesh utilities: layered, graded, refinement."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.fem import centers, graded_mesh, layered_mesh, refine, unique_breakpoints


class TestUniqueBreakpoints:
    def test_sorts_and_dedupes(self):
        bp = unique_breakpoints([3.0, 1.0, 1.0 + 1e-15, 2.0])
        assert np.allclose(bp, [1.0, 2.0, 3.0])

    def test_rejects_collapse(self):
        with pytest.raises(ValidationError):
            unique_breakpoints([1.0, 1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            unique_breakpoints([])


class TestLayeredMesh:
    def test_hits_every_breakpoint(self):
        bp = [0.0, 1e-6, 5e-6, 50e-6]
        edges = layered_mesh(bp, 30)
        for p in bp:
            assert np.min(np.abs(edges - p)) < 1e-18

    def test_min_per_layer_respected(self):
        edges = layered_mesh([0.0, 1e-9, 1.0], 10, min_per_layer=2)
        # the 1-nm sliver still gets two cells
        assert np.sum((edges > 0) & (edges < 1e-9)) >= 1

    def test_strictly_increasing(self):
        edges = layered_mesh([0.0, 2e-6, 3e-6, 100e-6], 40)
        assert np.all(np.diff(edges) > 0)

    def test_weights_shift_cells(self):
        light = layered_mesh([0.0, 0.5, 1.0], 20, weights=[1.0, 1.0])
        heavy = layered_mesh([0.0, 0.5, 1.0], 20, weights=[9.0, 1.0])
        assert np.sum(heavy < 0.5) > np.sum(light < 0.5)

    def test_weight_count_checked(self):
        with pytest.raises(ValidationError):
            layered_mesh([0.0, 0.5, 1.0], 20, weights=[1.0])


class TestGradedMesh:
    def test_uniform_when_ratio_one(self):
        edges = graded_mesh(0.0, 1.0, 4, ratio=1.0)
        assert np.allclose(np.diff(edges), 0.25)

    def test_small_cells_toward_start(self):
        edges = graded_mesh(0.0, 1.0, 10, ratio=8.0, toward_start=True)
        d = np.diff(edges)
        assert d[0] < d[-1]
        assert d[-1] / d[0] == pytest.approx(8.0)

    def test_small_cells_toward_end(self):
        d = np.diff(graded_mesh(0.0, 1.0, 10, ratio=8.0, toward_start=False))
        assert d[0] > d[-1]

    def test_covers_interval(self):
        edges = graded_mesh(2.0, 5.0, 7, ratio=3.0)
        assert edges[0] == pytest.approx(2.0)
        assert edges[-1] == pytest.approx(5.0)

    def test_rejects_reversed(self):
        with pytest.raises(ValidationError):
            graded_mesh(1.0, 0.0, 5)


class TestCentersRefine:
    def test_centers(self):
        assert np.allclose(centers(np.array([0.0, 1.0, 3.0])), [0.5, 2.0])

    def test_refine_doubles_cells(self):
        edges = np.array([0.0, 1.0, 2.0])
        fine = refine(edges, 2)
        assert fine.size == 5
        assert np.allclose(fine, [0.0, 0.5, 1.0, 1.5, 2.0])

    def test_refine_preserves_breakpoints(self):
        edges = np.array([0.0, 0.3, 1.0])
        fine = refine(edges, 3)
        for p in edges:
            assert np.min(np.abs(fine - p)) < 1e-15
