"""The cross-matrix stacked solve tier: batched dense/block-diagonal
solvers, model stacking hooks, scheduler regrouping and byte-identity."""

import json

import numpy as np
import pytest
import scipy.sparse as sp

from repro import faults, perf
from repro.core.base import solve_stacked
from repro.core.factory import make_model
from repro.core.model_a import ModelA
from repro.errors import SingularNetworkError, SolverError
from repro.experiments.params import fig4_config, fig5_config
from repro.fem import FEMReference
from repro.geometry import TSVCluster
from repro.network.solve import (
    solve_dense,
    solve_dense_stacked,
    solve_sparse,
    solve_sparse_stacked,
)
from repro.perf import ParallelExecutor, SerialExecutor, StackedBatchTask
from repro.scenarios import SCENARIOS, AxisSpec, ScenarioSpec, run_scenario


def _spd_stack(m: int, n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """(m, n, n) well-conditioned matrices + (m, n) RHS, all distinct."""
    rng = np.random.RandomState(seed)
    mats = np.empty((m, n, n))
    for i in range(m):
        a = rng.randn(n, n)
        mats[i] = a @ a.T + n * (1.0 + 0.1 * i) * np.eye(n)
    return mats, rng.randn(m, n)


def geometry_spec(scenario_id="radius_sweep", values=(2.0, 3.0, 4.0), **overrides):
    """A Model A geometry sweep: every point assembles a different matrix."""
    kwargs = dict(
        scenario_id=scenario_id,
        title="Radius sweep",
        axis=AxisSpec(parameter="radius_um", values=values),
        models=("a:paper",),
        reference="fem:coarse",
        calibrate=False,
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


class TestSolveDenseStacked:
    @pytest.mark.parametrize("m,n", [(1, 3), (4, 7), (9, 20), (3, 64)])
    def test_items_bitwise_equal_single_solves(self, m, n):
        mats, rhs = _spd_stack(m, n, seed=m * 100 + n)
        stacked = solve_dense_stacked(mats, rhs)
        for i in range(m):
            assert np.array_equal(stacked[i], solve_dense(mats[i], rhs[i]))

    @pytest.mark.parametrize("dtype", [np.float32, np.int64])
    def test_input_dtypes_normalised_to_float64(self, dtype):
        mats, rhs = _spd_stack(3, 5, seed=7)
        cast_m = (10.0 * mats).astype(dtype)
        cast_r = (10.0 * rhs).astype(dtype)
        stacked = solve_dense_stacked(cast_m, cast_r)
        assert stacked.dtype == np.float64
        for i in range(3):
            assert np.array_equal(
                stacked[i],
                solve_dense(
                    np.asarray(cast_m[i], dtype=float),
                    np.asarray(cast_r[i], dtype=float),
                ),
            )

    def test_empty_stack_returns_empty(self):
        out = solve_dense_stacked(np.empty((0, 4, 4)), np.empty((0, 4)))
        assert out.shape == (0, 4)

    def test_rejects_non_stack_shapes(self):
        with pytest.raises(SolverError, match=r"\(m, n, n\)"):
            solve_dense_stacked(np.eye(4), np.ones(4))
        with pytest.raises(SolverError, match=r"\(m, n, n\)"):
            solve_dense_stacked(np.ones((2, 4, 3)), np.ones((2, 4)))

    def test_rejects_mismatched_rhs(self):
        with pytest.raises(SolverError, match="matching"):
            solve_dense_stacked(np.ones((2, 4, 4)), np.ones((3, 4)))
        with pytest.raises(SolverError, match="matching"):
            solve_dense_stacked(np.ones((2, 4, 4)), np.ones((2, 5)))

    def test_singular_items_named(self):
        mats, rhs = _spd_stack(4, 6, seed=3)
        mats[1] = 0.0
        mats[3] = 0.0
        with pytest.raises(SingularNetworkError, match=r"stacked item\(s\) \[1, 3\]"):
            solve_dense_stacked(mats, rhs)

    def test_nonfinite_items_named(self, monkeypatch):
        mats, rhs = _spd_stack(3, 4, seed=5)
        bad = np.zeros((3, 4, 1))
        bad[2, 0, 0] = np.inf
        monkeypatch.setattr(np.linalg, "solve", lambda a, b: bad)
        with pytest.raises(SolverError, match=r"stacked item\(s\) \[2\]"):
            solve_dense_stacked(mats, rhs)


def _spd_sparse(n: int, seed: int = 0) -> sp.csr_matrix:
    rng = np.random.RandomState(seed)
    a = sp.random(n, n, density=0.05, random_state=rng, format="csr")
    return (a + a.T + sp.diags(np.full(n, 10.0))).tocsr()


class TestSolveSparseStacked:
    def test_batch_size_invariant(self):
        # natural ordering on a block-diagonal matrix: item i's slice is
        # identical whether factorised alone or inside any batch
        mats = [_spd_sparse(n, seed=n) for n in (40, 60, 80)]
        rhs = [np.random.RandomState(n).randn(n) for n in (40, 60, 80)]
        full = solve_sparse_stacked(mats, rhs)
        for i in range(3):
            (solo,) = solve_sparse_stacked([mats[i]], [rhs[i]])
            assert np.array_equal(full[i], solo)
        pair = solve_sparse_stacked(mats[:2], rhs[:2])
        assert np.array_equal(full[0], pair[0])
        assert np.array_equal(full[1], pair[1])

    def test_close_to_solo_sparse_solves(self):
        # COLAMD (solve_sparse) vs natural ordering differ in the last
        # ulps only
        mats = [_spd_sparse(n, seed=n + 1) for n in (50, 70)]
        rhs = [np.random.RandomState(n).randn(n) for n in (50, 70)]
        stacked = solve_sparse_stacked(mats, rhs)
        for i in range(2):
            np.testing.assert_allclose(
                stacked[i], solve_sparse(mats[i], rhs[i]), rtol=1e-12
            )

    def test_empty_list(self):
        assert solve_sparse_stacked([], []) == []

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(SolverError, match="matching"):
            solve_sparse_stacked([_spd_sparse(10)], [])

    def test_rejects_bad_item_shape(self):
        with pytest.raises(SolverError, match="stacked item 1"):
            solve_sparse_stacked(
                [_spd_sparse(10), _spd_sparse(12)],
                [np.ones(10), np.ones(11)],
            )

    def test_singular_items_named(self):
        mats = [_spd_sparse(20, seed=2), sp.csr_matrix((20, 20))]
        rhs = [np.ones(20), np.ones(20)]
        with pytest.raises(SingularNetworkError, match=r"stacked item\(s\) \[1\]"):
            solve_sparse_stacked(mats, rhs)


def assert_results_identical(stacked, solo):
    assert stacked.max_rise == solo.max_rise
    assert stacked.plane_rises == solo.plane_rises
    assert stacked.node_temperatures == solo.node_temperatures
    assert stacked.n_unknowns == solo.n_unknowns
    assert stacked.model_name == solo.model_name
    assert stacked.metadata == solo.metadata


class TestBatchClassKey:
    def test_model_a_stacks_across_geometry_and_fits(self):
        cfg1, cfg2 = fig5_config(1.0), fig5_config(3.0)
        model = make_model("a:paper")
        key = model.batch_class_key(cfg1.stack, cfg1.via)
        assert key is not None
        # different liner, different radius, different fit: same class
        assert key == model.batch_class_key(cfg2.stack, cfg2.via)
        cfg4 = fig4_config(3.0)
        assert key == model.batch_class_key(cfg4.stack, cfg4.via)
        assert key == ModelA().batch_class_key(cfg1.stack, cfg1.via)

    def test_plane_count_changes_class(self):
        from repro.geometry.builders import paper_stack

        cfg = fig5_config(1.0)
        model = make_model("a:paper")
        other = paper_stack(n_planes=2)
        assert model.batch_class_key(cfg.stack, cfg.via) != model.batch_class_key(
            other, cfg.via
        )

    def test_model_b_paper_scheme_small_systems_stack(self):
        cfg1, cfg2 = fig5_config(1.0), fig5_config(2.0)
        model = make_model("b:10")
        key = model.batch_class_key(cfg1.stack, cfg1.via)
        assert key is not None
        assert key == model.batch_class_key(cfg2.stack, cfg2.via)
        # a different segment count is a different structure
        assert key != make_model("b:20").batch_class_key(cfg1.stack, cfg1.via)

    def test_model_b_large_systems_opt_out(self):
        # b:100 assembles 1 + 2*210 unknowns — past the dense cutoff
        cfg = fig5_config(1.0)
        assert make_model("b:100").batch_class_key(cfg.stack, cfg.via) is None

    def test_fem_coarse_meshes_stack_across_geometry(self):
        cfg1, cfg2 = fig5_config(0.5), fig5_config(1.5)
        model = FEMReference("coarse")
        key = model.batch_class_key(cfg1.stack, cfg1.via)
        assert key is not None
        # different liner thickness: different matrix values, same mesh
        # topology — one stackable class
        assert key == model.batch_class_key(cfg2.stack, cfg2.via)
        # a different stack voxelises to a different mesh: different class
        cfg4 = fig4_config(3.0)
        assert key != model.batch_class_key(cfg4.stack, cfg4.via)

    def test_fem_large_meshes_and_cartesian_and_1d_opt_out(self):
        cfg = fig5_config(1.0)
        # medium voxelises past the natural-ordering cutoff
        assert FEMReference("medium").batch_class_key(cfg.stack, cfg.via) is None
        assert (
            FEMReference("coarse", solver="cartesian").batch_class_key(
                cfg.stack, cfg.via
            )
            is None
        )
        assert make_model("1d").batch_class_key(cfg.stack, cfg.via) is None


class TestSolveStacked:
    def test_model_a_members_bitwise_equal_solo(self):
        model = make_model("a:paper")
        members = [
            (model, cfg.stack, cfg.via, cfg.power)
            for cfg in (fig5_config(0.5), fig5_config(1.5), fig4_config(4.0))
        ]
        for result, (m, stack, via, power) in zip(solve_stacked(members), members):
            assert_results_identical(result, m.solve(stack, via, power))

    def test_model_a_cluster_members(self):
        model = ModelA()
        cfg = fig5_config(1.0)
        members = [
            (model, cfg.stack, TSVCluster(cfg.via, n), cfg.power) for n in (1, 4, 9)
        ]
        for result, (m, stack, via, power) in zip(solve_stacked(members), members):
            assert_results_identical(result, m.solve(stack, via, power))

    def test_model_b_members_bitwise_equal_solo(self):
        model = make_model("b:10")
        members = [
            (model, cfg.stack, cfg.via, cfg.power)
            for cfg in (fig5_config(1.0), fig5_config(2.5))
        ]
        for result, (m, stack, via, power) in zip(solve_stacked(members), members):
            assert_results_identical(result, m.solve(stack, via, power))

    def test_fem_members_bitwise_equal_solo(self):
        model = FEMReference("coarse")
        members = [
            (model, cfg.stack, cfg.via, cfg.power)
            for cfg in (fig5_config(0.5), fig5_config(1.0), fig5_config(1.5))
        ]
        for result, (m, stack, via, power) in zip(solve_stacked(members), members):
            assert_results_identical(result, m.solve(stack, via, power))

    def test_fem_cluster_members_bitwise_equal_solo(self):
        model = FEMReference("coarse")
        cfg = fig5_config(1.0)
        members = [
            (model, cfg.stack, TSVCluster(cfg.via, n), cfg.power) for n in (1, 4, 9)
        ]
        for result, (m, stack, via, power) in zip(solve_stacked(members), members):
            assert_results_identical(result, m.solve(stack, via, power))

    def test_declining_member_falls_back_to_solo_solves(self):
        # the 1-D model never assembles a stackable system: the whole
        # batch degrades to per-member model.solve, still positionally
        # aligned
        cfg = fig5_config(1.0)
        members = [
            (make_model("1d"), cfg.stack, cfg.via, cfg.power),
            (make_model("a:paper"), cfg.stack, cfg.via, cfg.power),
        ]
        results = solve_stacked(members)
        for result, (m, stack, via, power) in zip(results, members):
            assert result.max_rise == m.solve(stack, via, power).max_rise

    def test_mixed_dense_sparse_batch_falls_back_to_solo_solves(self):
        # a batch class is all-dense or all-sparse by construction; a
        # hand-built mix exercises the safety net
        cfg = fig5_config(1.0)
        members = [
            (FEMReference("coarse"), cfg.stack, cfg.via, cfg.power),
            (make_model("a:paper"), cfg.stack, cfg.via, cfg.power),
        ]
        results = solve_stacked(members)
        for result, (m, stack, via, power) in zip(results, members):
            assert_results_identical(result, m.solve(stack, via, power))

    def test_empty(self):
        assert solve_stacked([]) == []


class TestStackedBatchTask:
    def _task(self, liners=(0.5, 1.0, 1.5), attempt=0):
        model = make_model("a:paper")
        members = tuple(
            (model, cfg.stack, cfg.via, cfg.power)
            for cfg in (fig5_config(t) for t in liners)
        )
        return StackedBatchTask(index=0, members=members, attempt=attempt)

    def test_serial_executor_solves_stacked(self):
        task = self._task()
        ((out_task, results),) = list(SerialExecutor().submit_stream([task]))
        assert out_task is task
        solo = [m.solve(s, v, p) for m, s, v, p in task.members]
        assert [r.max_rise for r in results] == [r.max_rise for r in solo]

    def test_parallel_executor_splits_lone_batches(self):
        task = self._task((0.5, 0.75, 1.0, 1.25, 1.5))
        executor = ParallelExecutor(2)
        sub_tasks = executor._split_groups([task])
        assert len(sub_tasks) == 2
        assert [t.offset for t in sub_tasks] == [0, 3]
        assert sum(len(t.members) for t in sub_tasks) == 5
        landed = {}
        for sub, results in executor.submit_stream([task]):
            for i, result in enumerate(results):
                landed[sub.offset + i] = result.max_rise
        serial = SerialExecutor().run_tasks([task])[0]
        assert [landed[i] for i in range(5)] == [r.max_rise for r in serial]

    def test_no_split_when_pool_saturated(self):
        tasks = [self._task((0.5, 1.0)), self._task((1.5, 2.0))]
        assert ParallelExecutor(2)._split_groups(tasks) == tasks

    def test_stacked_solve_fault_site_registered(self):
        assert "stacked-solve" in faults.SITES
        assert faults.SITE_KINDS["stacked-solve"] == ("crash", "delay", "error")

    def test_injected_error_captured_per_batch(self):
        from repro.perf.retry import TaskFailure

        faults.configure(rate=1.0, kinds=("error",), sites=("stacked-solve",))
        try:
            task = self._task()
            ((_, outcome),) = list(
                SerialExecutor().submit_stream_safe([task], timeout_s=None)
            )
        finally:
            faults.reset()
        assert isinstance(outcome, TaskFailure)
        assert outcome.transient


class TestStackedScheduling:
    def test_stacking_counters(self):
        spec = geometry_spec(values=(2.0, 3.0, 4.0, 5.0))
        perf.reset()
        run_scenario(spec)
        counters = perf.stats()["counters"]
        # the four model_a points assemble different matrices but share a
        # batch class, and so do the four coarse fem reference points
        # (same mesh topology, different conductivity values): two
        # stacked batches — one dense, one block-diagonal sparse
        assert counters["plan_stacked_batches"] == 2
        assert counters["plan_stacked_solves"] == 8

    def test_no_stacking_when_disabled(self):
        perf.reset()
        run_scenario(geometry_spec(), stack_batches=False)
        assert perf.stats()["counters"].get("plan_stacked_batches", 0) == 0

    def test_power_sweep_prefers_matrix_groups(self):
        # nodes that can share a factor stay on the multi-RHS plane: the
        # stacked tier only sees what grouping left behind
        spec = geometry_spec(
            scenario_id="ps_sweep",
            axis=AxisSpec(parameter="power_scale", values=(0.5, 1.0, 1.5)),
            models=("b:10",),
        )
        perf.reset()
        run_scenario(spec)
        counters = perf.stats()["counters"]
        assert counters["plan_matrix_groups"] >= 1
        assert counters.get("plan_stacked_batches", 0) == 0

    def test_stacked_dispatch_under_jobs_identical(self):
        spec = geometry_spec(values=(2.0, 3.0, 4.0, 5.0, 6.0))
        perf.reset()
        serial = run_scenario(spec).result
        perf.reset()
        parallel = run_scenario(spec, executor=ParallelExecutor(2)).result
        assert serial.series == parallel.series  # exact float equality
        assert serial.errors == parallel.errors

    def test_progress_events_carry_dispatch_provenance(self, tmp_path):
        from repro.scenarios import RunStore

        # the 1-D model never stacks or groups, so its nodes keep the
        # per-point dispatch provenance next to the stacked ones
        spec = geometry_spec(values=(2.0, 3.0, 4.0), models=("a:paper", "1d"))
        store = RunStore(tmp_path / "store")
        events = []
        perf.reset()
        run_scenario(spec, store=store, progress=events.append)
        solved = [e for e in events if e["source"] == "solved"]
        assert solved and all("dispatch" in e for e in solved)
        assert {e["dispatch"] for e in solved} >= {"stacked", "point"}
        # a store/cache-satisfied node was never dispatched: no provenance
        (tmp_path / "store" / "manifest.json").unlink()
        events.clear()
        run_scenario(
            spec, store=RunStore(tmp_path / "store"), resume=True,
            progress=events.append,
        )
        replayed = [e for e in events if e["source"] in ("cache", "store")]
        assert replayed and all("dispatch" not in e for e in replayed)


def _normalize(obj):
    """Recursively drop wall-clock fields from a run payload."""
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if key in ("runtimes_ms", "solve_time"):
                continue
            if key == "table_rows":  # [model, max%, avg%, time ms]
                out[key] = [row[:3] for row in value]
                continue
            out[key] = _normalize(value)
        return out
    if isinstance(obj, list):
        return [_normalize(v) for v in obj]
    return obj


class TestBuiltinByteIdentity:
    @pytest.mark.parametrize("scenario_id", sorted(SCENARIOS.ids()))
    def test_stacked_vs_grouped_vs_solo_byte_identical(self, scenario_id):
        resolution = (
            None
            if scenario_id in ("fem3d_power", "case_study")
            else "coarse"
        )
        payloads = []
        for group_matrices, stack_batches in (
            (True, True),  # the full dispatch ladder (the default)
            (True, False),  # matrix groups only (pre-PR-7)
            (False, False),  # solo per-point dispatch
        ):
            perf.reset()
            run = run_scenario(
                scenario_id,
                fast=True,
                fem_resolution=resolution,
                group_matrices=group_matrices,
                stack_batches=stack_batches,
            )
            payloads.append(
                json.dumps(
                    _normalize(run.result.to_payload()), sort_keys=True
                )
            )
        assert payloads[0] == payloads[1]
        assert payloads[1] == payloads[2]


class TestCLIFlag:
    def test_parser_accepts_no_stacked_batches(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(["run", "fig4", "--no-stacked-batches"])
        assert args.no_stacked_batches
        args = build_parser().parse_args(["run", "fig4"])
        assert not args.no_stacked_batches

    def test_flag_restores_per_point_dispatch(self):
        from repro.__main__ import main

        flags = ["--fast", "--fem-resolution", "coarse", "--no-calibrate"]
        perf.reset()
        assert main(["run", "fig5", *flags]) == 0
        assert perf.stats()["counters"]["plan_stacked_batches"] > 0
        perf.reset()
        assert main(["run", "fig5", *flags, "--no-stacked-batches"]) == 0
        assert perf.stats()["counters"].get("plan_stacked_batches", 0) == 0


class TestVoxelFrameCache:
    def test_frames_shared_across_conductivity_changes(self):
        from repro.core.nonlinear import _stack_at_temperatures
        from repro.fem.voxelize import build_axisym_grids, build_cartesian_grids

        cfg = fig5_config(1.0)
        hot = _stack_at_temperatures(cfg.stack, (5.0, 8.0, 11.0))
        perf.reset()
        cold = build_axisym_grids(cfg.stack, cfg.via, cfg.power, nr=12, nz=30)
        warm = build_axisym_grids(hot, cfg.via, cfg.power, nr=12, nz=30)
        counters = perf.stats()["counters"]
        assert counters["voxel_frame_hits"] == 1
        assert counters["voxel_frame_misses"] == 1
        # mesh and sources identical, conductivity re-stamped
        assert np.array_equal(cold.r_edges, warm.r_edges)
        assert np.array_equal(cold.z_edges, warm.z_edges)
        assert np.array_equal(cold.source_density, warm.source_density)
        assert not np.array_equal(cold.conductivity, warm.conductivity)

        perf.reset()
        c_cold = build_cartesian_grids(
            cfg.stack, cfg.via, cfg.power, nx=10, ny=10, nz=20
        )
        c_warm = build_cartesian_grids(hot, cfg.via, cfg.power, nx=10, ny=10, nz=20)
        counters = perf.stats()["counters"]
        assert counters["voxel_frame_hits"] == 1
        assert np.array_equal(c_cold.x_edges, c_warm.x_edges)
        assert not np.array_equal(c_cold.conductivity, c_warm.conductivity)

    def test_nonlinear_fem_iterations_hit_frame_cache(self):
        from repro.core.nonlinear import NonlinearSolver

        cfg = fig5_config(1.0)
        perf.reset()
        solver = NonlinearSolver(FEMReference((10, 24)), tolerance=1e-5)
        result = solver.solve(cfg.stack, cfg.via, cfg.power)
        counters = perf.stats()["counters"]
        # the linear baseline misses once; every k(T) iterate re-stamps
        # conductivity on the cached frame
        assert counters["voxel_frame_misses"] == 1
        assert counters["voxel_frame_hits"] >= result.iterations

    def test_geometry_change_misses(self):
        from repro.fem.voxelize import build_axisym_geometry

        cfg1, cfg2 = fig5_config(1.0), fig5_config(2.0)
        perf.reset()
        build_axisym_geometry(cfg1.stack, cfg1.via, nr=12, nz=30)
        build_axisym_geometry(cfg2.stack, cfg2.via, nr=12, nz=30)
        counters = perf.stats()["counters"]
        assert counters["voxel_frame_misses"] == 2
        assert counters.get("voxel_frame_hits", 0) == 0
