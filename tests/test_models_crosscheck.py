"""Cross-model consistency: the paper's qualitative claims as assertions."""

import pytest

from repro import Model1D, ModelA, ModelB, TSVCluster, paper_stack, paper_tsv
from repro.analysis import crossover_points, is_monotonic
from repro.fem import FEMReference
from repro.resistances import FittingCoefficients
from repro.units import um


class TestFig6NonMonotonicity:
    """ΔT vs substrate thickness has a minimum for A, B and FEM — not 1-D."""

    @pytest.fixture(scope="class")
    def series(self, ):
        thicknesses = [5.0, 10.0, 20.0, 45.0, 80.0]
        via = paper_tsv(radius=um(8), liner_thickness=um(1))
        from repro import PowerSpec

        power = PowerSpec()
        out = {"t": thicknesses, "a": [], "b": [], "1d": [], "fem": []}
        for t_si in thicknesses:
            stack = paper_stack(t_si_upper=um(t_si), t_ild=um(7), t_bond=um(1))
            out["a"].append(ModelA().solve(stack, via, power).max_rise)
            out["b"].append(ModelB(100).solve(stack, via, power).max_rise)
            out["1d"].append(Model1D().solve(stack, via, power).max_rise)
            out["fem"].append(FEMReference("coarse").solve(stack, via, power).max_rise)
        return out

    def test_model_a_has_minimum(self, series):
        assert len(crossover_points(series["t"], series["a"])) >= 1

    def test_model_b_has_minimum(self, series):
        assert len(crossover_points(series["t"], series["b"])) >= 1

    def test_fem_has_minimum(self, series):
        assert len(crossover_points(series["t"], series["fem"])) >= 1

    def test_1d_is_monotonic(self, series):
        assert is_monotonic(series["1d"], increasing=True)

    def test_minimum_location_plausible(self, series):
        # the paper puts the FEM minimum around 20 um
        points = crossover_points(series["t"], series["fem"])
        assert any(5.0 < p < 60.0 for p in points)


class TestModelOrderings:
    def test_b1_worse_than_b100_vs_fem(self, block_stack, block_tsv, block_power):
        fem = FEMReference("coarse").solve(block_stack, block_tsv, block_power).max_rise
        b1 = ModelB(1).solve(block_stack, block_tsv, block_power).max_rise
        b100 = ModelB(100).solve(block_stack, block_tsv, block_power).max_rise
        assert abs(b100 - fem) < abs(b1 - fem)

    def test_b_runtime_grows_with_segments(self, block_stack, block_tsv, block_power):
        t20 = ModelB(20).solve(block_stack, block_tsv, block_power)
        t500 = ModelB(500).solve(block_stack, block_tsv, block_power)
        assert t500.solve_time > t20.solve_time
        assert t500.n_unknowns > t20.n_unknowns

    def test_unity_model_a_close_to_b1(self, block_stack, block_tsv, block_power):
        a = ModelA(FittingCoefficients.unity()).solve(
            block_stack, block_tsv, block_power
        )
        b1 = ModelB(1).solve(block_stack, block_tsv, block_power)
        assert a.max_rise == pytest.approx(b1.max_rise, rel=0.15)

    def test_all_models_agree_on_radius_trend(self, block_stack, block_power):
        for model in (ModelA(), ModelB(50), Model1D(), FEMReference("coarse")):
            rises = [
                model.solve(
                    block_stack,
                    paper_tsv(radius=um(r), liner_thickness=um(1)),
                    block_power,
                ).max_rise
                for r in (2.0, 8.0, 16.0)
            ]
            assert rises == sorted(rises, reverse=True), model.name


class TestClusterAgreement:
    def test_a_b_fem_all_fall_with_n(self, thin_stack, block_power):
        via = paper_tsv(radius=um(10), liner_thickness=um(1))
        for model in (ModelA(), ModelB(50), FEMReference("coarse")):
            rises = [
                model.solve(thin_stack, TSVCluster(via, n), block_power).max_rise
                for n in (1, 4, 16)
            ]
            assert rises == sorted(rises, reverse=True), model.name

    def test_saturation(self, thin_stack, block_power):
        via = paper_tsv(radius=um(10), liner_thickness=um(1))
        rises = [
            ModelA().solve(thin_stack, TSVCluster(via, n), block_power).max_rise
            for n in (1, 2, 4, 9, 16)
        ]
        gains = [a - b for a, b in zip(rises, rises[1:])]
        assert gains[-1] < gains[0] / 2.0


class TestLinerAgreement:
    def test_a_b_fem_grow_with_liner_1d_flat(self, block_stack, block_power):
        liners = (0.5, 1.5, 3.0)
        series = {}
        for model in (ModelA(), ModelB(50), Model1D(), FEMReference("coarse")):
            series[model.name] = [
                model.solve(
                    block_stack,
                    paper_tsv(radius=um(5), liner_thickness=um(t)),
                    block_power,
                ).max_rise
                for t in liners
            ]
        for name in ("model_a", "model_b(50)", "fem"):
            assert series[name] == sorted(series[name]), name
        spread_1d = (max(series["model_1d"]) - min(series["model_1d"])) / min(
            series["model_1d"]
        )
        spread_fem = (max(series["fem"]) - min(series["fem"])) / min(series["fem"])
        assert spread_1d < spread_fem / 3.0
