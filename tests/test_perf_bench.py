"""The benchmark-regression harness: comparison gate and report plumbing."""

import json

import pytest

from repro.perf import bench


def _payload(medians: dict[str, float]) -> dict:
    return {
        "schema": bench.SCHEMA_VERSION,
        "machine": {"platform": "test", "cpu_count": 1},
        "config": {"jobs": 4, "quick": True, "repeats": 1},
        "benchmarks": {
            name: {"median_s": value, "times_s": [value]}
            for name, value in medians.items()
        },
        "speedups": {},
        "checks": {},
        "cache_stats": {"caches": {}, "counters": {}},
    }


class TestCompare:
    def test_no_regression_within_tolerance(self):
        current = _payload({"a": 0.11, "b": 0.2})
        previous = _payload({"a": 0.10, "b": 0.2})
        regressions, comparisons = bench.compare(current, previous, tolerance=0.25)
        assert regressions == []
        assert len(comparisons) == 2

    def test_regression_beyond_tolerance_flagged(self):
        current = _payload({"a": 0.2})
        previous = _payload({"a": 0.1})
        regressions, _ = bench.compare(current, previous, tolerance=0.25)
        assert len(regressions) == 1
        assert regressions[0]["benchmark"] == "a"
        assert regressions[0]["ratio"] == pytest.approx(2.0)

    def test_improvements_never_flagged(self):
        current = _payload({"a": 0.01})
        previous = _payload({"a": 1.0})
        regressions, _ = bench.compare(current, previous, tolerance=0.25)
        assert regressions == []

    def test_tiny_absolute_deltas_ignored(self):
        """A big ratio on a sub-millisecond scenario is jitter, not a regression."""
        current = _payload({"a": 0.0016})
        previous = _payload({"a": 0.0010})
        regressions, _ = bench.compare(
            current, previous, tolerance=0.25, min_delta_s=0.002
        )
        assert regressions == []

    def test_min_s_preferred_over_median(self):
        current = _payload({"a": 0.5})
        current["benchmarks"]["a"]["min_s"] = 0.1
        previous = _payload({"a": 0.1})
        previous["benchmarks"]["a"]["min_s"] = 0.1
        regressions, comparisons = bench.compare(current, previous)
        assert regressions == []
        assert comparisons[0]["current_s"] == 0.1

    def test_noisy_entries_get_doubled_tolerance(self):
        previous = _payload({"steady": 0.1, "jittery": 0.1})
        current = _payload({"steady": 0.14, "jittery": 0.14})
        current["benchmarks"]["jittery"]["noisy"] = True
        regressions, _ = bench.compare(current, previous, tolerance=0.25)
        # 1.4x: past 25% for the steady entry, within 50% for the noisy one
        assert [r["benchmark"] for r in regressions] == ["steady"]
        # but a noisy entry past the doubled tolerance still regresses
        current["benchmarks"]["jittery"]["min_s"] = 0.2
        regressions, _ = bench.compare(current, previous, tolerance=0.25)
        assert {r["benchmark"] for r in regressions} == {"steady", "jittery"}

    def test_unmatched_benchmarks_skipped(self):
        current = _payload({"new_one": 5.0})
        previous = _payload({"old_one": 0.1})
        regressions, comparisons = bench.compare(current, previous)
        assert regressions == [] and comparisons == []


class TestReportFiles:
    def test_find_previous_picks_latest(self, tmp_path):
        for day in ("2026-07-01", "2026-07-15", "2026-07-30"):
            (tmp_path / f"BENCH_{day}.json").write_text("{}")
        previous = bench.find_previous(tmp_path, "BENCH_2026-07-30.json")
        assert previous is not None
        assert previous.name == "BENCH_2026-07-15.json"

    def test_find_previous_empty_dir(self, tmp_path):
        assert bench.find_previous(tmp_path, "BENCH_x.json") is None

    def test_bench_filename_shape(self):
        name = bench.bench_filename()
        assert name.startswith("BENCH_") and name.endswith(".json")

    def test_render_report_mentions_everything(self):
        payload = _payload({"fig7_cluster_sweep_serial_cold": 0.1})
        payload["speedups"] = {"fig7_warm_vs_serial": 5.0}
        payload["checks"] = {"fig7_parallel_identical": True}
        text = bench.render_report(payload)
        assert "fig7_cluster_sweep_serial_cold" in text
        assert "5.00x" in text
        assert "PASS" in text


class TestScenarios:
    def test_transient_scenario_smoke(self):
        """Tiny transient benchmark: both paths run, speedup recorded."""
        section = bench.bench_transient(1, n_nodes=250, n_steps=10)
        medians = {
            name: entry["median_s"]
            for name, entry in section["benchmarks"].items()
        }
        assert all(value > 0 for value in medians.values())
        assert section["speedups"]["transient_factor_reuse"] > 0

    def test_machine_info_fields(self):
        info = bench.machine_info()
        assert {"platform", "python", "cpu_count", "numpy", "scipy"} <= set(info)

    def test_cli_writes_report(self, tmp_path, monkeypatch, capsys):
        """End-to-end `bench` CLI on the smallest possible workload."""

        def tiny_run(**kwargs):
            return _payload({"a": 0.1})

        monkeypatch.setattr(bench, "run_benchmarks", tiny_run)
        code = bench.main(["--output-dir", str(tmp_path), "--quick"])
        assert code == 0
        reports = list(tmp_path.glob("BENCH_*.json"))
        assert len(reports) == 1
        payload = json.loads(reports[0].read_text())
        assert payload["benchmarks"]["a"]["median_s"] == 0.1

    def test_cli_missing_explicit_baseline_fails_fast(self, tmp_path, monkeypatch):
        called = []
        monkeypatch.setattr(
            bench, "run_benchmarks",
            lambda **kwargs: called.append(1) or _payload({"a": 0.1}),
        )
        code = bench.main(
            ["--baseline", str(tmp_path / "missing.json"), "--no-write"]
        )
        assert code == 1
        assert called == []  # failed before spending time measuring

    def test_repro_cli_rejects_bench_after_flags(self):
        from repro.__main__ import main as repro_main

        with pytest.raises(SystemExit):
            repro_main(["--fast", "bench"])

    def test_cli_fails_on_regression(self, tmp_path, monkeypatch):
        previous = _payload({"a": 0.1})
        (tmp_path / "BENCH_2000-01-01.json").write_text(json.dumps(previous))
        monkeypatch.setattr(
            bench, "run_benchmarks", lambda **kwargs: _payload({"a": 10.0})
        )
        code = bench.main(["--output-dir", str(tmp_path), "--no-write"])
        assert code == 1

    def test_cli_fails_on_missing_required_entry(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setattr(
            bench, "run_benchmarks", lambda **kwargs: _payload({"a": 0.1})
        )
        code = bench.main(
            ["--output-dir", str(tmp_path), "--no-write", "--require", "a,b"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "'b'" in out and "missing" in out

    def test_cli_passes_when_required_entries_present(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(
            bench, "run_benchmarks", lambda **kwargs: _payload({"a": 0.1})
        )
        code = bench.main(
            ["--output-dir", str(tmp_path), "--no-write", "--require", "a"]
        )
        assert code == 0

    def test_cli_fails_on_failed_check_with_speedup_table(
        self, tmp_path, monkeypatch, capsys
    ):
        payload = _payload({"a": 0.1})
        payload["checks"] = {"multi_rhs_identical": False}
        payload["speedups"] = {"multi_rhs_batched_vs_per_point": 3.4}
        monkeypatch.setattr(bench, "run_benchmarks", lambda **kwargs: payload)
        code = bench.main(["--output-dir", str(tmp_path), "--no-write"])
        out = capsys.readouterr().out
        assert code == 1
        # the failure prints the per-entry speedup table, not a bare assert
        assert "multi_rhs_identical" in out
        assert "3.40x" in out
        assert "FAIL" in out

    def test_speedup_table_includes_comparisons(self):
        payload = _payload({"a": 0.1})
        payload["speedups"] = {"s": 2.0}
        payload["checks"] = {"c": True}
        rows = [
            {"benchmark": "a", "previous_s": 0.1, "current_s": 0.2, "ratio": 2.0}
        ]
        table = bench.render_speedup_table(payload, rows)
        assert "s" in table and "2.00x" in table
        assert "PASS" in table
        assert "a" in table and "200.00ms" in table
