"""Property-based tests (hypothesis) on core invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ModelA, ModelB, PowerSpec, TSVCluster, paper_stack, paper_tsv
from repro.network import GROUND, ThermalCircuit
from repro.resistances import (
    FittingCoefficients,
    compute_model_a_resistances,
    cylindrical_shell_resistance,
    parallel,
    series,
)
from repro.units import um

# bounded, physically sane strategies
radii = st.floats(min_value=1.0, max_value=20.0)
liners = st.floats(min_value=0.1, max_value=3.0)
counts = st.integers(min_value=1, max_value=25)
resistances = st.floats(min_value=1e-3, max_value=1e3)


@st.composite
def random_grounded_circuit(draw):
    """A random connected circuit: a grounded chain plus random chords."""
    n = draw(st.integers(min_value=2, max_value=12))
    rs = draw(
        st.lists(resistances, min_size=n, max_size=n)
    )
    circuit = ThermalCircuit()
    prev = GROUND
    for i, r in enumerate(rs):
        circuit.add_resistor(prev, f"n{i}", r)
        prev = f"n{i}"
    n_chords = draw(st.integers(min_value=0, max_value=n))
    for _ in range(n_chords):
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1))
        if a != b:
            circuit.add_resistor(f"n{a}", f"n{b}", draw(resistances))
    sources = draw(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=n, max_size=n))
    for i, q in enumerate(sources):
        circuit.add_source(f"n{i}", q)
    return circuit, sum(sources)


class TestNetworkProperties:
    @given(random_grounded_circuit())
    @settings(max_examples=40, deadline=None)
    def test_energy_conservation_and_nonnegativity(self, case):
        circuit, total = case
        solution = circuit.solve()
        assert solution.sink_heat() == pytest.approx(total, rel=1e-8, abs=1e-10)
        # with only non-negative sources, temperatures are non-negative
        assert all(t >= -1e-9 for t in solution.temperatures.values())

    @given(random_grounded_circuit(), st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=25, deadline=None)
    def test_linearity_in_power(self, case, scale):
        circuit, _ = case
        base = circuit.solve()
        scaled = ThermalCircuit()
        for r in circuit.resistors:
            scaled.add_resistor(r.node_a, r.node_b, r.resistance)
        for s in circuit.sources:
            scaled.add_source(s.node, s.power * scale)
        bumped = scaled.solve()
        for node, t in base.temperatures.items():
            assert bumped[node] == pytest.approx(t * scale, rel=1e-8, abs=1e-9)


class TestResistanceProperties:
    @given(radii, liners)
    @settings(max_examples=50, deadline=None)
    def test_shell_resistance_positive_and_monotone(self, r_um, tl_um):
        r, tl = um(r_um), um(tl_um)
        base = cylindrical_shell_resistance(r, r + tl, 1.4, um(10))
        thicker = cylindrical_shell_resistance(r, r + 2 * tl, 1.4, um(10))
        assert 0.0 < base < thicker

    @given(st.lists(resistances, min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_parallel_below_min_series_above_max(self, values):
        assert parallel(values) <= min(values) + 1e-12
        assert series(values) >= max(values) - 1e-12

    @given(radii, liners, counts)
    @settings(max_examples=40, deadline=None)
    def test_model_a_resistances_all_positive(self, r_um, tl_um, n):
        stack = paper_stack(t_si_upper=um(45), t_ild=um(7), t_bond=um(1))
        via = paper_tsv(radius=um(r_um), liner_thickness=um(tl_um))
        cluster = TSVCluster(via, n)
        if cluster.total_occupied_area >= stack.footprint_area:
            return  # geometrically impossible; constructor-level concern
        rs = compute_model_a_resistances(stack, cluster)
        assert rs.rs > 0
        for plane in rs.planes:
            assert plane.bulk > 0 and plane.metal > 0 and plane.liner > 0

    @given(counts)
    @settings(max_examples=25, deadline=None)
    def test_cluster_liner_scaling_law(self, n):
        # R'3(n) * n must equal the single-member shell over the same span:
        # per Eq. (22) the n liners are identical shells in parallel
        stack = paper_stack(t_si_upper=um(45), t_ild=um(7), t_bond=um(1))
        via = paper_tsv(radius=um(5), liner_thickness=um(1))
        clustered = compute_model_a_resistances(stack, TSVCluster(via, n))
        member_r = um(5) / math.sqrt(n)
        span = um(7) + um(1)
        member_shell = cylindrical_shell_resistance(
            member_r, member_r + um(1), 1.4, span
        )
        assert clustered.planes[0].liner * n == pytest.approx(member_shell)


class TestModelProperties:
    @given(radii)
    @settings(max_examples=15, deadline=None)
    def test_model_a_rise_positive_and_top_hottest(self, r_um):
        stack = paper_stack(t_si_upper=um(45), t_ild=um(7), t_bond=um(1))
        via = paper_tsv(radius=um(r_um), liner_thickness=um(0.5))
        result = ModelA().solve(stack, via, PowerSpec())
        assert result.max_rise > 0
        assert result.max_rise == pytest.approx(max(result.plane_rises))

    @given(st.floats(min_value=0.3, max_value=3.0), st.floats(min_value=0.2, max_value=1.5))
    @settings(max_examples=15, deadline=None)
    def test_model_a_monotone_in_coefficients(self, k1, k2):
        # larger k1 (better vertical conduction) can only cool the stack
        stack = paper_stack(t_si_upper=um(45), t_ild=um(7), t_bond=um(1))
        via = paper_tsv(radius=um(5), liner_thickness=um(1))
        power = PowerSpec()
        base = ModelA(FittingCoefficients(k1, k2)).solve(stack, via, power).max_rise
        cooler = ModelA(FittingCoefficients(k1 * 1.5, k2)).solve(stack, via, power).max_rise
        assert cooler < base

    @given(st.integers(min_value=2, max_value=60))
    @settings(max_examples=10, deadline=None)
    def test_model_b_rise_positive_any_segments(self, n):
        stack = paper_stack(t_si_upper=um(45), t_ild=um(7), t_bond=um(1))
        via = paper_tsv(radius=um(5), liner_thickness=um(1))
        result = ModelB(n).solve(stack, via, PowerSpec())
        assert result.max_rise > 0
