"""The DRAM-µP case study (Section IV-E)."""

import pytest

from repro import constants
from repro.casestudy import analyze_case_study, build_case_study


class TestBuild:
    def test_unit_cell_area_from_density(self):
        system = build_case_study()
        assert system.cell_area == pytest.approx(
            system.via.metal_area / constants.CASE_TSV_DENSITY
        )

    def test_via_count_matches_density(self):
        system = build_case_study()
        metal = system.n_vias * system.via.metal_area
        assert metal / system.full_stack.footprint_area == pytest.approx(
            constants.CASE_TSV_DENSITY, rel=1e-3
        )

    def test_cell_power_is_area_share(self):
        system = build_case_study()
        share = system.cell_area / system.full_stack.footprint_area
        assert system.cell_power.plane_powers[0] == pytest.approx(70.0 * share)

    def test_geometry_matches_fig8(self):
        system = build_case_study()
        stack = system.full_stack
        assert stack.n_planes == 3
        for plane in stack.planes:
            assert plane.substrate.thickness == pytest.approx(constants.CASE_T_SI)
            assert plane.ild.thickness == pytest.approx(constants.CASE_T_D)
        assert system.via.radius == pytest.approx(constants.CASE_TSV_RADIUS)

    def test_density_validated(self):
        with pytest.raises(Exception):
            build_case_study(tsv_density=1.5)


class TestAnalyze:
    @pytest.fixture(scope="class")
    def report(self):
        return analyze_case_study(
            model_b_segments=200, fem_resolution="coarse"
        )

    def test_all_models_present(self, report):
        assert set(report.rises()) == {"model_a", "model_b(200)", "model_1d", "fem"}

    def test_1d_grossly_overestimates(self, report):
        # the paper's headline: 20 degC vs 12 degC -> factor ~1.67
        factor = report.overestimation_factor("model_1d", "fem")
        assert factor > 1.5

    def test_models_a_b_land_near_fem(self, report):
        rises = report.rises()
        assert rises["model_a"] == pytest.approx(rises["fem"], rel=0.5)
        assert rises["model_b(200)"] == pytest.approx(rises["fem"], rel=0.5)
        # and far closer to FEM than the 1-D model is
        for name in ("model_a", "model_b(200)"):
            assert abs(rises[name] - rises["fem"]) < abs(
                rises["model_1d"] - rises["fem"]
            )

    def test_rises_in_paper_band(self, report):
        # the paper reports 12-20 degC; our substrate reproduces the band
        # within a factor accounting for FEM differences
        for name, rise in report.rises().items():
            assert 3.0 < rise < 30.0, name

    def test_rows_table(self, report):
        rows = report.rows()
        assert rows[0][0] == "model"
        assert len(rows) == 5

    def test_analytic_models_much_faster_than_fem(self, report):
        fem_time = report.results["fem"].solve_time
        assert report.results["model_a"].solve_time < fem_time
