"""Voxelisation: material maps, source normalisation, via placement."""

import math

import numpy as np
import pytest

from repro import PowerSpec, paper_stack, paper_tsv
from repro.errors import GeometryError
from repro.fem import build_axisym_grids, build_cartesian_grids, grid_via_positions
from repro.fem.voxelize import squared_via_dimensions
from repro.units import um


@pytest.fixture()
def setup():
    stack = paper_stack(t_si_upper=um(45), t_ild=um(7), t_bond=um(1))
    return stack, paper_tsv(radius=um(5), liner_thickness=um(1)), PowerSpec()


class TestAxisymGrids:
    def test_total_source_power_preserved(self, setup):
        stack, via, power = setup
        grids = build_axisym_grids(stack, via, power)
        ring = math.pi * (grids.r_edges[1:] ** 2 - grids.r_edges[:-1] ** 2)
        volume = ring[:, None] * np.diff(grids.z_edges)[None, :]
        total = np.sum(grids.source_density * volume)
        assert total == pytest.approx(power.total_heat(stack), rel=1e-9)

    def test_power_scale_applies(self, setup):
        stack, via, power = setup
        grids = build_axisym_grids(
            stack, via, power, cell_area=stack.footprint_area / 4, power_scale=0.25
        )
        ring = math.pi * (grids.r_edges[1:] ** 2 - grids.r_edges[:-1] ** 2)
        volume = ring[:, None] * np.diff(grids.z_edges)[None, :]
        total = np.sum(grids.source_density * volume)
        assert total == pytest.approx(power.total_heat(stack) / 4, rel=1e-9)

    def test_copper_on_axis_within_span(self, setup):
        stack, via, power = setup
        grids = build_axisym_grids(stack, via, power)
        z_bottom, z_top = stack.tsv_span(via.extension)
        zc = 0.5 * (grids.z_edges[:-1] + grids.z_edges[1:])
        inside = (zc > z_bottom) & (zc < z_top)
        assert np.all(grids.conductivity[0, inside] == pytest.approx(400.0))
        assert not np.any(grids.conductivity[0, ~inside] == pytest.approx(400.0))

    def test_liner_ring_present(self, setup):
        stack, via, power = setup
        grids = build_axisym_grids(stack, via, power)
        rc = 0.5 * (grids.r_edges[:-1] + grids.r_edges[1:])
        ring_cells = (rc > via.radius) & (rc < via.outer_radius)
        zc = 0.5 * (grids.z_edges[:-1] + grids.z_edges[1:])
        z_bottom, z_top = stack.tsv_span(via.extension)
        inside = (zc > z_bottom) & (zc < z_top)
        block = grids.conductivity[np.ix_(ring_cells, inside)]
        assert np.all(block == pytest.approx(1.4))

    def test_no_source_inside_via(self, setup):
        stack, via, power = setup
        grids = build_axisym_grids(stack, via, power)
        rc = 0.5 * (grids.r_edges[:-1] + grids.r_edges[1:])
        inside_via = rc < via.outer_radius
        # device layers are crossed by the via -> no heat under it
        z_top = stack.substrate_top(1)
        zc = 0.5 * (grids.z_edges[:-1] + grids.z_edges[1:])
        band = (zc > z_top - um(1)) & (zc < z_top)
        assert np.all(grids.source_density[np.ix_(inside_via, band)] == 0.0)

    def test_plane_bands_cover_planes(self, setup):
        stack, via, power = setup
        grids = build_axisym_grids(stack, via, power)
        assert len(grids.plane_bands) == 3
        assert grids.plane_bands[0][0] == pytest.approx(0.0)
        assert grids.plane_bands[-1][1] == pytest.approx(stack.total_height)

    def test_via_must_fit_cell(self, setup):
        stack, via, power = setup
        with pytest.raises(GeometryError):
            build_axisym_grids(stack, via, power, cell_area=via.occupied_area / 2)


class TestSquaredVia:
    def test_metal_area_preserved(self):
        via = paper_tsv(radius=um(10), liner_thickness=um(1))
        half, _liner = squared_via_dimensions(via)
        assert (2 * half) ** 2 == pytest.approx(via.metal_area)

    def test_liner_resistance_preserved(self):
        via = paper_tsv(radius=um(10), liner_thickness=um(1))
        half, t = squared_via_dimensions(via)
        s = 2 * half
        square_ring = t / (4.0 * (s + t))  # per unit height and conductivity
        shell = math.log(via.outer_radius / via.radius) / (2 * math.pi)
        assert square_ring == pytest.approx(shell, rel=1e-9)


class TestCartesianGrids:
    def test_grid_positions_square_counts(self):
        pos = grid_via_positions(9, 1.0, 1.0)
        assert len(pos) == 9
        xs = sorted({round(p[0], 9) for p in pos})
        assert xs == [pytest.approx(1 / 6), pytest.approx(0.5), pytest.approx(5 / 6)]

    def test_grid_positions_two(self):
        pos = grid_via_positions(2, 1.0, 1.0)
        assert len(pos) == 2
        assert pos[0][1] == pos[1][1]  # same row

    def test_grid_positions_rejects_zero(self):
        with pytest.raises(GeometryError):
            grid_via_positions(0, 1.0, 1.0)

    def test_source_power_preserved(self, setup):
        stack, via, power = setup
        grids = build_cartesian_grids(stack, via, power, nx=16, ny=16, nz=40)
        volume = (
            np.diff(grids.x_edges)[:, None, None]
            * np.diff(grids.y_edges)[None, :, None]
            * np.diff(grids.z_edges)[None, None, :]
        )
        total = np.sum(grids.source_density * volume)
        assert total == pytest.approx(power.total_heat(stack), rel=1e-9)

    def test_metal_volume_matches_squared_via(self, setup):
        stack, via, power = setup
        grids = build_cartesian_grids(stack, via, power, nx=16, ny=16, nz=40)
        zc = 0.5 * (grids.z_edges[:-1] + grids.z_edges[1:])
        z_bottom, z_top = stack.tsv_span(via.extension)
        j = int(np.argmax((zc > z_bottom) & (zc < z_top)))
        cell_area = np.outer(np.diff(grids.x_edges), np.diff(grids.y_edges))
        metal_area = np.sum(cell_area[grids.conductivity[:, :, j] == 400.0])
        assert metal_area == pytest.approx(via.metal_area, rel=1e-6)

    def test_bad_style_rejected(self, setup):
        stack, via, power = setup
        with pytest.raises(GeometryError):
            build_cartesian_grids(stack, via, power, via_style="hexagon")
