"""Fleet execution: N cooperating worker processes on one shared store.

The contract under test is the distributed-execution tentpole: a fleet
of workers sharing one store produces a byte-identical store to the
single-process path, solves every node exactly once, and survives a
worker dying mid-plan without losing completed points.
"""

import json

import pytest

from repro import faults, perf
from repro.faults import CRASH_EXIT_CODE
from repro.perf import counter
from repro.scenarios import AxisSpec, RunStore, ScenarioSpec, run_scenario
from repro.scenarios.fleet import EXIT_OK, run_fleet
from repro.__main__ import main


def fleet_spec(scenario_id="fleet_tiny", values=(2.0, 3.0, 4.0, 5.0)):
    return ScenarioSpec(
        scenario_id=scenario_id,
        title="Fleet sweep",
        axis=AxisSpec(parameter="radius_um", values=values),
        models=("a:paper", "1d"),
        calibrate=False,
    ).resolved()


def normalized_points(store):
    """Every stored point payload, wall-clock metadata stripped."""
    points = {}
    for key in store.point_keys():
        payload = dict(store.get_point(key))
        payload.pop("solve_time", None)
        points[key] = payload
    return points


def normalized_run(store, key):
    payload = dict(store.get(key))
    payload.pop("runtimes_ms", None)
    return payload


@pytest.fixture
def single(tmp_path):
    """The single-process reference store plus its solve count."""
    spec = fleet_spec()
    store = RunStore(tmp_path / "single")
    perf.reset()
    run_scenario(spec, store=store)
    return spec, store, counter("plan_point_solves")


class TestFleet:
    def test_four_workers_byte_identical_and_no_double_solve(
        self, single, tmp_path
    ):
        spec, single_store, single_solves = single
        outcome = run_fleet(
            [spec],
            store=tmp_path / "fleet",
            workers=4,
            timeout_s=300.0,
        )
        assert outcome.ok
        assert outcome.exit_codes == (EXIT_OK,) * 4
        assert len(outcome.reports) == 4

        fleet_store = RunStore(outcome.store_root)
        key = spec.content_hash()
        assert normalized_run(fleet_store, key) == normalized_run(
            single_store, key
        )
        assert normalized_points(fleet_store) == normalized_points(single_store)
        # every plan node solved exactly once across the whole fleet
        assert outcome.counters["plan_point_solves"] == single_solves
        # every worker claimed through the lease layer
        assert outcome.counters.get("lease_acquired", 0) > 0

    def test_worker_kill_loses_no_completed_points(self, single, tmp_path):
        spec, single_store, single_solves = single
        # worker 0 is armed to crash the moment it holds a lease; the
        # survivors inherit clean environments and take over its claims
        # once the (short) TTL expires
        outcome = run_fleet(
            [spec],
            store=tmp_path / "fleet",
            workers=3,
            ttl_s=1.0,
            timeout_s=300.0,
            extra_env={
                0: {
                    faults.ENV_RATE: "1.0",
                    faults.ENV_SITES: "lease",
                    faults.ENV_KINDS: "crash",
                    faults.ENV_SEED: "1",
                }
            },
        )
        assert outcome.complete
        assert outcome.exit_codes[0] == CRASH_EXIT_CODE
        assert outcome.exit_codes[1] == EXIT_OK
        assert outcome.exit_codes[2] == EXIT_OK
        # the killed worker never reports; the survivors' stores carry
        # the full, byte-identical result set regardless
        assert len(outcome.reports) == 2
        fleet_store = RunStore(outcome.store_root)
        key = spec.content_hash()
        assert normalized_run(fleet_store, key) == normalized_run(
            single_store, key
        )
        assert normalized_points(fleet_store) == normalized_points(single_store)
        assert outcome.counters["plan_point_solves"] == single_solves

    def test_single_worker_fleet_matches_run_scenario(self, single, tmp_path):
        spec, single_store, single_solves = single
        outcome = run_fleet(
            [spec], store=tmp_path / "fleet", workers=1, timeout_s=300.0
        )
        assert outcome.ok
        assert outcome.counters["plan_point_solves"] == single_solves
        assert normalized_points(RunStore(outcome.store_root)) == (
            normalized_points(single_store)
        )

    def test_fleet_resumes_from_a_prior_partial_store(self, single, tmp_path):
        # the store is the coordination plane: a fleet pointed at a store
        # that already holds every point re-solves nothing
        spec, single_store, _ = single
        outcome = run_fleet(
            [spec], store=single_store.root, workers=2, timeout_s=300.0
        )
        assert outcome.ok
        assert outcome.counters.get("plan_point_solves", 0) == 0


class TestFleetCLI:
    def test_cli_fleet_smoke(self, tmp_path, capsys):
        spec = fleet_spec()
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(spec.to_dict()))
        code = main(
            [
                "fleet",
                str(spec_file),
                "--workers",
                "2",
                "--store",
                str(tmp_path / "store"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet of 2" in out
        assert "store complete" in out
        assert RunStore(tmp_path / "store").get(spec.content_hash())

    def test_cli_migrate_smoke(self, tmp_path, capsys):
        store = RunStore(tmp_path / "store")
        (store.points / ("ab" * 32 + ".json")).write_text('{"x": 1}')
        code = main(["migrate", str(tmp_path / "store")])
        assert code == 0
        assert "migrated 1 artifact(s)" in capsys.readouterr().out
        assert RunStore(tmp_path / "store").get_point("ab" * 32) == {"x": 1}


class TestReportAggregation:
    def test_missing_truncated_and_garbled_reports_are_skipped(self, tmp_path):
        from repro.scenarios.fleet import _report_path, read_reports

        good = {
            "rank": 0,
            "pid": 1234,
            "owner": "w0",
            "ok": True,
            "error": None,
            "counters": {"plan_point_solves": 3},
            "elapsed_s": 1.0,
            "runs": [],
        }
        path0 = _report_path(tmp_path, 0)
        path0.parent.mkdir(parents=True)
        path0.write_text(json.dumps(good))
        # rank 1 died mid-write on a laggy filesystem: truncated JSON
        _report_path(tmp_path, 1).write_text('{"rank": 1, "exit_code"')
        # rank 2 wrote valid JSON missing the report fields
        _report_path(tmp_path, 2).write_text("{}")
        # rank 3 was SIGKILLed before writing anything at all
        # rank 4's JSON parses, but to a non-dict
        _report_path(tmp_path, 4).write_text('["not", "a", "report"]')
        # rank 5's fields have the wrong shapes entirely
        _report_path(tmp_path, 5).write_text(
            json.dumps({**good, "rank": 5, "counters": 7, "runs": 9})
        )
        reports = read_reports(tmp_path, workers=6)
        assert [r.rank for r in reports] == [0]
        assert reports[0].counters == {"plan_point_solves": 3}
