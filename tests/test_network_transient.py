"""Transient RC extension: step response and time constants."""

import numpy as np
import pytest

from repro.errors import SolverError, ValidationError
from repro.network import GROUND, ThermalCircuit, step_response, time_constants


def rc_cell(r: float = 2.0, c: float = 3.0, q: float = 1.5) -> ThermalCircuit:
    circuit = ThermalCircuit()
    circuit.add_resistor("a", GROUND, r)
    circuit.add_capacitor("a", c)
    circuit.add_source("a", q)
    return circuit


class TestStepResponse:
    def test_final_value_matches_steady_state(self):
        circuit = rc_cell()
        tau = 2.0 * 3.0
        result = step_response(circuit, t_end=10 * tau, n_steps=400)
        assert result.final[0] == pytest.approx(1.5 * 2.0, rel=1e-3)

    def test_exponential_rise(self):
        r, c, q = 2.0, 3.0, 1.5
        circuit = rc_cell(r, c, q)
        tau = r * c
        result = step_response(circuit, t_end=5 * tau, n_steps=2000)
        trace = result.trace("a")
        expected = q * r * (1.0 - np.exp(-result.times / tau))
        assert np.allclose(trace, expected, atol=q * r * 0.01)

    def test_monotone_rise(self):
        result = step_response(rc_cell(), t_end=10.0, n_steps=100)
        assert np.all(np.diff(result.trace("a")) >= -1e-12)

    def test_massless_nodes_follow_algebraically(self):
        circuit = ThermalCircuit()
        circuit.add_resistor("hot", "mid", 1.0)
        circuit.add_resistor("mid", GROUND, 1.0)
        circuit.add_capacitor("hot", 2.0)
        circuit.add_source("hot", 1.0)
        result = step_response(circuit, t_end=40.0, n_steps=400)
        # steady state: hot = 2, mid = 1
        assert result.trace("hot")[-1] == pytest.approx(2.0, rel=1e-3)
        assert result.trace("mid")[-1] == pytest.approx(1.0, rel=1e-3)

    def test_unknown_trace_rejected(self):
        result = step_response(rc_cell(), t_end=1.0, n_steps=10)
        with pytest.raises(ValidationError):
            result.trace("zzz")

    def test_bad_t_end_rejected(self):
        with pytest.raises(Exception):
            step_response(rc_cell(), t_end=0.0)


class TestTimeConstants:
    def test_single_rc(self):
        taus = time_constants(rc_cell(2.0, 3.0), n=1)
        assert taus[0] == pytest.approx(6.0)

    def test_kron_reduction_preserves_tau(self):
        # hot --1K/W-- mid --1K/W-- GND with C on hot only:
        # seen from hot, R = 2, so tau = 2*C
        circuit = ThermalCircuit()
        circuit.add_resistor("hot", "mid", 1.0)
        circuit.add_resistor("mid", GROUND, 1.0)
        circuit.add_capacitor("hot", 5.0)
        taus = time_constants(circuit, n=1)
        assert taus[0] == pytest.approx(10.0)

    def test_requires_capacitance(self):
        circuit = ThermalCircuit()
        circuit.add_resistor("a", GROUND, 1.0)
        with pytest.raises(SolverError):
            time_constants(circuit)

    def test_sorted_descending(self):
        circuit = ThermalCircuit()
        circuit.add_resistor("a", GROUND, 1.0)
        circuit.add_resistor("b", GROUND, 1.0)
        circuit.add_capacitor("a", 1.0)
        circuit.add_capacitor("b", 10.0)
        taus = time_constants(circuit, n=2)
        assert taus[0] >= taus[1]
