"""Paper constants: the numbers quoted in Section IV must be exact."""

import pytest

from repro import constants
from repro.units import um, w_per_mm3


class TestBlockSetup:
    def test_conductivities(self):
        assert constants.K_SILICON_DIOXIDE == 1.4
        assert constants.K_POLYIMIDE == 0.15
        assert constants.K_COPPER == 400.0

    def test_footprint(self):
        assert constants.PAPER_FOOTPRINT_AREA == pytest.approx(um(100) ** 2)

    def test_first_substrate_and_extension(self):
        assert constants.PAPER_T_SI1 == pytest.approx(um(500))
        assert constants.PAPER_L_EXT == pytest.approx(um(1))

    def test_power_densities(self):
        assert constants.PAPER_DEVICE_POWER_DENSITY == pytest.approx(w_per_mm3(700))
        assert constants.PAPER_ILD_POWER_DENSITY == pytest.approx(w_per_mm3(70))

    def test_fitting_coefficients(self):
        assert constants.PAPER_K1 == 1.3
        assert constants.PAPER_K2 == 0.55

    def test_aspect_ratio_ceiling(self):
        assert constants.MAX_TSV_ASPECT_RATIO == 10.0


class TestCaseStudy:
    def test_geometry(self):
        assert constants.CASE_FOOTPRINT_AREA == pytest.approx(1e-4)
        assert constants.CASE_T_SI == pytest.approx(um(300))
        assert constants.CASE_T_D == pytest.approx(um(20))
        assert constants.CASE_T_B == pytest.approx(um(10))
        assert constants.CASE_TSV_RADIUS == pytest.approx(um(30))

    def test_powers_and_density(self):
        assert constants.CASE_PLANE_POWERS == (70.0, 7.0, 7.0)
        assert constants.CASE_TSV_DENSITY == 0.005

    def test_coefficients(self):
        assert constants.CASE_K1 == 1.6
        assert constants.CASE_K2 == 0.8
        assert constants.CASE_C_BOND == 3.5
