"""Experiment harness and the paper experiments end-to-end (coarse/fast)."""

import pytest

from repro.analysis import crossover_points, is_monotonic
from repro.experiments import (
    case_study,
    fig4_radius,
    fig5_liner,
    fig6_substrate,
    fig7_cluster,
    render_markdown,
    table1_segments,
)
from repro.experiments.table1_segments import rows_from_fig5


@pytest.fixture(scope="module")
def fig5_result():
    return fig5_liner.run(fem_resolution="coarse", fast=True, calibrate=False)


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4_radius.run(fem_resolution="coarse", fast=True, calibrate=False)

    def test_series_present(self, result):
        assert {"model_a", "model_b(100)", "model_1d", "fem"} <= set(result.series)

    def test_all_fall_with_radius_at_fixed_substrate(self, result):
        # monotone within each substrate-thickness regime (r <= 5 / r > 5)
        for name, ys in result.series.items():
            thin = [y for x, y in zip(result.x_values, ys) if x <= 5.0]
            thick = [y for x, y in zip(result.x_values, ys) if x > 5.0]
            assert is_monotonic(thin, increasing=False), name
            assert is_monotonic(thick, increasing=False), name

    def test_model_b_tracks_fem_better_than_1d(self, result):
        assert (
            result.errors["model_b(100)"].avg_error
            < result.errors["model_1d"].avg_error
        )

    def test_table_and_plot_render(self, result):
        assert "radius" in result.table_text()
        assert "legend" in result.plot_text()

    def test_payload_serialisable(self, result):
        import json

        json.dumps(result.to_payload())


class TestFig5Table1:
    def test_fem_sees_liner_effect_1d_does_not(self, fig5_result):
        fem = fig5_result.series["fem"]
        one_d = fig5_result.series["model_1d"]
        fem_spread = (max(fem) - min(fem)) / min(fem)
        d_spread = (max(one_d) - min(one_d)) / min(one_d)
        assert fem_spread > 0.05  # the paper: up to 11 %
        assert d_spread < fem_spread / 3.0

    def test_model_b_error_falls_with_segments(self, fig5_result):
        errs = [
            fig5_result.errors[f"model_b({n})"].avg_error for n in (1, 20, 100, 500)
        ]
        assert errs[0] > errs[1] > errs[2]
        assert errs[3] <= errs[2] * 1.2  # saturating

    def test_model_b_runtime_grows(self, fig5_result):
        times = [
            fig5_result.runtimes_ms[f"model_b({n})"] for n in (1, 20, 100, 500)
        ]
        assert times[3] > times[0]

    def test_table1_rows_order(self, fig5_result):
        result = table1_segments.run(fig5_result=fig5_result)
        rows = rows_from_fig5(fig5_result)
        assert [r[0] for r in rows[1:]] == [
            "model_b(1)", "model_b(20)", "model_b(100)", "model_b(500)",
            "model_a", "model_1d",
        ]
        assert result.metadata["table_rows"] == rows
        assert "model" in table1_segments.table_text(result)


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6_substrate.run(fem_resolution="coarse", fast=False, calibrate=False)

    def test_fem_non_monotonic(self, result):
        assert crossover_points(result.x_values, result.series["fem"])

    def test_models_a_b_non_monotonic(self, result):
        assert crossover_points(result.x_values, result.series["model_a"])
        assert crossover_points(result.x_values, result.series["model_b(100)"])

    def test_1d_monotonic(self, result):
        assert is_monotonic(result.series["model_1d"], increasing=True)


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7_cluster.run(fem_resolution="coarse", fast=False, calibrate=False)

    def test_models_fall_with_n(self, result):
        for name in ("model_a", "model_b(100)", "fem"):
            assert is_monotonic(result.series[name], increasing=False), name

    def test_1d_flat(self, result):
        ys = result.series["model_1d"]
        assert (max(ys) - min(ys)) / min(ys) < 0.02

    def test_model_a_error_small(self, result):
        # the paper: 1 % average for Model A on this sweep
        assert result.errors["model_a"].avg_error < 0.20


class TestCaseStudyExperiment:
    def test_runs_with_recalibration(self):
        exp = case_study.run(
            fem_resolution="coarse", fast=True, recalibrate=True
        )
        rises = exp.report.rises()
        assert rises["model_1d"] > rises["fem"] * 1.5
        assert exp.recalibrated is not None
        # the recalibrated model must track our FEM closely
        assert exp.recalibrated_rise == pytest.approx(rises["fem"], rel=0.10)
        assert len(exp.rows()) == 6

    def test_payload(self):
        exp = case_study.run(fem_resolution="coarse", fast=True, recalibrate=False)
        payload = exp.to_payload()
        assert payload["experiment_id"] == "case_study"
        assert "recalibrated" not in payload


class TestRunAll:
    def test_no_calibrate_and_jobs_forwarded(self):
        from repro.experiments.runner import run_all

        results = run_all(
            fem_resolution="coarse", fast=True, verbose=False, calibrate=False
        )
        # --no-calibrate reaches every experiment (it used to be dropped)
        for exp_id in ("fig4", "fig5", "fig6", "fig7", "table1"):
            assert "model_a_cal" not in results[exp_id].series, exp_id
        assert results["case_study"].recalibrated is None
        # table1 is derived from the shared fig5 sweep
        assert results["table1"].series == results["fig5"].series

    def test_case_study_accepts_jobs(self):
        exp = case_study.run(
            fem_resolution="coarse", fast=True, recalibrate=False, jobs=4
        )
        assert exp.report.rises()["fem"] > 0


class TestRenderMarkdown:
    def test_render_from_minimal_results(self, fig5_result):
        text = render_markdown({"fig5": fig5_result})
        assert "EXPERIMENTS" in text
        assert "Fig. 5" in text
