"""PowerSpec tests: density mode, per-plane mode, unit-cell scaling."""

import pytest

from repro import PowerSpec, constants, paper_stack
from repro.errors import ValidationError
from repro.units import um


class TestDensityMode:
    def test_device_heat_matches_hand_calculation(self):
        stack = paper_stack()  # A0 = 1e-8 m^2, device layer 1 um
        spec = PowerSpec()
        expected = constants.PAPER_DEVICE_POWER_DENSITY * 1e-8 * um(1)
        assert spec.device_heat(stack, 0) == pytest.approx(expected)

    def test_ild_heat_scales_with_thickness(self):
        spec = PowerSpec()
        thin = paper_stack(t_ild=um(4))
        thick = paper_stack(t_ild=um(8))
        assert spec.ild_heat(thick, 0) == pytest.approx(2 * spec.ild_heat(thin, 0))

    def test_plane_heat_is_sum(self):
        stack = paper_stack()
        spec = PowerSpec()
        assert spec.plane_heat(stack, 1) == pytest.approx(
            spec.device_heat(stack, 1) + spec.ild_heat(stack, 1)
        )

    def test_total_heat(self):
        stack = paper_stack()
        spec = PowerSpec()
        assert spec.total_heat(stack) == pytest.approx(
            sum(spec.plane_heat(stack, j) for j in range(3))
        )

    def test_density_round_trip(self):
        stack = paper_stack()
        spec = PowerSpec()
        assert spec.device_density(stack, 0) == pytest.approx(
            constants.PAPER_DEVICE_POWER_DENSITY
        )
        assert spec.ild_density(stack, 0) == pytest.approx(
            constants.PAPER_ILD_POWER_DENSITY
        )

    def test_plane_index_out_of_range(self):
        with pytest.raises(ValidationError):
            PowerSpec().plane_heat(paper_stack(), 3)


class TestPlanePowersMode:
    def test_plane_totals(self):
        stack = paper_stack()
        spec = PowerSpec(plane_powers=(70.0, 7.0, 7.0), ild_fraction=0.1)
        assert spec.plane_heat(stack, 0) == pytest.approx(70.0)
        assert spec.device_heat(stack, 0) == pytest.approx(63.0)
        assert spec.ild_heat(stack, 0) == pytest.approx(7.0)

    def test_plane_powers_length_checked(self):
        stack = paper_stack()
        spec = PowerSpec(plane_powers=(70.0, 7.0))
        with pytest.raises(ValidationError):
            spec.plane_heat(stack, 0)

    def test_scaled_to_area(self):
        stack = paper_stack()
        spec = PowerSpec(plane_powers=(70.0, 7.0, 7.0))
        cell = spec.scaled_to_area(stack, stack.footprint_area / 100.0)
        assert cell.plane_powers[0] == pytest.approx(0.7)

    def test_scaled_to_area_noop_in_density_mode(self):
        spec = PowerSpec()
        assert spec.scaled_to_area(paper_stack(), 1e-9) is spec

    def test_rejects_negative_power(self):
        with pytest.raises(Exception):
            PowerSpec(plane_powers=(70.0, -1.0, 7.0))

    def test_rejects_empty_powers(self):
        with pytest.raises(ValidationError):
            PowerSpec(plane_powers=())

    def test_rejects_bad_ild_fraction(self):
        with pytest.raises(ValidationError):
            PowerSpec(ild_fraction=1.0)
