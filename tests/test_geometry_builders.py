"""Builder functions and geometric validation."""

import pytest

from repro import constants, paper_stack, paper_tsv
from repro.errors import GeometryError
from repro.geometry import validate_tsv_in_stack
from repro.materials import BCB, TUNGSTEN
from repro.units import um


class TestPaperStack:
    def test_defaults_match_section_iv(self):
        stack = paper_stack()
        assert stack.footprint_area == pytest.approx(constants.PAPER_FOOTPRINT_AREA)
        assert stack.planes[0].substrate.thickness == pytest.approx(um(500))
        assert stack.sink_temperature == pytest.approx(27.0)
        assert stack.bonds[0].material.name == "polyimide"

    def test_custom_materials(self):
        stack = paper_stack(bond_material=BCB)
        assert stack.bonds[0].material is BCB

    def test_plane_names_sequential(self):
        stack = paper_stack(n_planes=4)
        assert [p.name for p in stack.planes] == [
            "plane1", "plane2", "plane3", "plane4",
        ]

    def test_single_plane_needs_no_upper_thickness(self):
        stack = paper_stack(n_planes=1)
        assert stack.n_planes == 1

    def test_rejects_bad_counts(self):
        with pytest.raises(Exception):
            paper_stack(n_planes=0)


class TestPaperTSV:
    def test_defaults(self):
        via = paper_tsv()
        assert via.radius == pytest.approx(um(5))
        assert via.extension == pytest.approx(constants.PAPER_L_EXT)

    def test_custom_fill(self):
        from repro.geometry import TSV

        via = TSV(radius=um(2), liner_thickness=um(0.2), fill=TUNGSTEN)
        assert via.fill.thermal_conductivity == pytest.approx(173.0)


class TestValidation:
    def test_fitting_via_passes(self):
        validate_tsv_in_stack(paper_stack(), paper_tsv())

    def test_oversized_via_rejected(self):
        with pytest.raises(GeometryError):
            validate_tsv_in_stack(paper_stack(), paper_tsv(radius=um(60)))

    def test_too_deep_extension_rejected(self):
        with pytest.raises(GeometryError):
            validate_tsv_in_stack(paper_stack(), paper_tsv(extension=um(501)))
