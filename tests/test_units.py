"""Unit-conversion and validator tests."""

import math

import pytest

from repro.errors import ValidationError
from repro.units import (
    celsius_to_kelvin,
    kelvin_to_celsius,
    mm,
    nm,
    require_fraction,
    require_monotonic,
    require_non_negative,
    require_positive,
    require_positive_int,
    to_mm,
    to_um,
    um,
    w_per_mm3,
)


class TestConversions:
    def test_um_to_metres(self):
        assert um(5) == pytest.approx(5e-6)

    def test_mm_to_metres(self):
        assert mm(10) == pytest.approx(0.01)

    def test_nm_to_metres(self):
        assert nm(500) == pytest.approx(5e-7)

    def test_um_roundtrip(self):
        assert to_um(um(37.5)) == pytest.approx(37.5)

    def test_mm_roundtrip(self):
        assert to_mm(mm(2.5)) == pytest.approx(2.5)

    def test_celsius_kelvin_roundtrip(self):
        assert kelvin_to_celsius(celsius_to_kelvin(27.0)) == pytest.approx(27.0)

    def test_celsius_to_kelvin_value(self):
        assert celsius_to_kelvin(0.0) == pytest.approx(273.15)

    def test_w_per_mm3(self):
        # the paper's 700 W/mm^3 device density
        assert w_per_mm3(700.0) == pytest.approx(7e11)

    def test_w_per_mm3_ild(self):
        assert w_per_mm3(70.0) == pytest.approx(7e10)


class TestValidators:
    def test_require_positive_accepts(self):
        assert require_positive("x", 2) == 2.0

    def test_require_positive_rejects_zero(self):
        with pytest.raises(ValidationError):
            require_positive("x", 0.0)

    def test_require_positive_rejects_negative(self):
        with pytest.raises(ValidationError):
            require_positive("x", -1.0)

    def test_require_positive_rejects_nan(self):
        with pytest.raises(ValidationError):
            require_positive("x", math.nan)

    def test_require_positive_rejects_inf(self):
        with pytest.raises(ValidationError):
            require_positive("x", math.inf)

    def test_require_positive_rejects_bool(self):
        with pytest.raises(ValidationError):
            require_positive("x", True)

    def test_require_positive_rejects_string(self):
        with pytest.raises(ValidationError):
            require_positive("x", "5")

    def test_error_message_names_parameter(self):
        with pytest.raises(ValidationError, match="liner"):
            require_positive("liner", -3.0)

    def test_require_non_negative_accepts_zero(self):
        assert require_non_negative("x", 0.0) == 0.0

    def test_require_non_negative_rejects(self):
        with pytest.raises(ValidationError):
            require_non_negative("x", -1e-12)

    def test_require_fraction_bounds(self):
        assert require_fraction("f", 0.0) == 0.0
        assert require_fraction("f", 1.0) == 1.0

    def test_require_fraction_rejects(self):
        with pytest.raises(ValidationError):
            require_fraction("f", 1.0001)

    def test_require_positive_int(self):
        assert require_positive_int("n", 3) == 3

    def test_require_positive_int_rejects_float(self):
        with pytest.raises(ValidationError):
            require_positive_int("n", 3.0)

    def test_require_positive_int_rejects_zero(self):
        with pytest.raises(ValidationError):
            require_positive_int("n", 0)

    def test_require_positive_int_rejects_bool(self):
        with pytest.raises(ValidationError):
            require_positive_int("n", True)

    def test_require_monotonic_accepts(self):
        assert require_monotonic("xs", [1.0, 2.0, 3.0]) == [1.0, 2.0, 3.0]

    def test_require_monotonic_rejects_flat(self):
        with pytest.raises(ValidationError):
            require_monotonic("xs", [1.0, 1.0])

    def test_require_monotonic_rejects_decreasing(self):
        with pytest.raises(ValidationError):
            require_monotonic("xs", [2.0, 1.0])
