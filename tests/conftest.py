"""Shared fixtures: the paper's standard geometries at test-friendly sizes."""

from __future__ import annotations

import pytest

from repro import PowerSpec, TSV, paper_stack, paper_tsv
from repro.resistances import FittingCoefficients
from repro.units import um


@pytest.fixture()
def block_stack():
    """The Fig. 5 block: tSi2,3 = 45 um, tD = 7 um, tb = 1 um."""
    return paper_stack(t_si_upper=um(45.0), t_ild=um(7.0), t_bond=um(1.0))


@pytest.fixture()
def thin_stack():
    """A thin-substrate block (Fig. 7 geometry): tSi2,3 = 20 um, tD = 4 um."""
    return paper_stack(t_si_upper=um(20.0), t_ild=um(4.0), t_bond=um(1.0))


@pytest.fixture()
def block_tsv() -> TSV:
    """The Fig. 5 via: r = 5 um, tL = 1 um, l_ext = 1 um."""
    return paper_tsv(radius=um(5.0), liner_thickness=um(1.0))


@pytest.fixture()
def block_power() -> PowerSpec:
    """The paper's density-mode power spec."""
    return PowerSpec()


@pytest.fixture()
def paper_fit() -> FittingCoefficients:
    return FittingCoefficients.paper_block()
