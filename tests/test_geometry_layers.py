"""Layer and DevicePlane tests."""

import pytest

from repro.errors import GeometryError
from repro.geometry import DevicePlane, Layer, LayerKind, bond, dielectric, substrate
from repro.materials import POLYIMIDE, SILICON, SILICON_DIOXIDE
from repro.units import um


class TestLayer:
    def test_constructors_set_kinds(self):
        assert substrate("Si", um(50), SILICON).kind is LayerKind.SUBSTRATE
        assert dielectric("ILD", um(5), SILICON_DIOXIDE).kind is LayerKind.DIELECTRIC
        assert bond("b", um(1), POLYIMIDE).kind is LayerKind.BOND

    def test_conductivity_from_material(self):
        layer = substrate("Si", um(50), SILICON)
        assert layer.conductivity == SILICON.thermal_conductivity

    def test_vertical_resistance(self):
        layer = dielectric("ILD", um(7), SILICON_DIOXIDE)
        area = um(100) * um(100)
        expected = um(7) / (1.4 * area)
        assert layer.vertical_resistance(area) == pytest.approx(expected)

    def test_vertical_resistance_rejects_bad_area(self):
        layer = dielectric("ILD", um(7), SILICON_DIOXIDE)
        with pytest.raises(Exception):
            layer.vertical_resistance(0.0)

    def test_with_thickness(self):
        layer = substrate("Si", um(50), SILICON)
        thicker = layer.with_thickness(um(80))
        assert thicker.thickness == pytest.approx(um(80))
        assert layer.thickness == pytest.approx(um(50))

    def test_rejects_zero_thickness(self):
        with pytest.raises(Exception):
            substrate("Si", 0.0, SILICON)

    def test_rejects_empty_name(self):
        with pytest.raises(GeometryError):
            substrate("", um(1), SILICON)

    def test_rejects_non_material(self):
        with pytest.raises(GeometryError):
            Layer("Si", um(1), "silicon", LayerKind.SUBSTRATE)

    def test_rejects_non_kind(self):
        with pytest.raises(GeometryError):
            Layer("Si", um(1), SILICON, "substrate")


class TestDevicePlane:
    def _plane(self, t_si=um(45), t_dev=um(1)):
        return DevicePlane(
            name="p",
            substrate=substrate("Si", t_si, SILICON),
            ild=dielectric("ILD", um(7), SILICON_DIOXIDE),
            device_layer_thickness=t_dev,
        )

    def test_thickness_sums_substrate_and_ild(self):
        assert self._plane().thickness == pytest.approx(um(52))

    def test_device_layer_must_fit_substrate(self):
        with pytest.raises(GeometryError):
            self._plane(t_si=um(1), t_dev=um(1))

    def test_substrate_kind_enforced(self):
        with pytest.raises(GeometryError):
            DevicePlane(
                name="p",
                substrate=dielectric("x", um(10), SILICON_DIOXIDE),
                ild=dielectric("ILD", um(7), SILICON_DIOXIDE),
                device_layer_thickness=um(1),
            )

    def test_ild_kind_enforced(self):
        with pytest.raises(GeometryError):
            DevicePlane(
                name="p",
                substrate=substrate("Si", um(45), SILICON),
                ild=substrate("x", um(7), SILICON),
                device_layer_thickness=um(1),
            )

    def test_with_substrate_thickness(self):
        plane = self._plane()
        thick = plane.with_substrate_thickness(um(80))
        assert thick.substrate.thickness == pytest.approx(um(80))
        assert thick.ild.thickness == plane.ild.thickness

    def test_with_ild_thickness(self):
        plane = self._plane()
        assert plane.with_ild_thickness(um(4)).ild.thickness == pytest.approx(um(4))

    def test_empty_name_rejected(self):
        with pytest.raises(GeometryError):
            DevicePlane(
                name="",
                substrate=substrate("Si", um(45), SILICON),
                ild=dielectric("ILD", um(7), SILICON_DIOXIDE),
                device_layer_thickness=um(1),
            )
