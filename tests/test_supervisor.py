"""Supervision and graceful drain: heartbeats, respawn policy, signals.

The :class:`Supervisor` is driven against fake worker processes (the
``_WorkerProcess`` protocol is exactly the ``multiprocessing.Process``
surface it touches), so every policy branch — deliberate exits, crash
respawn with budget, stall detection, the whole-run deadline — runs in
milliseconds.  One end-to-end test respawns a really-crashing fleet
worker.  Drain tests deliver one real SIGTERM to the test process;
the second-signal escape hatch (restore default disposition and re-kill)
is deliberately never triggered here.
"""

import json
import os
import signal
import time

import pytest

from repro import faults, perf
from repro.errors import DrainError
from repro.perf import counter
from repro.scenarios import AxisSpec, RunStore, ScenarioSpec, run_scenario
from repro.scenarios.drain import DrainGuard, drain_exit_code, is_drain_exit
from repro.scenarios.fleet import run_fleet
from repro.scenarios.supervisor import (
    HeartbeatWriter,
    Supervisor,
    heartbeat_path,
    read_heartbeat,
)


@pytest.fixture(autouse=True)
def _reset_counters():
    perf.reset()
    yield
    perf.reset()


def tiny_spec():
    return ScenarioSpec(
        scenario_id="supervised_tiny",
        title="Supervised sweep",
        axis=AxisSpec(parameter="radius_um", values=(2.0, 3.0, 4.0, 5.0)),
        models=("a:paper", "1d"),
        calibrate=False,
    ).resolved()


class TestHeartbeat:
    def test_round_trip(self, tmp_path):
        writer = HeartbeatWriter(tmp_path, 2)
        writer.beat(claim="abc", held=1, done=3, total=8, force=True)
        beat = read_heartbeat(tmp_path, 2)
        assert beat is not None
        assert beat.rank == 2
        assert beat.pid == os.getpid()
        assert beat.claim == "abc"
        assert (beat.held, beat.done, beat.total) == (1, 3, 8)
        assert beat.age_s() < 5.0

    def test_beat_self_throttles_except_when_forced(self, tmp_path):
        writer = HeartbeatWriter(tmp_path, 0, min_interval_s=60.0)
        writer.beat(done=1, total=8)
        assert read_heartbeat(tmp_path, 0).done == 1
        writer.beat(done=5)  # inside the throttle window: state only
        assert read_heartbeat(tmp_path, 0).done == 1
        writer.beat(force=True)
        assert read_heartbeat(tmp_path, 0).done == 5

    def test_missing_and_torn_heartbeats_read_as_silent(self, tmp_path):
        assert read_heartbeat(tmp_path, 0) is None
        path = heartbeat_path(tmp_path, 0)
        path.parent.mkdir(parents=True)
        path.write_text('{"rank": 0, "pid":')  # torn mid-write
        assert read_heartbeat(tmp_path, 0) is None


class FakeProc:
    """A dead-or-alive stand-in satisfying the supervised-process surface."""

    def __init__(self, exitcode=None, alive=False):
        self.pid = 4242
        self.exitcode = exitcode
        self._alive = alive
        self.terminated = False

    def is_alive(self):
        return self._alive

    def join(self, timeout=None):
        pass

    def terminate(self):
        self.terminated = True
        self._alive = False
        if self.exitcode is None:
            self.exitcode = -signal.SIGTERM

    def kill(self):
        self._alive = False
        self.exitcode = -signal.SIGKILL


def supervisor(tmp_path, spawn, **kwargs):
    kwargs.setdefault("backoff_s", 0.01)
    kwargs.setdefault("poll_s", 0.01)
    return Supervisor(tmp_path, spawn, **kwargs)


def write_stale_heartbeat(tmp_path, rank, age_s):
    """A heartbeat as a long-dead incarnation would have left it."""
    path = heartbeat_path(tmp_path, rank)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(
            {
                "rank": rank,
                "pid": 4242,
                "stamp": time.monotonic() - age_s,
                "wall_unix": time.time() - age_s,
                "claim": None,
                "held": 0,
                "done": 0,
                "total": 0,
            }
        )
    )


class TestSupervisor:
    def test_deliberate_exits_retire_without_respawn(self, tmp_path):
        sup = supervisor(tmp_path, lambda rank: pytest.fail("spawned"))
        final = sup.run({0: FakeProc(0), 1: FakeProc(3)})
        assert final == {0: 0, 1: 3}
        assert sup.events == []

    def test_drain_exits_retire_without_respawn(self, tmp_path):
        sup = supervisor(tmp_path, lambda rank: pytest.fail("spawned"))
        final = sup.run(
            {
                0: FakeProc(drain_exit_code(signal.SIGTERM)),
                1: FakeProc(drain_exit_code(signal.SIGINT)),
                2: FakeProc(-int(signal.SIGTERM)),
            }
        )
        assert final == {0: 143, 1: 130, 2: -15}
        assert sup.events == []

    def test_crash_respawns_then_retires_on_clean_exit(self, tmp_path):
        spawned = []

        def spawn(rank):
            spawned.append(rank)
            return FakeProc(0)  # the respawn finishes cleanly

        sup = supervisor(tmp_path, spawn)
        final = sup.run({0: FakeProc(7)})
        assert spawned == [0]
        assert final == {0: 0}
        (event,) = sup.events
        assert (event.rank, event.reason, event.exit_code) == (0, "crash", 7)
        assert event.respawn == 1
        assert counter("fleet_respawns") == 1

    def test_crash_loop_exhausts_the_respawn_budget(self, tmp_path):
        sup = supervisor(
            tmp_path, lambda rank: FakeProc(7), max_respawns=2
        )
        final = sup.run({0: FakeProc(7)})
        assert final == {0: 7}  # stays dead with its crash code
        assert [e.respawn for e in sup.events] == [1, 2]

    def test_sigkill_is_a_crash_not_a_drain(self, tmp_path):
        sup = supervisor(tmp_path, lambda rank: FakeProc(0))
        final = sup.run({0: FakeProc(-int(signal.SIGKILL))})
        assert final == {0: 0}
        assert len(sup.events) == 1

    def test_silent_worker_is_killed_and_respawned(self, tmp_path):
        stuck = FakeProc(alive=True)  # never beats, never exits
        sup = supervisor(
            tmp_path, lambda rank: FakeProc(0), stall_timeout_s=0.05
        )
        final = sup.run({0: stuck})
        assert stuck.terminated
        assert final == {0: 0}
        (event,) = sup.events
        assert event.reason == "stall"

    def test_fresh_heartbeat_clears_the_stall_verdict(self, tmp_path):
        sup = supervisor(tmp_path, lambda rank: None, stall_timeout_s=0.05)
        old = time.monotonic() - 10.0
        assert sup._stalled(0, started_at=old)  # never beaten, grace spent
        HeartbeatWriter(tmp_path, 0).beat(force=True)
        assert not sup._stalled(0, started_at=old)

    def test_predecessors_heartbeat_reads_as_absent_for_a_respawn(
        self, tmp_path
    ):
        sup = supervisor(tmp_path, lambda rank: None, stall_timeout_s=5.0)
        write_stale_heartbeat(tmp_path, 0, age_s=30.0)
        # a beat older than the incarnation is the *previous* life's —
        # the fresh respawn gets the full grace period from spawn time
        assert not sup._stalled(0, started_at=time.monotonic())
        # and once its own grace is spent, silence is a stall again
        assert sup._stalled(0, started_at=time.monotonic() - 30.0)

    def test_respawn_outlives_its_predecessors_stale_heartbeat(self, tmp_path):
        # regression: the supervisor used to judge a freshly respawned
        # worker by the dead incarnation's heartbeat file, kill it in
        # the same poll, and loop until the respawn budget retired the
        # rank — stall recovery never actually recovered
        write_stale_heartbeat(tmp_path, 0, age_s=30.0)

        class SilentThenClean(FakeProc):
            """Alive (not yet beating) for a few polls, then exits 0."""

            def __init__(self, polls=3):
                super().__init__(alive=True)
                self.polls = polls

            def is_alive(self):
                self.polls -= 1
                if self.polls < 0:
                    self._alive = False
                    self.exitcode = 0
                return self._alive

        sup = supervisor(
            tmp_path, lambda rank: SilentThenClean(), stall_timeout_s=5.0
        )
        final = sup.run({0: FakeProc(7)})
        assert final == {0: 0}
        (event,) = sup.events  # the crash respawn, and no stall kill after
        assert event.reason == "crash"

    def test_deadline_kills_everything_and_reports(self, tmp_path):
        stuck = FakeProc(alive=True)
        sup = supervisor(
            tmp_path, lambda rank: pytest.fail("spawned"), deadline_s=0.05
        )
        final = sup.run({0: stuck})
        assert sup.deadline_exceeded
        assert stuck.terminated
        assert final == {0: -signal.SIGTERM}


class TestDrainPrimitives:
    def test_exit_codes_follow_the_shell_convention(self):
        assert drain_exit_code(signal.SIGTERM) == 143
        assert drain_exit_code(signal.SIGINT) == 130

    @pytest.mark.parametrize(
        "code,expected",
        [
            (143, True),
            (130, True),
            (-int(signal.SIGTERM), True),
            (-int(signal.SIGINT), True),
            (-int(signal.SIGKILL), False),  # no graceful path exists
            (0, False),
            (1, False),
            (None, False),
        ],
    )
    def test_is_drain_exit(self, code, expected):
        assert is_drain_exit(code) is expected

    def test_first_sigterm_becomes_a_request_not_a_death(self):
        guard = DrainGuard()
        before = signal.getsignal(signal.SIGTERM)
        with guard.installed():
            os.kill(os.getpid(), signal.SIGTERM)
            deadline = time.monotonic() + 5.0
            while guard.requested is None and time.monotonic() < deadline:
                time.sleep(0.01)
        assert guard.requested == signal.SIGTERM
        assert signal.getsignal(signal.SIGTERM) == before  # uninstalled
        with pytest.raises(DrainError) as err:
            guard.check()
        assert err.value.signum == signal.SIGTERM

    def test_unfired_guard_checks_clean(self):
        guard = DrainGuard()
        assert guard.requested is None
        guard.check()  # no request: no raise


class TestSchedulerDrain:
    def test_requested_drain_stops_the_plan_at_a_safe_point(self, tmp_path):
        guard = DrainGuard()
        guard._signum = signal.SIGTERM  # as if the handler had fired
        store = RunStore(tmp_path / "store")
        with pytest.raises(DrainError) as err:
            run_scenario(tiny_spec(), store=store, drain=guard)
        assert err.value.signum == signal.SIGTERM
        # everything that landed before the drain is committed; nothing
        # is left claimed
        assert not list(store.leases.glob("**/*.claim"))


class TestSupervisedFleet:
    def test_crashed_worker_is_respawned_and_the_fleet_completes(
        self, tmp_path
    ):
        spec = tiny_spec()
        # rank 0 crashes the moment it holds a lease — on every
        # incarnation, so it burns its whole respawn budget
        outcome = run_fleet(
            [spec],
            store=tmp_path / "fleet",
            workers=3,
            ttl_s=1.0,
            timeout_s=300.0,
            supervise=True,
            max_respawns=2,
            extra_env={
                0: {
                    faults.ENV_RATE: "1.0",
                    faults.ENV_SITES: "lease",
                    faults.ENV_KINDS: "crash",
                    faults.ENV_SEED: "1",
                }
            },
        )
        assert outcome.complete
        # the final incarnation either crashed with the budget spent, or
        # (timing) found the survivors had finished and exited clean —
        # but at least one crash was seen and respawned either way
        assert outcome.exit_codes[0] in (0, faults.CRASH_EXIT_CODE)
        assert 1 <= len(outcome.respawns) <= 2
        assert all(e["reason"] == "crash" for e in outcome.respawns)
        assert all(
            e["exit_code"] == faults.CRASH_EXIT_CODE for e in outcome.respawns
        )
        assert not outcome.deadline_exceeded
        # the survivors' heartbeats are on disk for a post-mortem
        for rank in (1, 2):
            assert read_heartbeat(tmp_path / "fleet", rank) is not None
        assert RunStore(tmp_path / "fleet").get(spec.content_hash())
