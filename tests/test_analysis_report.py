"""Tables, ASCII plots, export round-trips, convergence helpers."""

import pytest

from repro.analysis import (
    ascii_plot,
    export_json,
    export_series_csv,
    format_kv_block,
    format_series_table,
    format_table,
    read_series_csv,
    richardson_extrapolate,
)
from repro.errors import ValidationError


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table([["model", "err"], ["a", 1.234], ["long_name", 10.5]])
        lines = text.splitlines()
        assert len(lines) == 4  # header + rule + 2 rows
        assert "1.23" in text
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            format_table([])

    def test_ragged_rejected(self):
        with pytest.raises(ValidationError):
            format_table([["a", "b"], ["c"]])

    def test_no_header(self):
        text = format_table([["1", "2"]], header=False)
        assert "-" not in text

    def test_int_not_float_formatted(self):
        text = format_table([["n"], [100]], header=True)
        assert "100" in text and "100.00" not in text


class TestSeriesTable:
    def test_layout(self):
        text = format_series_table("x", [1, 2], {"a": [0.5, 0.6], "b": [1.0, 2.0]})
        assert text.splitlines()[0].split() == ["x", "a", "b"]

    def test_length_check(self):
        with pytest.raises(ValidationError):
            format_series_table("x", [1, 2], {"a": [0.5]})

    def test_needs_series(self):
        with pytest.raises(ValidationError):
            format_series_table("x", [1], {})


class TestKVBlock:
    def test_contains_items(self):
        text = format_kv_block("Setup", {"radius": "5 um", "k1": 1.3})
        assert "Setup" in text and "radius" in text and "1.3" in text

    def test_empty_title_rejected(self):
        with pytest.raises(ValidationError):
            format_kv_block("", {})


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        text = ascii_plot([0, 1, 2], {"fem": [1.0, 2.0, 3.0], "a": [1.5, 2.5, 3.5]})
        assert "o" in text and "x" in text
        assert "o=fem" in text and "x=a" in text

    def test_flat_series_ok(self):
        text = ascii_plot([0, 1], {"flat": [1.0, 1.0]})
        assert "flat" in text

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            ascii_plot([0, 1], {"a": [1.0]})

    def test_too_many_series(self):
        series = {f"s{i}": [0.0, 1.0] for i in range(9)}
        with pytest.raises(ValidationError):
            ascii_plot([0, 1], series)

    def test_canvas_size_validated(self):
        with pytest.raises(ValidationError):
            ascii_plot([0, 1], {"a": [0.0, 1.0]}, width=5, height=5)


class TestExport:
    def test_csv_round_trip(self, tmp_path):
        path = tmp_path / "series.csv"
        export_series_csv(path, "r", [1.0, 2.0], {"a": [3.0, 4.0], "b": [5.0, 6.0]})
        label, xs, series = read_series_csv(path)
        assert label == "r"
        assert xs == [1.0, 2.0]
        assert series == {"a": [3.0, 4.0], "b": [5.0, 6.0]}

    def test_csv_length_check(self, tmp_path):
        with pytest.raises(ValidationError):
            export_series_csv(tmp_path / "x.csv", "r", [1.0], {"a": [1.0, 2.0]})

    def test_json_export(self, tmp_path):
        path = export_json(tmp_path / "out.json", {"b": 2, "a": 1})
        content = path.read_text()
        assert content.index('"a"') < content.index('"b"')

    def test_json_requires_dict(self, tmp_path):
        with pytest.raises(ValidationError):
            export_json(tmp_path / "out.json", [1, 2])

    def test_read_rejects_non_series(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("just_one_column\n1\n")
        with pytest.raises(ValidationError):
            read_series_csv(bad)


class TestRichardson:
    def test_exact_for_quadratic_error(self):
        # T(h) = T* + c h^2; coarse h=2, fine h=1
        t_star, c = 10.0, 0.5
        coarse = t_star + c * 4.0
        fine = t_star + c * 1.0
        assert richardson_extrapolate(coarse, fine) == pytest.approx(t_star)

    def test_validates_inputs(self):
        with pytest.raises(ValidationError):
            richardson_extrapolate(1.0, 2.0, ratio=1.0)
