"""Eqs. (7)–(16) and the Eq. (22) cluster transform."""

import math

import pytest

from repro import constants, paper_stack, paper_tsv
from repro.errors import GeometryError
from repro.geometry import TSVCluster
from repro.resistances import (
    FittingCoefficients,
    compute_model_a_resistances,
)
from repro.units import um


@pytest.fixture()
def setup():
    stack = paper_stack(t_si_upper=um(45), t_ild=um(7), t_bond=um(1))
    via = paper_tsv(radius=um(5), liner_thickness=um(1))
    return stack, via


class TestPaperEquations:
    """Each resistance against its literal formula with k1 = k2 = 1."""

    def test_r1(self, setup):
        stack, via = setup
        rs = compute_model_a_resistances(stack, via)
        area = stack.footprint_area - math.pi * via.outer_radius**2
        expected = (um(7) / 1.4 + um(1) / constants.K_SILICON) / area
        assert rs.planes[0].bulk == pytest.approx(expected)

    def test_r2(self, setup):
        stack, via = setup
        rs = compute_model_a_resistances(stack, via)
        expected = (um(7) + um(1)) / (400.0 * math.pi * um(5) ** 2)
        assert rs.planes[0].metal == pytest.approx(expected)

    def test_r3_eq9(self, setup):
        stack, via = setup
        rs = compute_model_a_resistances(stack, via)
        span = um(7) + um(1)
        expected = math.log(um(6) / um(5)) / (2 * math.pi * 1.4 * span)
        assert rs.planes[0].liner == pytest.approx(expected)

    def test_r4_middle_plane(self, setup):
        stack, via = setup
        rs = compute_model_a_resistances(stack, via)
        area = stack.footprint_area - math.pi * via.outer_radius**2
        expected = (um(7) / 1.4 + um(45) / constants.K_SILICON + um(1) / 0.15) / area
        assert rs.planes[1].bulk == pytest.approx(expected)

    def test_r5_middle_metal_span(self, setup):
        stack, via = setup
        rs = compute_model_a_resistances(stack, via)
        span = um(7) + um(45) + um(1)
        assert rs.planes[1].metal == pytest.approx(
            span / (400.0 * math.pi * um(5) ** 2)
        )

    def test_r8_last_plane_has_no_ild_term(self, setup):
        # Eq. (14): the via stops at the last substrate top
        stack, via = setup
        rs = compute_model_a_resistances(stack, via)
        span = um(45) + um(1)  # tSi3 + tb only
        assert rs.planes[2].metal == pytest.approx(
            span / (400.0 * math.pi * um(5) ** 2)
        )

    def test_rs_eq16(self, setup):
        stack, via = setup
        rs = compute_model_a_resistances(stack, via)
        expected = (constants.PAPER_T_SI1 - um(1)) / (
            constants.K_SILICON * stack.footprint_area
        )
        assert rs.rs == pytest.approx(expected)

    def test_k1_divides_vertical(self, setup):
        stack, via = setup
        unity = compute_model_a_resistances(stack, via)
        fitted = compute_model_a_resistances(stack, via, FittingCoefficients(k1=1.3))
        for u, f in zip(unity.planes, fitted.planes):
            assert f.bulk == pytest.approx(u.bulk / 1.3)
            assert f.metal == pytest.approx(u.metal / 1.3)
            assert f.liner == pytest.approx(u.liner)  # k2 untouched
        assert fitted.rs == pytest.approx(unity.rs / 1.3)

    def test_k2_divides_lateral(self, setup):
        stack, via = setup
        unity = compute_model_a_resistances(stack, via)
        fitted = compute_model_a_resistances(stack, via, FittingCoefficients(k2=0.55))
        for u, f in zip(unity.planes, fitted.planes):
            assert f.liner == pytest.approx(u.liner / 0.55)
            assert f.bulk == pytest.approx(u.bulk)

    def test_c_bond_reduces_bulk_only(self, setup):
        stack, via = setup
        unity = compute_model_a_resistances(stack, via)
        fitted = compute_model_a_resistances(
            stack, via, FittingCoefficients(c_bond=3.5)
        )
        assert fitted.planes[1].bulk < unity.planes[1].bulk
        assert fitted.planes[0].bulk == pytest.approx(unity.planes[0].bulk)
        assert fitted.planes[1].metal == pytest.approx(unity.planes[1].metal)

    def test_as_paper_tuple_order(self, setup):
        stack, via = setup
        rs = compute_model_a_resistances(stack, via)
        t = rs.as_paper_tuple()
        assert len(t) == 10
        assert t[0] == rs.planes[0].bulk
        assert t[7] == rs.planes[2].metal
        assert t[9] == rs.rs

    def test_as_paper_tuple_requires_three_planes(self):
        stack = paper_stack(n_planes=2)
        rs = compute_model_a_resistances(stack, paper_tsv())
        with pytest.raises(GeometryError):
            rs.as_paper_tuple()


class TestClusterTransform:
    """Eq. (22): R'3 = ln(1 + tL*sqrt(n)/r0) / (2 n pi k2 kL L)."""

    def test_eq22_literal(self, setup):
        stack, via = setup
        n = 4
        rs = compute_model_a_resistances(stack, TSVCluster(via, n))
        span = um(7) + um(1)
        expected = math.log((um(5) + um(1) * math.sqrt(n)) / um(5)) / (
            2 * n * math.pi * 1.4 * span
        )
        assert rs.planes[0].liner == pytest.approx(expected)

    def test_vertical_resistances_invariant(self, setup):
        stack, via = setup
        single = compute_model_a_resistances(stack, via)
        clustered = compute_model_a_resistances(stack, TSVCluster(via, 9))
        for s, c in zip(single.planes, clustered.planes):
            assert c.metal == pytest.approx(s.metal)
            assert c.bulk == pytest.approx(s.bulk)

    def test_liner_resistance_falls_with_n(self, setup):
        stack, via = setup
        liners = [
            compute_model_a_resistances(stack, TSVCluster(via, n)).planes[0].liner
            for n in (1, 2, 4, 9, 16)
        ]
        assert liners == sorted(liners, reverse=True)

    def test_exact_area_shrinks_bulk_area(self, setup):
        stack, via = setup
        default = compute_model_a_resistances(stack, TSVCluster(via, 16))
        exact = compute_model_a_resistances(
            stack, TSVCluster(via, 16), exact_area=True
        )
        assert exact.planes[0].bulk > default.planes[0].bulk

    def test_cluster_must_fit(self, setup):
        stack, _ = setup
        huge = paper_tsv(radius=um(56), liner_thickness=um(1))
        with pytest.raises(GeometryError):
            compute_model_a_resistances(stack, huge)

    def test_extension_must_fit_substrate(self):
        stack = paper_stack()
        via = paper_tsv(extension=um(600))
        with pytest.raises(GeometryError):
            compute_model_a_resistances(stack, via)
