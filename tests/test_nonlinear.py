"""Temperature-dependent conductivity extension."""

import pytest

from repro import ModelA, PowerSpec, paper_stack, paper_tsv
from repro.core import NonlinearSolver
from repro.errors import ConvergenceError
from repro.geometry import DevicePlane, Stack3D
from repro.materials import Material
from repro.units import um


@pytest.fixture()
def point():
    stack = paper_stack(t_si_upper=um(45), t_ild=um(7), t_bond=um(1))
    return stack, paper_tsv(radius=um(5), liner_thickness=um(1)), PowerSpec()


class TestNonlinearSolver:
    def test_converges_quickly(self, point):
        result = NonlinearSolver().solve(*point)
        assert result.iterations <= 10
        assert result.max_rise > 0.0

    def test_hotter_than_linear_for_falling_k(self, point):
        # silicon's k drops with T -> the self-consistent solve is hotter
        linear = ModelA().solve(*point).max_rise
        nonlinear = NonlinearSolver().solve(*point).max_rise
        assert nonlinear > linear
        # but only mildly for a ~40 K rise
        assert nonlinear < linear * 1.15

    def test_linear_error_metric(self, point):
        result = NonlinearSolver().solve(*point)
        assert result.linear_error < 0.0  # constant-k underestimates here
        assert abs(result.linear_error) < 0.15

    def test_constant_k_materials_are_fixed_point(self, point):
        stack, via, power = point
        # rebuild the stack with zero-slope materials: one iteration suffices
        def flat(m: Material) -> Material:
            return Material(
                m.name + "_flat",
                thermal_conductivity=m.thermal_conductivity,
            )

        from dataclasses import replace

        planes = tuple(
            replace(
                p,
                substrate=replace(p.substrate, material=flat(p.substrate.material)),
                ild=replace(p.ild, material=flat(p.ild.material)),
            )
            for p in stack.planes
        )
        bonds = tuple(
            replace(b, material=flat(b.material)) for b in stack.bonds
        )
        flat_stack = Stack3D(
            planes=planes, bonds=bonds, footprint_area=stack.footprint_area
        )
        result = NonlinearSolver().solve(flat_stack, via, power)
        linear = ModelA().solve(flat_stack, via, power).max_rise
        assert result.max_rise == pytest.approx(linear, rel=1e-9)
        assert result.iterations == 1

    def test_history_recorded(self, point):
        result = NonlinearSolver().solve(*point)
        assert len(result.history) == result.iterations + 1
        assert result.history[-1] == pytest.approx(result.max_rise)

    def test_iteration_budget_enforced(self, point):
        with pytest.raises(ConvergenceError):
            NonlinearSolver(tolerance=1e-16, max_iterations=2).solve(*point)

    def test_bad_relaxation(self):
        with pytest.raises(Exception):
            NonlinearSolver(relaxation=0.0)

    def test_under_relaxation_converges_too(self, point):
        full = NonlinearSolver().solve(*point)
        relaxed = NonlinearSolver(relaxation=0.5).solve(*point)
        assert relaxed.max_rise == pytest.approx(full.max_rise, rel=1e-3)
