"""ModelResult accessors and the exception hierarchy."""

import pytest

from repro.core.result import ModelResult
from repro.errors import (
    CalibrationError,
    ConvergenceError,
    GeometryError,
    MaterialError,
    NetworkError,
    ReproError,
    SingularNetworkError,
    SolverError,
    ValidationError,
)


def make_result(**overrides) -> ModelResult:
    base = dict(
        model_name="model_a",
        max_rise=36.3,
        plane_rises=(18.3, 30.2, 36.3),
        sink_temperature=27.0,
        solve_time=0.001,
        n_unknowns=7,
    )
    base.update(overrides)
    return ModelResult(**base)


class TestModelResult:
    def test_max_temperature_adds_sink(self):
        assert make_result().max_temperature == pytest.approx(63.3)

    def test_plane_rise_lookup(self):
        assert make_result().plane_rise(1) == pytest.approx(30.2)

    def test_plane_rise_out_of_range(self):
        with pytest.raises(ValidationError):
            make_result().plane_rise(5)

    def test_summary_contains_key_numbers(self):
        text = make_result().summary()
        assert "36.30" in text and "model_a" in text and "7" in text

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            make_result(model_name="")

    def test_negative_unknowns_rejected(self):
        with pytest.raises(ValidationError):
            make_result(n_unknowns=-1)

    def test_metadata_defaults_empty(self):
        assert make_result().metadata == {}


class TestErrorHierarchy:
    def test_everything_is_repro_error(self):
        for exc in (
            ValidationError,
            GeometryError,
            MaterialError,
            NetworkError,
            SingularNetworkError,
            SolverError,
            ConvergenceError,
            CalibrationError,
        ):
            assert issubclass(exc, ReproError)

    def test_validation_is_value_error(self):
        # so generic callers can catch ValueError
        assert issubclass(ValidationError, ValueError)
        assert issubclass(GeometryError, ValueError)

    def test_singular_is_network_error(self):
        assert issubclass(SingularNetworkError, NetworkError)

    def test_convergence_is_solver_error(self):
        assert issubclass(ConvergenceError, SolverError)

    def test_catchable_by_base(self):
        with pytest.raises(ReproError):
            raise GeometryError("nope")
