"""Graph analysis helpers: networkx export, effective resistance, paths."""

import networkx as nx
import pytest

from repro.errors import NetworkError
from repro.network import (
    GROUND,
    ThermalCircuit,
    dominant_paths,
    effective_resistance,
    to_networkx,
)


def diamond() -> ThermalCircuit:
    """Two parallel two-hop paths from 'top' to ground."""
    c = ThermalCircuit()
    c.add_resistor("top", "left", 1.0)
    c.add_resistor("left", GROUND, 1.0)
    c.add_resistor("top", "right", 2.0)
    c.add_resistor("right", GROUND, 2.0)
    return c


class TestToNetworkx:
    def test_nodes_and_edges(self):
        g = to_networkx(diamond())
        assert g.number_of_edges() == 4
        assert GROUND in g

    def test_edge_attributes(self):
        g = to_networkx(diamond())
        datas = [d for *_e, d in g.edges(data=True)]
        assert all("resistance" in d for d in datas)

    def test_multigraph_keeps_parallel_edges(self):
        c = ThermalCircuit()
        c.add_resistor("a", GROUND, 1.0)
        c.add_resistor("a", GROUND, 2.0)
        assert to_networkx(c).number_of_edges() == 2


class TestEffectiveResistance:
    def test_series(self):
        c = ThermalCircuit()
        c.add_resistor("a", "b", 1.0)
        c.add_resistor("b", GROUND, 2.0)
        assert effective_resistance(c, "a") == pytest.approx(3.0)

    def test_parallel_paths(self):
        # 2 K/W parallel with 4 K/W = 4/3 K/W
        assert effective_resistance(diamond(), "top") == pytest.approx(4.0 / 3.0)

    def test_between_two_internal_nodes(self):
        c = ThermalCircuit()
        c.add_resistor("a", "b", 5.0)
        c.add_resistor("b", GROUND, 1.0)
        assert effective_resistance(c, "a", "b") == pytest.approx(5.0)

    def test_same_node_rejected(self):
        with pytest.raises(NetworkError):
            effective_resistance(diamond(), "top", "top")

    def test_matches_networkx_resistance_distance(self):
        c = diamond()
        ours = effective_resistance(c, "top")
        g = nx.Graph()
        for r in c.resistors:
            g.add_edge(r.node_a, r.node_b, weight=1.0 / r.resistance)
        theirs = nx.resistance_distance(g, "top", GROUND, weight="weight", invert_weight=False)
        assert ours == pytest.approx(theirs)


class TestDominantPaths:
    def test_orders_by_series_resistance(self):
        paths = dominant_paths(diamond(), "top", limit=2)
        assert len(paths) == 2
        assert paths[0][1] == pytest.approx(2.0)  # left branch
        assert paths[1][1] == pytest.approx(4.0)  # right branch
        assert paths[0][0] == ["top", "left", GROUND]

    def test_limit_respected(self):
        assert len(dominant_paths(diamond(), "top", limit=1)) == 1

    def test_unknown_source(self):
        with pytest.raises(NetworkError):
            dominant_paths(diamond(), "nope")

    def test_parallel_edges_merged(self):
        c = ThermalCircuit()
        c.add_resistor("a", GROUND, 2.0)
        c.add_resistor("a", GROUND, 2.0)
        paths = dominant_paths(c, "a", limit=1)
        assert paths[0][1] == pytest.approx(1.0)
