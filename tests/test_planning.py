"""Planning extension: power maps and the greedy inserter."""

import numpy as np
import pytest

from repro import Model1D, paper_stack, paper_tsv
from repro.errors import ValidationError
from repro.planning import (
    GreedyPlanner,
    hotspot_power_map,
    uniform_power_map,
)
from repro.units import mm, um


@pytest.fixture()
def small_stack():
    # a planning-scale stack: 1 mm x 1 mm, thin upper substrates
    return paper_stack(
        t_si_upper=um(45), t_ild=um(7), t_bond=um(1), footprint_area=mm(1) * mm(1)
    )


@pytest.fixture()
def planner(small_stack):
    return GreedyPlanner(
        stack=small_stack, via=paper_tsv(radius=um(10), liner_thickness=um(1))
    )


class TestPowerMap:
    def test_uniform_map_totals(self):
        pm = uniform_power_map((2.0, 1.0, 1.0), mm(1), 4)
        assert pm.total_power == pytest.approx(4.0)
        assert pm.cell_area == pytest.approx((mm(1) / 4) ** 2)

    def test_cell_center(self):
        pm = uniform_power_map((1.0,), 1.0, 2)
        assert pm.cell_center(0, 0) == (pytest.approx(0.25), pytest.approx(0.25))
        assert pm.cell_center(1, 1) == (pytest.approx(0.75), pytest.approx(0.75))

    def test_cell_center_bounds(self):
        pm = uniform_power_map((1.0,), 1.0, 2)
        with pytest.raises(ValidationError):
            pm.cell_center(2, 0)

    def test_hotspot_adds_power_on_top_plane(self):
        base = uniform_power_map((1.0, 1.0, 1.0), 1.0, 8)
        hot = hotspot_power_map(
            (1.0, 1.0, 1.0), 1.0, 8, hotspots=[(0.5, 0.5, 5.0, 0.1)]
        )
        assert hot.total_power == pytest.approx(base.total_power + 5.0)
        r, c, _p = hot.densest_cells(1)[0]
        assert (r, c) == (4, 4) or (r, c) == (3, 3) or r in (3, 4) and c in (3, 4)

    def test_hotspot_validation(self):
        with pytest.raises(ValidationError):
            hotspot_power_map((1.0,), 1.0, 4, hotspots=[(0.5, 0.5, -1.0, 0.1)])

    def test_densest_cells_sorted(self):
        hot = hotspot_power_map((1.0,), 1.0, 6, hotspots=[(0.2, 0.2, 3.0, 0.05)])
        cells = hot.densest_cells(3)
        powers = [p for *_rc, p in cells]
        assert powers == sorted(powers, reverse=True)

    def test_negative_cells_rejected(self):
        with pytest.raises(ValidationError):
            uniform_power_map((-1.0,), 1.0, 2)


class TestGreedyPlanner:
    def test_reduces_max_rise(self, planner, small_stack):
        pm = uniform_power_map((0.5, 0.25, 0.25), small_stack.footprint_side, 3)
        result = planner.plan(pm, target_rise=1.0, max_total_vias=50)
        assert result.max_rise < result.initial_rises.max()
        assert result.total_vias > 0

    def test_converges_to_loose_target(self, planner, small_stack):
        pm = uniform_power_map((0.2, 0.1, 0.1), small_stack.footprint_side, 2)
        loose = 0.99 * float(
            np.max(
                [
                    planner.bare_cell_rise(pm.cell_area, pm.plane_cell_power(r, c))
                    for r in range(2)
                    for c in range(2)
                ]
            )
        )
        result = planner.plan(pm, target_rise=loose, max_total_vias=100)
        assert result.converged
        assert result.max_rise <= loose

    def test_targets_hotspot_first(self, planner, small_stack):
        pm = hotspot_power_map(
            (0.4, 0.2, 0.2),
            small_stack.footprint_side,
            3,
            hotspots=[(0.85, 0.85, 1.0, 0.05)],
        )
        result = planner.plan(pm, target_rise=1.0, max_total_vias=3)
        hot_row, hot_col, _ = pm.densest_cells(1)[0]
        assert result.history[0][:2] == (hot_row, hot_col)

    def test_budget_respected(self, planner, small_stack):
        pm = uniform_power_map((5.0, 1.0, 1.0), small_stack.footprint_side, 2)
        result = planner.plan(pm, target_rise=0.01, max_total_vias=7)
        assert result.total_vias <= 7
        assert not result.converged

    def test_via_count_ceiling_per_cell(self, small_stack):
        planner = GreedyPlanner(
            stack=small_stack,
            via=paper_tsv(radius=um(10), liner_thickness=um(1)),
            max_vias_per_cell=2,
        )
        pm = uniform_power_map((5.0, 1.0, 1.0), small_stack.footprint_side, 1)
        result = planner.plan(pm, target_rise=0.01, max_total_vias=100)
        assert result.via_counts.max() <= 2

    def test_plane_count_mismatch(self, planner):
        pm = uniform_power_map((1.0, 1.0), 1.0, 2)  # 2 planes vs 3-plane stack
        with pytest.raises(ValidationError):
            planner.plan(pm, target_rise=1.0)

    def test_1d_estimator_overshoots_via_count(self, small_stack):
        """The paper's cost argument: planning with the 1-D model uses
        more vias than planning with Model A for the same target."""
        via = paper_tsv(radius=um(10), liner_thickness=um(1))
        pm = uniform_power_map((0.5, 0.25, 0.25), small_stack.footprint_side, 2)
        target = 4.5
        with_a = GreedyPlanner(stack=small_stack, via=via).plan(
            pm, target_rise=target, max_total_vias=200
        )
        with_1d = GreedyPlanner(
            stack=small_stack, via=via, estimator=Model1D()
        ).plan(pm, target_rise=target, max_total_vias=200)
        assert with_1d.total_vias >= with_a.total_vias

    def test_summary_mentions_counts(self, planner, small_stack):
        pm = uniform_power_map((0.5, 0.25, 0.25), small_stack.footprint_side, 2)
        result = planner.plan(pm, target_rise=2.0, max_total_vias=20)
        assert "TTSV" in result.summary()
