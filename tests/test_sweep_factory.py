"""Sweep engine and model factory."""

import pytest

from repro import Model1D, ModelA, ModelB, make_model, paper_tsv, sweep
from repro.errors import ValidationError
from repro.units import um


class TestSweep:
    def test_radius_sweep(self, block_stack, block_power):
        def configure(r_um):
            return block_stack, paper_tsv(radius=um(r_um), liner_thickness=um(1)), block_power

        result = sweep("radius", [2.0, 5.0, 10.0], [ModelA(), Model1D()], configure)
        assert result.values == [2.0, 5.0, 10.0]
        assert set(result.model_names) == {"model_a", "model_1d"}
        assert len(result.series("model_a")) == 3

    def test_rows_layout(self, block_stack, block_power):
        def configure(r_um):
            return block_stack, paper_tsv(radius=um(r_um), liner_thickness=um(1)), block_power

        rows = sweep("radius", [2.0, 5.0], [ModelA()], configure).rows()
        assert rows[0] == ["value", "model_a"]
        assert len(rows) == 3

    def test_duplicate_model_names_rejected(self, block_stack, block_power):
        def configure(v):
            return block_stack, paper_tsv(), block_power

        with pytest.raises(ValidationError):
            sweep("x", [1], [ModelA(), ModelA()], configure)

    def test_empty_values_rejected(self, block_stack, block_power):
        def configure(v):
            return block_stack, paper_tsv(), block_power

        with pytest.raises(ValidationError):
            sweep("x", [], [ModelA()], configure)

    def test_unknown_model_in_point(self, block_stack, block_power):
        def configure(v):
            return block_stack, paper_tsv(), block_power

        result = sweep("x", [1], [ModelA()], configure)
        with pytest.raises(ValidationError):
            result.points[0].rise("nope")

    def test_result_series_returns_full_results(self, block_stack, block_power):
        def configure(v):
            return block_stack, paper_tsv(), block_power

        result = sweep("x", [1, 2], [ModelA()], configure)
        assert all(r.model_name == "model_a" for r in result.result_series("model_a"))


class TestFactory:
    def test_model_a(self):
        assert isinstance(make_model("a"), ModelA)
        assert isinstance(make_model("model_a"), ModelA)

    def test_model_b_default(self):
        model = make_model("b")
        assert isinstance(model, ModelB)
        assert model.name == "model_b(100)"

    def test_model_b_with_segments(self):
        assert make_model("b:500").name == "model_b(500)"
        assert make_model("model_b:20").name == "model_b(20)"

    def test_model_1d(self):
        assert isinstance(make_model("1d"), Model1D)

    def test_unknown_spec(self):
        with pytest.raises(ValidationError):
            make_model("fem")

    def test_bad_segment_arg(self):
        with pytest.raises(ValidationError):
            make_model("b:many")

    def test_a_rejects_argument(self):
        with pytest.raises(ValidationError):
            make_model("a:3")

    def test_kwargs_forwarded(self):
        from repro.resistances import FittingCoefficients

        model = make_model("a", fit=FittingCoefficients.unity())
        assert model.fit.k1 == 1.0

    def test_empty_spec(self):
        with pytest.raises(ValidationError):
            make_model("")
