"""Sweep engine and model factory."""

import pytest

from repro import Model1D, ModelA, ModelB, make_model, paper_tsv, sweep
from repro.errors import ValidationError
from repro.units import um


class TestSweep:
    def test_radius_sweep(self, block_stack, block_power):
        def configure(r_um):
            return block_stack, paper_tsv(radius=um(r_um), liner_thickness=um(1)), block_power

        result = sweep("radius", [2.0, 5.0, 10.0], [ModelA(), Model1D()], configure)
        assert result.values == [2.0, 5.0, 10.0]
        assert set(result.model_names) == {"model_a", "model_1d"}
        assert len(result.series("model_a")) == 3

    def test_rows_layout(self, block_stack, block_power):
        def configure(r_um):
            return block_stack, paper_tsv(radius=um(r_um), liner_thickness=um(1)), block_power

        rows = sweep("radius", [2.0, 5.0], [ModelA()], configure).rows()
        assert rows[0] == ["value", "model_a"]
        assert len(rows) == 3

    def test_duplicate_model_names_rejected(self, block_stack, block_power):
        def configure(v):
            return block_stack, paper_tsv(), block_power

        with pytest.raises(ValidationError):
            sweep("x", [1], [ModelA(), ModelA()], configure)

    def test_empty_values_rejected(self, block_stack, block_power):
        def configure(v):
            return block_stack, paper_tsv(), block_power

        with pytest.raises(ValidationError):
            sweep("x", [], [ModelA()], configure)

    def test_unknown_model_in_point(self, block_stack, block_power):
        def configure(v):
            return block_stack, paper_tsv(), block_power

        result = sweep("x", [1], [ModelA()], configure)
        with pytest.raises(ValidationError):
            result.points[0].rise("nope")

    def test_result_series_returns_full_results(self, block_stack, block_power):
        def configure(v):
            return block_stack, paper_tsv(), block_power

        result = sweep("x", [1, 2], [ModelA()], configure)
        assert all(r.model_name == "model_a" for r in result.result_series("model_a"))


class TestFactory:
    def test_model_a(self):
        assert isinstance(make_model("a"), ModelA)
        assert isinstance(make_model("model_a"), ModelA)

    def test_model_b_default(self):
        model = make_model("b")
        assert isinstance(model, ModelB)
        assert model.name == "model_b(100)"

    def test_model_b_with_segments(self):
        assert make_model("b:500").name == "model_b(500)"
        assert make_model("model_b:20").name == "model_b(20)"

    def test_model_1d(self):
        assert isinstance(make_model("1d"), Model1D)

    def test_unknown_spec(self):
        with pytest.raises(ValidationError):
            make_model("model_c")

    def test_bad_segment_arg(self):
        with pytest.raises(ValidationError):
            make_model("b:many")

    def test_a_rejects_bad_argument(self):
        with pytest.raises(ValidationError):
            make_model("a:3")
        with pytest.raises(ValidationError):
            make_model("a:blockish")

    def test_a_named_fits(self):
        from repro.resistances import FittingCoefficients

        assert make_model("a:paper").fit == FittingCoefficients.paper_block()
        assert make_model("a:unity").fit == FittingCoefficients.unity()
        assert make_model("a:case").fit == FittingCoefficients.paper_case_study()

    def test_a_explicit_coefficients(self):
        model = make_model("a:1.6,0.8,3.5")
        assert (model.fit.k1, model.fit.k2, model.fit.c_bond) == (1.6, 0.8, 3.5)
        assert make_model("a:1.3,0.55").fit.c_bond == 1.0

    def test_b_per_plane_scheme(self):
        model = make_model("b:50,500,500")
        assert model.name == "model_b(500)"
        assert model._scheme_obj.plane_segments == (50, 500, 500)

    def test_fem_references(self):
        from repro.fem import FEMReference
        from repro.fem.reference import AXISYM_PRESETS

        fem = make_model("fem")
        assert isinstance(fem, FEMReference)
        assert fem.resolution == AXISYM_PRESETS["medium"]
        assert make_model("fem:coarse").resolution == AXISYM_PRESETS["coarse"]
        assert make_model("fem:36x90").resolution == (36, 90)
        fem3d = make_model("fem3d:24x24x48")
        assert fem3d.solver == "cartesian"
        assert fem3d.resolution == (24, 24, 48)

    def test_fem_bad_mesh(self):
        with pytest.raises(ValidationError):
            make_model("fem:36x90x10")  # 2-D solver, 3-D mesh
        with pytest.raises(ValidationError):
            make_model("fem:huge")
        with pytest.raises(ValidationError):
            make_model("fem:0x90")  # degenerate mesh fails at parse time
        with pytest.raises(ValidationError):
            make_model("fem3d:24x-1x48")

    def test_b_rejects_non_positive_segments(self):
        with pytest.raises(ValidationError):
            make_model("b:0")
        with pytest.raises(ValidationError):
            make_model("b:0,100,100")

    def test_parse_without_construction(self):
        from repro.core.factory import parse_model_spec

        assert parse_model_spec("b:500").arg == 500
        assert parse_model_spec("fem3d").arg == "medium"
        with pytest.raises(ValidationError):
            parse_model_spec("b:1,x")

    def test_kwargs_forwarded(self):
        from repro.resistances import FittingCoefficients

        model = make_model("a", fit=FittingCoefficients.unity())
        assert model.fit.k1 == 1.0

    def test_empty_spec(self):
        with pytest.raises(ValidationError):
            make_model("")
