"""Randomised-geometry cross-validation.

Hypothesis draws random (but physical) stack/via geometries and checks
that the independent implementations keep agreeing: the FVM conserves
energy exactly, and the coefficient-free Model B stays within a bounded
envelope of the FVM reference — the paper's central accuracy claim,
stressed far beyond the specific geometries of Figs. 4–7.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Model1D, ModelA, ModelB, PowerSpec, paper_stack, paper_tsv
from repro.fem import build_axisym_grids, solve_axisymmetric
from repro.resistances import FittingCoefficients
from repro.units import um


@st.composite
def block_geometry(draw):
    """A random Section-IV-style block within fabrication-plausible ranges."""
    t_si = draw(st.floats(min_value=10.0, max_value=80.0))
    t_ild = draw(st.floats(min_value=2.0, max_value=10.0))
    t_bond = draw(st.floats(min_value=0.5, max_value=3.0))
    radius = draw(st.floats(min_value=2.0, max_value=15.0))
    liner = draw(st.floats(min_value=0.2, max_value=2.0))
    stack = paper_stack(
        t_si_upper=um(t_si), t_ild=um(t_ild), t_bond=um(t_bond)
    )
    via = paper_tsv(radius=um(radius), liner_thickness=um(liner))
    return stack, via


class TestRandomGeometries:
    @given(block_geometry())
    @settings(max_examples=10, deadline=None)
    def test_fvm_conserves_energy(self, geometry):
        stack, via = geometry
        power = PowerSpec()
        grids = build_axisym_grids(stack, via, power, nr=20, nz=50)
        field = solve_axisymmetric(
            grids.r_edges, grids.z_edges, grids.conductivity, grids.source_density
        )
        flux_out = float(field.vertical_flux(grids.z_edges[1] * 0.5).sum())
        # flux through the first interior face ~ everything above it; use
        # the bottom boundary balance instead for exactness
        ring = math.pi * (grids.r_edges[1:] ** 2 - grids.r_edges[:-1] ** 2)
        dz0 = grids.z_edges[1] - grids.z_edges[0]
        bottom = float(
            np.sum(
                ring
                * grids.conductivity[:, 0]
                * field.temperatures[:, 0]
                / (dz0 / 2.0)
            )
        )
        assert bottom == pytest.approx(power.total_heat(stack), rel=1e-8)
        assert flux_out <= power.total_heat(stack) * 1.001

    @given(block_geometry())
    @settings(max_examples=8, deadline=None)
    def test_model_b_tracks_fem_within_envelope(self, geometry):
        """The coefficient-free distributed model stays within ~25 % of the
        detailed solve across random geometry (the paper's own worst case
        over its sweeps is 18 % for B(100) in Fig. 6)."""
        stack, via = geometry
        power = PowerSpec()
        grids = build_axisym_grids(stack, via, power, nr=24, nz=60)
        field = solve_axisymmetric(
            grids.r_edges, grids.z_edges, grids.conductivity, grids.source_density
        )
        b = ModelB(100).solve(stack, via, power)
        assert b.max_rise == pytest.approx(field.max_rise, rel=0.25)

    @given(block_geometry())
    @settings(max_examples=8, deadline=None)
    def test_all_models_sane_on_any_block(self, geometry):
        """Every model produces positive, top-plane-dominated rises within
        a factor of two of each other on any physical block."""
        stack, via = geometry
        power = PowerSpec()
        rises = []
        for model in (ModelA(), ModelB(100), Model1D()):
            result = model.solve(stack, via, power)
            assert result.max_rise > 0.0
            assert result.max_rise == pytest.approx(
                max(result.plane_rises), rel=1e-9
            )
            rises.append(result.max_rise)
        assert max(rises) < 2.0 * min(rises)

    @given(
        block_geometry(),
        st.floats(min_value=0.8, max_value=2.0),
        st.floats(min_value=0.3, max_value=1.2),
    )
    @settings(max_examples=10, deadline=None)
    def test_closed_form_matches_network_for_any_fit(self, geometry, k1, k2):
        from repro import solve_three_plane_closed_form

        stack, via = geometry
        power = PowerSpec()
        fit = FittingCoefficients(k1, k2)
        network = ModelA(fit).solve(stack, via, power)
        closed = solve_three_plane_closed_form(stack, via, power, fit)
        assert network.max_rise == pytest.approx(closed["T5"], rel=1e-9)
