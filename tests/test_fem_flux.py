"""Field post-processing: profiles and the heat-path flux partition."""

import numpy as np
import pytest

from repro import ModelA, PowerSpec, paper_stack, paper_tsv
from repro.errors import SolverError
from repro.fem import build_axisym_grids, solve_axisymmetric
from repro.fem.axisym import AxisymField
from repro.units import um


@pytest.fixture(scope="module")
def solved_block():
    stack = paper_stack(t_si_upper=um(45), t_ild=um(7), t_bond=um(1))
    via = paper_tsv(radius=um(5), liner_thickness=um(1))
    power = PowerSpec()
    grids = build_axisym_grids(stack, via, power)
    field = solve_axisymmetric(
        grids.r_edges, grids.z_edges, grids.conductivity, grids.source_density
    )
    return stack, via, power, field


class TestProfiles:
    def test_z_profile_monotone_on_axis_below_sources(self, solved_block):
        _stack, _via, _power, field = solved_block
        zc, temps = field.z_profile(0.0)
        assert zc.shape == temps.shape
        # on the axis (copper column) temperature rises away from the sink
        assert temps[0] < temps[-1]

    def test_radial_profile_rises_away_from_via(self, solved_block):
        stack, _via, _power, field = solved_block
        top = stack.total_height
        rc, temps = field.radial_profile(top - um(1))
        assert temps[0] < temps[-1]  # via is the cold spot

    def test_profile_shapes(self, solved_block):
        *_x, field = solved_block
        rc, temps = field.radial_profile(um(250))
        assert rc.shape == temps.shape


class TestFluxPartition:
    def test_total_flux_matches_heat_above(self, solved_block):
        stack, via, power, field = solved_block
        # just above the first substrate's top: everything generated above
        # that face must flow down through it
        z = stack.substrate_top(0) + um(0.1)
        total = float(field.vertical_flux(z).sum())
        heat_above = power.total_heat(stack) - 0.0
        # plane-1 device heat sits *below* z (top 1 um of Si1)... the via
        # dips only l_ext; tolerate the device band straddling
        assert total == pytest.approx(heat_above, rel=0.35)

    def test_bottom_face_carries_everything(self, solved_block):
        stack, _via, power, field = solved_block
        flux = field.vertical_flux(um(1))
        assert float(flux.sum()) == pytest.approx(
            power.total_heat(stack), rel=1e-6
        )

    def test_via_carries_disproportionate_share(self, solved_block):
        stack, via, power, field = solved_block
        z = stack.substrate_top(0) + um(2)
        via_watts, bulk_watts = field.flux_partition(z, via.outer_radius)
        total = via_watts + bulk_watts
        area_share = via.occupied_area / stack.footprint_area
        assert via_watts / total > 5.0 * area_share  # the via is a highway

    def test_partition_roughly_matches_model_a(self, solved_block):
        stack, via, power, field = solved_block
        z = stack.substrate_top(0) + um(2)
        via_watts, bulk_watts = field.flux_partition(z, via.outer_radius)
        result = ModelA().solve(stack, via, power)
        t = result.node_temperatures
        resistances = ModelA().resistances(stack, via)
        via_model = (t["tsv1"] - t["t0"]) / resistances.planes[0].metal
        bulk_model = (t["bulk1"] - t["t0"]) / resistances.planes[0].bulk
        share_fem = via_watts / (via_watts + bulk_watts)
        share_model = via_model / (via_model + bulk_model)
        assert share_fem == pytest.approx(share_model, abs=0.15)

    def test_flux_requires_conductivity(self):
        field = AxisymField(
            r_edges=np.array([0.0, 1.0]),
            z_edges=np.array([0.0, 1.0, 2.0]),
            temperatures=np.zeros((1, 2)),
            solve_time=0.0,
        )
        with pytest.raises(SolverError):
            field.vertical_flux(1.0)
