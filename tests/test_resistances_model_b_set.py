"""Model B per-plane aggregates (coefficient-free Eq. (21) inputs)."""

import math

import pytest

from repro import constants, paper_stack, paper_tsv
from repro.resistances import (
    compute_model_a_resistances,
    compute_model_b_resistances,
)
from repro.units import um


@pytest.fixture()
def setup():
    stack = paper_stack(t_si_upper=um(45), t_ild=um(7), t_bond=um(1))
    via = paper_tsv(radius=um(5), liner_thickness=um(1))
    return stack, via


class TestAggregates:
    def test_matches_model_a_unity_metal(self, setup):
        stack, via = setup
        a = compute_model_a_resistances(stack, via)  # unity coefficients
        b = compute_model_b_resistances(stack, via)
        for pa, pb in zip(a.planes, b.planes):
            assert pb.metal_total == pytest.approx(pa.metal)
            assert pb.liner_total == pytest.approx(pa.liner)

    def test_bulk_decomposition_sums_to_model_a(self, setup):
        stack, via = setup
        a = compute_model_a_resistances(stack, via)
        b = compute_model_b_resistances(stack, via)
        for pa, pb in zip(a.planes[1:], b.planes[1:]):
            total = pb.ild_bulk + pb.substrate_bulk + pb.bond_bulk
            assert total == pytest.approx(pa.bulk)

    def test_first_plane_has_no_substrate_pieces(self, setup):
        stack, via = setup
        b = compute_model_b_resistances(stack, via)
        assert b.planes[0].substrate_bulk is None
        assert b.planes[0].bond_bulk is None
        assert b.planes[0].is_first_plane

    def test_rs_has_no_k1(self, setup):
        stack, via = setup
        b = compute_model_b_resistances(stack, via)
        expected = (constants.PAPER_T_SI1 - um(1)) / (
            constants.K_SILICON * stack.footprint_area
        )
        assert b.rs == pytest.approx(expected)

    def test_spans(self, setup):
        stack, via = setup
        b = compute_model_b_resistances(stack, via)
        assert b.planes[0].span == pytest.approx(um(8))    # tD + l_ext
        assert b.planes[1].span == pytest.approx(um(53))   # tD + tSi + tb
        assert b.planes[2].span == pytest.approx(um(46))   # tSi + tb

    def test_bond_factor_reduces_bond_only(self, setup):
        stack, via = setup
        raw = compute_model_b_resistances(stack, via)
        enhanced = compute_model_b_resistances(stack, via, bond_factor=3.5)
        assert enhanced.planes[1].bond_bulk == pytest.approx(
            raw.planes[1].bond_bulk / 3.5
        )
        assert enhanced.planes[1].substrate_bulk == pytest.approx(
            raw.planes[1].substrate_bulk
        )

    def test_bad_bond_factor(self, setup):
        stack, via = setup
        with pytest.raises(Exception):
            compute_model_b_resistances(stack, via, bond_factor=0.0)
