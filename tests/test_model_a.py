"""Model A: generic network vs literal Eqs. (1)–(6), behaviour checks."""

import pytest

from repro import (
    ModelA,
    PowerSpec,
    TSVCluster,
    paper_stack,
    paper_tsv,
    solve_three_plane_closed_form,
)
from repro.core.model_a import build_model_a_circuit, bulk_node, metal_node
from repro.errors import GeometryError
from repro.resistances import FittingCoefficients, compute_model_a_resistances
from repro.units import um


class TestClosedFormCrossCheck:
    """The generic stamper must reproduce the paper's 6x6 system exactly."""

    def test_temperatures_match(self, block_stack, block_tsv, block_power):
        result = ModelA().solve(block_stack, block_tsv, block_power)
        closed = solve_three_plane_closed_form(block_stack, block_tsv, block_power)
        assert result.node_temperatures["t0"] == pytest.approx(closed["T0"])
        assert result.node_temperatures["bulk1"] == pytest.approx(closed["T1"])
        assert result.node_temperatures["tsv1"] == pytest.approx(closed["T2"])
        assert result.node_temperatures["bulk2"] == pytest.approx(closed["T3"])
        assert result.node_temperatures["tsv2"] == pytest.approx(closed["T4"])
        assert result.node_temperatures["bulk3"] == pytest.approx(closed["T5"])

    def test_match_across_radii(self, block_stack, block_power):
        for r in (1.0, 5.0, 15.0):
            via = paper_tsv(radius=um(r), liner_thickness=um(1))
            result = ModelA().solve(block_stack, via, block_power)
            closed = solve_three_plane_closed_form(block_stack, via, block_power)
            assert result.max_rise == pytest.approx(closed["T5"])

    def test_match_for_cluster(self, block_stack, block_tsv, block_power):
        cluster = TSVCluster(block_tsv, 4)
        result = ModelA().solve(block_stack, cluster, block_power)
        closed = solve_three_plane_closed_form(block_stack, cluster, block_power)
        assert result.max_rise == pytest.approx(closed["T5"])

    def test_closed_form_needs_three_planes(self, block_tsv, block_power):
        with pytest.raises(GeometryError):
            solve_three_plane_closed_form(
                paper_stack(n_planes=2), block_tsv, block_power
            )


class TestBehaviour:
    def test_t0_equals_rs_times_total_heat(self, block_stack, block_tsv, block_power):
        # Eq. (6) emerges from conservation in the network formulation
        result = ModelA().solve(block_stack, block_tsv, block_power)
        resistances = ModelA().resistances(block_stack, block_tsv)
        expected = resistances.rs * block_power.total_heat(block_stack)
        assert result.node_temperatures["t0"] == pytest.approx(expected)

    def test_top_plane_is_hottest(self, block_stack, block_tsv, block_power):
        result = ModelA().solve(block_stack, block_tsv, block_power)
        assert result.max_rise == pytest.approx(result.plane_rises[-1])
        assert result.plane_rises[0] < result.plane_rises[1] < result.plane_rises[2]

    def test_rise_falls_with_radius(self, block_stack, block_power):
        rises = [
            ModelA().solve(
                block_stack, paper_tsv(radius=um(r), liner_thickness=um(1)), block_power
            ).max_rise
            for r in (2.0, 5.0, 10.0, 20.0)
        ]
        assert rises == sorted(rises, reverse=True)

    def test_rise_grows_with_liner(self, block_stack, block_power):
        rises = [
            ModelA().solve(
                block_stack, paper_tsv(radius=um(5), liner_thickness=um(t)), block_power
            ).max_rise
            for t in (0.5, 1.0, 2.0, 3.0)
        ]
        assert rises == sorted(rises)

    def test_cluster_reduces_rise_with_diminishing_returns(
        self, thin_stack, block_power
    ):
        via = paper_tsv(radius=um(10), liner_thickness=um(1))
        rises = [
            ModelA().solve(thin_stack, TSVCluster(via, n), block_power).max_rise
            for n in (1, 2, 4, 9, 16)
        ]
        assert rises == sorted(rises, reverse=True)
        gains = [a - b for a, b in zip(rises, rises[1:])]
        assert gains[0] > gains[-1]

    def test_two_plane_stack(self, block_power):
        stack = paper_stack(n_planes=2, t_si_upper=um(45))
        result = ModelA().solve(stack, paper_tsv(), block_power)
        assert len(result.plane_rises) == 2
        assert result.max_rise > 0.0

    def test_five_plane_stack(self, block_power):
        stack = paper_stack(n_planes=5, t_si_upper=um(45))
        result = ModelA().solve(stack, paper_tsv(), block_power)
        assert len(result.plane_rises) == 5
        assert list(result.plane_rises) == sorted(result.plane_rises)

    def test_default_fit_is_paper_block(self):
        model = ModelA()
        assert model.fit.k1 == pytest.approx(1.3)
        assert model.fit.k2 == pytest.approx(0.55)

    def test_metadata_records_fit(self, block_stack, block_tsv, block_power):
        result = ModelA(FittingCoefficients(1.1, 0.9)).solve(
            block_stack, block_tsv, block_power
        )
        assert result.metadata["k1"] == pytest.approx(1.1)
        assert result.metadata["k2"] == pytest.approx(0.9)

    def test_zero_power_zero_rise(self, block_stack, block_tsv):
        spec = PowerSpec(device_power_density=0.0, ild_power_density=0.0)
        result = ModelA().solve(block_stack, block_tsv, spec)
        assert result.max_rise == pytest.approx(0.0, abs=1e-15)

    def test_circuit_builder_rejects_mismatched_heats(
        self, block_stack, block_tsv
    ):
        resistances = compute_model_a_resistances(block_stack, block_tsv)
        with pytest.raises(GeometryError):
            build_model_a_circuit(resistances, (1.0, 2.0))

    def test_node_names(self):
        assert bulk_node(0) == "bulk1"
        assert metal_node(2) == "tsv3"
