"""The perf caches: LRU semantics, content keys, factorization reuse."""

import warnings

import numpy as np
import pytest
import scipy.sparse as sp

from repro import PowerSpec, paper_stack, paper_tsv, perf
from repro.fem import build_axisym_grids
from repro.network.solve import _solve_cg, solve_sparse
from repro.perf import (
    FactorizationCache,
    LRUCache,
    cached_solve,
    content_key,
    matrix_fingerprint,
    solve_key,
)
from repro.units import um


@pytest.fixture(autouse=True)
def _clean_caches():
    """Every test starts and ends with cold caches and default sizes."""
    perf.reset()
    yield
    perf.configure(
        assembly_cache_size=32, result_cache_size=256, factor_cache_size=16
    )
    perf.reset()


class TestLRUCache:
    def test_hit_miss_counters(self):
        cache = LRUCache("t_hits", 4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_eviction_is_lru(self):
        cache = LRUCache("t_lru", 2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_zero_size_disables(self):
        cache = LRUCache("t_off", 0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_resize_shrinks(self):
        cache = LRUCache("t_resize", 4)
        for i in range(4):
            cache.put(i, i)
        cache.resize(2)
        assert len(cache) == 2


class TestContentKey:
    def test_equal_values_equal_keys(self):
        stack_a = paper_stack(t_si_upper=um(45), t_ild=um(7), t_bond=um(1))
        stack_b = paper_stack(t_si_upper=um(45), t_ild=um(7), t_bond=um(1))
        assert stack_a is not stack_b
        assert content_key(stack_a) == content_key(stack_b)

    def test_different_values_differ(self):
        stack_a = paper_stack(t_si_upper=um(45), t_ild=um(7), t_bond=um(1))
        stack_b = paper_stack(t_si_upper=um(46), t_ild=um(7), t_bond=um(1))
        assert content_key(stack_a) != content_key(stack_b)

    def test_unpicklable_returns_none(self):
        assert content_key(lambda x: x) is None


class TestFactorizationCache:
    def _system(self, scale=1.0):
        g = sp.csr_matrix(
            np.array([[2.0, -1.0, 0.0], [-1.0, 2.0, -1.0], [0.0, -1.0, 2.0]])
            * scale
        )
        return g, np.array([1.0, 0.0, 1.0])

    def test_reuse_and_correctness(self):
        cache = FactorizationCache("t_factor", 4)
        g, rhs = self._system()
        x1 = cache.solver(g)(rhs)
        x2 = cache.solver(g)(rhs)
        assert cache.stats()["hits"] == 1
        expected = np.linalg.solve(g.toarray(), rhs)
        assert np.allclose(x1, expected)
        assert np.array_equal(x1, x2)

    def test_mutated_matrix_is_a_fresh_entry(self):
        """Same sparsity pattern, different values -> different factor."""
        cache = FactorizationCache("t_mutate", 4)
        g, rhs = self._system()
        x1 = cache.solver(g)(rhs)
        g2 = g.copy()
        g2.data = g2.data * 2.0  # mutate values, keep the pattern
        x2 = cache.solver(g2)(rhs)
        assert cache.stats()["hits"] == 0 and cache.stats()["misses"] == 2
        assert np.allclose(x2, np.linalg.solve(g2.toarray(), rhs))
        assert not np.allclose(x1, x2)

    def test_fingerprint_tracks_values_and_pattern(self):
        g, _ = self._system()
        same = sp.csr_matrix(g.toarray())
        assert matrix_fingerprint(g) == matrix_fingerprint(same)
        other = g.copy()
        other.data = other.data + 1e-12
        assert matrix_fingerprint(g) != matrix_fingerprint(other)

    def test_eviction_keeps_solves_correct(self):
        cache = FactorizationCache("t_evict", 2)
        systems = [self._system(scale) for scale in (1.0, 2.0, 3.0)]
        for _ in range(2):  # cycle so the oldest entry is always evicted
            for g, rhs in systems:
                x = cache.solver(g)(rhs)
                assert np.allclose(x, np.linalg.solve(g.toarray(), rhs))
        assert cache.stats()["evictions"] > 0

    def test_dense_path(self):
        cache = FactorizationCache("t_dense", 2)
        a = np.array([[4.0, 1.0], [1.0, 3.0]])
        rhs = np.array([1.0, 2.0])
        x = cache.solver(a)(rhs)
        assert np.allclose(x, np.linalg.solve(a, rhs))
        cache.solver(a)
        assert cache.stats()["hits"] == 1

    def test_dense_singular_raises_and_is_not_cached(self):
        cache = FactorizationCache("t_dense_singular", 2)
        singular = np.diag([1.0, 0.0, 1.0])
        with pytest.raises(RuntimeError):
            cache.solver(singular)
        assert len(cache) == 0

    def test_oversized_matrices_solve_but_never_cache(self):
        cache = FactorizationCache("t_cap", 4, max_unknowns=10)
        n = 20
        g = sp.diags(
            [2.0 * np.ones(n), -np.ones(n - 1), -np.ones(n - 1)], [0, -1, 1]
        ).tocsr()
        rhs = np.ones(n)
        x = cache.solver(g)(rhs)
        assert np.allclose(g @ x, rhs)
        assert len(cache) == 0  # factor computed, deliberately not pinned


class TestSolveSparseReuse:
    def test_repeated_identical_solves_hit_global_cache(self):
        n = 300  # above DENSE_CUTOFF so the sparse path is taken
        g = sp.diags(
            [2.0 * np.ones(n), -np.ones(n - 1), -np.ones(n - 1)], [0, -1, 1]
        ).tocsr()
        rhs = np.ones(n)
        x1 = solve_sparse(g, rhs)
        before = perf.factor_cache.stats()["hits"]
        x2 = solve_sparse(g, rhs)
        assert perf.factor_cache.stats()["hits"] == before + 1
        assert np.array_equal(x1, x2)

    def test_singular_still_raises(self):
        g = sp.csr_matrix(np.diag([1.0, 0.0, 1.0]))
        # pad above the dense cutoff is unnecessary: call solve_sparse directly
        with pytest.raises(Exception):
            solve_sparse(g, np.array([1.0, 1.0, 1.0]))

    def test_transient_singular_dense_lhs_raises_network_error(self):
        """factorized_solver keeps the SingularNetworkError contract on the
        dense path (LAPACK getrf only warns on exact singularity)."""
        from repro.errors import SingularNetworkError
        from repro.network.solve import factorized_solver

        with pytest.raises(SingularNetworkError):
            factorized_solver(np.diag([1.0, 0.0, 1.0]))

    def test_cg_ilu_failure_warns_and_counts(self):
        singular = sp.csr_matrix(np.diag([1.0, 0.0, 1.0]))
        with pytest.warns(RuntimeWarning, match="ILU preconditioner failed"):
            out = _solve_cg(singular, np.ones(3))
        assert out is None
        assert perf.counter("cg_ilu_fallbacks") == 1


class TestAssemblyMemoization:
    def test_identical_build_hits(self, block_stack, block_tsv, block_power):
        g1 = build_axisym_grids(block_stack, block_tsv, block_power)
        before = perf.assembly_cache.stats()
        g2 = build_axisym_grids(block_stack, block_tsv, block_power)
        after = perf.assembly_cache.stats()
        assert after["hits"] == before["hits"] + 1
        assert np.array_equal(g1.conductivity, g2.conductivity)
        assert np.array_equal(g1.source_density, g2.source_density)

    def test_changed_kwargs_miss(self, block_stack, block_tsv, block_power):
        build_axisym_grids(block_stack, block_tsv, block_power, nr=20, nz=40)
        before = perf.assembly_cache.stats()
        build_axisym_grids(block_stack, block_tsv, block_power, nr=22, nz=40)
        after = perf.assembly_cache.stats()
        # a changed mesh misses all three cache levels (full grids, the
        # power-free geometry half, the conductivity-free frame) and
        # hits none
        assert after["misses"] == before["misses"] + 3
        assert after["hits"] == before["hits"]

    def test_changed_power_shares_geometry(
        self, block_stack, block_tsv, block_power
    ):
        from dataclasses import replace

        build_axisym_grids(block_stack, block_tsv, block_power, nr=20, nz=40)
        before = perf.assembly_cache.stats()
        hotter = replace(
            block_power, device_power_density=block_power.device_power_density * 2
        )
        build_axisym_grids(block_stack, block_tsv, hotter, nr=20, nz=40)
        after = perf.assembly_cache.stats()
        # a changed power misses the power-keyed grids cache but reuses
        # the power-free geometry (mesh + conductivity) built before
        assert after["misses"] == before["misses"] + 1
        assert after["hits"] == before["hits"] + 1

    def test_disabled_cache_still_builds(self, block_stack, block_tsv, block_power):
        perf.configure(assembly_cache_size=0)
        grids = build_axisym_grids(block_stack, block_tsv, block_power)
        assert grids.conductivity.shape[0] == grids.r_edges.size - 1


class TestResultCache:
    def test_cached_solve_returns_identical_result(
        self, block_stack, block_tsv, block_power
    ):
        from repro import ModelA

        model = ModelA()
        r1 = cached_solve(model, block_stack, block_tsv, block_power)
        r2 = cached_solve(model, block_stack, block_tsv, block_power)
        assert r2 is r1  # the exact cached object comes back
        assert perf.result_cache.stats()["hits"] == 1

    def test_model_configuration_is_part_of_the_key(
        self, block_stack, block_tsv, block_power
    ):
        from repro import ModelB

        key_100 = solve_key(ModelB(100), block_stack, block_tsv, block_power)
        key_500 = solve_key(ModelB(500), block_stack, block_tsv, block_power)
        assert key_100 != key_500

    def test_sweep_reuses_points_across_runs(self, block_stack, block_power):
        from repro import Model1D, sweep

        def configure(r_um):
            return block_stack, paper_tsv(radius=um(r_um), liner_thickness=um(1)), block_power

        first = sweep("radius", [2.0, 5.0], [Model1D()], configure)
        before = perf.result_cache.stats()["hits"]
        second = sweep("radius", [2.0, 5.0], [Model1D()], configure)
        assert perf.result_cache.stats()["hits"] == before + 2
        assert first.series("model_1d") == second.series("model_1d")

    def test_sweep_cache_opt_out(self, block_stack, block_power):
        from repro import Model1D, sweep

        def configure(r_um):
            return block_stack, paper_tsv(radius=um(r_um), liner_thickness=um(1)), block_power

        sweep("radius", [2.0], [Model1D()], configure, cache=False)
        assert len(perf.result_cache) == 0


class TestStatsAPI:
    def test_snapshot_shape(self):
        snapshot = perf.stats()
        assert "caches" in snapshot and "counters" in snapshot
        for name in ("assembly_cache", "result_cache", "factor_cache"):
            assert name in snapshot["caches"]

    def test_reset_clears_everything(self, block_stack, block_tsv, block_power):
        build_axisym_grids(block_stack, block_tsv, block_power)
        perf.increment("probe")
        perf.reset()
        assert perf.assembly_cache.stats()["misses"] == 0
        assert perf.counter("probe") == 0
