"""Axisymmetric FVM solver against closed-form conduction solutions."""

import numpy as np
import pytest

from repro.errors import SolverError, ValidationError
from repro.fem import solve_axisymmetric


def uniform_grids(nr=8, nz=40, r_max=5e-4, z_max=1e-3):
    r = np.linspace(0.0, r_max, nr + 1)
    z = np.linspace(0.0, z_max, nz + 1)
    return r, z


class TestAnalyticSlab:
    def test_uniform_source_parabola(self):
        # T(z) = (q/k)(L z - z^2/2); top value q L^2 / 2k
        k0, q0, height = 10.0, 1e9, 1e-3
        r, z = uniform_grids(nz=80, z_max=height)
        k = np.full((8, 80), k0)
        q = np.full((8, 80), q0)
        field = solve_axisymmetric(r, z, k, q)
        zc = 0.5 * (z[:-1] + z[1:])
        expected = q0 / k0 * (height * zc - zc**2 / 2.0)
        top = q0 * height**2 / (2.0 * k0)
        assert np.allclose(field.temperatures[0], expected, atol=5e-3 * top)

    def test_two_layer_slab_interface_temperature(self):
        # bottom layer k=100 (0..0.5mm), top k=1 (0.5..1mm); flux Q from a
        # thin source at the very top: T_interface = Q'' * L1/k1
        r = np.linspace(0.0, 1e-4, 5)
        z = np.linspace(0.0, 1e-3, 101)
        k = np.empty((4, 100))
        k[:, :50] = 100.0
        k[:, 50:] = 1.0
        q = np.zeros((4, 100))
        q[:, -1] = 1e9  # W/m^3 in the top 10-um slab -> flux 1e9*1e-5 = 1e4 W/m^2
        field = solve_axisymmetric(r, z, k, q)
        flux = 1e9 * 1e-5
        # last cell centre below the interface sits at z = 0.495 mm
        t_below = flux * 0.495e-3 / 100.0
        assert field.temperatures[0, 49] == pytest.approx(t_below, rel=0.02)
        # first cell centre above: interface T plus half a cell in k = 1
        t_above = flux * 0.5e-3 / 100.0 + flux * 0.5e-5 / 1.0
        assert field.temperatures[0, 50] == pytest.approx(t_above, rel=0.02)

    def test_flat_radial_profile_for_1d_problem(self):
        r, z = uniform_grids()
        k = np.full((8, 40), 5.0)
        q = np.full((8, 40), 1e8)
        field = solve_axisymmetric(r, z, k, q)
        spread = field.temperatures.max(axis=0) - field.temperatures.min(axis=0)
        assert np.all(spread < 1e-9)


class TestConservationAndShape:
    def test_energy_balance_via_bottom_flux(self):
        r, z = uniform_grids(nr=6, nz=30)
        rng = np.random.default_rng(7)
        k = 1.0 + rng.random((6, 30)) * 10.0
        q = rng.random((6, 30)) * 1e8
        field = solve_axisymmetric(r, z, k, q)
        ring = np.pi * (r[1:] ** 2 - r[:-1] ** 2)
        dz0 = z[1] - z[0]
        flux_out = np.sum(ring * k[:, 0] * field.temperatures[:, 0] / (dz0 / 2.0))
        volume = ring[:, None] * np.diff(z)[None, :]
        total_q = np.sum(q * volume)
        assert flux_out == pytest.approx(total_q, rel=1e-8)

    def test_all_rises_non_negative(self):
        r, z = uniform_grids()
        k = np.full((8, 40), 2.0)
        q = np.zeros((8, 40))
        q[:, 20] = 1e9
        field = solve_axisymmetric(r, z, k, q)
        assert np.all(field.temperatures >= -1e-12)

    def test_hot_spot_near_source(self):
        r, z = uniform_grids()
        k = np.full((8, 40), 2.0)
        q = np.zeros((8, 40))
        q[0, 35] = 1e10  # near-axis source high in the domain
        field = solve_axisymmetric(r, z, k, q)
        i, j = np.unravel_index(np.argmax(field.temperatures), (8, 40))
        assert j >= 34 and i <= 2

    def test_max_rise_in_band(self):
        r, z = uniform_grids(z_max=1.0)
        k = np.full((8, 40), 2.0)
        q = np.full((8, 40), 1e3)
        field = solve_axisymmetric(r, z, k, q)
        assert field.max_rise_in_band(0.9, 1.0) == pytest.approx(field.max_rise)
        assert field.max_rise_in_band(0.0, 0.1) < field.max_rise

    def test_max_rise_in_empty_band(self):
        r, z = uniform_grids(z_max=1.0)
        field = solve_axisymmetric(r, z, np.full((8, 40), 1.0), np.zeros((8, 40)))
        with pytest.raises(ValidationError):
            field.max_rise_in_band(2.0, 3.0)


class TestValidation:
    def test_r_must_start_at_axis(self):
        r = np.linspace(1e-6, 1e-4, 5)
        z = np.linspace(0.0, 1e-3, 5)
        with pytest.raises(ValidationError):
            solve_axisymmetric(r, z, np.ones((4, 4)), np.zeros((4, 4)))

    def test_shape_mismatch(self):
        r, z = uniform_grids()
        with pytest.raises(ValidationError):
            solve_axisymmetric(r, z, np.ones((3, 3)), np.zeros((3, 3)))

    def test_non_positive_conductivity(self):
        r, z = uniform_grids()
        k = np.full((8, 40), 1.0)
        k[2, 2] = 0.0
        with pytest.raises(SolverError):
            solve_axisymmetric(r, z, k, np.zeros((8, 40)))

    def test_non_monotonic_edges(self):
        r = np.array([0.0, 2e-6, 1e-6])
        z = np.linspace(0.0, 1e-3, 4)
        with pytest.raises(ValidationError):
            solve_axisymmetric(r, z, np.ones((2, 3)), np.zeros((2, 3)))
