"""Network element primitives."""

import pytest

from repro.errors import NetworkError
from repro.network import GROUND, Capacitor, HeatSource, Resistor


class TestResistor:
    def test_conductance(self):
        assert Resistor("a", "b", 4.0).conductance == pytest.approx(0.25)

    def test_self_loop_rejected(self):
        with pytest.raises(NetworkError):
            Resistor("a", "a", 1.0)

    def test_zero_resistance_rejected(self):
        with pytest.raises(Exception):
            Resistor("a", "b", 0.0)

    def test_label_in_error(self):
        with pytest.raises(Exception, match="R42"):
            Resistor("a", "b", -1.0, "R42")

    def test_frozen(self):
        r = Resistor("a", "b", 1.0)
        with pytest.raises(Exception):
            r.resistance = 2.0


class TestHeatSource:
    def test_negative_power_allowed(self):
        assert HeatSource("a", -1.0).power == -1.0

    def test_ground_injection_rejected(self):
        with pytest.raises(NetworkError):
            HeatSource(GROUND, 1.0)

    def test_non_numeric_rejected(self):
        with pytest.raises(NetworkError):
            HeatSource("a", "hot")


class TestCapacitor:
    def test_zero_capacitance_allowed(self):
        assert Capacitor("a", 0.0).capacitance == 0.0

    def test_negative_rejected(self):
        with pytest.raises(Exception):
            Capacitor("a", -1.0)

    def test_ground_rejected(self):
        with pytest.raises(NetworkError):
            Capacitor(GROUND, 1.0)
