"""Calibration of Model A's fitting coefficients against a reference.

The paper determines k1 and k2 "by the simulation of a block of the
investigated circuit" (Section IV-E): run the detailed solver once on a
small representative structure, then least-squares-fit the coefficients so
Model A tracks it.  :func:`fit_coefficients` reproduces that workflow
against any reference model (normally :class:`~repro.fem.FEMReference`).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
import scipy.optimize as opt

from ..core.base import ThermalTSVModel
from ..core.model_a import ModelA
from ..errors import CalibrationError
from ..geometry import PowerSpec, Stack3D, TSV, TSVCluster
from ..perf import cached_solve
from ..resistances import FittingCoefficients

#: one calibration sample: the geometry/power triple Model A must match
Sample = tuple[Stack3D, "TSV | TSVCluster", PowerSpec]


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a coefficient fit."""

    coefficients: FittingCoefficients
    residual_rms: float  # RMS relative ΔT error after the fit
    reference_rises: tuple[float, ...]
    fitted_rises: tuple[float, ...]
    n_evaluations: int

    def summary(self) -> str:
        c = self.coefficients
        return (
            f"k1 = {c.k1:.3f}, k2 = {c.k2:.3f}, c_bond = {c.c_bond:.3f} "
            f"(RMS rel. error {self.residual_rms * 100.0:.2f} % over "
            f"{len(self.reference_rises)} samples)"
        )


def fit_coefficients(
    samples: Sequence[Sample],
    reference: ThermalTSVModel | None,
    *,
    fit_c_bond: bool = False,
    initial: FittingCoefficients | None = None,
    bounds: tuple[float, float] = (0.05, 20.0),
    targets: Sequence[float] | None = None,
) -> CalibrationResult:
    """Least-squares fit of (k1, k2[, c_bond]) to a reference model.

    Parameters
    ----------
    samples:
        Calibration points — vary the parameter(s) the model will later be
        used to sweep (the paper calibrates on one representative block).
        At least two samples are needed to constrain two coefficients.
    reference:
        The trusted model, usually an :class:`~repro.fem.FEMReference`.
        May be ``None`` when ``targets`` is given.
    fit_c_bond:
        Also fit the bond conductance multiplier (case-study style).
    initial:
        Starting point; defaults to unity coefficients.
    bounds:
        Common (lower, upper) bounds for every coefficient.
    targets:
        Precomputed reference max-ΔT rises, one per sample.  The
        execution-plan scheduler passes these when the reference solves
        already ran as plan nodes; the fit is then pure optimisation and
        never touches the reference model.  Identical floats in, identical
        coefficients out — the fit itself is deterministic.
    """
    if len(samples) < (3 if fit_c_bond else 2):
        raise CalibrationError(
            f"need at least {'3' if fit_c_bond else '2'} samples to constrain "
            "the coefficients"
        )
    if targets is not None:
        if len(targets) != len(samples):
            raise CalibrationError(
                f"got {len(targets)} targets for {len(samples)} samples"
            )
        targets = np.asarray(targets, dtype=float)
    else:
        if reference is None:
            raise CalibrationError("need a reference model or explicit targets")
        # reference solves go through the global result cache: calibration
        # samples usually overlap the sweep grid, so either side primes the
        # other
        targets = np.array(
            [
                cached_solve(reference, stack, via, power).max_rise
                for stack, via, power in samples
            ]
        )
    if np.any(targets <= 0.0):
        raise CalibrationError("reference produced non-positive temperature rises")
    start = initial or FittingCoefficients.unity()
    x0 = [start.k1, start.k2] + ([start.c_bond] if fit_c_bond else [])
    evaluations = 0

    def unpack(x: np.ndarray) -> FittingCoefficients:
        c_bond = x[2] if fit_c_bond else 1.0
        return FittingCoefficients(k1=float(x[0]), k2=float(x[1]), c_bond=float(c_bond))

    def residuals(x: np.ndarray) -> np.ndarray:
        nonlocal evaluations
        evaluations += 1
        model = ModelA(unpack(x))
        predicted = np.array(
            [model.solve(stack, via, power).max_rise for stack, via, power in samples]
        )
        return (predicted - targets) / targets

    result = opt.least_squares(
        residuals,
        x0,
        bounds=([bounds[0]] * len(x0), [bounds[1]] * len(x0)),
        xtol=1e-10,
        ftol=1e-12,
    )
    if not result.success:
        raise CalibrationError(f"least-squares fit failed: {result.message}")
    coefficients = unpack(result.x)
    fitted = ModelA(coefficients)
    fitted_rises = tuple(
        fitted.solve(stack, via, power).max_rise for stack, via, power in samples
    )
    residual = np.asarray(fitted_rises) / targets - 1.0
    return CalibrationResult(
        coefficients=coefficients,
        residual_rms=float(np.sqrt(np.mean(residual**2))),
        reference_rises=tuple(float(t) for t in targets),
        fitted_rises=fitted_rises,
        n_evaluations=evaluations,
    )


def radius_sweep_samples(
    stack: Stack3D,
    base_via: TSV,
    power: PowerSpec,
    radii: Sequence[float],
) -> list[Sample]:
    """Convenience: calibration samples varying the via radius."""
    if not radii:
        raise CalibrationError("need at least one radius")
    return [(stack, base_via.with_radius(r), power) for r in radii]
