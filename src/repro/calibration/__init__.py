"""Calibration of Model A fitting coefficients against a reference solver."""

from .fit import CalibrationResult, fit_coefficients, radius_sweep_samples

__all__ = ["fit_coefficients", "CalibrationResult", "radius_sweep_samples"]
