"""Exception hierarchy for ttsv-thermal.

All library-raised exceptions derive from :class:`ReproError` so that client
code can catch everything the library throws with a single handler while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ValidationError(ReproError, ValueError):
    """A user-supplied parameter is out of its physical or numeric domain."""


class GeometryError(ValidationError):
    """A geometric description is inconsistent (e.g. via wider than the die)."""


class MaterialError(ValidationError):
    """A material is unknown or has non-physical properties."""


class NetworkError(ReproError):
    """A thermal network is malformed (floating nodes, no ground, ...)."""


class SingularNetworkError(NetworkError):
    """The conductance matrix is singular; some node has no path to ground."""


class SolverError(ReproError):
    """A numerical solve failed to produce a usable solution."""


class ConvergenceError(SolverError):
    """An iterative procedure exhausted its budget without converging."""


class WorkerCrashError(ReproError):
    """A worker process died (or simulated dying) mid-solve.

    Raised in-process when :mod:`repro.faults` injects a ``crash`` outside
    a pool worker (a real worker takes ``os._exit`` instead), and used by
    the fault-tolerant executors to report tasks lost to a broken pool.
    Always treated as transient: the work itself is deterministic, so a
    retry on a fresh worker is expected to succeed.
    """


class NodeTimeoutError(ReproError):
    """A plan node exceeded its per-node wall-clock budget.

    Raised by the execution deadline in :mod:`repro.perf.retry` when a
    :class:`~repro.perf.RetryPolicy` sets ``node_timeout_s``.  Transient:
    hung solves are usually environmental (a stuck worker, injected
    delays), so the node is retried before being quarantined.
    """


class LeaseLostError(ReproError):
    """A fleet worker's node lease expired (or was stolen) mid-solve.

    Raised by the :mod:`repro.scenarios.lease` write guard when a worker
    tries to commit a result for a node whose claim it no longer holds —
    another worker decided this one was dead and took the node over.
    Transient: the node itself is fine, and the retry loop will either
    re-acquire the lease or observe the usurper's stored result.
    """


class CorruptArtifactError(ReproError, ValueError):
    """A stored artifact failed its integrity check on read.

    Raised by :func:`repro.scenarios.store.parse_artifact` for a torn
    envelope header, a body/checksum mismatch (bit flip, truncation), or
    an unparseable document.  Store readers never let it propagate — a
    corrupt artifact is a *miss*: the file is healed away and the node
    re-solves.  ``python -m repro fsck`` surfaces the same damage as a
    report instead.
    """


class DrainError(ReproError):
    """A drain request (SIGTERM/SIGINT) interrupted plan execution.

    Raised by the scheduler at its next safe point after
    :mod:`repro.scenarios.drain` observes a shutdown signal: no new units
    are claimed, in-flight leases are released, and every already-landed
    point stays committed, so ``--resume`` continues exactly where the
    drain stopped.  Carries the signal number so the CLI can exit
    ``128 + signum`` (130 for SIGINT, 143 for SIGTERM).
    """

    def __init__(self, signum: int, message: str | None = None) -> None:
        self.signum = signum
        super().__init__(message or f"drained on signal {signum}")


class CalibrationError(ReproError):
    """Fitting-coefficient calibration failed or was given unusable data."""


class ExperimentError(ReproError):
    """An experiment definition or run is inconsistent."""
