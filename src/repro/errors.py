"""Exception hierarchy for ttsv-thermal.

All library-raised exceptions derive from :class:`ReproError` so that client
code can catch everything the library throws with a single handler while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ValidationError(ReproError, ValueError):
    """A user-supplied parameter is out of its physical or numeric domain."""


class GeometryError(ValidationError):
    """A geometric description is inconsistent (e.g. via wider than the die)."""


class MaterialError(ValidationError):
    """A material is unknown or has non-physical properties."""


class NetworkError(ReproError):
    """A thermal network is malformed (floating nodes, no ground, ...)."""


class SingularNetworkError(NetworkError):
    """The conductance matrix is singular; some node has no path to ground."""


class SolverError(ReproError):
    """A numerical solve failed to produce a usable solution."""


class ConvergenceError(SolverError):
    """An iterative procedure exhausted its budget without converging."""


class CalibrationError(ReproError):
    """Fitting-coefficient calibration failed or was given unusable data."""


class ExperimentError(ReproError):
    """An experiment definition or run is inconsistent."""
