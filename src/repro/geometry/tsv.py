"""Thermal TSV geometry.

A :class:`TSV` is a cylindrical copper (by default) via wrapped in a thin
dielectric liner.  Per the paper's structure it spans from ``extension``
metres below the top of the first substrate up to the top of the last
substrate (it does not cross the topmost ILD — see Eq. (14), where the
last-plane metal span is t_Si + t_b only).

A :class:`TSVCluster` represents the Eq. (22) transform: one via of radius
``r0`` split into ``count`` vias of radius ``r0/sqrt(count)`` so the total
metal cross-section is preserved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..errors import GeometryError
from ..materials import COPPER, SILICON_DIOXIDE, Material
from ..units import require_non_negative, require_positive, require_positive_int


@dataclass(frozen=True, slots=True)
class TSV:
    """A single cylindrical thermal through-silicon via.

    Parameters
    ----------
    radius:
        Radius of the metal fill, metres.
    liner_thickness:
        Thickness of the dielectric liner around the fill, metres.
    extension:
        How far the via extends below the top of the first-plane substrate
        (the paper's ``l_ext``); may be zero.
    fill, liner:
        Materials of the metal core and the liner.
    """

    radius: float
    liner_thickness: float
    extension: float = 0.0
    fill: Material = COPPER
    liner: Material = SILICON_DIOXIDE

    def __post_init__(self) -> None:
        require_positive("radius", self.radius)
        require_positive("liner_thickness", self.liner_thickness)
        require_non_negative("extension", self.extension)
        if not isinstance(self.fill, Material) or not isinstance(self.liner, Material):
            raise GeometryError("fill and liner must be Materials")

    @property
    def outer_radius(self) -> float:
        """Radius including the liner, metres."""
        return self.radius + self.liner_thickness

    @property
    def metal_area(self) -> float:
        """Cross-section of the metal fill, m²."""
        return math.pi * self.radius**2

    @property
    def occupied_area(self) -> float:
        """Cross-section including the liner, m² — the paper's π(r+tL)²."""
        return math.pi * self.outer_radius**2

    def aspect_ratio(self, depth: float) -> float:
        """Depth-to-diameter aspect ratio for a via segment of ``depth``."""
        require_positive("depth", depth)
        return depth / (2.0 * self.radius)

    def with_radius(self, radius: float) -> "TSV":
        """Copy with a new metal radius (used by the Fig. 4 sweep)."""
        return replace(self, radius=require_positive("radius", radius))

    def with_liner_thickness(self, liner_thickness: float) -> "TSV":
        """Copy with a new liner thickness (used by the Fig. 5 sweep)."""
        return replace(
            self, liner_thickness=require_positive("liner_thickness", liner_thickness)
        )


@dataclass(frozen=True, slots=True)
class TSVCluster:
    """A cluster of ``count`` identical vias replacing one via of radius r0.

    The transform keeps the total metal cross-section constant
    (Eq. (22) context): each member via has radius ``r0 / sqrt(count)``.
    ``count == 1`` degenerates to the single via.
    """

    base: TSV
    count: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.base, TSV):
            raise GeometryError("base must be a TSV")
        require_positive_int("count", self.count)

    @property
    def member_radius(self) -> float:
        """Radius of each member via: r0/√n."""
        return self.base.radius / math.sqrt(self.count)

    @property
    def member(self) -> TSV:
        """The member via geometry (same liner/extension/materials)."""
        return self.base.with_radius(self.member_radius)

    @property
    def total_metal_area(self) -> float:
        """Total metal cross-section; equals the base via's by construction."""
        return self.count * math.pi * self.member_radius**2

    @property
    def total_occupied_area(self) -> float:
        """Total metal+liner footprint: n·π(r_n + tL)² (grows with n)."""
        outer = self.member_radius + self.base.liner_thickness
        return self.count * math.pi * outer**2

    @property
    def total_lateral_perimeter(self) -> float:
        """Sum of member circumferences at the liner inner wall: n·2π·r_n = 2π·r0·√n."""
        return self.count * 2.0 * math.pi * self.member_radius

    def with_count(self, count: int) -> "TSVCluster":
        """Copy with a different member count (used by the Fig. 7 sweep)."""
        return replace(self, count=count)


def as_cluster(via: TSV | TSVCluster) -> TSVCluster:
    """Normalise a TSV-or-cluster argument to a :class:`TSVCluster`."""
    if isinstance(via, TSVCluster):
        return via
    if isinstance(via, TSV):
        return TSVCluster(via, 1)
    raise GeometryError(f"expected TSV or TSVCluster, got {type(via).__name__}")
