"""Device planes.

A :class:`DevicePlane` is one die of a 3-D stack: a silicon substrate with
its BEOL (ILD + interconnects) on top.  Following the paper's structure
(Fig. 1), the active devices sit on the *top surface* of the substrate and
the bonding layer that glues this plane to the one above belongs to the
:class:`~repro.geometry.stack.Stack3D`, not to the plane.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import GeometryError
from ..units import require_positive
from .layers import Layer, LayerKind


@dataclass(frozen=True, slots=True)
class DevicePlane:
    """One die: substrate below, ILD/BEOL above.

    Parameters
    ----------
    name:
        Identifier, e.g. ``"plane2"`` or ``"DRAM0"``.
    substrate:
        The silicon substrate layer (kind ``SUBSTRATE``).
    ild:
        The inter-layer-dielectric/BEOL layer (kind ``DIELECTRIC``).
    device_layer_thickness:
        Thickness of the active region at the top of the substrate over
        which device power is spread (see ``PowerSpec``); must be smaller
        than the substrate thickness.
    """

    name: str
    substrate: Layer
    ild: Layer
    device_layer_thickness: float

    def __post_init__(self) -> None:
        if not self.name:
            raise GeometryError("plane name must be non-empty")
        if self.substrate.kind is not LayerKind.SUBSTRATE:
            raise GeometryError(f"plane {self.name!r}: substrate layer has kind {self.substrate.kind}")
        if self.ild.kind is not LayerKind.DIELECTRIC:
            raise GeometryError(f"plane {self.name!r}: ild layer has kind {self.ild.kind}")
        require_positive("device_layer_thickness", self.device_layer_thickness)
        if self.device_layer_thickness >= self.substrate.thickness:
            raise GeometryError(
                f"plane {self.name!r}: device layer ({self.device_layer_thickness}) "
                f"must be thinner than the substrate ({self.substrate.thickness})"
            )

    @property
    def thickness(self) -> float:
        """Substrate + ILD thickness (the bond layer is counted by the stack)."""
        return self.substrate.thickness + self.ild.thickness

    def with_substrate_thickness(self, thickness: float) -> "DevicePlane":
        """Copy with a new substrate thickness (used by the Fig. 6 sweep)."""
        return replace(self, substrate=self.substrate.with_thickness(thickness))

    def with_ild_thickness(self, thickness: float) -> "DevicePlane":
        """Copy with a new ILD thickness."""
        return replace(self, ild=self.ild.with_thickness(thickness))
