"""Power specifications.

Two ways to describe heat generation, matching the paper's two setups:

* density mode (Section IV, Figs. 4–7): a volumetric device power density
  over a thin active layer at the top of each substrate plus a volumetric
  Joule density throughout each ILD;
* per-plane totals (Section IV-E case study): "the power dissipated by the
  µP and DRAM planes is 70 W and 7 W".

Either way, the network models consume one scalar q_j per plane (the paper
injects the whole of plane j's heat at the plane-j node / ILD-j segment
nodes), while the finite-volume solvers consume volumetric densities.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import constants
from ..errors import ValidationError
from ..units import require_non_negative
from .stack import Stack3D


@dataclass(frozen=True, slots=True)
class PowerSpec:
    """Heat generation for every plane of a stack.

    Exactly one of the two modes is active:

    * if ``plane_powers`` is given, it lists the total power (W) of each
      plane, split between devices and ILD by ``ild_fraction``;
    * otherwise, the volumetric densities are used: device power =
      ``device_power_density`` × footprint × device-layer thickness, ILD
      power = ``ild_power_density`` × footprint × ILD thickness.
    """

    device_power_density: float = constants.PAPER_DEVICE_POWER_DENSITY
    ild_power_density: float = constants.PAPER_ILD_POWER_DENSITY
    plane_powers: tuple[float, ...] | None = None
    ild_fraction: float = 0.1

    def __post_init__(self) -> None:
        require_non_negative("device_power_density", self.device_power_density)
        require_non_negative("ild_power_density", self.ild_power_density)
        if self.plane_powers is not None:
            if not self.plane_powers:
                raise ValidationError("plane_powers must be non-empty when given")
            for p in self.plane_powers:
                require_non_negative("plane power", p)
        if not 0.0 <= self.ild_fraction < 1.0:
            raise ValidationError(
                f"ild_fraction must lie in [0, 1), got {self.ild_fraction!r}"
            )

    # ------------------------------------------------------------------
    # per-plane scalars for the network models
    # ------------------------------------------------------------------
    def _check_plane(self, stack: Stack3D, plane_index: int) -> None:
        if not 0 <= plane_index < stack.n_planes:
            raise ValidationError(
                f"plane {plane_index} out of range for {stack.n_planes}-plane stack"
            )
        if self.plane_powers is not None and len(self.plane_powers) != stack.n_planes:
            raise ValidationError(
                f"plane_powers has {len(self.plane_powers)} entries but the stack "
                f"has {stack.n_planes} planes"
            )

    def device_heat(self, stack: Stack3D, plane_index: int) -> float:
        """Device (active-layer) heat of one plane, W."""
        self._check_plane(stack, plane_index)
        if self.plane_powers is not None:
            return self.plane_powers[plane_index] * (1.0 - self.ild_fraction)
        plane = stack.planes[plane_index]
        volume = stack.footprint_area * plane.device_layer_thickness
        return self.device_power_density * volume

    def ild_heat(self, stack: Stack3D, plane_index: int) -> float:
        """Interconnect Joule heat of one plane's ILD, W."""
        self._check_plane(stack, plane_index)
        if self.plane_powers is not None:
            return self.plane_powers[plane_index] * self.ild_fraction
        plane = stack.planes[plane_index]
        volume = stack.footprint_area * plane.ild.thickness
        return self.ild_power_density * volume

    def plane_heat(self, stack: Stack3D, plane_index: int) -> float:
        """Total heat q_j of one plane (devices + ILD), W."""
        return self.device_heat(stack, plane_index) + self.ild_heat(stack, plane_index)

    def total_heat(self, stack: Stack3D) -> float:
        """Σ q_j over all planes, W."""
        return sum(self.plane_heat(stack, i) for i in range(stack.n_planes))

    # ------------------------------------------------------------------
    # volumetric densities for the finite-volume solvers
    # ------------------------------------------------------------------
    def device_density(self, stack: Stack3D, plane_index: int) -> float:
        """Volumetric density (W/m³) in plane ``plane_index``'s device layer."""
        plane = stack.planes[plane_index]
        volume = stack.footprint_area * plane.device_layer_thickness
        return self.device_heat(stack, plane_index) / volume

    def ild_density(self, stack: Stack3D, plane_index: int) -> float:
        """Volumetric density (W/m³) in plane ``plane_index``'s ILD."""
        plane = stack.planes[plane_index]
        volume = stack.footprint_area * plane.ild.thickness
        return self.ild_heat(stack, plane_index) / volume

    def scaled(self, factor: float) -> "PowerSpec":
        """This power spec with every heat source multiplied by ``factor``.

        Scales whichever mode is active — the volumetric densities and,
        when given, the per-plane totals — so ``ild_fraction`` splits are
        preserved.  This is the ``power_scale`` sweep axis of the scenario
        subsystem: the geometry (and hence every assembled system matrix)
        is untouched, only the right-hand side scales.
        """
        if not isinstance(factor, (int, float)) or isinstance(factor, bool):
            raise ValidationError(f"power scale must be a number, got {factor!r}")
        if factor < 0.0:
            raise ValidationError(f"power scale must be >= 0, got {factor!r}")
        return PowerSpec(
            device_power_density=self.device_power_density * factor,
            ild_power_density=self.ild_power_density * factor,
            plane_powers=(
                None
                if self.plane_powers is None
                else tuple(p * factor for p in self.plane_powers)
            ),
            ild_fraction=self.ild_fraction,
        )

    def scaled_to_area(self, stack: Stack3D, area: float) -> "PowerSpec":
        """Power spec for a unit cell of ``area`` carved out of ``stack``.

        Only meaningful in ``plane_powers`` mode (uniform power density is
        assumed, as in the case study); density mode is area-independent
        and is returned unchanged.
        """
        if self.plane_powers is None:
            return self
        scale = area / stack.footprint_area
        return PowerSpec(
            device_power_density=self.device_power_density,
            ild_power_density=self.ild_power_density,
            plane_powers=tuple(p * scale for p in self.plane_powers),
            ild_fraction=self.ild_fraction,
        )
