"""Layers: the vertical building blocks of a 3-D stack.

A :class:`Layer` is a homogeneous horizontal slab (one material, one
thickness).  Layers are tagged with a :class:`LayerKind` so solvers can tell
substrates (which host device heat at their top surface) from dielectrics
(which host interconnect Joule heat) and bonding layers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from ..errors import GeometryError
from ..materials import Material
from ..units import require_positive


class LayerKind(enum.Enum):
    """Role of a layer inside a plane/stack."""

    SUBSTRATE = "substrate"
    DIELECTRIC = "dielectric"  # ILD / BEOL
    BOND = "bond"


@dataclass(frozen=True, slots=True)
class Layer:
    """A homogeneous slab of one material.

    Parameters
    ----------
    name:
        Identifier used in reports (e.g. ``"Si2"``, ``"ILD1"``).
    thickness:
        Slab thickness in metres; must be positive.
    material:
        The slab's :class:`~repro.materials.Material`.
    kind:
        The slab's role; see :class:`LayerKind`.
    """

    name: str
    thickness: float
    material: Material
    kind: LayerKind

    def __post_init__(self) -> None:
        if not self.name:
            raise GeometryError("layer name must be non-empty")
        require_positive(f"thickness of layer {self.name!r}", self.thickness)
        if not isinstance(self.material, Material):
            raise GeometryError(f"layer {self.name!r}: material must be a Material")
        if not isinstance(self.kind, LayerKind):
            raise GeometryError(f"layer {self.name!r}: kind must be a LayerKind")

    @property
    def conductivity(self) -> float:
        """Thermal conductivity of the layer material, W/(m·K)."""
        return self.material.thermal_conductivity

    def vertical_resistance(self, area: float) -> float:
        """1-D through-thickness resistance over ``area``, K/W."""
        require_positive("area", area)
        return self.thickness / (self.conductivity * area)

    def with_thickness(self, thickness: float) -> "Layer":
        """Copy of this layer with a new thickness (sweep helper)."""
        return replace(self, thickness=require_positive("thickness", thickness))


def substrate(name: str, thickness: float, material: Material) -> Layer:
    """Convenience constructor for a substrate layer."""
    return Layer(name, thickness, material, LayerKind.SUBSTRATE)


def dielectric(name: str, thickness: float, material: Material) -> Layer:
    """Convenience constructor for an ILD/BEOL layer."""
    return Layer(name, thickness, material, LayerKind.DIELECTRIC)


def bond(name: str, thickness: float, material: Material) -> Layer:
    """Convenience constructor for a bonding layer."""
    return Layer(name, thickness, material, LayerKind.BOND)
