"""The 3-D stack: planes, bonding layers and the footprint.

The stack is described bottom-up, plane 1 being adjacent to the heat sink
(Fig. 1 of the paper): ``Si1 | ILD1 | bond1 | Si2 | ILD2 | bond2 | ... |
SiN | ILDN``.  :meth:`Stack3D.layer_intervals` exposes the z-extents of all
layers, which is what the finite-volume solvers voxelise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterator

from ..errors import GeometryError
from ..units import require_positive
from .layers import Layer, LayerKind
from .plane import DevicePlane


@dataclass(frozen=True, slots=True)
class LayerInterval:
    """A layer instance positioned in the stack, with z-extent [z0, z1)."""

    z0: float
    z1: float
    layer: Layer
    plane_index: int  # 0-based plane the layer belongs to; bonds belong to the plane below

    @property
    def thickness(self) -> float:
        return self.z1 - self.z0

    @property
    def kind(self) -> LayerKind:
        return self.layer.kind


@dataclass(frozen=True, slots=True)
class Stack3D:
    """An N-plane 3-D IC stack over a heat sink.

    Parameters
    ----------
    planes:
        Bottom-up tuple of :class:`DevicePlane`; plane 0 touches the sink.
    bonds:
        Tuple of ``len(planes) - 1`` bonding layers; ``bonds[i]`` glues
        plane ``i`` to plane ``i+1``.
    footprint_area:
        Horizontal area A0 of the analysed block, m².
    sink_temperature:
        Absolute temperature of the heat-sink face, °C (the paper uses
        27 °C).  Models compute rises ΔT; absolute readouts add this.
    """

    planes: tuple[DevicePlane, ...]
    bonds: tuple[Layer, ...]
    footprint_area: float
    sink_temperature: float = 27.0

    def __post_init__(self) -> None:
        if not self.planes:
            raise GeometryError("a stack needs at least one plane")
        if not all(isinstance(p, DevicePlane) for p in self.planes):
            raise GeometryError("planes must be DevicePlane instances")
        if len(self.bonds) != len(self.planes) - 1:
            raise GeometryError(
                f"{len(self.planes)} planes need {len(self.planes) - 1} bond layers, "
                f"got {len(self.bonds)}"
            )
        for b in self.bonds:
            if b.kind is not LayerKind.BOND:
                raise GeometryError(f"bond layer {b.name!r} has kind {b.kind}")
        require_positive("footprint_area", self.footprint_area)

    # ------------------------------------------------------------------
    # counts and simple accessors
    # ------------------------------------------------------------------
    @property
    def n_planes(self) -> int:
        return len(self.planes)

    @property
    def footprint_side(self) -> float:
        """Side of the equivalent square footprint, metres."""
        return math.sqrt(self.footprint_area)

    @property
    def equivalent_radius(self) -> float:
        """Radius of the equal-area circular footprint: √(A0/π)."""
        return math.sqrt(self.footprint_area / math.pi)

    @property
    def total_height(self) -> float:
        """Total stack height from the sink face to the top of the last ILD."""
        h = sum(p.thickness for p in self.planes)
        h += sum(b.thickness for b in self.bonds)
        return h

    def bond_below(self, plane_index: int) -> Layer:
        """The bond layer below plane ``plane_index`` (1-based planes > 0)."""
        if not 1 <= plane_index < self.n_planes:
            raise GeometryError(f"plane {plane_index} has no bond below it")
        return self.bonds[plane_index - 1]

    # ------------------------------------------------------------------
    # z-coordinate machinery
    # ------------------------------------------------------------------
    def layer_intervals(self) -> list[LayerInterval]:
        """All layers bottom-up with their z-extents (z = 0 at the sink)."""
        out: list[LayerInterval] = []
        z = 0.0
        for i, plane in enumerate(self.planes):
            for layer in (plane.substrate, plane.ild):
                out.append(LayerInterval(z, z + layer.thickness, layer, i))
                z += layer.thickness
            if i < len(self.bonds):
                b = self.bonds[i]
                out.append(LayerInterval(z, z + b.thickness, b, i))
                z += b.thickness
        return out

    def substrate_top(self, plane_index: int) -> float:
        """z of the top surface of plane ``plane_index``'s substrate."""
        for iv in self.layer_intervals():
            if iv.plane_index == plane_index and iv.kind is LayerKind.SUBSTRATE:
                return iv.z1
        raise GeometryError(f"no plane {plane_index} in a {self.n_planes}-plane stack")

    def ild_interval(self, plane_index: int) -> LayerInterval:
        """The ILD interval of plane ``plane_index``."""
        for iv in self.layer_intervals():
            if iv.plane_index == plane_index and iv.kind is LayerKind.DIELECTRIC:
                return iv
        raise GeometryError(f"no plane {plane_index} in a {self.n_planes}-plane stack")

    def tsv_span(self, extension: float) -> tuple[float, float]:
        """(z_bottom, z_top) occupied by a TSV with the given extension.

        The via runs from ``extension`` below the top of the first
        substrate up to the top of the last substrate (the paper's
        convention; see DESIGN.md).
        """
        z_bottom = self.substrate_top(0) - extension
        if z_bottom < 0.0:
            raise GeometryError(
                f"TSV extension {extension} exceeds the first substrate thickness"
            )
        z_top = self.substrate_top(self.n_planes - 1)
        return z_bottom, z_top

    def iter_planes(self) -> Iterator[tuple[int, DevicePlane]]:
        """Enumerate planes bottom-up as ``(index, plane)``."""
        return iter(enumerate(self.planes))

    # ------------------------------------------------------------------
    # sweep helpers
    # ------------------------------------------------------------------
    def with_substrate_thickness(
        self, thickness: float, *, planes: tuple[int, ...] | None = None
    ) -> "Stack3D":
        """Copy with new substrate thickness on the given planes.

        ``planes=None`` changes every plane *except* the first (the Fig. 6
        sweep thins Si2 and Si3 while Si1 stays at 500 µm).
        """
        if planes is None:
            planes = tuple(range(1, self.n_planes))
        new_planes = list(self.planes)
        for i in planes:
            if not 0 <= i < self.n_planes:
                raise GeometryError(f"no plane {i} in a {self.n_planes}-plane stack")
            new_planes[i] = new_planes[i].with_substrate_thickness(thickness)
        return replace(self, planes=tuple(new_planes))

    def with_footprint_area(self, area: float) -> "Stack3D":
        """Copy with a different footprint area (unit-cell reductions)."""
        return replace(self, footprint_area=require_positive("area", area))

    def with_bond_conductivity_factor(self, factor: float) -> "Stack3D":
        """Copy with every bond layer's conductivity multiplied by ``factor``.

        Models the effective conductance of a bonding interface populated
        with metallic bond pads/bumps (the case study's c_{1,2}); see
        DESIGN.md substitutions.
        """
        require_positive("factor", factor)
        new_bonds = tuple(
            replace(
                b,
                material=b.material.with_conductivity(
                    b.material.thermal_conductivity * factor,
                    name=f"{b.material.name}*{factor:g}",
                ),
            )
            for b in self.bonds
        )
        return replace(self, bonds=new_bonds)
