"""Geometry: layers, planes, stacks, TSVs and power specifications."""

from .builders import paper_stack, paper_tsv, validate_tsv_in_stack
from .layers import Layer, LayerKind, bond, dielectric, substrate
from .plane import DevicePlane
from .power import PowerSpec
from .stack import LayerInterval, Stack3D
from .tsv import TSV, TSVCluster, as_cluster

__all__ = [
    "Layer",
    "LayerKind",
    "substrate",
    "dielectric",
    "bond",
    "DevicePlane",
    "Stack3D",
    "LayerInterval",
    "TSV",
    "TSVCluster",
    "as_cluster",
    "PowerSpec",
    "paper_stack",
    "paper_tsv",
    "validate_tsv_in_stack",
]
