"""Convenience builders for the structures the paper investigates.

:func:`paper_stack` creates the Section-IV block: a three-plane (by
default) stack with SiO2 ILDs, polyimide bonds, a 500 µm first substrate
and a 100 µm × 100 µm footprint.  All experiment modules derive their
geometry from it by replacing individual dimensions.
"""

from __future__ import annotations

from .. import constants
from ..errors import GeometryError
from ..materials import POLYIMIDE, SILICON, SILICON_DIOXIDE, Material
from ..units import require_positive, require_positive_int, um
from .layers import bond, dielectric, substrate
from .plane import DevicePlane
from .stack import Stack3D
from .tsv import TSV


def paper_stack(
    *,
    n_planes: int = 3,
    t_si1: float = constants.PAPER_T_SI1,
    t_si_upper: float = um(45.0),
    t_ild: float = um(4.0),
    t_bond: float = um(1.0),
    footprint_area: float = constants.PAPER_FOOTPRINT_AREA,
    device_layer_thickness: float = constants.PAPER_DEVICE_LAYER_THICKNESS,
    substrate_material: Material = SILICON,
    ild_material: Material = SILICON_DIOXIDE,
    bond_material: Material = POLYIMIDE,
    sink_temperature: float = constants.PAPER_SINK_TEMPERATURE_C,
) -> Stack3D:
    """Build the paper's N-plane block (Fig. 1 with Section-IV materials).

    Parameters mirror the paper's symbols: ``t_si1`` is the first-plane
    substrate (500 µm), ``t_si_upper`` applies to planes 2..N, ``t_ild``
    is tD for every plane and ``t_bond`` is tb for every bonding layer.
    """
    require_positive_int("n_planes", n_planes)
    require_positive("t_si1", t_si1)
    if n_planes > 1:
        require_positive("t_si_upper", t_si_upper)
    planes = []
    for i in range(n_planes):
        t_si = t_si1 if i == 0 else t_si_upper
        planes.append(
            DevicePlane(
                name=f"plane{i + 1}",
                substrate=substrate(f"Si{i + 1}", t_si, substrate_material),
                ild=dielectric(f"ILD{i + 1}", t_ild, ild_material),
                device_layer_thickness=device_layer_thickness,
            )
        )
    bonds = tuple(
        bond(f"bond{i + 1}", t_bond, bond_material) for i in range(n_planes - 1)
    )
    return Stack3D(
        planes=tuple(planes),
        bonds=bonds,
        footprint_area=footprint_area,
        sink_temperature=sink_temperature,
    )


def paper_tsv(
    *,
    radius: float = um(5.0),
    liner_thickness: float = um(0.5),
    extension: float = constants.PAPER_L_EXT,
) -> TSV:
    """A copper/SiO2 TTSV with the paper's default dimensions."""
    return TSV(radius=radius, liner_thickness=liner_thickness, extension=extension)


def validate_tsv_in_stack(stack: Stack3D, via: TSV) -> None:
    """Check that a via physically fits the stack.

    Raises
    ------
    GeometryError
        If the via (with liner) occupies the whole footprint, or its
        extension exceeds the first substrate.
    """
    if via.occupied_area >= stack.footprint_area:
        raise GeometryError(
            f"TSV outer area {via.occupied_area:.3e} m² does not fit the "
            f"footprint {stack.footprint_area:.3e} m²"
        )
    stack.tsv_span(via.extension)  # raises if the extension is too deep
