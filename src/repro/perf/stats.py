"""Global performance counters and the ``perf.stats()`` snapshot.

Every cache in :mod:`repro.perf.cache` registers itself here so one call
exposes hit/miss/eviction rates for the whole process — the numbers the
benchmark-regression harness records into ``BENCH_*.json``.  Free-standing
counters (e.g. the CG→direct fallback in :mod:`repro.network.solve`) use
:func:`increment`.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from typing import Any

_lock = threading.Lock()
_counters: dict[str, int] = {}
_providers: dict[str, Callable[[], dict[str, Any]]] = {}


def increment(name: str, amount: int = 1) -> None:
    """Bump a named global counter (thread-safe)."""
    with _lock:
        _counters[name] = _counters.get(name, 0) + amount


def counter(name: str) -> int:
    """Current value of a named counter (0 if never incremented)."""
    with _lock:
        return _counters.get(name, 0)


def register_provider(name: str, provider: Callable[[], dict[str, Any]]) -> None:
    """Attach a stats provider (normally a cache) under ``name``."""
    with _lock:
        _providers[name] = provider


def stats() -> dict[str, Any]:
    """Snapshot of every cache and counter in the process."""
    with _lock:
        providers = dict(_providers)
        counters = dict(_counters)
    return {
        "caches": {name: provider() for name, provider in providers.items()},
        "counters": counters,
    }


def reset_counters() -> None:
    """Zero the free-standing counters (caches clear themselves)."""
    with _lock:
        _counters.clear()
