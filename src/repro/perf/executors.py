"""Pluggable sweep execution: serial today, process-parallel when asked.

The sweep engine hands an executor a list of work specs and expects the
solved results back *in task order*.  Three task shapes exist:

* :class:`PointTask` — one sweep point's worth of solves (one geometry,
  several models), the historical unit of dispatch;
* :class:`MatrixGroupTask` — one *matrix group*: a single model solved at
  one geometry under many power specs.  The members share the exact
  system matrix (see
  :meth:`repro.core.base.ThermalTSVModel.assembly_key`), so the group is
  solved through the model's ``solve_batch`` — voxelise/assemble/factor
  once, back-substitute per member — and, under parallel dispatch, the
  shared geometry/model payload is pickled *once per group* instead of
  once per point;
* :class:`StackedBatchTask` — one *stacked batch*: many structurally
  congruent points (same node count/topology, different matrices — see
  :meth:`repro.core.base.ThermalTSVModel.batch_class_key`) solved by a
  single batched ``(m, n, n)`` LAPACK call instead of m Python-level
  round-trips.

:class:`SerialExecutor` is the default and reproduces the historical
strictly-serial loop bit-for-bit; :class:`ParallelExecutor` fans tasks out
over a ``ProcessPoolExecutor`` with chunked dispatch.  Work specs carry
plain dataclass geometry and the model instances themselves, all of which
pickle cleanly; the configure callback (often a closure) is evaluated in
the parent before dispatch, so it never crosses the process boundary.

Determinism: ``ProcessPoolExecutor.map`` preserves input order, every
model solve is deterministic, and batched solves are bit-identical to
per-point solves, so serial, parallel, grouped and ungrouped execution
all produce numerically identical results regardless of how tasks land
on workers.

Fault tolerance: :meth:`SweepExecutor.submit_stream_safe` is the
capture-mode stream — worker exceptions come back as picklable
:class:`~repro.perf.retry.TaskFailure` results instead of unwinding the
iterator, per-task wall-clock deadlines are enforced worker-side, and
:class:`ParallelExecutor` survives a broken pool by rebuilding it and
resubmitting only unacknowledged tasks (degrading to in-parent execution
after repeated pool deaths).  The plain :meth:`~SweepExecutor.submit_stream`
keeps its historical raise-on-failure contract.
"""

from __future__ import annotations

import abc
import math
import os
import pickle
import warnings
from collections.abc import Iterable, Iterator
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Any, Union

from .. import faults
from ..errors import ValidationError
from .retry import (
    PROPAGATE_TYPES,
    TaskFailure,
    failure_from_exception,
    node_deadline,
)
from .stats import increment


@dataclass(frozen=True)
class PointTask:
    """One sweep point's worth of solves, picklable for dispatch.

    ``index`` is the point's position in the sweep (used by the caller to
    merge results back); ``models`` holds only the models whose results
    were not already cached.  ``attempt`` is the retry round that
    dispatched this task — it does not affect the solve, but gives every
    retry an independent fault-injection draw (see :mod:`repro.faults`).
    """

    index: int
    value: Any
    stack: Any
    via: Any
    power: Any
    models: tuple[Any, ...]
    attempt: int = 0


@dataclass(frozen=True)
class MatrixGroupTask:
    """A matrix group: one model, one geometry, many right-hand sides.

    ``index`` is the group's position in the caller's group list;
    ``powers`` lists one power spec per member, in member order, starting
    at member ``offset`` (non-zero when :class:`ParallelExecutor` splits
    a large group into per-worker RHS sub-blocks — each sub-block still
    factorises only once per worker, but the group no longer serialises
    a whole sweep onto one process).  Solved via ``model.solve_batch`` —
    results align positionally with ``powers`` and are bit-identical to
    per-point solves.  The shared (model, stack, via) payload crosses
    the process boundary once per (sub-)group, which is where parallel
    dispatch of shared-matrix sweeps recovers its pickling/IPC overhead.
    """

    index: int
    stack: Any
    via: Any
    model: Any
    powers: tuple[Any, ...]
    offset: int = 0
    attempt: int = 0


@dataclass(frozen=True)
class StackedBatchTask:
    """A stacked batch: many congruent systems solved as one array call.

    The tier below :class:`MatrixGroupTask`: members share a
    :meth:`~repro.core.base.ThermalTSVModel.batch_class_key` — same node
    count and topology — but *not* a matrix, so there is nothing to
    factor once; instead every member's dense system is assembled and all
    of them are solved by one batched LAPACK call
    (:func:`repro.core.base.solve_stacked`).  ``members`` holds
    ``(model, stack, via, power)`` tuples in member order starting at
    ``offset`` (non-zero when :class:`ParallelExecutor` chunks a large
    batch across workers — stacking has no shared factor, so chunking
    costs nothing but keeps every worker busy).  Results align
    positionally with ``members`` and are bit-identical to per-member
    solo solves.
    """

    index: int
    members: tuple[tuple[Any, Any, Any, Any], ...]
    offset: int = 0
    attempt: int = 0


#: anything an executor can be handed
SweepTask = Union[PointTask, MatrixGroupTask, StackedBatchTask]


def solve_task(task: PointTask) -> dict[str, Any]:
    """Solve every model of one point task; runs in the parent or a worker."""
    results: dict[str, Any] = {}
    for m in task.models:
        if faults.active():
            faults.inject("solve", f"{task.index}/{m.name}#a{task.attempt}")
        results[m.name] = m.solve(task.stack, task.via, task.power)
    return results


def solve_work(task: SweepTask) -> Any:
    """Solve any task shape: a result dict (point) or list (batch)."""
    if isinstance(task, MatrixGroupTask):
        if faults.active():
            faults.inject(
                "group-solve", f"g{task.index}+{task.offset}#a{task.attempt}"
            )
        return task.model.solve_batch(task.stack, task.via, task.powers)
    if isinstance(task, StackedBatchTask):
        if faults.active():
            faults.inject(
                "stacked-solve", f"s{task.index}+{task.offset}#a{task.attempt}"
            )
        from ..core.base import solve_stacked  # local: avoid import cycle

        return solve_stacked(task.members)
    return solve_task(task)


def solve_task_chunk(tasks: list[SweepTask]) -> list[Any]:
    """Solve a chunk of tasks in one dispatch message (worker side)."""
    return [solve_work(t) for t in tasks]


def solve_work_safe(task: SweepTask, timeout_s: float | None = None) -> Any:
    """Solve one task, capturing failures as :class:`TaskFailure` results.

    The wall-clock deadline is enforced here — in the worker's main
    thread under parallel dispatch — and is scaled by member count for
    matrix groups, which legitimately do many nodes' work in one
    dispatch.  Configuration mistakes (:data:`PROPAGATE_TYPES`) still
    raise: quarantining a bad spec would hide the diagnostic.
    """
    budget = timeout_s
    if budget and isinstance(task, MatrixGroupTask):
        budget = budget * len(task.powers)
    elif budget and isinstance(task, StackedBatchTask):
        budget = budget * len(task.members)
    try:
        with node_deadline(budget):
            return solve_work(task)
    except PROPAGATE_TYPES:
        raise
    except Exception as exc:
        return failure_from_exception(exc)


def solve_task_chunk_safe(
    tasks: list[SweepTask], timeout_s: float | None = None
) -> list[Any]:
    """Capture-mode chunk dispatch: one result-or-failure per task."""
    return [solve_work_safe(t, timeout_s) for t in tasks]


class SweepExecutor(abc.ABC):
    """Strategy interface: run tasks, return results aligned with input."""

    @abc.abstractmethod
    def run_tasks(self, tasks: list[SweepTask]) -> list[Any]:
        """Solve every task, returning one result per task, in order."""

    def submit_stream(
        self, tasks: Iterable[SweepTask]
    ) -> Iterator[tuple[SweepTask, Any]]:
        """Yield ``(task, results)`` pairs as tasks complete.

        Completion order is unspecified — the execution-plan scheduler
        consumes this to react to each solved point (or matrix group) as
        soon as it lands (progress callbacks, point-store writes,
        unlocking dependents).  The default implementation delegates to
        :meth:`run_tasks`, so any executor that only implements the batch
        interface still streams (in task order); :class:`ParallelExecutor`
        overrides it with true as-completed delivery.
        """
        tasks = list(tasks)
        yield from zip(tasks, self.run_tasks(tasks))

    def submit_stream_safe(
        self, tasks: Iterable[SweepTask], *, timeout_s: float | None = None
    ) -> Iterator[tuple[SweepTask, Any]]:
        """Capture-mode stream: failures arrive as :class:`TaskFailure`.

        Same contract as :meth:`submit_stream`, except a failed task
        yields ``(task, TaskFailure)`` instead of raising, and
        ``timeout_s`` bounds each task's solve wall-clock.  The default
        implementation streams through :meth:`submit_stream` and — if the
        underlying stream dies mid-iteration — finishes every
        unacknowledged task in-parent, one at a time, so a single bad
        task can only fail itself.  Subclasses with a native capture path
        (:class:`SerialExecutor`, :class:`ParallelExecutor`) override.
        """
        tasks = list(tasks)
        remaining = {id(t): t for t in tasks}
        try:
            for task, result in self.submit_stream(tasks):
                remaining.pop(id(task), None)
                yield task, result
        except PROPAGATE_TYPES:
            raise
        except Exception:
            # blame is ambiguous mid-stream — the failing task is still
            # unacknowledged, so re-running the remainder individually
            # captures its failure and completes the innocents
            for task in remaining.values():
                yield task, solve_work_safe(task, timeout_s)


class SerialExecutor(SweepExecutor):
    """The default in-process loop — identical to the historical sweep."""

    def run_tasks(self, tasks: list[SweepTask]) -> list[Any]:
        return [solve_work(t) for t in tasks]

    def submit_stream(
        self, tasks: Iterable[SweepTask]
    ) -> Iterator[tuple[SweepTask, Any]]:
        for task in tasks:
            yield task, solve_work(task)

    def submit_stream_safe(
        self, tasks: Iterable[SweepTask], *, timeout_s: float | None = None
    ) -> Iterator[tuple[SweepTask, Any]]:
        for task in tasks:
            yield task, solve_work_safe(task, timeout_s)


class ParallelExecutor(SweepExecutor):
    """Process-pool execution with chunked dispatch and ordered results.

    Parameters
    ----------
    jobs:
        Worker process count; defaults to the machine's CPU count.
    chunksize:
        Tasks per dispatch message; default splits the task list into
        roughly two chunks per worker to amortise pickling overhead.
        A :class:`MatrixGroupTask` counts as one task but carries a whole
        group — its shared payload is pickled once however the chunks
        fall.
    max_pool_rebuilds:
        How many broken pools :meth:`submit_stream_safe` rebuilds before
        degrading to in-parent execution of whatever is left.

    Worker exceptions (bad geometry, singular systems) propagate to the
    caller exactly as in serial mode.  A broken pool or unpicklable work
    degrades to the serial path with a warning instead of failing the
    sweep.
    """

    def __init__(
        self,
        jobs: int | None = None,
        *,
        chunksize: int | None = None,
        max_pool_rebuilds: int = 3,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ValidationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs or os.cpu_count() or 1
        if chunksize is not None and chunksize < 1:
            raise ValidationError(f"chunksize must be >= 1, got {chunksize}")
        self.chunksize = chunksize
        if max_pool_rebuilds < 0:
            raise ValidationError(
                f"max_pool_rebuilds must be >= 0, got {max_pool_rebuilds}"
            )
        self.max_pool_rebuilds = max_pool_rebuilds

    def run_tasks(self, tasks: list[SweepTask]) -> list[Any]:
        if self.jobs == 1 or len(tasks) <= 1:
            return SerialExecutor().run_tasks(tasks)
        workers = min(self.jobs, len(tasks))
        chunk = self.chunksize or max(1, math.ceil(len(tasks) / (workers * 2)))
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(solve_work, tasks, chunksize=chunk))
        except (pickle.PicklingError, BrokenProcessPool, OSError) as exc:
            warnings.warn(
                f"parallel sweep degraded to serial execution: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            return SerialExecutor().run_tasks(tasks)

    def _split_groups(self, tasks: list[SweepTask]) -> list[SweepTask]:
        """Split large batch tasks into per-worker sub-blocks.

        A single indivisible group would serialise a whole shared-matrix
        sweep onto one worker, so each group is split into roughly
        ``jobs / len(tasks)`` sub-blocks — just enough to fill the idle
        workers.  When the task list already saturates the pool, nothing
        is split: every extra sub-block costs a redundant factorization
        in its worker (sub-blocks of one group land on different
        processes with cold factor caches), which only pays off while
        workers would otherwise sit idle.  Stacked batches chunk by the
        same rule (their members share no factor, so sub-blocks cost
        nothing beyond the smaller batched calls).  Splitting is
        deterministic and each sub-block carries its ``offset``, so
        results stay bit-identical and realignable with the original
        member order.
        """
        per_task = self.jobs // max(1, len(tasks))
        if per_task <= 1:
            return tasks
        expanded: list[SweepTask] = []
        for task in tasks:
            if isinstance(task, MatrixGroupTask) and len(task.powers) > 1:
                n_sub = min(per_task, len(task.powers))
                size = math.ceil(len(task.powers) / n_sub)
                for start in range(0, len(task.powers), size):
                    expanded.append(
                        replace(
                            task,
                            powers=task.powers[start : start + size],
                            offset=task.offset + start,
                        )
                    )
                continue
            if isinstance(task, StackedBatchTask) and len(task.members) > 1:
                n_sub = min(per_task, len(task.members))
                size = math.ceil(len(task.members) / n_sub)
                for start in range(0, len(task.members), size):
                    expanded.append(
                        replace(
                            task,
                            members=task.members[start : start + size],
                            offset=task.offset + start,
                        )
                    )
                continue
            expanded.append(task)
        return expanded

    def submit_stream(
        self, tasks: Iterable[SweepTask]
    ) -> Iterator[tuple[SweepTask, Any]]:
        tasks = list(tasks)
        if self.jobs > 1:
            tasks = self._split_groups(tasks)
        if self.jobs == 1 or len(tasks) <= 1:
            yield from SerialExecutor().submit_stream(tasks)
            return
        workers = min(self.jobs, len(tasks))
        # same chunked dispatch as run_tasks: one future per chunk, so the
        # streaming path amortises pickling overhead identically
        chunk = self.chunksize or max(1, math.ceil(len(tasks) / (workers * 2)))
        chunks = [tasks[i : i + chunk] for i in range(0, len(tasks), chunk)]
        done: set[int] = set()
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(solve_task_chunk, c): i
                    for i, c in enumerate(chunks)
                }
                for future in as_completed(futures):
                    index = futures[future]
                    # worker exceptions (bad geometry, singular systems)
                    # propagate exactly as in serial mode
                    results = future.result()
                    done.add(index)
                    yield from zip(chunks[index], results)
        except (pickle.PicklingError, BrokenProcessPool, OSError) as exc:
            warnings.warn(
                f"parallel sweep degraded to serial execution: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            for i, c in enumerate(chunks):
                if i not in done:
                    for task in c:
                        yield task, solve_work(task)

    def submit_stream_safe(
        self, tasks: Iterable[SweepTask], *, timeout_s: float | None = None
    ) -> Iterator[tuple[SweepTask, Any]]:
        """Capture-mode stream that survives worker death.

        Tasks dispatch in the same chunks as :meth:`submit_stream`, but a
        broken pool (a worker ``os._exit``/OOM-kill takes every pending
        future down with it) no longer unwinds the stream: results that
        already landed are kept, the pool is rebuilt, and only the
        *unacknowledged* chunks are resubmitted — one task per dispatch on
        the rebuilt pool, so a deterministic crasher can take down at most
        one task's worth of innocents per death.  After
        ``max_pool_rebuilds`` deaths the remainder runs in-parent, where a
        crash becomes a capturable
        :class:`~repro.errors.WorkerCrashError` instead of a dead pool.
        Pool deaths are counted as ``pool_rebuilds`` in
        :func:`repro.perf.stats`.
        """
        tasks = list(tasks)
        if self.jobs > 1:
            tasks = self._split_groups(tasks)
        if self.jobs == 1 or len(tasks) <= 1:
            yield from SerialExecutor().submit_stream_safe(
                tasks, timeout_s=timeout_s
            )
            return
        workers = min(self.jobs, len(tasks))
        chunk = self.chunksize or max(1, math.ceil(len(tasks) / (workers * 2)))
        pending: dict[int, list[SweepTask]] = {
            i: tasks[start : start + chunk]
            for i, start in enumerate(range(0, len(tasks), chunk))
        }
        deaths = 0
        while pending:
            try:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = {
                        pool.submit(solve_task_chunk_safe, c, timeout_s): i
                        for i, c in pending.items()
                    }
                    for future in as_completed(futures):
                        index = futures[future]
                        results = future.result()  # raises if the pool died
                        chunk_tasks = pending.pop(index)
                        yield from zip(chunk_tasks, results)
                return
            except (pickle.PicklingError, BrokenProcessPool, OSError) as exc:
                deaths += 1
                increment("pool_rebuilds")
                n_left = sum(len(c) for c in pending.values())
                if (
                    isinstance(exc, pickle.PicklingError)
                    or deaths > self.max_pool_rebuilds
                ):
                    warnings.warn(
                        f"worker pool died {deaths} time(s) ({exc}); running "
                        f"the remaining {n_left} task(s) in-parent",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    break
                warnings.warn(
                    f"worker pool died ({exc}); rebuilding and resubmitting "
                    f"{n_left} unacknowledged task(s)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                # isolate blame on the rebuilt pool: one task per dispatch,
                # so the next death loses at most one task's result
                pending = {
                    i: [t]
                    for i, t in enumerate(
                        t for c in pending.values() for t in c
                    )
                }
        for c in pending.values():
            for task in c:
                yield task, solve_work_safe(task, timeout_s)


def get_executor(jobs: int | None) -> SweepExecutor:
    """Executor for a ``--jobs N`` request: serial for N in (None, 0, 1)."""
    if not jobs or jobs == 1:
        return SerialExecutor()
    return ParallelExecutor(jobs)
