"""Pluggable sweep execution: serial today, process-parallel when asked.

The sweep engine hands an executor a list of :class:`PointTask` work specs
(one per sweep point that missed the result cache) and expects the solved
results back *in task order*.  :class:`SerialExecutor` is the default and
reproduces the historical strictly-serial loop bit-for-bit;
:class:`ParallelExecutor` fans tasks out over a ``ProcessPoolExecutor``
with chunked dispatch.  Work specs carry plain dataclass geometry and the
model instances themselves, all of which pickle cleanly; the configure
callback (often a closure) is evaluated in the parent before dispatch, so
it never crosses the process boundary.

Determinism: ``ProcessPoolExecutor.map`` preserves input order and every
model solve is deterministic, so serial and parallel sweeps produce
numerically identical results regardless of how tasks land on workers.
"""

from __future__ import annotations

import abc
import math
import os
import pickle
import warnings
from collections.abc import Iterable, Iterator
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any

from ..errors import ValidationError


@dataclass(frozen=True)
class PointTask:
    """One sweep point's worth of solves, picklable for dispatch.

    ``index`` is the point's position in the sweep (used by the caller to
    merge results back); ``models`` holds only the models whose results
    were not already cached.
    """

    index: int
    value: Any
    stack: Any
    via: Any
    power: Any
    models: tuple[Any, ...]


def solve_task(task: PointTask) -> dict[str, Any]:
    """Solve every model of one task; runs in the parent or a worker."""
    return {
        m.name: m.solve(task.stack, task.via, task.power) for m in task.models
    }


def solve_task_chunk(tasks: list[PointTask]) -> list[dict[str, Any]]:
    """Solve a chunk of tasks in one dispatch message (worker side)."""
    return [solve_task(t) for t in tasks]


class SweepExecutor(abc.ABC):
    """Strategy interface: run tasks, return results aligned with input."""

    @abc.abstractmethod
    def run_tasks(self, tasks: list[PointTask]) -> list[dict[str, Any]]:
        """Solve every task, returning one result dict per task, in order."""

    def submit_stream(
        self, tasks: Iterable[PointTask]
    ) -> Iterator[tuple[PointTask, dict[str, Any]]]:
        """Yield ``(task, results)`` pairs as tasks complete.

        Completion order is unspecified — the execution-plan scheduler
        consumes this to react to each solved point as soon as it lands
        (progress callbacks, point-store writes, unlocking dependents).
        The default implementation delegates to :meth:`run_tasks`, so any
        executor that only implements the batch interface still streams
        (in task order); :class:`ParallelExecutor` overrides it with true
        as-completed delivery.
        """
        tasks = list(tasks)
        yield from zip(tasks, self.run_tasks(tasks))


class SerialExecutor(SweepExecutor):
    """The default in-process loop — identical to the historical sweep."""

    def run_tasks(self, tasks: list[PointTask]) -> list[dict[str, Any]]:
        return [solve_task(t) for t in tasks]

    def submit_stream(
        self, tasks: Iterable[PointTask]
    ) -> Iterator[tuple[PointTask, dict[str, Any]]]:
        for task in tasks:
            yield task, solve_task(task)


class ParallelExecutor(SweepExecutor):
    """Process-pool execution with chunked dispatch and ordered results.

    Parameters
    ----------
    jobs:
        Worker process count; defaults to the machine's CPU count.
    chunksize:
        Tasks per dispatch message; default splits the task list into
        roughly two chunks per worker to amortise pickling overhead.

    Worker exceptions (bad geometry, singular systems) propagate to the
    caller exactly as in serial mode.  A broken pool or unpicklable work
    degrades to the serial path with a warning instead of failing the
    sweep.
    """

    def __init__(self, jobs: int | None = None, *, chunksize: int | None = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValidationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs or os.cpu_count() or 1
        if chunksize is not None and chunksize < 1:
            raise ValidationError(f"chunksize must be >= 1, got {chunksize}")
        self.chunksize = chunksize

    def run_tasks(self, tasks: list[PointTask]) -> list[dict[str, Any]]:
        if self.jobs == 1 or len(tasks) <= 1:
            return SerialExecutor().run_tasks(tasks)
        workers = min(self.jobs, len(tasks))
        chunk = self.chunksize or max(1, math.ceil(len(tasks) / (workers * 2)))
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(solve_task, tasks, chunksize=chunk))
        except (pickle.PicklingError, BrokenProcessPool, OSError) as exc:
            warnings.warn(
                f"parallel sweep degraded to serial execution: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            return SerialExecutor().run_tasks(tasks)

    def submit_stream(
        self, tasks: Iterable[PointTask]
    ) -> Iterator[tuple[PointTask, dict[str, Any]]]:
        tasks = list(tasks)
        if self.jobs == 1 or len(tasks) <= 1:
            yield from SerialExecutor().submit_stream(tasks)
            return
        workers = min(self.jobs, len(tasks))
        # same chunked dispatch as run_tasks: one future per chunk, so the
        # streaming path amortises pickling overhead identically
        chunk = self.chunksize or max(1, math.ceil(len(tasks) / (workers * 2)))
        chunks = [tasks[i : i + chunk] for i in range(0, len(tasks), chunk)]
        done: set[int] = set()
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(solve_task_chunk, c): i
                    for i, c in enumerate(chunks)
                }
                for future in as_completed(futures):
                    index = futures[future]
                    # worker exceptions (bad geometry, singular systems)
                    # propagate exactly as in serial mode
                    results = future.result()
                    done.add(index)
                    yield from zip(chunks[index], results)
        except (pickle.PicklingError, BrokenProcessPool, OSError) as exc:
            warnings.warn(
                f"parallel sweep degraded to serial execution: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            for i, c in enumerate(chunks):
                if i not in done:
                    for task in c:
                        yield task, solve_task(task)


def get_executor(jobs: int | None) -> SweepExecutor:
    """Executor for a ``--jobs N`` request: serial for N in (None, 0, 1)."""
    if not jobs or jobs == 1:
        return SerialExecutor()
    return ParallelExecutor(jobs)
