"""Content-keyed memoization of model solves.

A sweep point is fully described by (model configuration, stack, via,
power), all of which are plain frozen dataclasses — so a solved
:class:`~repro.core.result.ModelResult` can be reused whenever the same
configuration reappears: calibration samples that overlap the sweep grid,
repeated sweeps under multi-scenario traffic, Table I re-deriving the
Fig. 5 sweep.  Results are deterministic, so a cache hit is numerically
identical to a fresh solve (the recorded ``solve_time`` is the original
solve's).
"""

from __future__ import annotations

from typing import Any

from .cache import content_key, result_cache


def model_key(model: Any) -> str | None:
    """Content digest of a model's type and configuration, or None."""
    try:
        state = vars(model)
    except TypeError:
        state = getattr(model, "name", repr(model))
    return content_key(type(model).__module__, type(model).__qualname__, state)


def solve_key(model: Any, stack: Any, via: Any, power: Any) -> str | None:
    """Cache key for one (model, geometry, power) solve, or None."""
    mkey = model_key(model)
    if mkey is None:
        return None
    return content_key(mkey, stack, via, power)


def cached_solve(model: Any, stack: Any, via: Any, power: Any) -> Any:
    """``model.solve(...)`` through the global result cache."""
    key = solve_key(model, stack, via, power)
    if key is None:
        return model.solve(stack, via, power)
    result = result_cache.get(key)
    if result is None:
        result = model.solve(stack, via, power)
        result_cache.put(key, result)
    return result
