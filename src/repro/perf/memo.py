"""Content-keyed memoization of model solves.

A sweep point is fully described by (model configuration, stack, via,
power), all of which are plain frozen dataclasses — so a solved
:class:`~repro.core.result.ModelResult` can be reused whenever the same
configuration reappears: calibration samples that overlap the sweep grid,
repeated sweeps under multi-scenario traffic, Table I re-deriving the
Fig. 5 sweep.  Results are deterministic, so a cache hit is numerically
identical to a fresh solve (the recorded ``solve_time`` is the original
solve's).
"""

from __future__ import annotations

from typing import Any

from .cache import content_key, result_cache


def model_key(model: Any) -> str | None:
    """Content digest of a model's type and configuration, or None."""
    try:
        state = vars(model)
    except TypeError:
        state = getattr(model, "name", repr(model))
    return content_key(type(model).__module__, type(model).__qualname__, state)


def solve_key(model: Any, stack: Any, via: Any, power: Any) -> str | None:
    """Cache key for one (model, geometry, power) solve, or None."""
    mkey = model_key(model)
    if mkey is None:
        return None
    return content_key(mkey, stack, via, power)


def calibration_key(
    reference_key: str | None, sample_keys: Any, name: str
) -> str | None:
    """Identity of one coefficient fit: reference config + sample solves.

    The same formula keys the execution plan's CalibrationNode and the
    eager path's fit, so both address one result-cache entry (see
    :func:`calibration_fit_key`).  ``sample_keys`` are the reference
    solve keys at the calibration samples, in sample order; any missing
    piece (unpicklable model) disables the identity.
    """
    if reference_key is None:
        return None
    sample_keys = tuple(sample_keys)
    if any(key is None for key in sample_keys):
        return None
    return content_key("calibration/v1", reference_key, sample_keys, name)


def calibration_fit_key(cal_key: str | None) -> str | None:
    """Result-cache key of a finished coefficient fit.

    Derived from (not equal to) the calibration identity so a cached
    :class:`~repro.calibration.fit.CalibrationResult` can never collide
    with a plan-node result stored under the identity itself.
    """
    if cal_key is None:
        return None
    return content_key("calibration_fit/v1", cal_key)


def memoized_fit(fit_key: str | None, compute: Any) -> Any:
    """A coefficient fit through the result cache (the fit-level cache).

    The single implementation of the fit-memoization contract shared by
    the eager path (:func:`repro.experiments.harness.calibrated_model_a`)
    and the plan scheduler — same counters
    (``calibration_fit_hits``/``_misses``), same None-key bypass, same
    cached type (the full CalibrationResult) — so the two paths can never
    drift apart and split the cache.  The fit is deterministic, so a hit
    returns coefficients identical to recomputing.  Returns
    ``(fit, from_cache)``.
    """
    from .stats import increment

    fit = result_cache.get(fit_key) if fit_key is not None else None
    if fit is not None:
        increment("calibration_fit_hits")
        return fit, True
    if fit_key is not None:
        increment("calibration_fit_misses")
    fit = compute()
    if fit_key is not None:
        result_cache.put(fit_key, fit)
    return fit, False


def cached_solve(model: Any, stack: Any, via: Any, power: Any) -> Any:
    """``model.solve(...)`` through the global result cache."""
    key = solve_key(model, stack, via, power)
    if key is None:
        return model.solve(stack, via, power)
    result = result_cache.get(key)
    if result is None:
        result = model.solve(stack, via, power)
        result_cache.put(key, result)
    return result
