"""Retry policies, captured task failures, and per-node deadlines.

The fault-tolerant execute path treats failures as *results*: a worker
exception becomes a picklable :class:`TaskFailure` that flows back
through the executor stream instead of unwinding it, the scheduler
retries transient failures under a :class:`RetryPolicy`, and whatever
exhausts its attempts is quarantined as a :class:`NodeFailure` in the
run's failure ledger while the rest of the plan completes.

Transience is a *class* property: worker crashes, timeouts, solver
failures and OS-level hiccups are worth retrying (the work itself is
deterministic, so the failure came from the environment — a dead worker,
an injected fault, a poisoned cache entry); validation errors are
configuration mistakes and propagate immediately (see
:data:`PROPAGATE_TYPES`); everything else fails fast into the ledger
without retries.

Deadlines use ``SIGALRM`` (this is a POSIX-only feature; on a non-main
thread — where signals cannot be delivered — the deadline degrades to
unbounded execution rather than failing).  Pool workers run tasks on
their main thread, so per-node timeouts hold under parallel dispatch.
"""

from __future__ import annotations

import hashlib
import signal
import threading
import traceback
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

from ..errors import (
    LeaseLostError,
    NodeTimeoutError,
    SolverError,
    ValidationError,
    WorkerCrashError,
)

__all__ = [
    "DEFAULT_RETRY",
    "NodeFailure",
    "PROPAGATE_TYPES",
    "RetryPolicy",
    "TaskFailure",
    "TRANSIENT_TYPES",
    "failure_from_exception",
    "node_deadline",
]

#: exception classes worth retrying: environmental, not definitional
TRANSIENT_TYPES = (
    SolverError,
    WorkerCrashError,
    NodeTimeoutError,
    LeaseLostError,
    TimeoutError,
    OSError,
    MemoryError,
)

#: exception classes that must unwind the scheduler instead of being
#: captured: a bad spec/geometry is a caller mistake, and quarantining it
#: would hide the diagnostic behind a partial-result report
PROPAGATE_TYPES = (ValidationError,)


@dataclass(frozen=True)
class TaskFailure:
    """One failed task dispatch, as a picklable stream result.

    ``traceback_digest`` is a short stable hash of the traceback text
    (two failures with the same digest died the same way);
    ``traceback_tail`` keeps the last lines for human diagnosis without
    shipping whole frames across the process boundary.
    """

    error_class: str
    message: str
    traceback_digest: str
    traceback_tail: str
    transient: bool

    def summary(self) -> str:
        return f"{self.error_class}: {self.message}"


def failure_from_exception(exc: BaseException) -> TaskFailure:
    """Capture ``exc`` as a :class:`TaskFailure` (never raises)."""
    tb_text = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )
    tail = "\n".join(tb_text.strip().splitlines()[-6:])
    return TaskFailure(
        error_class=type(exc).__name__,
        message=str(exc),
        traceback_digest=hashlib.blake2b(
            tb_text.encode(), digest_size=6
        ).hexdigest(),
        traceback_tail=tail,
        transient=isinstance(exc, TRANSIENT_TYPES),
    )


@dataclass(frozen=True)
class NodeFailure:
    """A quarantined plan node: the failure-ledger record.

    Written to the :class:`~repro.scenarios.store.RunStore`'s
    ``failures/`` space and surfaced on
    :class:`~repro.scenarios.runner.ScenarioRun` objects; the CLI renders
    these as the nonzero-exit failure table.
    """

    key: str
    kind: str  # the plan node kind: solve / transient / nonlinear / ...
    error_class: str
    message: str
    traceback_digest: str
    attempts: int

    def to_payload(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "kind": self.kind,
            "error_class": self.error_class,
            "message": self.message,
            "traceback_digest": self.traceback_digest,
            "attempts": self.attempts,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> NodeFailure:
        return cls(
            key=payload["key"],
            kind=payload["kind"],
            error_class=payload["error_class"],
            message=payload["message"],
            traceback_digest=payload.get("traceback_digest", ""),
            attempts=int(payload.get("attempts", 0)),
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Per-node retry budget, backoff shape and wall-clock timeout.

    ``max_attempts`` counts dispatches (1 = no retries).  Backoff is
    exponential from ``backoff_s`` with *deterministic* jitter — a hash
    of (node key, attempt) spreads retries over [1, 1.25)× the base delay
    without introducing run-to-run nondeterminism.  ``node_timeout_s``
    bounds one node's solve wall-clock (scaled by member count for matrix
    groups, which legitimately do many nodes' work in one dispatch).
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0
    node_timeout_s: float | None = None
    #: store-wide crash count at which a node is forced to solo dispatch
    #: (it stops riding in matrix groups / stacked batches fleet-wide)
    poison_solo_after: int = 2
    #: store-wide crash count at which a node is quarantined outright,
    #: before every worker burns its own pool-rebuild budget on it
    poison_quarantine_after: int = 4

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.poison_solo_after < 1 or self.poison_quarantine_after < 1:
            raise ValidationError("poison thresholds must be >= 1")
        if self.poison_quarantine_after < self.poison_solo_after:
            raise ValidationError(
                "poison_quarantine_after must be >= poison_solo_after "
                f"(got {self.poison_quarantine_after} < {self.poison_solo_after})"
            )
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValidationError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValidationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.node_timeout_s is not None and self.node_timeout_s <= 0:
            raise ValidationError(
                f"node_timeout_s must be > 0, got {self.node_timeout_s}"
            )

    def delay_s(self, attempt: int, key: str) -> float:
        """Backoff before retry number ``attempt`` (1-based) of ``key``."""
        base = min(
            self.backoff_s * self.backoff_factor ** max(0, attempt - 1),
            self.max_backoff_s,
        )
        digest = hashlib.blake2b(
            f"{key}|{attempt}".encode(), digest_size=2
        ).digest()
        jitter = int.from_bytes(digest, "big") / float(1 << 16)  # [0, 1)
        return base * (1.0 + 0.25 * jitter)


#: the default policy for plan execution: two retries, no timeout
DEFAULT_RETRY = RetryPolicy()


@contextmanager
def node_deadline(timeout_s: float | None):
    """Bound the enclosed block to ``timeout_s`` wall-clock seconds.

    Raises :class:`~repro.errors.NodeTimeoutError` on expiry.  A no-op
    when ``timeout_s`` is None/0 or when not on the main thread (SIGALRM
    cannot be delivered elsewhere); nesting restores the outer timer.
    """
    if not timeout_s or threading.current_thread() is not threading.main_thread():
        yield
        return

    def _expired(signum, frame):
        raise NodeTimeoutError(
            f"node exceeded its {timeout_s:g}s wall-clock budget"
        )

    previous_handler = signal.signal(signal.SIGALRM, _expired)
    previous_timer, _ = signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, previous_timer)
        signal.signal(signal.SIGALRM, previous_handler)
