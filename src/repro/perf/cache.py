"""Size-bounded caches: LRU store, content hashing and factorization reuse.

Three process-wide caches back the sweep engine:

* :data:`assembly_cache` — voxelisation grids keyed on geometry content
  (:func:`repro.fem.voxelize.build_axisym_grids` et al.);
* :data:`result_cache` — full :class:`~repro.core.result.ModelResult`
  objects keyed on (model, stack, via, power) content;
* :data:`factor_cache` — SuperLU / LAPACK factorizations keyed on the
  matrix bytes, so repeated solves against an identical matrix (transient
  stepping, duplicated sweep points) skip the factorisation.

All caches expose hit/miss/eviction counters through
:func:`repro.perf.stats`, and :func:`configure` resizes (or disables,
with size 0) each of them at runtime.
"""

from __future__ import annotations

import hashlib
import pickle
import warnings
from collections import OrderedDict
from collections.abc import Callable
from threading import Lock
from typing import Any

import numpy as np
import scipy.linalg as la
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from . import stats as _stats

#: defaults, overridable via :func:`configure`
DEFAULT_ASSEMBLY_CACHE_SIZE = 32
DEFAULT_RESULT_CACHE_SIZE = 256
DEFAULT_FACTOR_CACHE_SIZE = 16
#: factors of systems larger than this are computed but never cached
#: (3-D fill-in makes huge factors memory-expensive; see FactorizationCache)
DEFAULT_FACTOR_CACHE_MAX_UNKNOWNS = 50_000


class LRUCache:
    """A thread-safe least-recently-used cache with stats counters.

    ``maxsize == 0`` disables the cache entirely: every ``get`` misses and
    ``put`` is a no-op, so call sites never need to special-case it.
    """

    def __init__(self, name: str, maxsize: int) -> None:
        self.name = name
        self.maxsize = int(maxsize)
        self._data: OrderedDict[Any, Any] = OrderedDict()
        self._lock = Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        _stats.register_provider(name, self.stats)

    def get(self, key: Any, default: Any = None) -> Any:
        with self._lock:
            if self.maxsize and key in self._data:
                self.hits += 1
                self._data.move_to_end(key)
                return self._data[key]
            self.misses += 1
            return default

    def put(self, key: Any, value: Any) -> None:
        with self._lock:
            if not self.maxsize:
                return
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = self.misses = self.evictions = 0

    def resize(self, maxsize: int) -> None:
        with self._lock:
            self.maxsize = int(maxsize)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._data),
                "maxsize": self.maxsize,
                "hit_rate": self.hits / total if total else 0.0,
            }


def content_key(*parts: Any) -> str | None:
    """Stable digest of arbitrary (picklable) values, or None if unhashable.

    Geometry objects are frozen dataclasses of floats/tuples, so their
    pickle bytes are deterministic within a process; the blake2b digest of
    those bytes keys the assembly/result caches.  Anything unpicklable
    (open handles, closures) returns ``None`` and the caller skips caching.
    """
    try:
        payload = pickle.dumps(parts, protocol=4)
    except Exception:
        return None
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


def matrix_fingerprint(matrix: Any) -> bytes:
    """Digest of a matrix's exact content (shape, sparsity and values)."""
    h = hashlib.blake2b(digest_size=16)
    if sp.issparse(matrix):
        csr = matrix.tocsr()
        h.update(b"csr")
        h.update(np.asarray(csr.shape, dtype=np.int64).tobytes())
        h.update(csr.indptr.tobytes())
        h.update(csr.indices.tobytes())
        h.update(csr.data.tobytes())
    else:
        arr = np.ascontiguousarray(matrix)
        h.update(b"dense")
        h.update(np.asarray(arr.shape, dtype=np.int64).tobytes())
        h.update(arr.tobytes())
    return h.digest()


class FactorizationCache(LRUCache):
    """LRU of reusable matrix factorizations keyed on matrix content.

    :meth:`solver` hands back a ``solve(rhs) -> x`` callable: SuperLU for
    sparse matrices, a LAPACK LU for dense ones.  A cache hit skips the
    factorisation entirely — only the triangular solves remain, which is
    where transient stepping and repeated sweep points win big.

    Matrices larger than ``max_unknowns`` are factorised but *not* stored:
    a huge 3-D factor (with fill-in) can run to hundreds of MB, and a cold
    sweep of unique matrices would pin ``maxsize`` of them for zero hits.
    Callers that reuse one factor across many right-hand sides
    (:func:`repro.network.solve.factorized_solver`) hold the returned
    callable themselves, so they are unaffected by the cap.

    Factorisation is deterministic, so results are identical whether the
    factor came from the cache or was computed fresh.

    Sparse factors can request a specific SuperLU column ordering via
    ``permc_spec`` (the stacked FEM tier needs ``"NATURAL"`` for its
    batch-size-invariance guarantee); the ordering is part of the cache
    key, so a NATURAL factor never masquerades as a COLAMD one.  Dense
    matrices ignore the ordering (LAPACK LU has no analogue).
    """

    def __init__(
        self,
        name: str,
        maxsize: int,
        *,
        max_unknowns: int = DEFAULT_FACTOR_CACHE_MAX_UNKNOWNS,
    ) -> None:
        super().__init__(name, maxsize)
        self.max_unknowns = int(max_unknowns)

    def solver(
        self, matrix: Any, permc_spec: str | None = None
    ) -> Callable[[np.ndarray], np.ndarray]:
        if matrix.shape[0] > self.max_unknowns:
            return self._factorize(matrix, permc_spec)
        key = (matrix_fingerprint(matrix), permc_spec)
        cached = self.get(key)
        if cached is not None:
            return cached
        solve = self._factorize(matrix, permc_spec)
        self.put(key, solve)
        return solve

    @staticmethod
    def _factorize(
        matrix: Any, permc_spec: str | None = None
    ) -> Callable[[np.ndarray], np.ndarray]:
        if sp.issparse(matrix):
            lu = spla.splu(matrix.tocsc(), permc_spec=permc_spec)
            return lu.solve
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", la.LinAlgWarning)
            lu, piv = la.lu_factor(np.asarray(matrix, dtype=float))
        if np.any(np.diag(lu) == 0.0):
            # LAPACK getrf only warns on exact singularity; raise the same
            # RuntimeError SuperLU uses so callers translate it uniformly
            # (and the junk factor is never cached)
            raise RuntimeError("dense factorization is exactly singular")

        def solve(rhs: np.ndarray) -> np.ndarray:
            return la.lu_solve((lu, piv), rhs)

        return solve


#: process-wide cache instances (importable singletons)
assembly_cache = LRUCache("assembly_cache", DEFAULT_ASSEMBLY_CACHE_SIZE)
result_cache = LRUCache("result_cache", DEFAULT_RESULT_CACHE_SIZE)
factor_cache = FactorizationCache("factor_cache", DEFAULT_FACTOR_CACHE_SIZE)


def configure(
    *,
    assembly_cache_size: int | None = None,
    result_cache_size: int | None = None,
    factor_cache_size: int | None = None,
    factor_cache_max_unknowns: int | None = None,
) -> None:
    """Resize the global caches; a size of 0 disables that cache."""
    if assembly_cache_size is not None:
        assembly_cache.resize(assembly_cache_size)
    if result_cache_size is not None:
        result_cache.resize(result_cache_size)
    if factor_cache_size is not None:
        factor_cache.resize(factor_cache_size)
    if factor_cache_max_unknowns is not None:
        factor_cache.max_unknowns = int(factor_cache_max_unknowns)


def reset() -> None:
    """Empty every cache and zero every counter (cold-start state)."""
    assembly_cache.clear()
    result_cache.clear()
    factor_cache.clear()
    _stats.reset_counters()
