"""Performance subsystem: executors, caches, counters and benchmarks.

Public surface:

* :func:`stats` / :func:`reset` — hit/miss counters for every cache plus
  free-standing counters (e.g. CG→direct fallbacks), and the cold-start
  reset the benchmark harness uses between measurements;
* :func:`configure` — resize or disable the assembly/result/factor caches;
* :class:`SerialExecutor` / :class:`ParallelExecutor` /
  :func:`get_executor` — the sweep execution strategies behind ``--jobs``;
* :class:`PointTask` / :class:`MatrixGroupTask` / :class:`StackedBatchTask`
  — the three dispatch shapes: per-point solves, matrix groups (one
  model, one geometry, many right-hand sides) and stacked batches (many
  congruent systems in one batched dense solve);
* :func:`cached_solve` — a model solve through the global result cache;
* :func:`calibration_key` / :func:`calibration_fit_key` — the shared
  identity of a coefficient fit (plan node key and fit-cache key);
* :class:`FactorizationCache` — reusable matrix factorizations.

The benchmark-regression harness lives in :mod:`repro.perf.bench` and is
reachable as ``python -m repro bench``.
"""

from .cache import (
    FactorizationCache,
    LRUCache,
    assembly_cache,
    configure,
    content_key,
    factor_cache,
    matrix_fingerprint,
    reset,
    result_cache,
)
from .executors import (
    MatrixGroupTask,
    ParallelExecutor,
    PointTask,
    SerialExecutor,
    StackedBatchTask,
    SweepExecutor,
    SweepTask,
    get_executor,
    solve_task,
    solve_work,
)
from .memo import (
    cached_solve,
    calibration_fit_key,
    calibration_key,
    model_key,
    solve_key,
)
from .retry import (
    DEFAULT_RETRY,
    NodeFailure,
    RetryPolicy,
    TaskFailure,
    failure_from_exception,
    node_deadline,
)
from .stats import counter, increment, stats

__all__ = [
    "DEFAULT_RETRY",
    "FactorizationCache",
    "LRUCache",
    "MatrixGroupTask",
    "NodeFailure",
    "ParallelExecutor",
    "PointTask",
    "RetryPolicy",
    "SerialExecutor",
    "StackedBatchTask",
    "SweepExecutor",
    "SweepTask",
    "TaskFailure",
    "assembly_cache",
    "cached_solve",
    "calibration_fit_key",
    "calibration_key",
    "configure",
    "content_key",
    "counter",
    "factor_cache",
    "failure_from_exception",
    "get_executor",
    "node_deadline",
    "increment",
    "matrix_fingerprint",
    "model_key",
    "reset",
    "result_cache",
    "solve_key",
    "solve_task",
    "solve_work",
    "stats",
]
