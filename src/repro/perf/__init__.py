"""Performance subsystem: executors, caches, counters and benchmarks.

Public surface:

* :func:`stats` / :func:`reset` — hit/miss counters for every cache plus
  free-standing counters (e.g. CG→direct fallbacks), and the cold-start
  reset the benchmark harness uses between measurements;
* :func:`configure` — resize or disable the assembly/result/factor caches;
* :class:`SerialExecutor` / :class:`ParallelExecutor` /
  :func:`get_executor` — the sweep execution strategies behind ``--jobs``;
* :func:`cached_solve` — a model solve through the global result cache;
* :class:`FactorizationCache` — reusable matrix factorizations.

The benchmark-regression harness lives in :mod:`repro.perf.bench` and is
reachable as ``python -m repro bench``.
"""

from .cache import (
    FactorizationCache,
    LRUCache,
    assembly_cache,
    configure,
    content_key,
    factor_cache,
    matrix_fingerprint,
    reset,
    result_cache,
)
from .executors import (
    ParallelExecutor,
    PointTask,
    SerialExecutor,
    SweepExecutor,
    get_executor,
    solve_task,
)
from .memo import cached_solve, model_key, solve_key
from .stats import counter, increment, stats

__all__ = [
    "FactorizationCache",
    "LRUCache",
    "ParallelExecutor",
    "PointTask",
    "SerialExecutor",
    "SweepExecutor",
    "assembly_cache",
    "cached_solve",
    "configure",
    "content_key",
    "counter",
    "factor_cache",
    "get_executor",
    "increment",
    "matrix_fingerprint",
    "model_key",
    "reset",
    "result_cache",
    "solve_key",
    "solve_task",
    "stats",
]
