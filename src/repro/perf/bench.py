"""Benchmark-regression harness (``python -m repro bench``).

Times the performance-critical paths of the library — the Fig. 7 cluster
sweep (serial cold / parallel cold / cache-warm), transient stepping with
and without factorization reuse, repeated FEM solves through the
assembly/factor caches, and the fleet/sharded-store distributed-execution
tier — then writes a ``BENCH_<date>.json`` trajectory
point (machine info, per-benchmark medians, speedups, cache hit rates) and
compares it against the most recent previous ``BENCH_*.json``, failing on
regressions beyond a configurable tolerance.

Quick mode (the CI gate, ``benchmarks/run_bench.sh``) runs the same
scenarios with fewer repeats, so quick and full reports stay comparable.
The pytest-benchmark suite under ``benchmarks/`` can additionally be run
and embedded with ``--pytest-suite``.

A note on parallel speedup: :class:`~repro.perf.ParallelExecutor` only
pays off with >1 CPU.  On single-CPU machines the recorded
``fig7_parallel_vs_serial`` ratio is honestly below 1 (pure pool
overhead) and the ≥3× win comes from the cache-amortized path
(``fig7_warm_vs_serial``) — repeated sweeps under multi-scenario traffic.
The report records both, plus ``cpu_count`` so readers can tell which
regime produced it.
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Callable

from . import cache as perf_cache
from .stats import stats as stats_snapshot

SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# timing helpers
# ---------------------------------------------------------------------------
def _time(fn: Callable[[], Any], repeats: int) -> tuple[float, list[float], Any]:
    """(median seconds, all times, last return value) of ``repeats`` runs."""
    times: list[float] = []
    value: Any = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times), times, value


def _entry(median: float, times: list[float], **extra: Any) -> dict[str, Any]:
    # min_s is what the regression gate compares: the minimum of N runs is
    # far more robust to background load than the median on small samples
    return {"median_s": median, "min_s": min(times), "times_s": times, **extra}


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------
def _series_identical(a: Any, b: Any) -> bool:
    """Exact (bitwise float) equality of two experiment results' series."""
    if a.series.keys() != b.series.keys():
        return False
    if any(a.series[name] != b.series[name] for name in a.series):
        return False
    pa, pb = a.sweep_result.points, b.sweep_result.points
    return all(
        ra.results[name].plane_rises == rb.results[name].plane_rises
        for ra, rb in zip(pa, pb)
        for name in ra.results
    )


def bench_fig7_sweep(jobs: int, repeats: int) -> dict[str, Any]:
    """The Fig. 7 cluster sweep: serial cold, parallel cold, cache-warm."""
    from ..experiments import fig7_cluster

    def run(n_jobs: int = 1):
        return fig7_cluster.run(fem_resolution="medium", fast=False, jobs=n_jobs)

    def cold(n_jobs: int = 1):
        perf_cache.reset()
        return run(n_jobs)

    serial_median, serial_times, serial_result = _time(cold, repeats)
    parallel_median, parallel_times, parallel_result = _time(
        lambda: cold(jobs), repeats
    )
    perf_cache.reset()
    run()  # prime every cache for the warm measurement
    warm_median, warm_times, warm_result = _time(run, repeats)
    cache_stats = stats_snapshot()  # hit rates of the warm-sweep scenario
    identical = _series_identical(serial_result, parallel_result) and (
        _series_identical(serial_result, warm_result)
    )
    return {
        "cache_stats": cache_stats,
        "benchmarks": {
            "fig7_cluster_sweep_serial_cold": _entry(serial_median, serial_times),
            "fig7_cluster_sweep_parallel_cold": _entry(
                parallel_median, parallel_times, jobs=jobs, noisy=True
            ),
            "fig7_cluster_sweep_warm": _entry(warm_median, warm_times),
        },
        "speedups": {
            "fig7_parallel_vs_serial": serial_median / parallel_median,
            "fig7_warm_vs_serial": serial_median / warm_median,
            "fig7_best_vs_serial": serial_median / min(parallel_median, warm_median),
        },
        "checks": {"fig7_parallel_identical": identical},
    }


def _ladder(n: int):
    from ..network import GROUND, ThermalCircuit

    circuit = ThermalCircuit()
    prev: Any = GROUND
    for i in range(n):
        circuit.add_resistor(prev, i, 1.0)
        circuit.add_source(i, 0.01)
        circuit.add_capacitor(i, 2e-3)
        prev = i
    return circuit


def _transient_per_step_baseline(circuit, t_end: float, n_steps: int) -> None:
    """The pre-reuse transient loop: one full solve per step (seed code)."""
    import numpy as np
    import scipy.sparse as sp

    from ..network.solve import solve_linear_system
    from ..network.transient import capacitance_vector

    g = circuit.conductance_matrix(sparse=True)
    q = circuit.source_vector()
    c = capacitance_vector(circuit)
    dt = t_end / n_steps
    lhs = (g + sp.diags(c / dt)).tocsr()
    current = np.zeros(circuit.n_nodes)
    for _ in range(n_steps):
        current = solve_linear_system(lhs, q + (c / dt) * current)


def bench_transient(repeats: int, *, n_nodes: int = 1500, n_steps: int = 120) -> dict[str, Any]:
    """Backward-Euler stepping: per-step solves vs one factorization."""
    from ..network.transient import step_response

    circuit = _ladder(n_nodes)
    t_end = 1.0

    def baseline():
        # disable factor reuse so every step pays the full factorization,
        # reproducing the seed behaviour
        perf_cache.configure(factor_cache_size=0)
        try:
            _transient_per_step_baseline(circuit, t_end, n_steps)
        finally:
            perf_cache.configure(
                factor_cache_size=perf_cache.DEFAULT_FACTOR_CACHE_SIZE
            )

    def reuse():
        perf_cache.factor_cache.clear()
        return step_response(circuit, t_end=t_end, n_steps=n_steps)

    base_median, base_times, _ = _time(baseline, repeats)
    reuse_median, reuse_times, _ = _time(reuse, repeats)
    return {
        "benchmarks": {
            "transient_per_step_solve": _entry(
                base_median, base_times, n_nodes=n_nodes, n_steps=n_steps
            ),
            "transient_factor_reuse": _entry(
                reuse_median, reuse_times, n_nodes=n_nodes, n_steps=n_steps
            ),
        },
        "speedups": {"transient_factor_reuse": base_median / reuse_median},
        "checks": {},
    }


def bench_fem_reuse(repeats: int) -> dict[str, Any]:
    """One FEM solve, cold caches vs warm assembly/factor caches."""
    from ..experiments.params import fig5_config
    from ..fem import FEMReference

    cfg = fig5_config(1.0)
    model = FEMReference("medium")

    def cold():
        perf_cache.reset()
        return model.solve(cfg.stack, cfg.via, cfg.power)

    def warm():
        return model.solve(cfg.stack, cfg.via, cfg.power)

    cold_median, cold_times, _ = _time(cold, repeats)
    warm()  # prime
    warm_median, warm_times, _ = _time(warm, repeats)
    return {
        "benchmarks": {
            "fem_solve_cold": _entry(cold_median, cold_times),
            "fem_solve_warm": _entry(warm_median, warm_times),
        },
        "speedups": {"fem_warm_vs_cold": cold_median / warm_median},
        "checks": {},
    }


def bench_batch_dedup(repeats: int) -> dict[str, Any]:
    """Cross-scenario dedup: a two-scenario batch with shared calibration.

    Both scenarios sweep the same axis against the same FEM reference with
    the same calibration policy and differ only in their model lists, so
    the reference solves, the coefficient fit and the calibrated-model
    solves are all shared.  The eager baseline runs them one at a time;
    the planned path compiles them into one merged graph and solves each
    shared node exactly once.  The result cache is disabled for both
    measurements — it would amortise the shared solves in-process and
    hide the *structural* dedup this benchmark isolates (the regime that
    matters under cache pressure and across processes).
    """
    from ..scenarios import AxisSpec, ScenarioSpec, run_batch
    from ..scenarios.runner import _run_scenario_eager

    def specs() -> list[ScenarioSpec]:
        base: dict[str, Any] = {
            "axis": AxisSpec(parameter="radius_um", values=(2.0, 5.0, 10.0)),
            "reference": "fem:coarse",
            "calibrate": True,
            "calibration_samples": 3,
        }
        return [
            ScenarioSpec(
                scenario_id="bench_dedup_a", title="Bench dedup A",
                models=("1d",), **base,
            ),
            ScenarioSpec(
                scenario_id="bench_dedup_b", title="Bench dedup B",
                models=("a:paper",), **base,
            ),
        ]

    def eager():
        perf_cache.reset()
        return [_run_scenario_eager(s) for s in specs()]

    def planned():
        perf_cache.reset()
        return run_batch(specs())

    perf_cache.configure(result_cache_size=0)
    try:
        eager_median, eager_times, eager_runs = _time(eager, repeats)
        planned_median, planned_times, batch = _time(planned, repeats)
    finally:
        perf_cache.configure(
            result_cache_size=perf_cache.DEFAULT_RESULT_CACHE_SIZE
        )
    point_solves = stats_snapshot()["counters"].get("plan_point_solves", 0)
    identical = all(
        run.result.series == eager_run.result.series
        and run.result.errors == eager_run.result.errors
        for run, eager_run in zip(batch.runs, eager_runs)
    )
    return {
        "benchmarks": {
            "batch_dedup_eager": _entry(eager_median, eager_times),
            "batch_dedup_planned": _entry(
                planned_median,
                planned_times,
                nodes_total=batch.stats["nodes_total"],
                nodes_deduped=batch.stats["nodes_deduped"],
            ),
        },
        "speedups": {
            "batch_dedup_planned_vs_eager": eager_median / planned_median,
        },
        "checks": {
            "batch_dedup_identical": identical,
            "batch_dedup_shared_nodes_merged": batch.stats["nodes_deduped"] > 0,
            # the last planned repeat starts from reset counters, so the
            # counter equals that run's unique solve-node count exactly
            "batch_dedup_each_node_once": (
                point_solves == batch.stats["solve_nodes"]
            ),
        },
    }


def _multi_rhs_plan(k: int = 48):
    """A shared-matrix execution plan: one FEM model, ``k`` power points.

    Every node assembles the identical system (the power only shapes the
    RHS), so grouped dispatch solves the whole plan as one matrix group.
    This is the distilled shape of power sweeps / calibration batches
    under multi-scenario traffic.  The coarse FEM preset is the same
    reference the fast/CI scenario runs use.
    """
    from ..experiments.params import fig5_config
    from ..fem import FEMReference
    from ..scenarios.plan import ExecutionPlan, SolveNode
    from .memo import solve_key

    cfg = fig5_config(1.0)
    model = FEMReference("coarse")
    assembly = model.assembly_key(cfg.stack, cfg.via)
    plan = ExecutionPlan()
    for i in range(k):
        power = cfg.power.scaled(0.5 + 0.025 * i)
        plan.add(
            SolveNode(
                key=solve_key(model, cfg.stack, cfg.via, power),
                value=None,
                stack=cfg.stack,
                via=cfg.via,
                power=power,
                model_name=model.name,
                model=model,
                assembly_key=assembly,
            )
        )
    return plan


def _outcomes_identical(a: Any, b: Any) -> bool:
    """Exact (bitwise float) equality of two schedule outcomes' results."""
    if a.results.keys() != b.results.keys():
        return False
    return all(
        a.results[key].max_rise == b.results[key].max_rise
        and a.results[key].plane_rises == b.results[key].plane_rises
        for key in a.results
    )


def bench_multi_rhs(jobs: int, repeats: int) -> dict[str, Any]:
    """Matrix-batched dispatch of a shared-matrix sweep vs per-point solves.

    ``multi_rhs_per_point`` executes the plan with grouping disabled (the
    pre-batching scheduler: one voxelise + assemble + fingerprint +
    back-substitution per point, factorization amortised by the factor
    cache); ``multi_rhs_batched`` dispatches the same plan as one matrix
    group (voxelise/assemble/factor once, one back-substitution per
    point).  ``parallel_{point,group}_dispatch`` repeat the contrast under
    process-pool dispatch: the executor splits the group into per-worker
    RHS sub-blocks (one factorization per worker, shared payload shipped
    once per sub-block), while per-point tasks re-ship the geometry with
    every point — the reason grouped dispatch recovers the pickling/IPC
    overhead.  All four paths are bit-identical
    (``checks.multi_rhs_identical`` / ``checks.parallel_group_identical``).
    """
    from ..scenarios.scheduler import execute_plan
    from .executors import ParallelExecutor

    plan = _multi_rhs_plan()

    def run(executor=None, group: bool = True):
        perf_cache.reset()
        return execute_plan(plan, executor=executor, group_matrices=group)

    point_median, point_times, point_out = _time(lambda: run(group=False), repeats)
    batch_median, batch_times, batch_out = _time(lambda: run(group=True), repeats)
    par_point_median, par_point_times, par_point_out = _time(
        lambda: run(ParallelExecutor(jobs), group=False), repeats
    )
    par_group_median, par_group_times, par_group_out = _time(
        lambda: run(ParallelExecutor(jobs), group=True), repeats
    )
    n_points = len(plan.nodes)
    return {
        "benchmarks": {
            "multi_rhs_per_point": _entry(point_median, point_times, points=n_points),
            "multi_rhs_batched": _entry(batch_median, batch_times, points=n_points),
            "parallel_point_dispatch": _entry(
                par_point_median, par_point_times, jobs=jobs, points=n_points,
                noisy=True,
            ),
            "parallel_group_dispatch": _entry(
                par_group_median, par_group_times, jobs=jobs, points=n_points,
                noisy=True,
            ),
        },
        "speedups": {
            "multi_rhs_batched_vs_per_point": point_median / batch_median,
            "parallel_group_vs_point_dispatch": (
                par_point_median / par_group_median
            ),
        },
        "checks": {
            "multi_rhs_identical": _outcomes_identical(point_out, batch_out),
            "parallel_group_identical": (
                _outcomes_identical(batch_out, par_group_out)
                and _outcomes_identical(par_point_out, par_group_out)
            ),
            # same-run ratios are immune to machine-load drift between a
            # committed baseline and a CI run, so they gate the batching
            # wins far more robustly than absolute wall-clock comparisons
            "multi_rhs_batched_wins": point_median / batch_median >= 2.0,
            "parallel_group_dispatch_wins": (
                par_point_median / par_group_median >= 1.5
            ),
        },
    }


def _stacked_plan(k: int = 1000):
    """A structurally congruent Model A geometry sweep: ``k`` liner points.

    Every point assembles a *different* conductance matrix (the liner
    resistance changes with the swept thickness), so the multi-RHS plane
    cannot group them; all of them share Model A's ``batch_class_key``, so
    the stacked tier rides the whole sweep in one batched dense solve.
    This is the distilled shape of Fig. 4/5-style geometry sweeps.
    """
    from ..core.model_a import ModelA
    from ..experiments.params import fig5_config
    from ..scenarios.plan import ExecutionPlan, SolveNode
    from .memo import solve_key

    cfg = fig5_config(1.0)
    model = ModelA()
    plan = ExecutionPlan()
    for i in range(k):
        via = cfg.via.with_liner_thickness(0.5e-6 + 2e-9 * i)
        plan.add(
            SolveNode(
                key=solve_key(model, cfg.stack, via, cfg.power),
                value=None,
                stack=cfg.stack,
                via=via,
                power=cfg.power,
                model_name=model.name,
                model=model,
                assembly_key=model.assembly_key(cfg.stack, via),
            )
        )
    return plan


def bench_stacked(repeats: int) -> dict[str, Any]:
    """Cross-matrix stacked dispatch of a geometry sweep vs per-point solves.

    ``stacked_per_point`` executes the plan with stacking disabled (the
    pre-PR-7 scheduler: one content-key + assemble + LU solve per point);
    ``stacked_vs_per_point`` dispatches the same plan as stacked batches —
    one ``numpy.linalg.solve`` over the whole (k, n, n) stack.  The paths
    are bit-identical (``checks.stacked_identical``), and the same-run
    ratio gates the win (``checks.stacked_batched_wins``) immune to
    machine-load drift.
    """
    from ..scenarios.scheduler import execute_plan

    plan = _stacked_plan()

    def run(stack_batches: bool):
        perf_cache.reset()
        return execute_plan(plan, stack_batches=stack_batches)

    point_median, point_times, point_out = _time(lambda: run(False), repeats)
    stack_median, stack_times, stack_out = _time(lambda: run(True), repeats)
    n_points = len(plan.nodes)
    return {
        "benchmarks": {
            "stacked_per_point": _entry(point_median, point_times, points=n_points),
            "stacked_vs_per_point": _entry(
                stack_median, stack_times, points=n_points
            ),
        },
        "speedups": {
            "stacked_batched_vs_per_point": point_median / stack_median,
        },
        "checks": {
            "stacked_identical": _outcomes_identical(point_out, stack_out),
            "stacked_batched_wins": point_median / stack_median >= 3.0,
        },
    }


def _nonlinear_payloads_match(a: dict[str, Any], b: dict[str, Any]) -> bool:
    """Bitwise equality of two nonlinear payloads' deterministic content.

    Everything except the wall-clock ``solve_time`` inside the wrapped
    model payloads must match exactly.
    """
    if a["series"] != b["series"] or a["x_values"] != b["x_values"]:
        return False
    if a["results"].keys() != b["results"].keys():
        return False
    for name in a["results"]:
        if len(a["results"][name]) != len(b["results"][name]):
            return False
        for ra, rb in zip(a["results"][name], b["results"][name]):
            if ra["history"] != rb["history"] or ra["iterations"] != rb["iterations"]:
                return False
            if ra["result"]["max_rise"] != rb["result"]["max_rise"]:
                return False
            if ra["result"]["plane_rises"] != rb["result"]["plane_rises"]:
                return False
    return True


def bench_physics(repeats: int) -> dict[str, Any]:
    """The physics kinds through the plan: transient cold/resume + nonlinear.

    ``transient_planned_cold`` runs the builtin ``transient_spike``
    scenario from cold caches through the full spec → plan → scheduler
    path; ``transient_planned_resume`` re-runs it against a point store
    populated by a prior run whose run-level artifact was removed
    (simulating a batch killed after its last point but before assembly)
    — the plan recompiles and every trajectory must come back from
    ``points/<key>.json`` without solving; ``nonlinear_planned`` runs the
    builtin ``nonlinear_hotspot`` cold.  The structural checks carry the
    guarantees: planned payloads bit-identical to direct
    ``step_response`` / ``NonlinearSolver`` library calls, one
    factorization per trajectory (never one per backward-Euler step — the
    PR-1 transient factor-reuse win carried into the planned path), and a
    resume that re-solves nothing.
    """
    import shutil

    from ..scenarios import SCENARIOS, RunStore, run_scenario
    from ..scenarios.physics import (
        run_nonlinear_spec_direct,
        run_transient_spec_direct,
    )
    from .stats import counter

    t_spec = SCENARIOS.get("transient_spike").resolved()
    n_spec = SCENARIOS.get("nonlinear_hotspot").resolved()
    n_trajectories = len(t_spec.axis.values) * len(t_spec.models)

    def t_cold():
        perf_cache.reset()
        return run_scenario(t_spec)

    cold_median, cold_times, cold_run = _time(t_cold, repeats)
    factor_misses = stats_snapshot()["caches"]["factor_cache"]["misses"]
    t_direct = run_transient_spec_direct(t_spec)

    store_dir = Path(tempfile.mkdtemp(prefix="bench_physics_store_"))
    try:
        store = RunStore(store_dir)
        perf_cache.reset()
        run_scenario(t_spec, store=store)  # populate points/<key>.json
        run_object = RunStore._sharded_path(store.objects, t_spec.content_hash())

        def t_resume():
            perf_cache.reset()
            run_object.unlink(missing_ok=True)  # keep only the point space
            return run_scenario(t_spec, store=store, resume=True)

        resume_median, resume_times, resume_run = _time(t_resume, repeats)
        resume_solves = counter("plan_point_solves")
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    def n_cold():
        perf_cache.reset()
        return run_scenario(n_spec)

    nl_median, nl_times, nl_run = _time(n_cold, repeats)
    n_direct = run_nonlinear_spec_direct(n_spec)
    return {
        "benchmarks": {
            "transient_planned_cold": _entry(
                cold_median, cold_times, trajectories=n_trajectories
            ),
            "transient_planned_resume": _entry(
                resume_median, resume_times, trajectories=n_trajectories
            ),
            "nonlinear_planned": _entry(
                nl_median, nl_times, points=len(n_spec.axis.values)
            ),
        },
        "speedups": {
            "transient_resume_vs_cold": cold_median / resume_median,
        },
        "checks": {
            "transient_planned_identical": (
                cold_run.result.to_payload() == t_direct.to_payload()
                and resume_run.result.to_payload() == t_direct.to_payload()
            ),
            "transient_factor_once_per_trajectory": (
                factor_misses == n_trajectories
            ),
            "transient_resume_no_solves": resume_solves == 0,
            "nonlinear_planned_identical": _nonlinear_payloads_match(
                nl_run.result.to_payload(), n_direct.to_payload()
            ),
        },
    }


def bench_fault_recovery(repeats: int) -> dict[str, Any]:
    """No-fault cost of the fault-tolerance plumbing on the fig7 plan.

    The same builtin ``fig7`` scenario runs cold twice: once with
    ``retry=None`` (the historical plain stream — failures unwind the
    scheduler) and once under the default :class:`~repro.perf.RetryPolicy`
    (the capture-mode stream: per-task failure capture, retry/quarantine
    bookkeeping, ledger checks).  With no faults armed the two paths must
    produce byte-identical payloads (modulo wall-clock ``runtimes_ms``)
    and the plumbing must cost under 5% — gated as a same-run paired
    ratio (``checks.fault_plumbing_under_5pct``) with the usual absolute
    floor so millisecond jitter on a loaded machine cannot trip it.

    The two paths are timed *interleaved* (plain, safe, plain, safe, ...)
    rather than as two back-to-back blocks, and the gated ratio is the
    **median of per-pair ratios**, not min-vs-min: this is a near-1.0
    paired comparison, and on a shared container the low-frequency drift
    (CPU steal, frequency steps) that spans a whole multi-second block
    biases block-vs-block statistics by up to ~10% in either direction.
    Adjacent pairs see the same pressure, so their ratio stays honest —
    while the two *minima* of an interleaved run can still come from
    different load moments.
    """
    from ..scenarios import run_scenario
    from .retry import DEFAULT_RETRY

    def run(retry):
        perf_cache.reset()
        return run_scenario("fig7", retry=retry)

    plain_times: list[float] = []
    safe_times: list[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        plain_run = run(None)
        plain_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        safe_run = run(DEFAULT_RETRY)
        safe_times.append(time.perf_counter() - start)
    plain_median = statistics.median(plain_times)
    safe_median = statistics.median(safe_times)
    plain_payload = plain_run.result.to_payload()
    safe_payload = safe_run.result.to_payload()
    plain_payload.pop("runtimes_ms", None)
    safe_payload.pop("runtimes_ms", None)
    overhead = statistics.median(
        s / p for s, p in zip(safe_times, plain_times)
    )
    return {
        "benchmarks": {
            "fig7_planned_plain_stream": _entry(plain_median, plain_times),
            "fault_recovery_overhead": _entry(
                safe_median, safe_times, overhead_ratio=overhead
            ),
        },
        "speedups": {"fault_plumbing_overhead_ratio": overhead},
        "checks": {
            "fault_plumbing_identical": plain_payload == safe_payload,
            "fault_plumbing_under_5pct": (
                overhead <= 1.05
                or statistics.median(
                    s - p for s, p in zip(safe_times, plain_times)
                )
                < 0.005
            ),
        },
    }


def bench_fleet(repeats: int) -> dict[str, Any]:
    """Fleet execution vs the single-process path, plus sharded lookups.

    ``fleet_single_process`` runs a small radius sweep through
    ``run_scenario`` against a fresh store; ``fleet_four_workers`` runs
    the identical spec through :func:`~repro.scenarios.fleet.run_fleet`
    with 4 cooperating processes (flagged noisy: 4 process spawns
    dominate a sweep this small — the fleet tier pays off on plans whose
    solve time dwarfs the fork cost, and on 1-CPU containers it is
    honestly slower).  The structural guarantees ride the same-run
    checks: the fleet store is byte-identical to the single-process
    store modulo wall-clock metadata (``fleet_identical``), and the
    fleet-wide solve counter equals the single-process solve count — no
    node solved twice despite 4 contending workers
    (``fleet_no_double_solve``).

    ``flat_lookup_10k`` / ``sharded_lookup_10k`` time 10 000
    :meth:`~repro.scenarios.store.RunStore.get_point` reads against a
    flat (legacy) and a sharded store of 10 000 points each (artifacts
    written directly, no solver in the loop).
    ``sharded_lookup_no_slower`` gates the layout change: sharding must
    not tax the read path (ratio ≤ 1.25, with the usual absolute floor
    for sub-millisecond jitter).
    """
    import shutil

    from ..scenarios import AxisSpec, RunStore, ScenarioSpec, run_scenario
    from ..scenarios.fleet import run_fleet
    from .stats import counter

    spec = ScenarioSpec(
        scenario_id="bench_fleet",
        title="Fleet bench sweep",
        axis=AxisSpec(parameter="radius_um", values=(2.0, 3.0, 4.0, 5.0)),
        models=("a:paper", "1d"),
        calibrate=False,
    ).resolved()
    root = Path(tempfile.mkdtemp(prefix="bench_fleet_"))
    runs = iter(range(10_000))

    def single():
        perf_cache.reset()
        store = RunStore(root / f"single-{next(runs)}")
        return run_scenario(spec, store=store), store

    def fleet():
        return run_fleet(
            [spec],
            store=root / f"fleet-{next(runs)}",
            workers=4,
            timeout_s=600.0,
        )

    def normalized_store(store: RunStore) -> dict[str, Any]:
        run_payload = store.get(spec.content_hash()) or {}
        run_payload.pop("runtimes_ms", None)
        points = {}
        for key in store.point_keys():
            payload = dict(store.get_point(key))
            payload.pop("solve_time", None)
            points[key] = payload
        return {"run": run_payload, "points": points}

    try:
        single_median, single_times, (single_run, single_store) = _time(
            single, repeats
        )
        single_solves = counter("plan_point_solves")
        fleet_median, fleet_times, outcome = _time(fleet, repeats)
        identical = (
            outcome.ok
            and normalized_store(RunStore(outcome.store_root))
            == normalized_store(single_store)
        )
        no_double_solve = (
            outcome.counters.get("plan_point_solves") == single_solves
        )

        # sharded vs flat lookups at 10k points: artifacts written
        # directly so only the read path is measured
        n_points = 10_000
        flat_store = RunStore(root / "flat")
        sharded_store = RunStore(root / "sharded")
        keys = [f"{i:064x}" for i in range(n_points)]
        for i, key in enumerate(keys):
            text = f'{{"i": {i}}}'
            (flat_store.points / f"{key}.json").write_text(text)
            target = RunStore._sharded_path(sharded_store.points, key)
            target.parent.mkdir(exist_ok=True)
            target.write_text(text)

        def lookup(store: RunStore):
            for key in keys:
                store.get_point(key)

        # interleaved pairs, like bench_fault_recovery: this is a
        # near-1.0 paired comparison and the 10k stat() calls make both
        # sides hostage to dcache/page-cache pressure from the rest of
        # the machine — adjacent pairs see the same pressure
        flat_times: list[float] = []
        sharded_times: list[float] = []
        for _ in range(repeats):
            start = time.perf_counter()
            lookup(flat_store)
            flat_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            lookup(sharded_store)
            sharded_times.append(time.perf_counter() - start)
        flat_median = statistics.median(flat_times)
        sharded_median = statistics.median(sharded_times)
    finally:
        shutil.rmtree(root, ignore_errors=True)
    lookup_ratio = statistics.median(
        s / f for s, f in zip(sharded_times, flat_times)
    )
    return {
        "benchmarks": {
            "fleet_single_process": _entry(single_median, single_times),
            "fleet_four_workers": _entry(
                fleet_median, fleet_times, workers=4, noisy=True
            ),
            # filesystem-bound entries: 10k per-key lookups swing with
            # ambient dcache pressure far beyond solver-entry jitter
            "flat_lookup_10k": _entry(
                flat_median, flat_times, points=n_points, noisy=True
            ),
            "sharded_lookup_10k": _entry(
                sharded_median, sharded_times, points=n_points, noisy=True
            ),
        },
        "speedups": {
            "fleet_vs_single": single_median / fleet_median,
            "sharded_vs_flat_lookup": flat_median / sharded_median,
        },
        "checks": {
            "fleet_identical": identical,
            "fleet_no_double_solve": no_double_solve,
            "sharded_lookup_no_slower": (
                lookup_ratio <= 1.25
                or statistics.median(
                    s - f for s, f in zip(sharded_times, flat_times)
                )
                < 0.005
            ),
        },
    }


def bench_store_integrity(repeats: int) -> dict[str, Any]:
    """Read-side cost of envelope checksum verification (PR 9).

    Every store artifact now carries a blake2b checksum envelope that
    readers verify by default.  ``plain_read_5k`` times 5 000
    ``get_point`` reads with verification disabled (``verify=False`` —
    the raw parse path); ``checksum_overhead`` times the identical reads
    with verification on.  The gate (``checksum_under_5pct``) holds the
    verified path to ≤5% over the raw path as a same-run paired ratio —
    interleaved pairs, median of per-pair ratios, with the usual
    absolute floor so sub-millisecond jitter cannot trip it.  A final
    non-timed check (``checksum_detects_bitflip``) flips one byte in one
    artifact and asserts the verified reader refuses it while the raw
    reader would have accepted it — the overhead gate is only meaningful
    while the verification it prices actually catches corruption.
    """
    import shutil

    from ..scenarios import RunStore

    n_points = 5_000
    root = Path(tempfile.mkdtemp(prefix="bench_integrity_"))
    try:
        writer = RunStore(root / "store")
        keys = [f"{i:064x}" for i in range(n_points)]
        for i, key in enumerate(keys):
            writer.put_point(key, {"i": i, "max_rise": float(i)})
        plain_store = RunStore(root / "store", verify=False)
        verified_store = RunStore(root / "store", verify=True)

        def lookup(store: RunStore):
            for key in keys:
                store.get_point(key)

        plain_times: list[float] = []
        verified_times: list[float] = []
        for _ in range(repeats):
            start = time.perf_counter()
            lookup(plain_store)
            plain_times.append(time.perf_counter() - start)
            start = time.perf_counter()
            lookup(verified_store)
            verified_times.append(time.perf_counter() - start)
        plain_median = statistics.median(plain_times)
        verified_median = statistics.median(verified_times)

        # bit-flip detection, outside the timed loops (the verified read
        # heals the artifact away — a deliberate store mutation)
        victim = RunStore._sharded_path(writer.points, keys[0])
        blob = bytearray(victim.read_bytes())
        # the artifact ends '...0.0\n}\n': flip the final digit so the
        # body stays parseable JSON with silently different physics —
        # exactly the corruption only the checksum can catch
        blob[-4] ^= 0x01
        victim.write_bytes(bytes(blob))
        accepted_raw = plain_store.get_point(keys[0]) is not None
        detects = verified_store.get_point(keys[0]) is None and accepted_raw
    finally:
        shutil.rmtree(root, ignore_errors=True)
    overhead = statistics.median(
        v / p for v, p in zip(verified_times, plain_times)
    )
    return {
        "benchmarks": {
            # filesystem-bound like the lookup entries: hostage to
            # ambient dcache/page-cache pressure
            "plain_read_5k": _entry(
                plain_median, plain_times, points=n_points, noisy=True
            ),
            "checksum_overhead": _entry(
                verified_median,
                verified_times,
                points=n_points,
                overhead_ratio=overhead,
                noisy=True,
            ),
        },
        "speedups": {"checksum_overhead_ratio": overhead},
        "checks": {
            "checksum_under_5pct": (
                overhead <= 1.05
                or statistics.median(
                    v - p for v, p in zip(verified_times, plain_times)
                )
                < 0.005
            ),
            "checksum_detects_bitflip": detects,
        },
    }


def bench_fem3d(repeats: int) -> dict[str, Any]:
    """The builtin 3-D FEM power sweep, cold — the expensive, cache-
    sensitive workload the matrix-batched plane was built for."""
    from ..scenarios import run_scenario
    from .stats import counter

    def cold():
        perf_cache.reset()
        return run_scenario("fem3d_power")

    median, times, _ = _time(cold, repeats)
    return {
        "benchmarks": {"fem3d_power_cold": _entry(median, times, noisy=True)},
        "speedups": {},
        # the last cold run starts from reset counters, so a non-zero
        # group counter proves the sweep actually dispatched as a group
        "checks": {"fem3d_grouped": counter("plan_matrix_groups") > 0},
    }


def run_pytest_suite(bench_dir: Path) -> dict[str, Any]:
    """Run the pytest-benchmark suite and return {test name: median s}."""
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "pytest_bench.json"
        proc = subprocess.run(
            [
                sys.executable, "-m", "pytest", str(bench_dir),
                "--benchmark-only", f"--benchmark-json={out}", "-q",
            ],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0 or not out.exists():
            return {"error": proc.stdout[-2000:] + proc.stderr[-2000:]}
        data = json.loads(out.read_text())
    return {
        b["fullname"]: {"median_s": b["stats"]["median"]}
        for b in data.get("benchmarks", [])
    }


# ---------------------------------------------------------------------------
# report assembly, persistence, comparison
# ---------------------------------------------------------------------------
def machine_info() -> dict[str, Any]:
    import numpy
    import scipy
    import os

    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
    }


def run_benchmarks(
    *,
    jobs: int = 4,
    quick: bool = False,
    repeats: int | None = None,
    pytest_suite: bool = False,
    bench_dir: Path | None = None,
) -> dict[str, Any]:
    """Run every scenario and assemble the ``BENCH_*.json`` payload.

    Quick mode only reduces the repeat count — scenario sizes are
    identical, so quick and full reports are directly comparable.  Five
    quick repeats (not fewer): the gate compares best-of-N minima against
    a best-of-7 baseline, and extreme-value statistics make a min-of-3
    systematically slower than a min-of-7 by enough to trip the 25%
    tolerance on a loaded machine.
    """
    repeats = repeats if repeats is not None else (5 if quick else 7)
    payload: dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "created": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "machine": machine_info(),
        "config": {"jobs": jobs, "quick": quick, "repeats": repeats},
        "benchmarks": {},
        "speedups": {},
        "checks": {},
    }
    for section in (
        bench_fig7_sweep(jobs, repeats),
        bench_transient(repeats),
        bench_fem_reuse(repeats),
        bench_batch_dedup(repeats),
        bench_multi_rhs(jobs, repeats),
        bench_stacked(repeats),
        bench_physics(repeats),
        bench_fault_recovery(repeats),
        bench_fleet(repeats),
        bench_store_integrity(repeats),
        bench_fem3d(repeats),
    ):
        payload["benchmarks"].update(section["benchmarks"])
        payload["speedups"].update(section["speedups"])
        payload["checks"].update(section["checks"])
        if "cache_stats" in section:
            # the warm fig7 sweep's hit rates — the multi-scenario-traffic view
            payload["cache_stats"] = section["cache_stats"]
    if pytest_suite:
        payload["pytest_benchmarks"] = run_pytest_suite(
            bench_dir or Path("benchmarks")
        )
    return payload


def bench_filename(date: datetime.date | None = None) -> str:
    return f"BENCH_{(date or datetime.date.today()).isoformat()}.json"


def find_previous(output_dir: Path, current_name: str) -> Path | None:
    """Most recent ``BENCH_*.json`` other than the one about to be written."""
    candidates = sorted(
        p for p in output_dir.glob("BENCH_*.json") if p.name != current_name
    )
    return candidates[-1] if candidates else None


def compare(
    current: dict[str, Any],
    previous: dict[str, Any],
    *,
    tolerance: float = 0.25,
    min_delta_s: float = 0.005,
    noisy_factor: float = 2.0,
) -> tuple[list[dict[str, Any]], list[dict[str, Any]]]:
    """(regressions, comparisons) of best-of-N times vs a previous report.

    The comparison is deliberately asymmetric: the *current* side uses
    its best-of-N minimum (robust against background load during a CI
    run), while the *previous* side — the deliberately regenerated
    committed baseline — uses its median, the typical-throughput anchor.
    Min-vs-min proved flaky in practice: run-to-run throughput on a
    shared 1-CPU container drifts by up to ~1.4x, so a baseline whose
    minimum caught one lucky run trips any tolerance tighter than that
    drift on entries that are perfectly healthy.

    A regression is a current best-of-N more than ``tolerance``
    (fractional) slower than the previous median AND more than
    ``min_delta_s`` seconds slower in absolute terms — millisecond
    scenarios jitter by large fractions without meaning anything.
    Entries flagged ``noisy`` (process-pool spawns, big 3-D
    factorizations) get ``tolerance * noisy_factor``; their structural
    guarantees are gated by the same-run ``checks`` instead.  Benchmarks
    present in only one report are skipped.
    """
    regressions: list[dict[str, Any]] = []
    comparisons: list[dict[str, Any]] = []
    prev_benchmarks = previous.get("benchmarks", {})
    for name, entry in current.get("benchmarks", {}).items():
        prev = prev_benchmarks.get(name)
        prev_best = (prev or {}).get("median_s") or (prev or {}).get("min_s")
        if not prev_best:
            continue
        best = entry.get("min_s") or entry["median_s"]
        ratio = best / prev_best
        row = {
            "benchmark": name,
            "previous_s": prev_best,
            "current_s": best,
            "ratio": ratio,
        }
        comparisons.append(row)
        scale = noisy_factor if (entry.get("noisy") or prev.get("noisy")) else 1.0
        if ratio > 1.0 + tolerance * scale and best - prev_best > min_delta_s:
            regressions.append(row)
    return regressions, comparisons


def render_speedup_table(
    payload: dict[str, Any], comparisons: list[dict[str, Any]] | None = None
) -> str:
    """Per-entry speedup/check table printed whenever the gate fails.

    A failing gate used to stop at a bare message; this table gives the
    full picture — every derived speedup, every identity check, and (when
    a baseline comparison ran) the per-entry before/after ratios — so a
    CI log is diagnosable without re-running the harness.
    """
    lines = [f"{'speedup':<40} {'ratio':>10}"]
    for name, value in payload.get("speedups", {}).items():
        lines.append(f"{name:<40} {value:>9.2f}x")
    for name, ok in payload.get("checks", {}).items():
        lines.append(f"check   {name:<32} {'PASS' if ok else 'FAIL':>10}")
    if comparisons:
        lines.append("")
        lines.append(
            f"{'benchmark':<40} {'previous':>10} {'current':>10} {'ratio':>8}"
        )
        for row in comparisons:
            lines.append(
                f"{row['benchmark']:<40} {row['previous_s'] * 1e3:>8.2f}ms "
                f"{row['current_s'] * 1e3:>8.2f}ms {row['ratio']:>7.2f}x"
            )
    return "\n".join(lines)


def render_report(payload: dict[str, Any]) -> str:
    lines = [
        f"machine: {payload['machine']['platform']} "
        f"(cpus={payload['machine']['cpu_count']})",
        f"config:  jobs={payload['config']['jobs']} "
        f"repeats={payload['config']['repeats']} quick={payload['config']['quick']}",
        "",
        f"{'benchmark':<40} {'median [ms]':>12}",
    ]
    for name, entry in payload["benchmarks"].items():
        lines.append(f"{name:<40} {entry['median_s'] * 1e3:>12.2f}")
    lines.append("")
    for name, value in payload["speedups"].items():
        lines.append(f"speedup {name:<32} {value:>11.2f}x")
    for name, value in payload["checks"].items():
        lines.append(f"check   {name:<32} {'PASS' if value else 'FAIL':>12}")
    caches = payload.get("cache_stats", {}).get("caches", {})
    if caches:
        lines.append("")
        for name, c in caches.items():
            lines.append(
                f"cache   {name:<24} hits={c['hits']:<6} misses={c['misses']:<6} "
                f"hit_rate={c['hit_rate']:.2f}"
            )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Run the benchmark-regression harness and write BENCH_<date>.json.",
    )
    parser.add_argument(
        "--jobs", type=int, default=4, metavar="N",
        help="worker processes for the parallel sweep measurement (default 4)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: fewer repeats, same scenarios (reports stay comparable)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="override the repeat count"
    )
    parser.add_argument(
        "--output-dir", type=Path, default=Path("."),
        help="where BENCH_<date>.json is written and previous reports searched",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="explicit previous report to compare against (default: latest "
        "BENCH_*.json in the output dir)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="fractional median slowdown that counts as a regression (default 0.25)",
    )
    parser.add_argument(
        "--min-delta-ms", type=float, default=5.0,
        help="absolute slowdown (ms) below which a regression is ignored "
        "(default 5.0; single-digit-millisecond scenarios jitter by large "
        "fractions on loaded machines)",
    )
    parser.add_argument(
        "--no-compare", action="store_true",
        help="skip the regression comparison",
    )
    parser.add_argument(
        "--require", default=None, metavar="ENTRY[,ENTRY...]",
        help="benchmark entries that must be present in the report; the "
        "gate fails (with the full speedup table) if any is missing — "
        "protects CI from silently dropping an entry",
    )
    parser.add_argument(
        "--no-write", action="store_true",
        help="measure and compare only; do not write BENCH_<date>.json",
    )
    parser.add_argument(
        "--pytest-suite", action="store_true",
        help="also run the pytest-benchmark suite under benchmarks/ and embed "
        "its medians",
    )
    args = parser.parse_args(argv)

    if not args.no_compare and args.baseline and not args.baseline.exists():
        # an explicit baseline that is missing must fail loudly (and before
        # the measurements): silently skipping would let CI pass without the
        # gate it asked for
        print(f"error: --baseline {args.baseline} does not exist")
        return 1

    payload = run_benchmarks(
        jobs=args.jobs,
        quick=args.quick,
        repeats=args.repeats,
        pytest_suite=args.pytest_suite,
    )
    print(render_report(payload))

    name = bench_filename()
    exit_code = 0
    comparisons: list[dict[str, Any]] = []
    if not args.no_compare:
        # only exclude today's file from the baseline search when this run
        # is about to overwrite it; in --no-write (CI) mode it IS the baseline
        skip_name = "" if args.no_write else name
        previous_path = args.baseline or find_previous(args.output_dir, skip_name)
        if previous_path and previous_path.exists():
            previous = json.loads(previous_path.read_text())
            regressions, comparisons = compare(
                payload,
                previous,
                tolerance=args.tolerance,
                min_delta_s=args.min_delta_ms * 1e-3,
            )
            print(f"\ncompared against {previous_path}:")
            for row in comparisons:
                marker = " REGRESSION" if row in regressions else ""
                print(
                    f"  {row['benchmark']:<40} {row['previous_s'] * 1e3:>9.2f} -> "
                    f"{row['current_s'] * 1e3:>9.2f} ms "
                    f"({row['ratio']:.2f}x){marker}"
                )
            if regressions:
                print(
                    f"\n{len(regressions)} benchmark(s) regressed beyond "
                    f"{args.tolerance:.0%} tolerance"
                )
                exit_code = 1
        else:
            print("\nno previous BENCH_*.json found; skipping comparison")
    if args.require:
        missing = [
            entry
            for entry in args.require.split(",")
            if entry and entry not in payload["benchmarks"]
        ]
        if missing:
            print(f"\nFATAL: required benchmark entries missing: {missing}")
            exit_code = 1
    failed_checks = [
        check for check, ok in payload["checks"].items() if not ok
    ]
    if failed_checks:
        print(f"\nFATAL: identity/structure check(s) failed: {failed_checks}")
        exit_code = 1
    if exit_code:
        print("\n" + render_speedup_table(payload, comparisons))

    if not args.no_write:
        args.output_dir.mkdir(parents=True, exist_ok=True)
        out_path = args.output_dir / name
        out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\nreport written to {out_path}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
