"""Greedy TTSV insertion (planning extension).

The paper's conclusion warns that 1-D models in "a TTSV insertion/planning
methodology can result in excessive usage of TTSVs (a critical resource)".
This module demonstrates the point constructively: a greedy planner that
estimates each floorplan cell's temperature with a pluggable model (Model A
by default, the 1-D baseline for comparison) and inserts vias where they
help most.  With the 1-D estimator the planner systematically overshoots
the via count — the paper's cost argument, quantified.

The estimator treats every floorplan cell as an independent adiabatic unit
cell (uniformly distributed power and vias make this exact in the limit;
it is the same reduction the case study uses).  Cells with v vias host a
v-member cluster of the base via (Eq. (22) with the metal area scaled by
v), so successive vias in the same cell show the paper's diminishing
returns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..core.base import ThermalTSVModel
from ..core.model_a import ModelA
from ..errors import ValidationError
from ..geometry import PowerSpec, Stack3D, TSV, TSVCluster
from ..units import require_positive, require_positive_int
from .power_map import PowerMap


@dataclass(frozen=True)
class PlanningResult:
    """Outcome of a greedy planning run."""

    via_counts: np.ndarray  # (rows, cols) vias per cell
    rises: np.ndarray  # (rows, cols) estimated ΔT after planning
    initial_rises: np.ndarray
    target_rise: float
    history: tuple[tuple[int, int, float], ...]  # (row, col, new max ΔT)
    converged: bool  # True iff max ΔT <= target

    @property
    def total_vias(self) -> int:
        return int(self.via_counts.sum())

    @property
    def max_rise(self) -> float:
        return float(self.rises.max())

    def summary(self) -> str:
        status = "met" if self.converged else "NOT met"
        return (
            f"{self.total_vias} TTSV(s) inserted; max ΔT "
            f"{self.initial_rises.max():.2f} → {self.max_rise:.2f} K "
            f"(target {self.target_rise:.2f} K {status})"
        )


@dataclass
class GreedyPlanner:
    """Greedy hottest-cell-first TTSV insertion.

    Parameters
    ----------
    stack:
        The 3-D stack whose floorplan is being planned.
    via:
        The base TTSV inserted at each step.
    estimator:
        Thermal model used to score cells; defaults to Model A with the
        paper's block coefficients.  Pass ``Model1D()`` to reproduce the
        overshoot the paper warns about.
    max_vias_per_cell:
        Safety bound on cluster growth inside one cell.
    ild_fraction:
        Split of cell power between devices and ILD for the estimator.
    """

    stack: Stack3D
    via: TSV
    estimator: ThermalTSVModel = field(default_factory=ModelA)
    max_vias_per_cell: int = 16
    ild_fraction: float = 0.1

    def __post_init__(self) -> None:
        require_positive_int("max_vias_per_cell", self.max_vias_per_cell)

    # ------------------------------------------------------------------
    # per-cell estimates
    # ------------------------------------------------------------------
    def _cell_stack(self, cell_area: float) -> Stack3D:
        return self.stack.with_footprint_area(cell_area)

    def _cell_power(self, plane_watts: tuple[float, ...]) -> PowerSpec:
        return PowerSpec(plane_powers=plane_watts, ild_fraction=self.ild_fraction)

    def bare_cell_rise(self, cell_area: float, plane_watts: tuple[float, ...]) -> float:
        """ΔT of a via-less cell: plain series slabs, heat flows down."""
        require_positive("cell_area", cell_area)
        stack = self._cell_stack(cell_area)
        power = self._cell_power(plane_watts)
        heats = [power.plane_heat(stack, j) for j in range(stack.n_planes)]
        node_heights = [stack.ild_interval(j).z1 for j in range(stack.n_planes)]
        temperature = 0.0
        rise = 0.0
        for iv in stack.layer_intervals():
            crossing = sum(
                q for q, h in zip(heats, node_heights) if h >= iv.z1 - 1e-18
            )
            temperature += iv.layer.vertical_resistance(cell_area) * crossing
            rise = max(rise, temperature)
        return rise

    def cell_rise(
        self, cell_area: float, plane_watts: tuple[float, ...], n_vias: int
    ) -> float:
        """Estimated ΔT of a cell hosting ``n_vias`` vias."""
        if n_vias == 0:
            return self.bare_cell_rise(cell_area, plane_watts)
        # n vias in one cell = a cluster whose total metal area is n times
        # the base via's: base radius r0·√n split into n members of radius r0
        scaled = self.via.with_radius(self.via.radius * math.sqrt(n_vias))
        cluster = TSVCluster(scaled, n_vias)
        stack = self._cell_stack(cell_area)
        result = self.estimator.solve(
            stack, cluster, self._cell_power(plane_watts)
        )
        return result.max_rise

    # ------------------------------------------------------------------
    # the greedy loop
    # ------------------------------------------------------------------
    def plan(
        self,
        power_map: PowerMap,
        *,
        target_rise: float,
        max_total_vias: int = 1000,
    ) -> PlanningResult:
        """Insert vias hottest-cell-first until the target ΔT is met.

        Raises
        ------
        ValidationError
            If the power map's plane count does not match the stack.
        """
        require_positive("target_rise", target_rise)
        require_positive_int("max_total_vias", max_total_vias)
        if power_map.n_planes != self.stack.n_planes:
            raise ValidationError(
                f"power map has {power_map.n_planes} planes, stack has "
                f"{self.stack.n_planes}"
            )
        rows, cols = power_map.shape
        cell_area = power_map.cell_area
        counts = np.zeros((rows, cols), dtype=int)
        rises = np.empty((rows, cols))
        for r in range(rows):
            for c in range(cols):
                rises[r, c] = self.cell_rise(
                    cell_area, power_map.plane_cell_power(r, c), 0
                )
        initial = rises.copy()
        history: list[tuple[int, int, float]] = []
        while rises.max() > target_rise and counts.sum() < max_total_vias:
            r, c = np.unravel_index(int(np.argmax(rises)), rises.shape)
            if counts[r, c] >= self.max_vias_per_cell:
                break  # hottest cell saturated; adding elsewhere cannot help it
            counts[r, c] += 1
            rises[r, c] = self.cell_rise(
                cell_area, power_map.plane_cell_power(r, c), int(counts[r, c])
            )
            history.append((int(r), int(c), float(rises.max())))
        return PlanningResult(
            via_counts=counts,
            rises=rises,
            initial_rises=initial,
            target_rise=target_rise,
            history=tuple(history),
            converged=bool(rises.max() <= target_rise),
        )
