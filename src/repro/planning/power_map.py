"""Floorplan power maps for the TTSV planning extension.

The planner works on a coarse grid of floorplan cells.  A :class:`PowerMap`
holds per-cell, per-plane power (watts), typically derived from block-level
power budgets.  This extends the paper toward the via-planning use case its
conclusion motivates (refs [4], [5]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from ..units import require_positive, require_positive_int


@dataclass(frozen=True)
class PowerMap:
    """Per-cell, per-plane power over a square floorplan.

    ``cell_powers`` has shape (n_planes, rows, cols), in watts per cell.
    """

    cell_powers: np.ndarray
    side: float  # physical side length of the floorplan, metres

    def __post_init__(self) -> None:
        arr = np.asarray(self.cell_powers, dtype=float)
        if arr.ndim != 3:
            raise ValidationError("cell_powers must be (planes, rows, cols)")
        if np.any(arr < 0.0):
            raise ValidationError("cell powers must be non-negative")
        require_positive("side", self.side)
        object.__setattr__(self, "cell_powers", arr)

    @property
    def n_planes(self) -> int:
        return self.cell_powers.shape[0]

    @property
    def shape(self) -> tuple[int, int]:
        return self.cell_powers.shape[1:]

    @property
    def cell_area(self) -> float:
        rows, cols = self.shape
        return (self.side / rows) * (self.side / cols)

    @property
    def total_power(self) -> float:
        return float(self.cell_powers.sum())

    def cell_center(self, row: int, col: int) -> tuple[float, float]:
        """Physical (x, y) of a cell centre."""
        rows, cols = self.shape
        if not (0 <= row < rows and 0 <= col < cols):
            raise ValidationError(f"cell ({row}, {col}) outside {rows}x{cols} grid")
        return ((col + 0.5) * self.side / cols, (row + 0.5) * self.side / rows)

    def plane_cell_power(self, row: int, col: int) -> tuple[float, ...]:
        """Per-plane watts of one cell (bottom-up)."""
        return tuple(float(p) for p in self.cell_powers[:, row, col])

    def densest_cells(self, count: int = 5) -> list[tuple[int, int, float]]:
        """The ``count`` cells with the highest summed power: (row, col, W)."""
        require_positive_int("count", count)
        summed = self.cell_powers.sum(axis=0)
        flat = np.argsort(summed, axis=None)[::-1][:count]
        rows, cols = np.unravel_index(flat, summed.shape)
        return [(int(r), int(c), float(summed[r, c])) for r, c in zip(rows, cols)]


def uniform_power_map(
    plane_powers: tuple[float, ...], side: float, grid: int
) -> PowerMap:
    """Spread per-plane total powers evenly over a grid×grid floorplan."""
    require_positive_int("grid", grid)
    if not plane_powers:
        raise ValidationError("need at least one plane power")
    cells = np.empty((len(plane_powers), grid, grid))
    for j, p in enumerate(plane_powers):
        if p < 0:
            raise ValidationError("plane powers must be non-negative")
        cells[j] = p / (grid * grid)
    return PowerMap(cell_powers=cells, side=side)


def hotspot_power_map(
    plane_powers: tuple[float, ...],
    side: float,
    grid: int,
    *,
    hotspots: list[tuple[float, float, float, float]],
    plane_index: int = -1,
) -> PowerMap:
    """A uniform map plus Gaussian hotspots on one plane.

    Each hotspot is (x_frac, y_frac, extra_watts, sigma_frac): position and
    width as fractions of the floorplan side.  The extra watts are added on
    ``plane_index`` (default: the top plane, the paper's worst case).
    """
    base = uniform_power_map(plane_powers, side, grid)
    cells = base.cell_powers.copy()
    rows, cols = base.shape
    y, x = np.meshgrid(
        (np.arange(rows) + 0.5) / rows, (np.arange(cols) + 0.5) / cols, indexing="ij"
    )
    for x0, y0, watts, sigma in hotspots:
        if watts < 0.0 or sigma <= 0.0:
            raise ValidationError("hotspot watts must be >= 0 and sigma > 0")
        blob = np.exp(-((x - x0) ** 2 + (y - y0) ** 2) / (2.0 * sigma**2))
        blob_sum = blob.sum()
        if blob_sum == 0.0:
            raise ValidationError("hotspot falls outside the floorplan grid")
        cells[plane_index] += watts * blob / blob_sum
    return PowerMap(cell_powers=cells, side=side)
