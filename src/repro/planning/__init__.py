"""TTSV planning extension: power maps and greedy via insertion."""

from .insertion import GreedyPlanner, PlanningResult
from .power_map import PowerMap, hotspot_power_map, uniform_power_map

__all__ = [
    "PowerMap",
    "uniform_power_map",
    "hotspot_power_map",
    "GreedyPlanner",
    "PlanningResult",
]
