"""Unit helpers.

The library works internally in strict SI units: metres, watts, kelvins
(temperature *rises* in kelvin are numerically identical to rises in °C,
which is how the paper reports ΔT). The helpers here convert the mixed
micrometre/millimetre vocabulary of the paper into SI and validate numeric
domains at API boundaries.

Examples
--------
>>> um(5)
5e-06
>>> mm(10)
0.01
>>> to_um(5e-06)
5.0
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from .errors import ValidationError

#: one micrometre in metres
MICROMETRE = 1e-6
#: one millimetre in metres
MILLIMETRE = 1e-3
#: one nanometre in metres
NANOMETRE = 1e-9

#: 0 °C in kelvin
ZERO_CELSIUS = 273.15


def um(value: float) -> float:
    """Convert micrometres to metres."""
    return float(value) * MICROMETRE


def mm(value: float) -> float:
    """Convert millimetres to metres."""
    return float(value) * MILLIMETRE


def nm(value: float) -> float:
    """Convert nanometres to metres."""
    return float(value) * NANOMETRE


def to_um(metres: float) -> float:
    """Convert metres to micrometres."""
    return float(metres) / MICROMETRE


def to_mm(metres: float) -> float:
    """Convert metres to millimetres."""
    return float(metres) / MILLIMETRE


def celsius_to_kelvin(t_celsius: float) -> float:
    """Convert an absolute temperature from °C to K."""
    return float(t_celsius) + ZERO_CELSIUS


def kelvin_to_celsius(t_kelvin: float) -> float:
    """Convert an absolute temperature from K to °C."""
    return float(t_kelvin) - ZERO_CELSIUS


def w_per_mm3(value: float) -> float:
    """Convert a volumetric power density from W/mm³ to W/m³.

    The paper quotes device and interconnect heat in W/mm³
    (700 and 70 W/mm³ respectively).
    """
    return float(value) / MILLIMETRE**3


def require_positive(name: str, value: float) -> float:
    """Return ``value`` as float, raising :class:`ValidationError` unless > 0."""
    value = _require_number(name, value)
    if value <= 0.0:
        raise ValidationError(f"{name} must be positive, got {value!r}")
    return value


def require_non_negative(name: str, value: float) -> float:
    """Return ``value`` as float, raising :class:`ValidationError` unless >= 0."""
    value = _require_number(name, value)
    if value < 0.0:
        raise ValidationError(f"{name} must be non-negative, got {value!r}")
    return value


def require_fraction(name: str, value: float) -> float:
    """Return ``value`` as float, raising unless it lies in the closed [0, 1]."""
    value = _require_number(name, value)
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must lie in [0, 1], got {value!r}")
    return value


def require_positive_int(name: str, value: int) -> int:
    """Return ``value`` as int, raising unless it is a positive integer."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    if value <= 0:
        raise ValidationError(f"{name} must be a positive integer, got {value!r}")
    return value


def require_monotonic(name: str, values: Iterable[float]) -> list[float]:
    """Validate that ``values`` is strictly increasing and return it as a list."""
    out = [_require_number(name, v) for v in values]
    for a, b in zip(out, out[1:]):
        if b <= a:
            raise ValidationError(f"{name} must be strictly increasing, got {out!r}")
    return out


def _require_number(name: str, value: float) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if math.isnan(value) or math.isinf(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    return value
