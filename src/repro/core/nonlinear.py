"""Temperature-dependent conductivity (nonlinear extension).

The paper's models use constant conductivities.  Silicon's conductivity,
however, drops ~0.3 %/K around room temperature, so a 40 K rise weakens the
lateral spreading path noticeably.  This extension wraps any steady-state
model in a fixed-point loop:

    solve -> per-plane temperatures -> re-evaluate k(T) per layer -> solve

which converges in a handful of iterations for the mild nonlinearity of
k(T) models (under-relaxation guards pathological cases).

Materials opt in through :attr:`repro.materials.Material.conductivity_slope`;
layers whose material has a zero slope are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from ..core.base import ThermalTSVModel
from ..core.model_a import ModelA
from ..core.result import ModelResult
from ..errors import ConvergenceError, ValidationError
from ..geometry import PowerSpec, Stack3D, TSV, TSVCluster
from ..units import ZERO_CELSIUS, require_fraction, require_positive_int


def scale_conductivity_slopes(stack: Stack3D, scale: float) -> Stack3D:
    """The stack with every material's dk/dT multiplied by ``scale``.

    The k(T) *slope policy* of nonlinear scenarios: ``scale == 1`` keeps
    the library values (silicon ≈ -0.42 W/(m·K²)), ``0`` turns the
    nonlinearity off entirely, and intermediate/exaggerated values probe
    sensitivity.  Nominal conductivities are untouched, so the linear
    (first-iteration) solve is identical for every scale.
    """
    if scale == 1.0:
        return stack
    new_planes = tuple(
        replace(
            plane,
            substrate=replace(
                plane.substrate,
                material=replace(
                    plane.substrate.material,
                    conductivity_slope=plane.substrate.material.conductivity_slope
                    * scale,
                ),
            ),
            ild=replace(
                plane.ild,
                material=replace(
                    plane.ild.material,
                    conductivity_slope=plane.ild.material.conductivity_slope * scale,
                ),
            ),
        )
        for plane in stack.planes
    )
    new_bonds = tuple(
        replace(
            bond,
            material=replace(
                bond.material,
                conductivity_slope=bond.material.conductivity_slope * scale,
            ),
        )
        for bond in stack.bonds
    )
    return replace(stack, planes=new_planes, bonds=new_bonds)


def _stack_at_temperatures(
    base: Stack3D, plane_rises: tuple[float, ...]
) -> Stack3D:
    """Re-evaluate every layer's conductivity at its plane's temperature."""
    sink_k = base.sink_temperature + ZERO_CELSIUS
    new_planes = []
    for j, plane in enumerate(base.planes):
        t_abs = sink_k + plane_rises[j]
        substrate = plane.substrate
        ild = plane.ild
        substrate = replace(
            substrate,
            material=substrate.material.with_conductivity(
                substrate.material.conductivity_at(t_abs)
            ),
        )
        ild = replace(
            ild,
            material=ild.material.with_conductivity(
                ild.material.conductivity_at(t_abs)
            ),
        )
        new_planes.append(replace(plane, substrate=substrate, ild=ild))
    new_bonds = []
    for i, bond in enumerate(base.bonds):
        t_abs = sink_k + plane_rises[i]  # the bond sits on plane i
        new_bonds.append(
            replace(
                bond,
                material=bond.material.with_conductivity(
                    bond.material.conductivity_at(t_abs)
                ),
            )
        )
    return replace(base, planes=tuple(new_planes), bonds=tuple(new_bonds))


@dataclass(frozen=True)
class NonlinearResult:
    """Converged nonlinear solution plus iteration diagnostics."""

    result: ModelResult
    iterations: int
    history: tuple[float, ...]  # max ΔT per iteration

    @property
    def max_rise(self) -> float:
        return self.result.max_rise

    @property
    def linear_rise(self) -> float:
        """Max ΔT the constant-k (first-iteration) solve predicted."""
        return self.history[0]

    @property
    def linear_error(self) -> float:
        """Relative error a constant-k solve would have made."""
        return (self.history[0] - self.max_rise) / self.max_rise

    def to_payload(self) -> dict[str, Any]:
        """JSON-serialisable dump (exact float round-trip via JSON doubles).

        Wraps the converged :meth:`ModelResult.to_payload` plus the
        iteration diagnostics — everything but the wall-clock
        ``solve_time`` inside the model payload is deterministic.
        """
        return {
            "kind": "nonlinear",
            "result": self.result.to_payload(),
            "iterations": self.iterations,
            "history": list(self.history),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "NonlinearResult":
        """Rebuild a result from :meth:`to_payload` output (store/JSON)."""
        try:
            return cls(
                result=ModelResult.from_payload(payload["result"]),
                iterations=int(payload["iterations"]),
                history=tuple(payload["history"]),
            )
        except (KeyError, TypeError) as exc:
            raise ValidationError(f"malformed nonlinear payload: {exc!r}") from exc


class NonlinearSolver:
    """Fixed-point k(T) iteration around any steady-state model.

    Parameters
    ----------
    model:
        The inner model (Model A by default; any ThermalTSVModel works,
        including the FEM reference).
    tolerance:
        Convergence threshold on the relative change of max ΔT.
    max_iterations:
        Iteration budget; exceeding it raises :class:`ConvergenceError`.
    relaxation:
        Under-relaxation factor in (0, 1]; 1 is plain fixed point.
    slope_scale:
        Multiplier on every material's dk/dT (the scenario layer's k(T)
        slope policy; see :func:`scale_conductivity_slopes`).  1 keeps the
        library slopes; the linear first solve is unaffected either way.
    """

    def __init__(
        self,
        model: ThermalTSVModel | None = None,
        *,
        tolerance: float = 1e-6,
        max_iterations: int = 30,
        relaxation: float = 1.0,
        slope_scale: float = 1.0,
    ) -> None:
        self.model = model or ModelA()
        if tolerance <= 0.0:
            raise ConvergenceError("tolerance must be positive")
        self.tolerance = tolerance
        self.max_iterations = require_positive_int("max_iterations", max_iterations)
        require_fraction("relaxation", relaxation)
        if relaxation == 0.0:
            raise ConvergenceError("relaxation must be positive")
        self.relaxation = relaxation
        if not isinstance(slope_scale, (int, float)) or isinstance(slope_scale, bool):
            raise ConvergenceError(f"slope_scale must be a number, got {slope_scale!r}")
        self.slope_scale = float(slope_scale)

    def solve(
        self,
        stack: Stack3D,
        via: TSV | TSVCluster,
        power: PowerSpec,
        *,
        initial: ModelResult | None = None,
    ) -> NonlinearResult:
        """Iterate until max ΔT stabilises.

        ``initial`` optionally supplies the constant-k first solve (the
        plain ``model.solve(stack, via, power)`` result).  Solves are
        deterministic, so passing a precomputed one is bit-identical to
        letting the loop solve it — the execution-plan scheduler uses this
        to share the linear baseline with steady-state scenarios.
        """
        rises: tuple[float, ...] | None = None
        history: list[float] = []
        result = initial if initial is not None else self.model.solve(stack, via, power)
        history.append(result.max_rise)
        rises = result.plane_rises
        stack = scale_conductivity_slopes(stack, self.slope_scale)
        for iteration in range(1, self.max_iterations + 1):
            hot_stack = _stack_at_temperatures(stack, rises)
            result = self.model.solve(hot_stack, via, power)
            new_rises = tuple(
                (1.0 - self.relaxation) * old + self.relaxation * new
                for old, new in zip(rises, result.plane_rises)
            )
            history.append(result.max_rise)
            change = abs(history[-1] - history[-2]) / max(history[-1], 1e-30)
            rises = new_rises
            if change < self.tolerance:
                return NonlinearResult(
                    result=result, iterations=iteration, history=tuple(history)
                )
        raise ConvergenceError(
            f"k(T) iteration did not converge in {self.max_iterations} steps "
            f"(last change {change:.2e})"
        )
