"""Parameter-sweep engine.

Every figure of the paper is a sweep: vary one parameter (radius, liner
thickness, substrate thickness, cluster size), run several models on each
point, and compare the resulting max-ΔT series.  :func:`sweep` captures that
pattern once; the experiment modules supply the per-point configuration
callback.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

from ..errors import ValidationError
from ..geometry import PowerSpec, Stack3D, TSV, TSVCluster
from .base import ThermalTSVModel
from .result import ModelResult

#: a configuration callback maps a swept value to (stack, via, power)
Configurator = Callable[[Any], tuple[Stack3D, "TSV | TSVCluster", PowerSpec]]


@dataclass(frozen=True)
class SweepPoint:
    """All model results at one swept value."""

    value: Any
    results: dict[str, ModelResult]

    def rise(self, model_name: str) -> float:
        try:
            return self.results[model_name].max_rise
        except KeyError:
            known = ", ".join(self.results)
            raise ValidationError(
                f"no model {model_name!r} at sweep point {self.value!r}; "
                f"known: {known}"
            ) from None


@dataclass(frozen=True)
class SweepResult:
    """A completed sweep: one :class:`SweepPoint` per value."""

    parameter: str
    points: tuple[SweepPoint, ...]
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def values(self) -> list[Any]:
        return [p.value for p in self.points]

    @property
    def model_names(self) -> list[str]:
        if not self.points:
            return []
        return list(self.points[0].results)

    def series(self, model_name: str) -> list[float]:
        """Max-ΔT values of one model across the sweep."""
        return [p.rise(model_name) for p in self.points]

    def result_series(self, model_name: str) -> list[ModelResult]:
        """Full results of one model across the sweep."""
        return [p.results[model_name] for p in self.points]

    def rows(self) -> list[list[Any]]:
        """Tabular view: one row per swept value, one column per model."""
        names = self.model_names
        out: list[list[Any]] = [["value", *names]]
        for p in self.points:
            out.append([p.value, *(p.rise(n) for n in names)])
        return out


def sweep(
    parameter: str,
    values: Iterable[Any],
    models: Sequence[ThermalTSVModel],
    configure: Configurator,
    *,
    metadata: dict[str, Any] | None = None,
) -> SweepResult:
    """Run every model at every swept value.

    Parameters
    ----------
    parameter:
        Name of the swept quantity (for reports).
    values:
        The swept values, in plot order.
    models:
        Model instances; their ``name`` attributes index the results and
        must be unique.
    configure:
        Callback mapping a swept value to the (stack, via, power) triple
        the models should solve.
    """
    models = list(models)
    names = [m.name for m in models]
    if len(set(names)) != len(names):
        raise ValidationError(f"model names must be unique, got {names}")
    points: list[SweepPoint] = []
    for value in values:
        stack, via, power = configure(value)
        results = {m.name: m.solve(stack, via, power) for m in models}
        points.append(SweepPoint(value=value, results=results))
    if not points:
        raise ValidationError("sweep needs at least one value")
    return SweepResult(
        parameter=parameter, points=tuple(points), metadata=metadata or {}
    )
