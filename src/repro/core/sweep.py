"""Parameter-sweep engine.

Every figure of the paper is a sweep: vary one parameter (radius, liner
thickness, substrate thickness, cluster size), run several models on each
point, and compare the resulting max-ΔT series.  :func:`sweep` captures that
pattern once; the experiment modules supply the per-point configuration
callback.

Execution is pluggable: the default :class:`~repro.perf.SerialExecutor`
runs the historical in-process loop, while
:class:`~repro.perf.ParallelExecutor` fans sweep points out over a process
pool (the CLI's ``--jobs N``).  Either way the configure callback runs in
the parent, results come back in sweep order, and — because every solve is
deterministic — serial and parallel sweeps are numerically identical.

Solved points are also memoized in the global result cache keyed on
(model, stack, via, power) content: calibration samples that overlap the
sweep grid and repeated sweeps under multi-scenario traffic skip the
solves entirely.  Cache lookups happen in the parent before dispatch, so
caching never changes which results a sweep returns.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

from ..errors import ValidationError
from ..geometry import PowerSpec, Stack3D, TSV, TSVCluster
from ..perf import PointTask, SerialExecutor, SweepExecutor, result_cache, solve_key
from .base import ThermalTSVModel
from .result import ModelResult

#: a configuration callback maps a swept value to (stack, via, power)
Configurator = Callable[[Any], tuple[Stack3D, "TSV | TSVCluster", PowerSpec]]


def expand_points(
    values: Sequence[Any], configure: Configurator
) -> list[tuple[Stack3D, "TSV | TSVCluster", PowerSpec]]:
    """The (stack, via, power) triple at every swept value, in sweep order.

    This is the "emit" half of a sweep: the execution-plan compiler
    (:mod:`repro.scenarios.plan`) lowers these triples into content-keyed
    solve nodes instead of dispatching them directly.
    """
    return [configure(value) for value in values]


def assemble_sweep(
    parameter: str,
    values: Sequence[Any],
    model_names: Sequence[str],
    point_results: Sequence[dict[str, ModelResult]],
    metadata: dict[str, Any] | None = None,
) -> SweepResult:
    """Build a :class:`SweepResult` from already-solved per-point results.

    ``point_results[i]`` must hold one :class:`ModelResult` per model name
    at ``values[i]``; the result dicts are re-keyed in ``model_names``
    order so assembly is independent of solve order (serial, parallel, or
    plan-scheduled execution produce identical sweeps).
    """
    points = [
        SweepPoint(
            value=value,
            results={name: point_results[i][name] for name in model_names},
        )
        for i, value in enumerate(values)
    ]
    return SweepResult(
        parameter=parameter, points=tuple(points), metadata=metadata or {}
    )


@dataclass(frozen=True)
class SweepPoint:
    """All model results at one swept value."""

    value: Any
    results: dict[str, ModelResult]

    def rise(self, model_name: str) -> float:
        try:
            return self.results[model_name].max_rise
        except KeyError:
            known = ", ".join(self.results)
            raise ValidationError(
                f"no model {model_name!r} at sweep point {self.value!r}; "
                f"known: {known}"
            ) from None


@dataclass(frozen=True)
class SweepResult:
    """A completed sweep: one :class:`SweepPoint` per value."""

    parameter: str
    points: tuple[SweepPoint, ...]
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def values(self) -> list[Any]:
        return [p.value for p in self.points]

    @property
    def model_names(self) -> list[str]:
        if not self.points:
            return []
        return list(self.points[0].results)

    def series(self, model_name: str) -> list[float]:
        """Max-ΔT values of one model across the sweep."""
        return [p.rise(model_name) for p in self.points]

    def result_series(self, model_name: str) -> list[ModelResult]:
        """Full results of one model across the sweep."""
        return [p.results[model_name] for p in self.points]

    def rows(self) -> list[list[Any]]:
        """Tabular view: one row per swept value, one column per model."""
        names = self.model_names
        out: list[list[Any]] = [["value", *names]]
        for p in self.points:
            out.append([p.value, *(p.rise(n) for n in names)])
        return out


def sweep(
    parameter: str,
    values: Iterable[Any],
    models: Sequence[ThermalTSVModel],
    configure: Configurator,
    *,
    metadata: dict[str, Any] | None = None,
    executor: SweepExecutor | None = None,
    cache: bool = True,
) -> SweepResult:
    """Run every model at every swept value.

    Parameters
    ----------
    parameter:
        Name of the swept quantity (for reports).
    values:
        The swept values, in plot order.
    models:
        Model instances; their ``name`` attributes index the results and
        must be unique.
    configure:
        Callback mapping a swept value to the (stack, via, power) triple
        the models should solve.
    executor:
        Execution strategy for the point solves; defaults to the serial
        in-process loop.  Pass a :class:`~repro.perf.ParallelExecutor` to
        fan points out over worker processes.
    cache:
        Consult/populate the global result cache for each (model, point)
        pair (default on; identical results either way).
    """
    models = list(models)
    names = [m.name for m in models]
    if len(set(names)) != len(names):
        raise ValidationError(f"model names must be unique, got {names}")
    values = list(values)
    if not values:
        raise ValidationError("sweep needs at least one value")
    executor = executor or SerialExecutor()
    specs = expand_points(values, configure)

    # parent-side cache partition: dispatch only the missing solves
    point_results: list[dict[str, ModelResult]] = [{} for _ in values]
    point_keys: list[dict[str, str]] = [{} for _ in values]
    tasks: list[PointTask] = []
    for i, (stack, via, power) in enumerate(specs):
        missing: list[ThermalTSVModel] = []
        for m in models:
            key = solve_key(m, stack, via, power) if cache else None
            cached = result_cache.get(key) if key is not None else None
            if cached is not None:
                point_results[i][m.name] = cached
            else:
                if key is not None:
                    point_keys[i][m.name] = key
                missing.append(m)
        if missing:
            tasks.append(
                PointTask(
                    index=i,
                    value=values[i],
                    stack=stack,
                    via=via,
                    power=power,
                    models=tuple(missing),
                )
            )

    for task, solved in zip(tasks, executor.run_tasks(tasks)):
        point_results[task.index].update(solved)
        for name, result in solved.items():
            key = point_keys[task.index].get(name)
            if key is not None:
                result_cache.put(key, result)

    return assemble_sweep(parameter, values, names, point_results, metadata)
