"""Model A — the paper's lumped compact resistive network (Section II).

Each plane contributes one *bulk* node and one *via-metal* node; the
resistance triple of :mod:`repro.resistances.model_a_set` links them to the
plane below, and the lumped first-plane substrate Rs ties the whole ladder
to the heat-sink ground (Fig. 2).  ``ModelA.solve`` assembles this network
with the generic :class:`~repro.network.ThermalCircuit` stamper; for the
paper's three-plane case :func:`solve_three_plane_closed_form` additionally
writes out Eqs. (1)–(6) literally, which the test-suite uses to verify the
generic assembly.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import GeometryError
from ..geometry import PowerSpec, Stack3D, TSV, TSVCluster, validate_tsv_in_stack
from ..geometry.tsv import as_cluster
from ..network import GROUND, ThermalCircuit
from ..network.solve import DENSE_CUTOFF
from ..perf import content_key
from ..resistances import (
    FittingCoefficients,
    ModelAResistances,
    compute_model_a_resistances,
)
from .base import AssembledSystem, ThermalTSVModel
from .result import ModelResult


def bulk_node(plane_index: int) -> str:
    """Name of plane ``plane_index``'s bulk node (0-based)."""
    return f"bulk{plane_index + 1}"


def metal_node(plane_index: int) -> str:
    """Name of plane ``plane_index``'s via-metal node (0-based)."""
    return f"tsv{plane_index + 1}"


#: name of the via-bottom node (the paper's T0)
T0_NODE = "t0"


def build_model_a_circuit(
    resistances: ModelAResistances, plane_heats: tuple[float, ...]
) -> ThermalCircuit:
    """Assemble the Fig. 2 network for any number of planes.

    ``plane_heats[j]`` (watts) is injected at plane j's bulk node, matching
    the q1–q3 sources of the paper.
    """
    if len(plane_heats) != resistances.n_planes:
        raise GeometryError(
            f"{resistances.n_planes} planes but {len(plane_heats)} heat values"
        )
    circuit = ThermalCircuit()
    circuit.add_resistor(T0_NODE, GROUND, resistances.rs, label="Rs")
    for j, triple in enumerate(resistances.planes):
        below_bulk = T0_NODE if j == 0 else bulk_node(j - 1)
        below_metal = T0_NODE if j == 0 else metal_node(j - 1)
        circuit.add_resistor(bulk_node(j), below_bulk, triple.bulk, label=f"Rbulk{j + 1}")
        circuit.add_resistor(metal_node(j), below_metal, triple.metal, label=f"Rmetal{j + 1}")
        circuit.add_resistor(bulk_node(j), metal_node(j), triple.liner, label=f"Rliner{j + 1}")
        circuit.add_source(bulk_node(j), plane_heats[j], label=f"q{j + 1}")
    return circuit


class ModelA(ThermalTSVModel):
    """The lumped Model A with fitting coefficients.

    Parameters
    ----------
    fit:
        Fitting coefficients (k1, k2, c_bond).  Defaults to the paper's
        block values k1 = 1.3, k2 = 0.55 used throughout Figs. 4–7.
    exact_area:
        Use the exact n-via occupied area in the bulk-area term (ablation;
        the paper keeps the single-via area).
    """

    name = "model_a"

    def __init__(
        self,
        fit: FittingCoefficients | None = None,
        *,
        exact_area: bool = False,
    ) -> None:
        self.fit = fit or FittingCoefficients.paper_block()
        self.exact_area = exact_area

    def resistances(self, stack: Stack3D, via: TSV | TSVCluster) -> ModelAResistances:
        """The Eq. (7)–(16) resistance set this model will solve."""
        return compute_model_a_resistances(
            stack, via, self.fit, exact_area=self.exact_area
        )

    def batch_class_key(self, stack: Stack3D, via: TSV | TSVCluster) -> str | None:
        """Stack any same-plane-count Model A points, whatever their fit.

        The network topology depends only on the plane count, so every
        point with ``n_planes`` planes — across radii, liner thicknesses,
        even across differently calibrated Model A instances — assembles
        a congruent ``2·n_planes + 1`` node system and may ride one
        batched dense solve.
        """
        if 2 * stack.n_planes + 1 > DENSE_CUTOFF:
            return None  # pragma: no cover - would need a ~100-plane stack
        return content_key("stacked_class/model_a/v1", stack.n_planes)

    def assemble_system(
        self, stack: Stack3D, via: TSV | TSVCluster, power: PowerSpec
    ) -> AssembledSystem:
        """Stamp the Fig. 2 system directly, skipping the circuit object.

        The dense matrix is stamped in exactly
        :func:`build_model_a_circuit`'s edge order with the same
        ``g = 1/R`` accumulation, so it is bit-identical to
        ``circuit.conductance_matrix(sparse=False)`` — and therefore the
        stacked solve reproduces :meth:`solve`'s temperatures bit-for-bit
        (asserted by the identity tests) while avoiding the per-point
        circuit build and sparse-COO round-trip on the hot sweep path.
        """
        cluster = as_cluster(via)
        validate_tsv_in_stack(stack, cluster.member)
        heats = tuple(power.plane_heat(stack, j) for j in range(stack.n_planes))
        start = time.perf_counter()
        resistances = self.resistances(stack, cluster)
        n_planes = stack.n_planes
        n = 2 * n_planes + 1
        matrix = np.zeros((n, n))
        rhs = np.zeros(n)

        def stamp(ia: int, ib: int | None, resistance: float) -> None:
            g = 1.0 / resistance
            matrix[ia, ia] += g
            if ib is not None:
                matrix[ib, ib] += g
                matrix[ia, ib] -= g
                matrix[ib, ia] -= g

        # node order matches circuit insertion: t0=0, bulk_j=2j+1, metal_j=2j+2
        stamp(0, None, resistances.rs)  # Rs: t0 — ground
        for j, triple in enumerate(resistances.planes):
            bulk, metal = 2 * j + 1, 2 * j + 2
            stamp(bulk, 0 if j == 0 else bulk - 2, triple.bulk)
            stamp(metal, 0 if j == 0 else metal - 2, triple.metal)
            stamp(bulk, metal, triple.liner)
            rhs[bulk] += heats[j]

        node_names = [T0_NODE]
        for j in range(n_planes):
            node_names.extend((bulk_node(j), metal_node(j)))

        def finish(temps: np.ndarray) -> ModelResult:
            elapsed = time.perf_counter() - start
            temperatures = {
                name: float(temps[i]) for i, name in enumerate(node_names)
            }
            return ModelResult(
                model_name=self.name,
                max_rise=max(temperatures.values()),
                plane_rises=tuple(
                    temperatures[bulk_node(j)] for j in range(n_planes)
                ),
                sink_temperature=stack.sink_temperature,
                solve_time=elapsed,
                n_unknowns=n,
                node_temperatures=temperatures,
                metadata={
                    "k1": self.fit.k1,
                    "k2": self.fit.k2,
                    "c_bond": self.fit.c_bond,
                    "cluster_count": cluster.count,
                },
            )

        return AssembledSystem(matrix=matrix, rhs=rhs, finish=finish)

    def _solve(
        self, stack: Stack3D, via: TSVCluster, power: PowerSpec
    ) -> ModelResult:
        heats = tuple(power.plane_heat(stack, j) for j in range(stack.n_planes))
        start = time.perf_counter()
        resistances = self.resistances(stack, via)
        circuit = build_model_a_circuit(resistances, heats)
        solution = circuit.solve()
        elapsed = time.perf_counter() - start
        plane_rises = tuple(solution[bulk_node(j)] for j in range(stack.n_planes))
        return ModelResult(
            model_name=self.name,
            max_rise=solution.max_rise,
            plane_rises=plane_rises,
            sink_temperature=stack.sink_temperature,
            solve_time=elapsed,
            n_unknowns=circuit.n_nodes,
            node_temperatures=dict(solution.temperatures),
            metadata={
                "k1": self.fit.k1,
                "k2": self.fit.k2,
                "c_bond": self.fit.c_bond,
                "cluster_count": via.count,
            },
        )


def solve_three_plane_closed_form(
    stack: Stack3D,
    via: TSV | TSVCluster,
    power: PowerSpec,
    fit: FittingCoefficients | None = None,
) -> dict[str, float]:
    """Literal Eqs. (1)–(6) for a three-plane stack.

    Returns the temperatures ``{"T0": ..., ..., "T5": ...}`` of Fig. 2.
    Kept as an independent implementation (explicit 6×6 system in the
    paper's own variables) to cross-validate the generic network assembly.
    """
    if stack.n_planes != 3:
        raise GeometryError("the closed form covers exactly three planes")
    fit = fit or FittingCoefficients.paper_block()
    cluster = as_cluster(via)
    r1, r2, r3, r4, r5, r6, r7, r8, r9, rs = compute_model_a_resistances(
        stack, cluster, fit
    ).as_paper_tuple()
    q1, q2, q3 = (power.plane_heat(stack, j) for j in range(3))
    r89 = r8 + r9

    # unknowns x = [T0, T1, T2, T3, T4, T5]
    a = np.zeros((6, 6))
    b = np.zeros(6)
    # (1) q3 = (T5-T3)/R7 + (T5-T4)/(R8+R9)
    a[0, 5] = 1.0 / r7 + 1.0 / r89
    a[0, 3] = -1.0 / r7
    a[0, 4] = -1.0 / r89
    b[0] = q3
    # (2) q2 + (T5-T3)/R7 = (T3-T4)/R6 + (T3-T1)/R4
    a[1, 5] = 1.0 / r7
    a[1, 3] = -1.0 / r7 - 1.0 / r6 - 1.0 / r4
    a[1, 4] = 1.0 / r6
    a[1, 1] = 1.0 / r4
    b[1] = -q2
    # (3) (T3-T4)/R6 + (T5-T4)/(R8+R9) = (T4-T2)/R5
    a[2, 3] = 1.0 / r6
    a[2, 5] = 1.0 / r89
    a[2, 4] = -1.0 / r6 - 1.0 / r89 - 1.0 / r5
    a[2, 2] = 1.0 / r5
    b[2] = 0.0
    # (4) q1 + (T3-T1)/R4 = (T1-T2)/R3 + (T1-T0)/R1
    a[3, 3] = 1.0 / r4
    a[3, 1] = -1.0 / r4 - 1.0 / r3 - 1.0 / r1
    a[3, 2] = 1.0 / r3
    a[3, 0] = 1.0 / r1
    b[3] = -q1
    # (5) (T1-T2)/R3 + (T4-T2)/R5 = (T2-T0)/R2
    a[4, 1] = 1.0 / r3
    a[4, 4] = 1.0 / r5
    a[4, 2] = -1.0 / r3 - 1.0 / r5 - 1.0 / r2
    a[4, 0] = 1.0 / r2
    b[4] = 0.0
    # (6) T0 = Rs (q1 + q2 + q3)
    a[5, 0] = 1.0
    b[5] = rs * (q1 + q2 + q3)

    t = np.linalg.solve(a, b)
    return {f"T{i}": float(t[i]) for i in range(6)}
