"""The traditional 1-D TTSV model (the paper's baseline, refs [1], [2], [9]).

The via is "a vertical lumped thermal resistor in each physical plane,
proportional to the length and inversely proportional to the diameter"
(Section I).  Per plane the via resistor sits in parallel with the bulk
slab between the plane nodes, heat flows strictly downward and there is no
lateral liner path and no fitting coefficient.

Consequences the paper demonstrates (Section IV):

* the liner thickness barely matters (it only nudges the bulk area),
* ΔT grows monotonically with the substrate thickness (no lateral relief),
* splitting one via into n thinner ones changes nothing (the total metal
  cross-section — hence the lumped resistor — is preserved),
* the error grows with the via aspect ratio, overestimating ΔT because the
  lateral heat entry into the via (path 2 of Fig. 1(b)) is ignored.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from ..geometry import PowerSpec, Stack3D, TSVCluster
from ..resistances.primitives import parallel
from .base import ThermalTSVModel
from .result import ModelResult


@dataclass(frozen=True, slots=True)
class PlaneLink1D:
    """The single series link between plane j−1 and plane j (K/W)."""

    bulk: float
    via: float

    @property
    def combined(self) -> float:
        return parallel((self.bulk, self.via))


def build_1d_links(
    stack: Stack3D, via: TSVCluster, *, include_liner_area: bool = True
) -> tuple[list[PlaneLink1D], float]:
    """Per-plane (bulk ∥ via) links plus the lumped first-substrate Rs.

    Spans follow the same Fig. 2 conventions as Model A (plane 1:
    tD + l_ext; middle: tD + tSi + tb; last: via over tSi + tb) but with
    no k1/k2/c coefficients and no lateral liner resistance.
    """
    tsv = via.base
    member = via.member
    area = stack.footprint_area - via.total_occupied_area
    metal_area = math.pi * tsv.radius**2  # preserved under clustering
    liner_area = via.count * math.pi * (member.outer_radius**2 - member.radius**2)
    k_fill = tsv.fill.thermal_conductivity
    k_liner = tsv.liner.thermal_conductivity

    links: list[PlaneLink1D] = []
    for j, plane in stack.iter_planes():
        t_ild = plane.ild.thickness
        k_ild = plane.ild.conductivity
        t_si = plane.substrate.thickness
        k_si = plane.substrate.conductivity
        if j == 0:
            span = t_ild + tsv.extension
            bulk_sum = t_ild / k_ild + tsv.extension / k_si
        else:
            bond = stack.bond_below(j)
            k_bond = bond.material.thermal_conductivity
            bulk_sum = t_ild / k_ild + t_si / k_si + bond.thickness / k_bond
            last = j == stack.n_planes - 1
            span = (t_si + bond.thickness) if last else (t_ild + t_si + bond.thickness)
        via_conductance = k_fill * metal_area / span
        if include_liner_area:
            via_conductance += k_liner * liner_area / span
        links.append(PlaneLink1D(bulk=bulk_sum / area, via=1.0 / via_conductance))

    first = stack.planes[0].substrate
    rs = (first.thickness - tsv.extension) / (
        first.conductivity * stack.footprint_area
    )
    return links, rs


class Model1D(ThermalTSVModel):
    """The traditional vertical-only baseline (coefficient-free).

    Parameters
    ----------
    include_liner_area:
        Count the liner annulus as a (poorly conducting) parallel vertical
        path inside the via resistor.  Either choice leaves the baseline
        blind to the lateral effects the paper studies.
    """

    name = "model_1d"

    def __init__(self, *, include_liner_area: bool = True) -> None:
        self.include_liner_area = include_liner_area

    def _solve(
        self, stack: Stack3D, via: TSVCluster, power: PowerSpec
    ) -> ModelResult:
        start = time.perf_counter()
        links, rs = build_1d_links(
            stack, via, include_liner_area=self.include_liner_area
        )
        heats = [power.plane_heat(stack, j) for j in range(stack.n_planes)]
        # heat entering at plane j crosses every link at or below j, plus Rs
        plane_rises: list[float] = []
        temperature = rs * sum(heats)
        for j, link in enumerate(links):
            crossing = sum(heats[j:])
            temperature += link.combined * crossing
            plane_rises.append(temperature)
        elapsed = time.perf_counter() - start
        return ModelResult(
            model_name=self.name,
            max_rise=max(plane_rises),
            plane_rises=tuple(plane_rises),
            sink_temperature=stack.sink_temperature,
            solve_time=elapsed,
            n_unknowns=len(links) + 1,
            metadata={
                "include_liner_area": self.include_liner_area,
                "cluster_count": via.count,
            },
        )
