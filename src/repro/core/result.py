"""Model results.

Every model (A, B, 1-D, FEM reference) returns a :class:`ModelResult` so
experiments can sweep and compare them uniformly.  Temperatures are stored
as *rises* ΔT above the heat-sink face, the quantity the paper plots;
absolute temperatures add the stack's sink temperature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import ValidationError


@dataclass(frozen=True)
class ModelResult:
    """Outcome of one steady-state thermal solve.

    Parameters
    ----------
    model_name:
        E.g. ``"model_a"``, ``"model_b(100)"``, ``"model_1d"``, ``"fem"``.
    max_rise:
        Maximum temperature rise ΔT in kelvin (== °C of rise).
    plane_rises:
        ΔT at the representative (bulk) node of each plane, bottom-up.
    node_temperatures:
        Full node map for network models (may be empty for field solvers).
    sink_temperature:
        Absolute sink temperature in °C used for absolute readouts.
    solve_time:
        Wall-clock seconds spent solving (assembly + factorisation).
    n_unknowns:
        Size of the solved linear system.
    metadata:
        Free-form extras (segment counts, mesh sizes, ...).
    """

    model_name: str
    max_rise: float
    plane_rises: tuple[float, ...]
    sink_temperature: float
    solve_time: float
    n_unknowns: int
    node_temperatures: dict[Any, float] = field(default_factory=dict)
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.model_name:
            raise ValidationError("model_name must be non-empty")
        if self.n_unknowns < 0:
            raise ValidationError("n_unknowns must be non-negative")

    @property
    def max_temperature(self) -> float:
        """Absolute maximum temperature in °C (sink + ΔT)."""
        return self.sink_temperature + self.max_rise

    def plane_rise(self, plane_index: int) -> float:
        """ΔT of one plane (0-based, bottom-up)."""
        try:
            return self.plane_rises[plane_index]
        except IndexError:
            raise ValidationError(
                f"plane {plane_index} out of range; result has "
                f"{len(self.plane_rises)} planes"
            ) from None

    def summary(self) -> str:
        """One-line human-readable summary."""
        rises = ", ".join(f"{t:.2f}" for t in self.plane_rises)
        return (
            f"{self.model_name}: max ΔT = {self.max_rise:.2f} K "
            f"(planes: [{rises}] K, {self.n_unknowns} unknowns, "
            f"{self.solve_time * 1e3:.2f} ms)"
        )

    def to_payload(self) -> dict[str, Any]:
        """JSON-serialisable dump for the run store's point-level objects.

        Everything experiment assembly consumes (``max_rise``,
        ``plane_rises``, ``solve_time``, …) round-trips exactly — JSON
        preserves doubles — so a point resumed from the store assembles
        byte-identically to a freshly solved one.  ``node_temperatures``
        is included only when its keys are strings (network node ids can
        be tuples, which JSON objects cannot key); assembly never reads
        it.
        """
        payload: dict[str, Any] = {
            "model_name": self.model_name,
            "max_rise": self.max_rise,
            "plane_rises": list(self.plane_rises),
            "sink_temperature": self.sink_temperature,
            "solve_time": self.solve_time,
            "n_unknowns": self.n_unknowns,
            "metadata": self.metadata,
        }
        if self.node_temperatures and all(
            isinstance(k, str) for k in self.node_temperatures
        ):
            payload["node_temperatures"] = dict(self.node_temperatures)
        return payload

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "ModelResult":
        """Rebuild a result from :meth:`to_payload` output (store/JSON)."""
        try:
            return cls(
                model_name=payload["model_name"],
                max_rise=float(payload["max_rise"]),
                plane_rises=tuple(payload["plane_rises"]),
                sink_temperature=float(payload["sink_temperature"]),
                solve_time=float(payload["solve_time"]),
                n_unknowns=int(payload["n_unknowns"]),
                node_temperatures=dict(payload.get("node_temperatures", {})),
                metadata=dict(payload.get("metadata", {})),
            )
        except (KeyError, TypeError) as exc:
            raise ValidationError(f"malformed point payload: {exc!r}") from exc
