"""Abstract interface shared by every thermal TSV model."""

from __future__ import annotations

import abc

from ..geometry import PowerSpec, Stack3D, TSV, TSVCluster, validate_tsv_in_stack
from ..geometry.tsv import as_cluster
from .result import ModelResult


class ThermalTSVModel(abc.ABC):
    """A steady-state thermal model of a TTSV-equipped 3-D stack.

    Concrete models implement :meth:`_solve`; the public :meth:`solve`
    validates the geometry first so all models reject the same bad inputs.
    """

    #: short identifier used in reports and sweeps
    name: str = "abstract"

    def solve(
        self, stack: Stack3D, via: TSV | TSVCluster, power: PowerSpec
    ) -> ModelResult:
        """Compute the steady-state temperature rises.

        Parameters
        ----------
        stack:
            The N-plane 3-D stack.
        via:
            A single TTSV or an Eq.-(22) cluster.
        power:
            Heat generation specification.
        """
        cluster = as_cluster(via)
        validate_tsv_in_stack(stack, cluster.member)
        return self._solve(stack, cluster, power)

    @abc.abstractmethod
    def _solve(
        self, stack: Stack3D, via: TSVCluster, power: PowerSpec
    ) -> ModelResult:
        """Model-specific solve; ``via`` is already normalised to a cluster."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
