"""Abstract interface shared by every thermal TSV model."""

from __future__ import annotations

import abc
from collections.abc import Sequence

from ..geometry import PowerSpec, Stack3D, TSV, TSVCluster, validate_tsv_in_stack
from ..geometry.tsv import as_cluster
from .result import ModelResult


class ThermalTSVModel(abc.ABC):
    """A steady-state thermal model of a TTSV-equipped 3-D stack.

    Concrete models implement :meth:`_solve`; the public :meth:`solve`
    validates the geometry first so all models reject the same bad inputs.
    """

    #: short identifier used in reports and sweeps
    name: str = "abstract"

    def solve(
        self, stack: Stack3D, via: TSV | TSVCluster, power: PowerSpec
    ) -> ModelResult:
        """Compute the steady-state temperature rises.

        Parameters
        ----------
        stack:
            The N-plane 3-D stack.
        via:
            A single TTSV or an Eq.-(22) cluster.
        power:
            Heat generation specification.
        """
        cluster = as_cluster(via)
        validate_tsv_in_stack(stack, cluster.member)
        return self._solve(stack, cluster, power)

    def assembly_key(
        self, stack: Stack3D, via: TSV | TSVCluster
    ) -> str | None:
        """Content hash of the assembled linear system, or None.

        The key identifies the system *matrix* a solve at (stack, via)
        assembles — everything except the power-dependent right-hand
        side.  Two points returning the same non-None key are guaranteed
        to share the exact matrix and may be dispatched as one
        :meth:`solve_batch` matrix group (factor once, back-substitute
        per point).  The default — models that do not declare a
        power-independent assembly — is ``None``, which simply opts the
        model out of matrix grouping.
        """
        return None

    def solve_batch(
        self,
        stack: Stack3D,
        via: TSV | TSVCluster,
        powers: Sequence[PowerSpec],
    ) -> list[ModelResult]:
        """Solve one (stack, via) geometry under many power specs.

        Results are positionally aligned with ``powers`` and must be
        bit-for-bit identical to per-point :meth:`solve` calls (wall-clock
        ``solve_time`` excepted) — the matrix-batched scheduler relies on
        this to regroup work freely.  The default loops over
        :meth:`solve`; models with a power-independent assembly
        (see :meth:`assembly_key`) override it to factorise once.
        """
        return [self.solve(stack, via, power) for power in powers]

    @abc.abstractmethod
    def _solve(
        self, stack: Stack3D, via: TSVCluster, power: PowerSpec
    ) -> ModelResult:
        """Model-specific solve; ``via`` is already normalised to a cluster."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"
