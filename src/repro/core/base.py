"""Abstract interface shared by every thermal TSV model."""

from __future__ import annotations

import abc
import dataclasses
from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from ..geometry import PowerSpec, Stack3D, TSV, TSVCluster, validate_tsv_in_stack
from ..geometry.tsv import as_cluster
from .result import ModelResult


@dataclasses.dataclass(frozen=True)
class AssembledSystem:
    """One point's linear system, detached from its model for stacking.

    ``matrix`` (``(n, n)`` — dense ndarray or scipy.sparse) and ``rhs``
    (``(n,)``) are exactly what the model's own solve would pass to the
    matching back-end; ``finish`` turns the solved temperature vector
    back into the model's :class:`~repro.core.result.ModelResult`,
    bit-identical to a solo :meth:`ThermalTSVModel.solve` (wall-clock
    ``solve_time`` excepted).  A batch class is all-dense or all-sparse:
    dense systems ride the batched LAPACK call, sparse ones the
    block-diagonal natural-ordering factorisation.
    """

    matrix: Any
    rhs: np.ndarray
    finish: Callable[[np.ndarray], ModelResult]


class ThermalTSVModel(abc.ABC):
    """A steady-state thermal model of a TTSV-equipped 3-D stack.

    Concrete models implement :meth:`_solve`; the public :meth:`solve`
    validates the geometry first so all models reject the same bad inputs.
    """

    #: short identifier used in reports and sweeps
    name: str = "abstract"

    def solve(
        self, stack: Stack3D, via: TSV | TSVCluster, power: PowerSpec
    ) -> ModelResult:
        """Compute the steady-state temperature rises.

        Parameters
        ----------
        stack:
            The N-plane 3-D stack.
        via:
            A single TTSV or an Eq.-(22) cluster.
        power:
            Heat generation specification.
        """
        cluster = as_cluster(via)
        validate_tsv_in_stack(stack, cluster.member)
        return self._solve(stack, cluster, power)

    def assembly_key(
        self, stack: Stack3D, via: TSV | TSVCluster
    ) -> str | None:
        """Content hash of the assembled linear system, or None.

        The key identifies the system *matrix* a solve at (stack, via)
        assembles — everything except the power-dependent right-hand
        side.  Two points returning the same non-None key are guaranteed
        to share the exact matrix and may be dispatched as one
        :meth:`solve_batch` matrix group (factor once, back-substitute
        per point).  The default — models that do not declare a
        power-independent assembly — is ``None``, which simply opts the
        model out of matrix grouping.
        """
        return None

    def batch_class_key(
        self, stack: Stack3D, via: TSV | TSVCluster
    ) -> str | None:
        """Content hash of the system's *structure*, or None.

        Coarser than :meth:`assembly_key`: two points returning the same
        non-None key assemble systems with the same node count and
        topology — possibly with entirely different coefficient values —
        and may be *stacked* into one batched solve via
        :meth:`assemble_system`: one batched dense LAPACK call
        (:func:`repro.network.solve.solve_dense_stacked`) for dense
        systems, one block-diagonal natural-ordering factorisation
        (:func:`repro.network.solve.solve_sparse_stacked`) for sparse
        ones.  A class must be homogeneous — all its members assemble
        dense or all sparse.  The default ``None`` opts the model out of
        stacking (models too large for either tier stay on the multi-RHS
        matrix-group plane instead).
        """
        return None

    def assemble_system(
        self, stack: Stack3D, via: TSV | TSVCluster, power: PowerSpec
    ) -> AssembledSystem | None:
        """Assemble this point's linear system for the stacked solve tier.

        Models returning a non-None :meth:`batch_class_key` must return an
        :class:`AssembledSystem` whose ``finish`` reproduces
        :meth:`solve`'s result bit-for-bit from the solved vector.  The
        default ``None`` means the point cannot be stacked and falls back
        to a solo :meth:`solve`.
        """
        return None

    def solve_batch(
        self,
        stack: Stack3D,
        via: TSV | TSVCluster,
        powers: Sequence[PowerSpec],
    ) -> list[ModelResult]:
        """Solve one (stack, via) geometry under many power specs.

        Results are positionally aligned with ``powers`` and must be
        bit-for-bit identical to per-point :meth:`solve` calls (wall-clock
        ``solve_time`` excepted) — the matrix-batched scheduler relies on
        this to regroup work freely.  The default loops over
        :meth:`solve`; models with a power-independent assembly
        (see :meth:`assembly_key`) override it to factorise once.
        """
        return [self.solve(stack, via, power) for power in powers]

    @abc.abstractmethod
    def _solve(
        self, stack: Stack3D, via: TSVCluster, power: PowerSpec
    ) -> ModelResult:
        """Model-specific solve; ``via`` is already normalised to a cluster."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


#: one stacked-batch member: (model, stack, via, power)
StackedMember = tuple[
    "ThermalTSVModel", Stack3D, "TSV | TSVCluster", PowerSpec
]


def solve_stacked(members: Sequence[StackedMember]) -> list[ModelResult]:
    """Solve many structurally-congruent points as one batched solve.

    Each member assembles its system via
    :meth:`ThermalTSVModel.assemble_system`.  An all-dense batch stacks
    into ``(m, n, n)`` / ``(m, n)`` arrays solved by one
    :func:`repro.network.solve.solve_dense_stacked` call; an all-sparse
    batch (small FEM meshes) runs through one block-diagonal
    :func:`repro.network.solve.solve_sparse_stacked` factorisation.
    Either way each member's ``finish`` rebuilds its
    :class:`ModelResult`; results are positionally aligned with
    ``members`` and bit-identical to per-member ``model.solve`` calls
    (wall-clock ``solve_time`` excepted).

    Any member that declines to assemble (``assemble_system`` returning
    None) — or a dense/sparse mix, which a single
    :meth:`~ThermalTSVModel.batch_class_key` never produces — drops the
    whole batch back to per-member solo solves: a safety net, not a hot
    path.
    """
    import scipy.sparse as sp

    from ..network.solve import (  # local: avoid import cycle
        solve_dense_stacked,
        solve_sparse_stacked,
    )

    if not members:
        return []
    systems = []
    for model, stack, via, power in members:
        system = model.assemble_system(stack, via, power)
        if system is None:
            return [
                model.solve(stack, via, power)
                for model, stack, via, power in members
            ]
        systems.append(system)
    sparse_count = sum(sp.issparse(s.matrix) for s in systems)
    if sparse_count == len(systems):
        temps = solve_sparse_stacked(
            [s.matrix for s in systems], [s.rhs for s in systems]
        )
    elif sparse_count:
        return [
            model.solve(stack, via, power)
            for model, stack, via, power in members
        ]
    else:
        temps = solve_dense_stacked(
            np.stack([s.matrix for s in systems]),
            np.stack([s.rhs for s in systems]),
        )
    return [system.finish(temps[i]) for i, system in enumerate(systems)]
