"""Model B — the distributed π-segment ladder (Section III, Fig. 3).

Each plane j is discretised into n_j π-segments.  A segment contributes a
vertical bulk resistor (surroundings column), a vertical metal resistor
(via column) and a lateral liner resistor linking the two columns — the
R_{3i-2} / R_{3i-1} / R_{3i} triplet of Eq. (21).  KCL at the resulting
2·nA nodes gives the sparse linear system A·T = b of Eq. (19), with the
per-plane heat q_j split evenly over the plane's ILD bulk nodes (Eq. (20)).

Two discretisation schemes are provided:

* ``"paper"`` (default) — the literal Eq. (21) assignment: within plane j
  every segment uses R_metal = RM_j/n_j and R_lateral = n_j·RL_j computed
  over the plane's whole via span, the bulk resistance is divided per
  layer, and the bond below the plane is lumped into the plane's first
  substrate segment;
* ``"uniform"`` — a plain discretisation of the continuum cylinder where
  every segment's three resistances follow from its own height (the bond
  becomes its own segment, the top-plane ILD has no via column).  Used as
  a convergence ablation.

No fitting coefficients are used in either scheme.
"""

from __future__ import annotations

import math
import time
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from ..geometry import PowerSpec, Stack3D, TSV, TSVCluster, validate_tsv_in_stack
from ..geometry.stack import LayerInterval
from ..geometry.tsv import as_cluster
from ..network import GROUND, NetworkSolution, ThermalCircuit
from ..network.solve import DENSE_CUTOFF
from ..perf import content_key, model_key
from ..resistances import compute_model_b_resistances
from ..resistances.model_a_set import _liner_lateral
from ..units import require_positive_int
from .base import AssembledSystem, ThermalTSVModel
from .result import ModelResult

#: name of the via-bottom node shared with Model A
T0_NODE = "t0"

_SCHEMES = ("paper", "uniform")


@dataclass(frozen=True, slots=True)
class SegmentScheme:
    """How many π-segments each plane receives (bottom-up)."""

    plane_segments: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.plane_segments:
            raise ValidationError("plane_segments must be non-empty")
        for n in self.plane_segments:
            require_positive_int("plane segment count", n)

    @classmethod
    def paper(cls, n_upper: int, n_planes: int = 3, n_first: int | None = None) -> "SegmentScheme":
        """The paper's convention: n_upper segments in planes 2..N and
        roughly a tenth of that in plane 1 (Table I uses (1,1), (2,20),
        (10,100), (50,500))."""
        require_positive_int("n_upper", n_upper)
        require_positive_int("n_planes", n_planes)
        if n_first is None:
            n_first = max(1, n_upper // 10)
        require_positive_int("n_first", n_first)
        return cls((n_first,) + (n_upper,) * (n_planes - 1))

    @property
    def total(self) -> int:
        """The paper's n_A = Σ n_j."""
        return sum(self.plane_segments)

    def split(self, stack: Stack3D, plane_index: int) -> tuple[int, int]:
        """(n_Si, n_ILD) for one plane: proportional to layer thickness,
        at least one ILD segment (heat must be injectable), no substrate
        segments in plane 1 (its substrate is the lumped Rs)."""
        n = self.plane_segments[plane_index]
        if plane_index == 0:
            return 0, n
        if n == 1:
            return 0, 1
        plane = stack.planes[plane_index]
        t_si = plane.substrate.thickness
        t_ild = plane.ild.thickness
        n_si = round(n * t_si / (t_si + t_ild))
        n_si = min(max(n_si, 1), n - 1)
        return n_si, n - n_si


@dataclass(frozen=True, slots=True)
class _Segment:
    """One assembled π-segment (resistances in K/W)."""

    bulk: float
    metal: float | None  # None above the via top (no metal column)
    lateral: float | None
    heat: float  # W injected at the bulk node
    plane_index: int


def _paper_segments(
    stack: Stack3D,
    via: TSVCluster,
    scheme: SegmentScheme,
    power: PowerSpec,
    bond_factor: float,
    exact_area: bool,
) -> list[_Segment]:
    """Eq. (21) segment list, bottom-up across all planes."""
    quantities = compute_model_b_resistances(
        stack, via, bond_factor=bond_factor, exact_area=exact_area
    )
    segments: list[_Segment] = []
    for j in range(stack.n_planes):
        q = quantities.planes[j]
        n_si, n_ild = scheme.split(stack, j)
        n_j = n_si + n_ild
        metal = q.metal_total / n_j
        lateral = n_j * q.liner_total
        heat_per_ild = power.plane_heat(stack, j) / n_ild
        extra_bulk = 0.0  # substrate+bond folded into the first ILD segment
        if n_si == 0 and q.substrate_bulk is not None:
            extra_bulk = q.substrate_bulk + (q.bond_bulk or 0.0)
        for i in range(n_si):
            bulk = (q.substrate_bulk or 0.0) / n_si
            if i == 0:
                bulk += q.bond_bulk or 0.0
            segments.append(_Segment(bulk, metal, lateral, 0.0, j))
        for i in range(n_ild):
            bulk = q.ild_bulk / n_ild
            if i == 0:
                bulk += extra_bulk
            segments.append(_Segment(bulk, metal, lateral, heat_per_ild, j))
    return segments


def _uniform_segments(
    stack: Stack3D,
    via: TSVCluster,
    scheme: SegmentScheme,
    power: PowerSpec,
    bond_factor: float,
    exact_area: bool,
) -> list[_Segment]:
    """Continuum discretisation: resistances from each segment's height."""
    quantities = compute_model_b_resistances(
        stack, via, bond_factor=bond_factor, exact_area=exact_area
    )
    tsv = via.base
    z_bottom, z_top = stack.tsv_span(tsv.extension)
    area = stack.footprint_area - (
        via.total_occupied_area if exact_area else tsv.occupied_area
    )
    metal_area = math.pi * tsv.radius**2
    k_fill = tsv.fill.thermal_conductivity

    def sub_layers(j: int) -> list[tuple[float, float, bool]]:
        """(height, conductivity, is_ild) pieces of plane j, bottom-up.

        Plane 1 contributes only the via-spanning sliver l_ext + ILD1
        (its substrate bulk is the lumped Rs, as in the paper scheme).
        """
        plane = stack.planes[j]
        pieces: list[tuple[float, float, bool]] = []
        if j == 0:
            if tsv.extension > 0.0:
                pieces.append((tsv.extension, plane.substrate.conductivity, False))
        else:
            bond = stack.bond_below(j)
            pieces.append(
                (bond.thickness, bond.material.thermal_conductivity * bond_factor, False)
            )
            pieces.append((plane.substrate.thickness, plane.substrate.conductivity, False))
        pieces.append((plane.ild.thickness, plane.ild.conductivity, True))
        return pieces

    segments: list[_Segment] = []
    z = z_bottom
    for j in range(stack.n_planes):
        n_si, n_ild = scheme.split(stack, j)
        n_j = n_si + n_ild
        heat_per_ild = power.plane_heat(stack, j) / n_ild
        pieces = sub_layers(j)
        non_ild_height = sum(h for h, _, is_ild in pieces if not is_ild)
        for height, k_layer, is_ild in pieces:
            count = n_ild if is_ild else max(
                1, round(n_si * height / non_ild_height) if non_ild_height else 1
            )
            if not is_ild and n_si == 0:
                count = 1
            dz = height / count
            for _ in range(count):
                in_span = z + dz / 2.0 < z_top
                metal = dz / (k_fill * metal_area) if in_span else None
                lateral = _liner_lateral(via, dz, 1.0) if in_span else None
                segments.append(
                    _Segment(
                        bulk=dz / (k_layer * area),
                        metal=metal,
                        lateral=lateral,
                        heat=heat_per_ild if is_ild else 0.0,
                        plane_index=j,
                    )
                )
                z += dz
    del quantities  # aggregates only needed for validation side effects
    return segments


def build_model_b_circuit(
    segments: list[_Segment], rs: float
) -> tuple[ThermalCircuit, list[str]]:
    """Wire the π-segment ladder; returns the circuit and the per-plane
    topmost bulk node names (for plane-rise readouts)."""
    circuit = ThermalCircuit()
    circuit.add_resistor(T0_NODE, GROUND, rs, label="Rs")
    prev_bulk = T0_NODE
    prev_metal: str | None = T0_NODE
    plane_top: dict[int, str] = {}
    for i, seg in enumerate(segments):
        b = f"b{i + 1}"
        circuit.add_resistor(prev_bulk, b, seg.bulk, label=f"R{3 * i + 1}")
        if seg.metal is not None and prev_metal is not None:
            m = f"m{i + 1}"
            circuit.add_resistor(prev_metal, m, seg.metal, label=f"R{3 * i + 2}")
            if seg.lateral is not None:
                circuit.add_resistor(b, m, seg.lateral, label=f"R{3 * i + 3}")
            prev_metal = m
        else:
            prev_metal = None  # the via column has ended
        if seg.heat:
            circuit.add_source(b, seg.heat, label=f"q(b{i + 1})")
        prev_bulk = b
        plane_top[seg.plane_index] = b
    top_nodes = [plane_top[j] for j in sorted(plane_top)]
    return circuit, top_nodes


class ModelB(ThermalTSVModel):
    """The distributed, coefficient-free Model B.

    Parameters
    ----------
    segments:
        Either an int n (→ the paper's ``SegmentScheme.paper(n)``: n
        segments in planes 2..N, n//10 in plane 1) or an explicit
        :class:`SegmentScheme`.
    scheme:
        ``"paper"`` for the literal Eq. (21) assignment, ``"uniform"``
        for the per-height continuum discretisation (ablation).
    bond_factor:
        Effective bond conductance multiplier (case study's c_{1,2}).
    exact_area:
        Use the exact n-via occupied area in bulk-area terms.
    """

    def __init__(
        self,
        segments: int | SegmentScheme = 100,
        *,
        scheme: str = "paper",
        bond_factor: float = 1.0,
        exact_area: bool = False,
    ) -> None:
        if scheme not in _SCHEMES:
            raise ValidationError(f"scheme must be one of {_SCHEMES}, got {scheme!r}")
        if isinstance(segments, SegmentScheme):
            self._scheme_obj: SegmentScheme | None = segments
            self._n_upper = max(segments.plane_segments)
        else:
            require_positive_int("segments", segments)
            self._scheme_obj = None
            self._n_upper = segments
        self.scheme = scheme
        self.bond_factor = bond_factor
        self.exact_area = exact_area
        self.name = f"model_b({self._n_upper})"

    def segment_scheme(self, stack: Stack3D) -> SegmentScheme:
        """The per-plane segment counts used for ``stack``."""
        if self._scheme_obj is not None:
            if len(self._scheme_obj.plane_segments) != stack.n_planes:
                raise ValidationError(
                    f"segment scheme covers {len(self._scheme_obj.plane_segments)} "
                    f"planes but the stack has {stack.n_planes}"
                )
            return self._scheme_obj
        return SegmentScheme.paper(self._n_upper, stack.n_planes)

    def _segments(
        self,
        stack: Stack3D,
        cluster: TSVCluster,
        scheme: SegmentScheme,
        power: PowerSpec,
    ) -> list[_Segment]:
        build = _paper_segments if self.scheme == "paper" else _uniform_segments
        return build(
            stack, cluster, scheme, power, self.bond_factor, self.exact_area
        )

    def _build(
        self, stack: Stack3D, cluster: TSVCluster, power: PowerSpec
    ) -> tuple[ThermalCircuit, list[str], SegmentScheme]:
        """Assemble the π-segment ladder circuit for one power spec."""
        scheme = self.segment_scheme(stack)
        segments = self._segments(stack, cluster, scheme, power)
        rs = compute_model_b_resistances(
            stack, cluster, bond_factor=self.bond_factor, exact_area=self.exact_area
        ).rs
        circuit, top_nodes = build_model_b_circuit(segments, rs)
        return circuit, top_nodes, scheme

    def _result(
        self,
        stack: Stack3D,
        cluster: TSVCluster,
        scheme: SegmentScheme,
        solution: NetworkSolution,
        top_nodes: list[str],
        n_unknowns: int,
        elapsed: float,
    ) -> ModelResult:
        return ModelResult(
            model_name=self.name,
            max_rise=solution.max_rise,
            plane_rises=tuple(solution[node] for node in top_nodes),
            sink_temperature=stack.sink_temperature,
            solve_time=elapsed,
            n_unknowns=n_unknowns,
            node_temperatures=dict(solution.temperatures),
            metadata={
                "scheme": self.scheme,
                "plane_segments": scheme.plane_segments,
                "n_segments_total": scheme.total,
                "cluster_count": cluster.count,
            },
        )

    def _solve(
        self, stack: Stack3D, via: TSVCluster, power: PowerSpec
    ) -> ModelResult:
        cluster = as_cluster(via)
        start = time.perf_counter()
        circuit, top_nodes, scheme = self._build(stack, cluster, power)
        solution = circuit.solve()
        elapsed = time.perf_counter() - start
        return self._result(
            stack, cluster, scheme, solution, top_nodes, circuit.n_nodes, elapsed
        )

    # ------------------------------------------------------------------
    # matrix-batched interface
    # ------------------------------------------------------------------
    def assembly_key(
        self, stack: Stack3D, via: TSV | TSVCluster
    ) -> str | None:
        """Content hash of Model B's conductance matrix at (stack, via).

        The π-segment resistances — and hence the assembled Eq. (19)
        matrix — depend only on the model configuration, the stack and the
        (cluster-normalised) via; power enters the Eq. (20) source vector
        alone.  Points sharing this key solve the identical matrix, so
        large-segment sweeps ride the matrix-batched dispatch plane.
        """
        return content_key(
            "model_b_assembly/v1", model_key(self), stack, as_cluster(via)
        )

    def batch_class_key(self, stack: Stack3D, via: TSV | TSVCluster) -> str | None:
        """Stack paper-scheme ladders with the same segment counts.

        Under the ``"paper"`` scheme every segment carries a metal column,
        so the ladder topology — and hence the ``1 + 2·n_A`` system
        structure — is fixed by the per-plane segment counts alone; points
        differing in geometry (and so in every resistance value) still
        stack into one batched dense solve.  The ``"uniform"`` scheme's
        topology depends on where the via span ends, so it opts out, as do
        ladders too large for the dense cutoff (the default 100-segment
        model: those ride the multi-RHS plane via :meth:`assembly_key`
        instead).
        """
        if self.scheme != "paper":
            return None
        try:
            scheme = self.segment_scheme(stack)
        except ValidationError:
            return None
        if 1 + 2 * scheme.total > DENSE_CUTOFF:
            return None
        return content_key("stacked_class/model_b/v1", scheme.plane_segments)

    def assemble_system(
        self, stack: Stack3D, via: TSV | TSVCluster, power: PowerSpec
    ) -> AssembledSystem | None:
        """Lift one ladder's dense system out for the stacked solve tier.

        The circuit is assembled exactly as :meth:`solve` would (same
        stamping, same dense matrix below the cutoff), so the stacked
        solve — per-item identical to ``numpy.linalg.solve`` — reproduces
        the solo result bit-for-bit.
        """
        if self.batch_class_key(stack, via) is None:
            return None
        cluster = as_cluster(via)
        validate_tsv_in_stack(stack, cluster.member)
        start = time.perf_counter()
        circuit, top_nodes, scheme = self._build(stack, cluster, power)
        matrix, rhs = circuit.assemble()

        def finish(temps: np.ndarray) -> ModelResult:
            elapsed = time.perf_counter() - start
            return self._result(
                stack,
                cluster,
                scheme,
                circuit.solution_from(temps),
                top_nodes,
                circuit.n_nodes,
                elapsed,
            )

        return AssembledSystem(
            matrix=np.asarray(matrix, dtype=float), rhs=rhs, finish=finish
        )

    def solve_batch(
        self,
        stack: Stack3D,
        via: TSV | TSVCluster,
        powers: Sequence[PowerSpec],
    ) -> list[ModelResult]:
        """Solve one (stack, via) ladder under many power specs.

        The circuit is assembled and its conductance matrix factorised
        once; each power spec contributes one Eq. (20) source vector and
        costs one back-substitution.  Results are bit-identical to
        per-point :meth:`solve` calls (wall-clock ``solve_time`` excepted)
        — the per-power source vector accumulates exactly the heats the
        per-point circuit build would have stamped.
        """
        powers = list(powers)
        if not powers:
            return []
        cluster = as_cluster(via)
        validate_tsv_in_stack(stack, cluster.member)
        start = time.perf_counter()
        circuit, top_nodes, scheme = self._build(stack, cluster, powers[0])
        # the first member's heats are already stamped into the circuit;
        # later members only differ in their Eq. (20) source vector
        sources = [circuit.source_vector()]
        for power in powers[1:]:
            segments = self._segments(stack, cluster, scheme, power)
            q = np.zeros(circuit.n_nodes)
            for i, seg in enumerate(segments):
                if seg.heat:
                    q[circuit.node_index(f"b{i + 1}")] += seg.heat
            sources.append(q)
        solutions = circuit.solve_many(sources)
        elapsed = time.perf_counter() - start
        return [
            self._result(
                stack, cluster, scheme, solution, top_nodes, circuit.n_nodes, elapsed
            )
            for solution in solutions
        ]
