"""Model factory: build any model from a short name.

Handy for CLI-ish entry points and for experiments that take model choices
as configuration.
"""

from __future__ import annotations

from ..errors import ValidationError
from .base import ThermalTSVModel
from .model_1d import Model1D
from .model_a import ModelA
from .model_b import ModelB


def make_model(spec: str, **kwargs) -> ThermalTSVModel:
    """Create a model from a spec string.

    * ``"a"`` / ``"model_a"``      → :class:`ModelA`
    * ``"b"`` / ``"model_b"``      → :class:`ModelB` (default 100 segments)
    * ``"b:500"`` / ``"model_b:500"`` → :class:`ModelB` with 500 segments
    * ``"1d"`` / ``"model_1d"``    → :class:`Model1D`

    Extra keyword arguments are forwarded to the model constructor.
    """
    if not isinstance(spec, str) or not spec:
        raise ValidationError(f"model spec must be a non-empty string, got {spec!r}")
    name, _, arg = spec.lower().partition(":")
    name = name.removeprefix("model_")
    if name == "a":
        if arg:
            raise ValidationError(f"model A takes no :argument, got {spec!r}")
        return ModelA(**kwargs)
    if name == "b":
        if arg:
            try:
                kwargs.setdefault("segments", int(arg))
            except ValueError:
                raise ValidationError(
                    f"model B segment count must be an int, got {arg!r}"
                ) from None
        return ModelB(**kwargs)
    if name == "1d":
        if arg:
            raise ValidationError(f"model 1D takes no :argument, got {spec!r}")
        return Model1D(**kwargs)
    raise ValidationError(f"unknown model spec {spec!r}; use 'a', 'b[:n]' or '1d'")
