"""Model factory: build any model (or reference) from a short spec string.

This is the model grammar of the declarative scenario subsystem
(:mod:`repro.scenarios`): scenario files name their models and reference
with these strings, and CLI-ish entry points use them directly.

==================  =====================================================
spec                model
==================  =====================================================
``a``               Model A with the paper's block coefficients
``a:paper``         same, explicitly
``a:unity``         Model A with k1 = k2 = c = 1 (coefficient-free)
``a:case``          Model A with the case-study coefficients
``a:1.6,0.8[,3.5]`` Model A with explicit (k1, k2[, c_bond])
``b``               Model B, 100 segments
``b:500``           Model B, 500 segments (paper per-plane split)
``b:50,500,500``    Model B with an explicit per-plane SegmentScheme
``1d``              the 1-D baseline
``fem``             FEM reference, medium mesh (axisymmetric)
``fem:coarse``      FEM reference at a named preset (coarse/medium/fine)
``fem:36x90``       FEM reference at an explicit (nr, nz) mesh
``fem3d[:...]``     the Cartesian FEM cross-check (presets or NxNxN mesh)
==================  =====================================================

Prefixing ``model_`` (``model_a``, ``model_b:100``, …) is accepted
everywhere.  :func:`parse_model_spec` validates a spec without building
the model — scenario validation uses it so bad grammar fails at load
time, not mid-sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import ValidationError
from ..resistances import FittingCoefficients
from .base import ThermalTSVModel
from .model_1d import Model1D
from .model_a import ModelA
from .model_b import ModelB, SegmentScheme

#: names a spec string may start with (after an optional ``model_`` prefix)
MODEL_KINDS = ("a", "b", "1d", "fem", "fem3d")

_FEM_PRESETS = ("coarse", "medium", "fine")
_A_NAMED_FITS = {
    "": None,
    "paper": FittingCoefficients.paper_block,
    "unity": FittingCoefficients.unity,
    "case": FittingCoefficients.paper_case_study,
}


@dataclass(frozen=True)
class ParsedModelSpec:
    """A validated spec string: the model kind plus its parsed argument."""

    kind: str
    arg: Any  # kind-specific: coefficients, segment counts, mesh preset…


def parse_model_spec(spec: str) -> ParsedModelSpec:
    """Validate a model spec string without constructing the model.

    Raises :class:`~repro.errors.ValidationError` on unknown names or
    malformed arguments; returns the parsed (kind, argument) pair.
    """
    if not isinstance(spec, str) or not spec:
        raise ValidationError(f"model spec must be a non-empty string, got {spec!r}")
    name, _, arg = spec.lower().partition(":")
    name = name.removeprefix("model_")
    if name == "a":
        if arg in _A_NAMED_FITS:
            return ParsedModelSpec("a", arg)
        parts = arg.split(",")
        if len(parts) not in (2, 3):
            raise ValidationError(
                f"model A argument must be 'paper', 'unity', 'case' or "
                f"'k1,k2[,c_bond]', got {spec!r}"
            )
        try:
            coeffs = tuple(float(p) for p in parts)
        except ValueError:
            raise ValidationError(
                f"model A coefficients must be numbers, got {spec!r}"
            ) from None
        return ParsedModelSpec("a", FittingCoefficients(*coeffs))
    if name == "b":
        if not arg:
            return ParsedModelSpec("b", None)
        try:
            counts = tuple(int(p) for p in arg.split(","))
        except ValueError:
            raise ValidationError(
                f"model B argument must be a segment count or a comma-separated "
                f"per-plane list, got {spec!r}"
            ) from None
        if len(counts) == 1:
            if counts[0] < 1:
                raise ValidationError(
                    f"model B segment count must be >= 1, got {spec!r}"
                )
            return ParsedModelSpec("b", counts[0])
        return ParsedModelSpec("b", SegmentScheme(counts))
    if name == "1d":
        if arg:
            raise ValidationError(f"model 1D takes no :argument, got {spec!r}")
        return ParsedModelSpec("1d", None)
    if name in ("fem", "fem3d"):
        ndim = 2 if name == "fem" else 3
        if not arg:
            return ParsedModelSpec(name, "medium")
        if arg in _FEM_PRESETS:
            return ParsedModelSpec(name, arg)
        try:
            cells = tuple(int(p) for p in arg.split("x"))
        except ValueError:
            cells = ()
        if len(cells) != ndim or any(c < 2 for c in cells):
            raise ValidationError(
                f"{name} argument must be one of {list(_FEM_PRESETS)} or an "
                f"explicit {'x'.join(['N'] * ndim)} mesh with >= 2 cells per "
                f"dimension, got {spec!r}"
            )
        return ParsedModelSpec(name, cells)
    raise ValidationError(
        f"unknown model spec {spec!r}; use one of {list(MODEL_KINDS)} "
        f"(optionally with a :argument)"
    )


def make_model(spec: str, **kwargs) -> ThermalTSVModel:
    """Create a model from a spec string (see the module grammar table).

    Extra keyword arguments are forwarded to the model constructor (e.g.
    ``make_model("b:100", scheme="uniform")``).
    """
    parsed = parse_model_spec(spec)
    if parsed.kind == "a":
        if isinstance(parsed.arg, str):
            named = _A_NAMED_FITS[parsed.arg]
            if named is not None:
                kwargs.setdefault("fit", named())
        else:
            kwargs.setdefault("fit", parsed.arg)
        return ModelA(**kwargs)
    if parsed.kind == "b":
        if parsed.arg is not None:
            kwargs.setdefault("segments", parsed.arg)
        return ModelB(**kwargs)
    if parsed.kind == "1d":
        return Model1D(**kwargs)
    # FEM references live one package over; import lazily to keep
    # repro.core importable without pulling the solvers in.
    from ..fem import FEMReference

    solver = "axisym" if parsed.kind == "fem" else "cartesian"
    return FEMReference(parsed.arg, solver=solver, **kwargs)
