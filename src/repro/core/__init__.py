"""Core analytical models: Model A, Model B, the 1-D baseline, sweeps."""

from .base import AssembledSystem, ThermalTSVModel, solve_stacked
from .factory import make_model
from .model_1d import Model1D
from .model_a import ModelA, build_model_a_circuit, solve_three_plane_closed_form
from .model_b import ModelB, SegmentScheme, build_model_b_circuit
from .nonlinear import NonlinearResult, NonlinearSolver
from .result import ModelResult
from .sweep import SweepPoint, SweepResult, sweep

__all__ = [
    "ThermalTSVModel",
    "AssembledSystem",
    "solve_stacked",
    "ModelResult",
    "ModelA",
    "ModelB",
    "Model1D",
    "SegmentScheme",
    "build_model_a_circuit",
    "build_model_b_circuit",
    "solve_three_plane_closed_form",
    "make_model",
    "sweep",
    "SweepResult",
    "SweepPoint",
    "NonlinearSolver",
    "NonlinearResult",
]
