"""Physical constants and the parameter sets used throughout the paper.

Every conductivity quoted in Section IV of the paper is collected here so
experiments, tests and examples share a single source of truth.  Values the
paper does not state (notably the silicon conductivity) are standard
textbook numbers and are documented as assumptions in ``DESIGN.md``.
"""

from __future__ import annotations

from .units import um, w_per_mm3

# ---------------------------------------------------------------------------
# thermal conductivities, W/(m*K)
# ---------------------------------------------------------------------------

#: bulk silicon near 300 K (not stated in the paper; textbook value)
K_SILICON = 148.0
#: SiO2 — used for the ILD and the TSV liner (paper: kD = kL = 1.4)
K_SILICON_DIOXIDE = 1.4
#: polyimide bonding layer (paper: kb = 0.15)
K_POLYIMIDE = 0.15
#: copper TSV fill (paper: kf = 400)
K_COPPER = 400.0
#: tungsten — alternative via fill for via-middle processes
K_TUNGSTEN = 173.0
#: aluminium — package/back-metal studies
K_ALUMINIUM = 237.0
#: benzocyclobutene — alternative adhesive bond
K_BCB = 0.3

# ---------------------------------------------------------------------------
# paper-wide setup (Section IV, first paragraph)
# ---------------------------------------------------------------------------

#: footprint of the investigated block: 100 um x 100 um
PAPER_FOOTPRINT_AREA = um(100.0) * um(100.0)
#: thickness of the first-plane substrate (adjacent to the heat sink)
PAPER_T_SI1 = um(500.0)
#: extension of the TTSV into the first substrate
PAPER_L_EXT = um(1.0)
#: reference (heat sink) temperature, degC — ambient for absolute readouts
PAPER_SINK_TEMPERATURE_C = 27.0
#: device power density on top of each substrate, W/m^3 (paper: 700 W/mm^3)
PAPER_DEVICE_POWER_DENSITY = w_per_mm3(700.0)
#: interconnect Joule heat density in each ILD, W/m^3 (paper: 70 W/mm^3)
PAPER_ILD_POWER_DENSITY = w_per_mm3(70.0)
#: assumed thickness of the active device layer carrying the 700 W/mm^3
#: (the paper says "on the top surface"; see DESIGN.md substitutions)
PAPER_DEVICE_LAYER_THICKNESS = um(1.0)

#: fitting coefficients used for Figs. 4-7 (captions): k1 = 1.3, k2 = 0.55
PAPER_K1 = 1.3
PAPER_K2 = 0.55

#: fabrication aspect-ratio ceiling the paper quotes for TSVs
MAX_TSV_ASPECT_RATIO = 10.0

# ---------------------------------------------------------------------------
# DRAM-uP case study (Section IV-E, Fig. 8)
# ---------------------------------------------------------------------------

#: case-study footprint: 10 mm x 10 mm
CASE_FOOTPRINT_AREA = 0.01 * 0.01
#: per-plane substrate thickness
CASE_T_SI = um(300.0)
CASE_T_D = um(20.0)
CASE_T_B = um(10.0)
CASE_TSV_RADIUS = um(30.0)
CASE_LINER_THICKNESS = um(1.0)
#: TTSV area density (0.5 % of the total circuit area)
CASE_TSV_DENSITY = 0.005
#: plane powers: processor 70 W (plane 1), DRAM 7 W each (planes 2, 3)
CASE_PLANE_POWERS = (70.0, 7.0, 7.0)
#: case-study fitting coefficients (Fig. 8 caption)
CASE_K1 = 1.6
CASE_K2 = 0.8
#: bond-layer conductance multiplier c_{1,2} (Fig. 8 caption, see DESIGN.md)
CASE_C_BOND = 3.5
