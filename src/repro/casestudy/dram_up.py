"""The 3-D DRAM-µP case study (Section IV-E, Fig. 8).

A three-plane face-to-back stack: processor (70 W) on the heat sink,
two DRAM planes (7 W each) above; 10 mm × 10 mm footprint, 300 µm
substrates, 20 µm ILDs, 10 µm bonds, r = 30 µm TTSVs at 0.5 % area
density.  Fitting coefficients k1 = 1.6, k2 = 0.8, c_{1,2} = 3.5.

The paper reports max ΔT of 12.8 °C (Model A), 13.9 °C (Model B(1000)),
12 °C (FEM) and 20 °C (1-D) — the headline demonstration that the 1-D
model grossly overestimates and would waste TTSV resources.

Uniformly distributed vias and power let the 10 × 10 mm system be reduced
to one adiabatic unit cell per via (area πr²/density); all models solve
that cell, exactly as the paper's own "simulation of a block".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .. import constants
from ..core.model_1d import Model1D
from ..core.model_a import ModelA
from ..core.model_b import ModelB
from ..core.result import ModelResult
from ..fem import FEMReference
from ..geometry import PowerSpec, Stack3D, TSV, paper_stack
from ..resistances import FittingCoefficients
from ..units import require_positive


@dataclass(frozen=True)
class CaseStudySystem:
    """The reduced (per-via unit cell) case-study problem."""

    full_stack: Stack3D
    cell_stack: Stack3D
    via: TSV
    cell_power: PowerSpec
    n_vias: int

    @property
    def cell_area(self) -> float:
        return self.cell_stack.footprint_area


def build_case_study(
    *,
    tsv_density: float = constants.CASE_TSV_DENSITY,
    plane_powers: tuple[float, ...] = constants.CASE_PLANE_POWERS,
    ild_fraction: float = 0.1,
) -> CaseStudySystem:
    """Construct the Fig. 8 system and its per-via unit cell.

    ``tsv_density`` is the metal-area fraction (0.5 % in the paper); the
    unit cell area is πr²/density and its power is the same fraction of
    each plane's budget.
    """
    require_positive("tsv_density", tsv_density)
    if tsv_density >= 1.0:
        raise ValueError("tsv_density must be a fraction below 1")
    full_stack = paper_stack(
        n_planes=3,
        t_si1=constants.CASE_T_SI,
        t_si_upper=constants.CASE_T_SI,
        t_ild=constants.CASE_T_D,
        t_bond=constants.CASE_T_B,
        footprint_area=constants.CASE_FOOTPRINT_AREA,
    )
    via = TSV(
        radius=constants.CASE_TSV_RADIUS,
        liner_thickness=constants.CASE_LINER_THICKNESS,
        extension=constants.PAPER_L_EXT,
    )
    cell_area = via.metal_area / tsv_density
    n_vias = int(round(full_stack.footprint_area / cell_area))
    full_power = PowerSpec(plane_powers=plane_powers, ild_fraction=ild_fraction)
    cell_power = full_power.scaled_to_area(full_stack, cell_area)
    return CaseStudySystem(
        full_stack=full_stack,
        cell_stack=full_stack.with_footprint_area(cell_area),
        via=via,
        cell_power=cell_power,
        n_vias=n_vias,
    )


@dataclass(frozen=True)
class CaseStudyReport:
    """Max ΔT (and runtimes) of every model on the case study."""

    system: CaseStudySystem
    results: dict[str, ModelResult]

    def rises(self) -> dict[str, float]:
        return {name: r.max_rise for name, r in self.results.items()}

    def rows(self) -> list[list[object]]:
        """Table rows mirroring the paper's Section IV-E numbers."""
        out: list[list[object]] = [["model", "max ΔT [°C]", "solve time [ms]"]]
        for name, r in self.results.items():
            out.append([name, r.max_rise, r.solve_time * 1e3])
        return out

    def overestimation_factor(self, model: str = "model_1d", reference: str = "fem") -> float:
        """How much ``model`` overestimates ``reference`` (the paper's
        1-D-vs-FEM headline: 20/12 ≈ 1.67)."""
        return self.results[model].max_rise / self.results[reference].max_rise


def analyze_case_study(
    system: CaseStudySystem | None = None,
    *,
    fit: FittingCoefficients | None = None,
    model_b_segments: int = 1000,
    fem_resolution: str | tuple[int, int] = "medium",
    include_fem: bool = True,
) -> CaseStudyReport:
    """Run Model A, Model B, the 1-D baseline (and FEM) on the case study.

    Model B uses the same effective bond conductance (c_{1,2}) as Model A —
    the paper's Fig. 8 lists the coefficient for the system, and without it
    the polyimide bond dominates and no model reproduces the reported 12-14
    °C band (see DESIGN.md substitutions).
    """
    system = system or build_case_study()
    fit = fit or FittingCoefficients.paper_case_study()
    models: list = [
        ModelA(fit),
        ModelB(model_b_segments, bond_factor=fit.c_bond),
        Model1D(),  # the literature model: raw polyimide bonds, no coefficients
    ]
    results: dict[str, ModelResult] = {}
    for model in models:
        results[model.name] = model.solve(
            system.cell_stack, system.via, system.cell_power
        )
    if include_fem:
        # the physical bond interface carries metallic bond pads: the FEM
        # geometry uses the effective bond conductivity kb·c_{1,2}, which is
        # exactly what Model A/B's c coefficient approximates
        fem_stack = system.cell_stack.with_bond_conductivity_factor(fit.c_bond)
        fem = FEMReference(fem_resolution)
        results[fem.name] = fem.solve(fem_stack, system.via, system.cell_power)
    return CaseStudyReport(system=system, results=results)
