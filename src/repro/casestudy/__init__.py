"""The 3-D DRAM-µP case study of Section IV-E."""

from .dram_up import (
    CaseStudyReport,
    CaseStudySystem,
    analyze_case_study,
    build_case_study,
)

__all__ = [
    "CaseStudySystem",
    "CaseStudyReport",
    "build_case_study",
    "analyze_case_study",
]
