"""Content-addressed storage of finished scenario runs.

A :class:`RunStore` is a directory holding one JSON artifact per completed
run, addressed by the :meth:`~repro.scenarios.spec.ScenarioSpec.content_hash`
of the (resolved) spec that produced it, plus a ``manifest.json`` index
mapping each key to its scenario id, artifact path, spec and creation
time.  Because the key is pure content, re-running an unchanged spec is a
store hit — the experiment layer returns the stored payload without
solving anything — while any change to the spec (values, models, mesh,
calibration policy) changes the key and forces a fresh run.

Hits and misses are counted into :func:`repro.perf.stats` under the
``run_store_hits`` / ``run_store_misses`` counters.

Layout::

    <root>/manifest.json
    <root>/objects/<key>.json
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

from ..errors import ValidationError
from ..perf import increment
from .spec import ScenarioSpec

MANIFEST_NAME = "manifest.json"
OBJECTS_DIR = "objects"
MANIFEST_VERSION = 1


class RunStore:
    """A content-addressed artifact store for scenario results."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.objects = self.root / OBJECTS_DIR
        self.objects.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self.root / MANIFEST_NAME
        self._manifest = self._load_manifest()

    def _load_manifest(self) -> dict[str, Any]:
        if not self._manifest_path.exists():
            return {"version": MANIFEST_VERSION, "runs": {}}
        try:
            manifest = json.loads(self._manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"corrupt run-store manifest {self._manifest_path}: {exc}"
            ) from None
        if manifest.get("version") != MANIFEST_VERSION:
            raise ValidationError(
                f"run-store manifest {self._manifest_path} has version "
                f"{manifest.get('version')!r}; this build understands {MANIFEST_VERSION}"
            )
        return manifest

    def _write_manifest(self) -> None:
        tmp = self._manifest_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(self._manifest, indent=2) + "\n")
        tmp.replace(self._manifest_path)

    # ------------------------------------------------------------------
    # content-addressed access
    # ------------------------------------------------------------------
    def get(self, key: str) -> dict[str, Any] | None:
        """The stored payload for ``key``, or None (counts a hit/miss)."""
        entry = self._manifest["runs"].get(key)
        path = self.objects / f"{key}.json"
        if entry is None or not path.exists():
            increment("run_store_misses")
            return None
        increment("run_store_hits")
        return json.loads(path.read_text())

    def put(
        self, key: str, payload: dict[str, Any], spec: ScenarioSpec
    ) -> Path:
        """Store ``payload`` under ``key`` and index it in the manifest."""
        path = self.objects / f"{key}.json"
        path.write_text(json.dumps(payload, indent=2) + "\n")
        self._manifest["runs"][key] = {
            "scenario_id": spec.scenario_id,
            "path": str(path.relative_to(self.root)),
            "spec": spec.to_dict(),
            "created_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        }
        self._write_manifest()
        return path

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def manifest(self) -> dict[str, Any]:
        """The manifest index (a copy; mutate via :meth:`put` only)."""
        return json.loads(json.dumps(self._manifest))

    def keys(self) -> list[str]:
        """Stored run keys, in insertion order."""
        return list(self._manifest["runs"])

    def __contains__(self, key: object) -> bool:
        return key in self._manifest["runs"]

    def __len__(self) -> int:
        return len(self._manifest["runs"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RunStore {self.root} ({len(self)} runs)>"
