"""Content-addressed storage of finished scenario runs and solved points.

A :class:`RunStore` is a directory holding three object spaces:

* **runs** — one JSON artifact per completed scenario, addressed by the
  :meth:`~repro.scenarios.spec.ScenarioSpec.content_hash` of the
  (resolved) spec that produced it, indexed by ``manifest.json``.
  Re-running an unchanged spec is a store hit — the experiment layer
  returns the stored payload without solving anything.
* **points** — one JSON artifact per executed plan node (a model solved
  at one sweep point, a finished calibration fit, a case-study run),
  addressed by the node's plan key.  The
  :mod:`~repro.scenarios.scheduler` writes each point as it completes and
  (under ``--resume``) reads them back, so an interrupted batch resumes
  from its solved points instead of re-solving them.
* **failures** — the quarantine ledger: one JSON record per plan node
  that exhausted its retry budget (error class, message, attempts,
  traceback digest — the
  :class:`~repro.perf.NodeFailure` payload).  A later successful solve
  of the same key clears the record, so ``--resume`` naturally
  re-attempts exactly the quarantined/missing points.

All writes are atomic *and durable*: the payload is fsynced to the tmp
file before the rename, so neither a killed process nor a machine crash
leaves a half-written artifact behind the rename.  A corrupt or
unreadable object is treated as a miss (and healed out of the manifest)
rather than an error.

Hits and misses are counted into :func:`repro.perf.stats` under
``run_store_hits`` / ``run_store_misses`` and ``point_store_hits`` /
``point_store_misses``.

Fault injection: every run/point write passes through the
:mod:`repro.faults` ``store-write`` site, so CI can exercise the
reader-side healing paths (truncated payloads, slow disks) with
deterministic, seedable failures.

Layout::

    <root>/manifest.json
    <root>/objects/<key>.json     (whole runs)
    <root>/points/<key>.json      (individual plan nodes)
    <root>/failures/<key>.json    (quarantined plan nodes)
"""

from __future__ import annotations

import json
import os
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

from .. import faults
from ..errors import ValidationError
from ..perf import increment
from ..perf.retry import NodeFailure
from .spec import ScenarioSpec

MANIFEST_NAME = "manifest.json"
OBJECTS_DIR = "objects"
POINTS_DIR = "points"
FAILURES_DIR = "failures"
MANIFEST_VERSION = 1


def _write_json_atomic(path: Path, payload: Any, fault_key: str | None = None) -> None:
    """Write JSON durably: serialise, fsync the tmp file, then rename.

    The fsync-before-rename matters: without it a machine crash shortly
    after the rename can surface the *new name with old (empty) contents*
    on some filesystems — exactly the truncated-artifact shape the
    readers heal, but better never to write it.  ``fault_key`` routes the
    write through the ``store-write`` fault-injection site (delay or
    payload corruption) when the :mod:`repro.faults` registry is armed.
    """
    text = json.dumps(payload, indent=2) + "\n"
    if fault_key is not None and faults.active():
        faults.inject("store-write", fault_key)
        text = faults.corrupt_text("store-write", fault_key, text)
    tmp = path.with_suffix(".tmp")
    with open(tmp, "w") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    tmp.replace(path)


class RunStore:
    """A content-addressed artifact store for scenario results."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.objects = self.root / OBJECTS_DIR
        self.objects.mkdir(parents=True, exist_ok=True)
        self.points = self.root / POINTS_DIR
        self.points.mkdir(parents=True, exist_ok=True)
        self.failures = self.root / FAILURES_DIR
        self.failures.mkdir(parents=True, exist_ok=True)
        # tracks "might any failure record exist?" so the per-point clear
        # on the happy path costs a boolean, not an unlink syscall
        self._has_failures = any(self.failures.glob("*.json"))
        self._manifest_path = self.root / MANIFEST_NAME
        self._manifest = self._load_manifest()

    def _load_manifest(self) -> dict[str, Any]:
        if not self._manifest_path.exists():
            return {"version": MANIFEST_VERSION, "runs": {}}
        try:
            manifest = json.loads(self._manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"corrupt run-store manifest {self._manifest_path}: {exc}"
            ) from None
        if manifest.get("version") != MANIFEST_VERSION:
            raise ValidationError(
                f"run-store manifest {self._manifest_path} has version "
                f"{manifest.get('version')!r}; this build understands {MANIFEST_VERSION}"
            )
        return manifest

    def _write_manifest(self) -> None:
        _write_json_atomic(self._manifest_path, self._manifest)

    # ------------------------------------------------------------------
    # content-addressed access: whole runs
    # ------------------------------------------------------------------
    def get(self, key: str) -> dict[str, Any] | None:
        """The stored payload for ``key``, or None (counts a hit/miss).

        An unreadable or corrupt object is a miss, not an error: the stale
        manifest entry is healed away so the next run re-solves and
        re-stores cleanly.
        """
        entry = self._manifest["runs"].get(key)
        path = self.objects / f"{key}.json"
        if entry is None or not path.exists():
            increment("run_store_misses")
            return None
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            # heal: drop the manifest entry for the corrupt artifact
            del self._manifest["runs"][key]
            self._write_manifest()
            path.unlink(missing_ok=True)
            increment("run_store_misses")
            return None
        increment("run_store_hits")
        return payload

    def put(
        self, key: str, payload: dict[str, Any], spec: ScenarioSpec
    ) -> Path:
        """Store ``payload`` under ``key`` and index it in the manifest."""
        path = self.objects / f"{key}.json"
        _write_json_atomic(path, payload, fault_key=f"run:{key}")
        self._manifest["runs"][key] = {
            "scenario_id": spec.scenario_id,
            "path": str(path.relative_to(self.root)),
            "spec": spec.to_dict(),
            "created_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        }
        self._write_manifest()
        return path

    # ------------------------------------------------------------------
    # content-addressed access: individual plan nodes
    # ------------------------------------------------------------------
    def get_point(self, key: str) -> dict[str, Any] | None:
        """The stored point payload for a plan-node ``key``, or None.

        Corrupt point objects are removed and counted as misses — the
        scheduler simply re-solves the node.
        """
        path = self.points / f"{key}.json"
        if not path.exists():
            increment("point_store_misses")
            return None
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            path.unlink(missing_ok=True)
            increment("point_store_misses")
            return None
        increment("point_store_hits")
        return payload

    def put_point(self, key: str, payload: dict[str, Any]) -> Path | None:
        """Persist one plan node's payload (atomically; never raises on
        unserialisable payload metadata — the point is just not resumable)."""
        path = self.points / f"{key}.json"
        try:
            _write_json_atomic(path, payload, fault_key=f"point:{key}")
        except (TypeError, ValueError):
            increment("point_store_skipped")
            return None
        return path

    def heal_point(self, key: str) -> None:
        """Drop a stored point whose payload turned out to be unusable.

        :meth:`get_point` already heals *unreadable* JSON; this is the
        hook for payloads that parse but decode to the wrong shape —
        the scheduler deletes them so the node re-solves cleanly.
        """
        (self.points / f"{key}.json").unlink(missing_ok=True)

    def point_keys(self) -> list[str]:
        """Keys of every stored point object."""
        return sorted(p.stem for p in self.points.glob("*.json"))

    # ------------------------------------------------------------------
    # the failure ledger: quarantined plan nodes
    # ------------------------------------------------------------------
    def put_failure(self, key: str, failure: NodeFailure) -> Path:
        """Record a quarantined node in the ``failures/`` space."""
        path = self.failures / f"{key}.json"
        _write_json_atomic(path, failure.to_payload())
        self._has_failures = True
        return path

    def get_failure(self, key: str) -> NodeFailure | None:
        """The quarantine record for ``key``, or None (corruption = None)."""
        path = self.failures / f"{key}.json"
        if not path.exists():
            return None
        try:
            return NodeFailure.from_payload(json.loads(path.read_text()))
        except (json.JSONDecodeError, OSError, KeyError, TypeError):
            path.unlink(missing_ok=True)
            return None

    def clear_failure(self, key: str) -> None:
        """Erase ``key``'s quarantine record (a later solve succeeded)."""
        if self._has_failures:
            (self.failures / f"{key}.json").unlink(missing_ok=True)

    def failure_keys(self) -> list[str]:
        """Keys of every quarantined node, sorted."""
        return sorted(p.stem for p in self.failures.glob("*.json"))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def manifest(self) -> dict[str, Any]:
        """The manifest index (a copy; mutate via :meth:`put` only)."""
        return json.loads(json.dumps(self._manifest))

    def keys(self) -> list[str]:
        """Stored run keys, in insertion order."""
        return list(self._manifest["runs"])

    def __contains__(self, key: object) -> bool:
        return key in self._manifest["runs"]

    def __len__(self) -> int:
        return len(self._manifest["runs"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RunStore {self.root} ({len(self)} runs)>"
