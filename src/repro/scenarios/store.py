"""Content-addressed storage of finished scenario runs and solved points.

A :class:`RunStore` is a directory holding three object spaces:

* **runs** — one JSON artifact per completed scenario, addressed by the
  :meth:`~repro.scenarios.spec.ScenarioSpec.content_hash` of the
  (resolved) spec that produced it, indexed by ``manifest.json``.
  Re-running an unchanged spec is a store hit — the experiment layer
  returns the stored payload without solving anything.
* **points** — one JSON artifact per executed plan node (a model solved
  at one sweep point, a finished calibration fit, a case-study run),
  addressed by the node's plan key.  The
  :mod:`~repro.scenarios.scheduler` writes each point as it completes and
  (under ``--resume``) reads them back, so an interrupted batch resumes
  from its solved points instead of re-solving them.
* **failures** — the quarantine ledger: one JSON record per plan node
  that exhausted its retry budget (error class, message, attempts,
  traceback digest — the
  :class:`~repro.perf.NodeFailure` payload).  A later successful solve
  of the same key clears the record, so ``--resume`` naturally
  re-attempts exactly the quarantined/missing points.

All writes are atomic *and durable*: the payload is fsynced to the tmp
file before the rename, so neither a killed process nor a machine crash
leaves a half-written artifact behind the rename.  A corrupt or
unreadable object is treated as a miss (and healed out of the manifest)
rather than an error.

Every ``objects/``, ``points/``, ``failures/`` and ``blame/`` payload is
written inside an **integrity envelope**: a one-line JSON header carrying
a blake2b checksum of the body, followed by the body document itself ::

    {"repro_envelope": 1, "checksum": "<blake2b-128-hex>"}
    {
      ... the payload ...
    }

Readers verify the checksum against the raw body bytes before parsing —
a bit flip, a truncation, or bytes lost between write and fsync all read
as a *miss* (plus the usual healing), never as silently different
physics.  Envelope-less artifacts written by earlier versions parse as
legacy documents without verification, so old stores keep working;
``python -m repro fsck <store>`` (see :mod:`repro.scenarios.fsck`)
scrubs a whole store for damage and ``--repair`` heals it in place.

The ``blame/`` space is the fleet-wide poison-unit ledger: one small
record per plan node that has crashed its executor, counted across every
cooperating worker (and across supervisor respawns).  The scheduler
consults it to force-degrade repeat offenders to solo dispatch and to
quarantine them outright before each worker burns its own
``max_pool_rebuilds`` on the same poison unit.

Hits and misses are counted into :func:`repro.perf.stats` under
``run_store_hits`` / ``run_store_misses`` and ``point_store_hits`` /
``point_store_misses``.

Fault injection: every run/point write passes through the
:mod:`repro.faults` ``store-write`` site, so CI can exercise the
reader-side healing paths (truncated payloads, slow disks) with
deterministic, seedable failures.

Layout (sharded by the first two characters of the key — hex digits for
content keys — so no directory ever holds more than ~1/256th of the
artifacts and listings stay fast at millions of stored points)::

    <root>/manifest.json
    <root>/objects/<xx>/<key>.json     (whole runs)
    <root>/points/<xx>/<key>.json      (individual plan nodes)
    <root>/failures/<xx>/<key>.json    (quarantined plan nodes)
    <root>/blame/<xx>/<key>.json       (fleet-wide poison-unit counts)
    <root>/leases/<xx>/<key>.claim     (fleet worker claims; see
                                        :mod:`repro.scenarios.lease`)

Stores written by earlier versions kept every artifact flat in its space
directory.  Reads fall back to the flat path transparently, so a legacy
store keeps working unmodified; writes always land sharded, and
:meth:`RunStore.migrate` (CLI: ``python -m repro migrate <dir>``) moves a
legacy store over wholesale.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

from .. import faults
from ..errors import CorruptArtifactError, ValidationError
from ..perf import increment
from ..perf.retry import NodeFailure
from .spec import ScenarioSpec

MANIFEST_NAME = "manifest.json"
OBJECTS_DIR = "objects"
POINTS_DIR = "points"
FAILURES_DIR = "failures"
BLAME_DIR = "blame"
LEASES_DIR = "leases"
MANIFEST_VERSION = 1

ENVELOPE_KEY = "repro_envelope"
ENVELOPE_VERSION = 1
#: every envelope header starts with exactly these bytes (json.dumps of a
#: dict whose first key is ENVELOPE_KEY) — the legacy/envelope detector
ENVELOPE_PREFIX = f'{{"{ENVELOPE_KEY}"'


def artifact_checksum(body_text: str) -> str:
    """The envelope checksum of an artifact body: blake2b-128 of its bytes.

    Hashing the serialised bytes (not a re-canonicalised document) keeps
    verify-on-read cheap — one hash pass over the text that was going to
    be parsed anyway, no second ``json.dumps``.
    """
    return hashlib.blake2b(body_text.encode(), digest_size=16).hexdigest()


def render_artifact(payload: Any, *, envelope: bool = True) -> str:
    """Serialise ``payload`` for storage, integrity envelope included."""
    body = json.dumps(payload, indent=2) + "\n"
    if not envelope:
        return body
    header = json.dumps(
        {ENVELOPE_KEY: ENVELOPE_VERSION, "checksum": artifact_checksum(body)}
    )
    return header + "\n" + body


def parse_artifact(text: str, *, verify: bool = True) -> tuple[Any, bool]:
    """``(payload, enveloped)`` for a stored artifact's text.

    Enveloped artifacts are checksum-verified (unless ``verify=False``)
    before the body is parsed; envelope-less text parses as a legacy
    single-document artifact.  Any damage — torn header, checksum
    mismatch, unparseable body — raises
    :class:`~repro.errors.CorruptArtifactError`, which every store reader
    treats as a miss-plus-heal.
    """
    if text.startswith(ENVELOPE_PREFIX):
        header_text, sep, body = text.partition("\n")
        if not sep:
            raise CorruptArtifactError("artifact envelope has no body")
        try:
            header = json.loads(header_text)
        except json.JSONDecodeError as exc:
            raise CorruptArtifactError(
                f"unreadable artifact envelope header: {exc}"
            ) from None
        if verify and header.get("checksum") != artifact_checksum(body):
            increment("store_checksum_failures")
            raise CorruptArtifactError(
                "artifact body does not match its envelope checksum"
            )
        try:
            return json.loads(body), True
        except json.JSONDecodeError as exc:
            raise CorruptArtifactError(
                f"unparseable artifact body: {exc}"
            ) from None
    try:
        return json.loads(text), False
    except json.JSONDecodeError as exc:
        raise CorruptArtifactError(f"unparseable legacy artifact: {exc}") from None


def shard_prefix(key: str) -> str:
    """The shard directory a key files under: its first two characters.

    Content keys are blake2b hex digests, so this spreads artifacts
    uniformly over 256 buckets; the handful of non-hex keys (e.g.
    ``case_study:<hash>``) simply bucket by their prefix, which is still a
    valid directory name.  Keys shorter than two characters are padded so
    the shard name never collides with a flat ``<key>.json`` artifact.
    """
    return key[:2] if len(key) >= 2 else (key + "__")[:2]


def _write_json_atomic(
    path: Path,
    payload: Any,
    fault_key: str | None = None,
    *,
    envelope: bool = False,
) -> None:
    """Write JSON durably: serialise, fsync the tmp file, then rename.

    The fsync-before-rename matters: without it a machine crash shortly
    after the rename can surface the *new name with old (empty) contents*
    on some filesystems — exactly the truncated-artifact shape the
    readers heal, but better never to write it.  ``fault_key`` routes the
    write through the ``store-write`` fault-injection site (delay or
    payload corruption) when the :mod:`repro.faults` registry is armed;
    ``envelope=True`` wraps the payload in the integrity envelope
    (injected corruption is applied to the *enveloped* text, so a
    truncated write always fails its own checksum).
    """
    text = render_artifact(payload, envelope=envelope)
    if fault_key is not None and faults.active():
        faults.inject("store-write", fault_key)
        text = faults.corrupt_text("store-write", fault_key, text)
    # the tmp name is unique per writer: cooperating fleet workers write
    # the same (deterministic) artifacts concurrently, and a shared tmp
    # name would let one worker rename another's half-written file away
    tmp = path.with_suffix(f".{os.getpid()}.{time.monotonic_ns():x}.tmp")
    with open(tmp, "w") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    tmp.replace(path)


class RunStore:
    """A content-addressed artifact store for scenario results."""

    def __init__(self, root: str | Path, *, verify: bool = True) -> None:
        self.root = Path(root)
        #: checksum-verify enveloped artifacts on read (the production
        #: default; ``verify=False`` exists for the paired
        #: ``checksum_overhead`` bench measurement)
        self.verify = verify
        self.objects = self.root / OBJECTS_DIR
        self.objects.mkdir(parents=True, exist_ok=True)
        self.points = self.root / POINTS_DIR
        self.points.mkdir(parents=True, exist_ok=True)
        self.failures = self.root / FAILURES_DIR
        self.failures.mkdir(parents=True, exist_ok=True)
        self.blame = self.root / BLAME_DIR
        self.blame.mkdir(parents=True, exist_ok=True)
        self.leases = self.root / LEASES_DIR
        self.leases.mkdir(parents=True, exist_ok=True)
        # tracks "might any failure record exist?" so the per-point clear
        # on the happy path costs a boolean, not an unlink syscall
        self._has_failures = any(self._space_paths(self.failures))
        self._manifest_path = self.root / MANIFEST_NAME
        self._manifest = self._load_manifest()

    def _read_artifact(self, space: Path, key: str) -> Any | None:
        """The parsed (and checksum-verified) payload for ``key``, or None.

        Missing, unreadable, truncated, or checksum-failing artifacts all
        read as None; the caller decides whether to heal the file away.
        """
        path = self._read_path(space, key)
        if path is None:
            return None
        try:
            payload, _ = parse_artifact(path.read_text(), verify=self.verify)
        except (OSError, CorruptArtifactError):
            return None
        return payload

    # ------------------------------------------------------------------
    # sharded layout with transparent legacy (flat) read-back
    # ------------------------------------------------------------------
    @staticmethod
    def _sharded_path(space: Path, key: str, suffix: str = ".json") -> Path:
        return space / shard_prefix(key) / f"{key}{suffix}"

    @staticmethod
    def _flat_path(space: Path, key: str, suffix: str = ".json") -> Path:
        return space / f"{key}{suffix}"

    @classmethod
    def _read_path(cls, space: Path, key: str) -> Path | None:
        """The existing artifact for ``key``, sharded layout preferred."""
        path = cls._sharded_path(space, key)
        if path.exists():
            return path
        legacy = cls._flat_path(space, key)
        if legacy.exists():
            return legacy
        return None

    @classmethod
    def _write_path(cls, space: Path, key: str) -> Path:
        """The (sharded) path a fresh artifact for ``key`` lands at."""
        path = cls._sharded_path(space, key)
        path.parent.mkdir(exist_ok=True)
        # a rewrite must not leave a stale flat twin shadow-readable
        cls._flat_path(space, key).unlink(missing_ok=True)
        return path

    @staticmethod
    def _space_paths(space: Path, suffix: str = ".json") -> list[Path]:
        """Every artifact in a space, flat and sharded layouts combined."""
        return [*space.glob(f"*{suffix}"), *space.glob(f"*/*{suffix}")]

    def migrate(self) -> dict[str, int]:
        """Move a legacy flat layout into shards; returns moved counts.

        Idempotent: an already-sharded store migrates zero artifacts.
        Run objects keep their manifest entries pointing at the new
        relative paths.
        """
        moved: dict[str, int] = {}
        spaces = (
            ("objects", self.objects, ".json"),
            ("points", self.points, ".json"),
            ("failures", self.failures, ".json"),
            ("blame", self.blame, ".json"),
            ("leases", self.leases, ".claim"),
        )
        for name, space, suffix in spaces:
            count = 0
            for path in sorted(space.glob(f"*{suffix}")):
                target = self._sharded_path(space, path.stem, suffix)
                target.parent.mkdir(exist_ok=True)
                path.replace(target)
                count += 1
            moved[name] = count
        if moved["objects"]:
            for key, entry in self._manifest["runs"].items():
                path = self._sharded_path(self.objects, key)
                if path.exists():
                    entry["path"] = str(path.relative_to(self.root))
            self._write_manifest()
        return moved

    def _load_manifest(self) -> dict[str, Any]:
        if not self._manifest_path.exists():
            return {"version": MANIFEST_VERSION, "runs": {}}
        try:
            manifest = json.loads(self._manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"corrupt run-store manifest {self._manifest_path}: {exc}"
            ) from None
        if manifest.get("version") != MANIFEST_VERSION:
            raise ValidationError(
                f"run-store manifest {self._manifest_path} has version "
                f"{manifest.get('version')!r}; this build understands {MANIFEST_VERSION}"
            )
        return manifest

    def _write_manifest(self) -> None:
        _write_json_atomic(self._manifest_path, self._manifest)

    # ------------------------------------------------------------------
    # content-addressed access: whole runs
    # ------------------------------------------------------------------
    def get(self, key: str) -> dict[str, Any] | None:
        """The stored payload for ``key``, or None (counts a hit/miss).

        An unreadable or corrupt object is a miss, not an error: the stale
        manifest entry is healed away so the next run re-solves and
        re-stores cleanly.
        """
        entry = self._manifest["runs"].get(key)
        path = self._read_path(self.objects, key)
        if entry is None or path is None:
            increment("run_store_misses")
            return None
        try:
            payload, _ = parse_artifact(path.read_text(), verify=self.verify)
        except (CorruptArtifactError, OSError):
            # heal: drop the manifest entry for the corrupt artifact
            del self._manifest["runs"][key]
            self._write_manifest()
            path.unlink(missing_ok=True)
            increment("store_integrity_heals")
            increment("run_store_misses")
            return None
        increment("run_store_hits")
        return payload

    def put(
        self, key: str, payload: dict[str, Any], spec: ScenarioSpec
    ) -> Path:
        """Store ``payload`` under ``key`` and index it in the manifest."""
        path = self._write_path(self.objects, key)
        _write_json_atomic(path, payload, fault_key=f"run:{key}", envelope=True)
        self._manifest["runs"][key] = {
            "scenario_id": spec.scenario_id,
            "path": str(path.relative_to(self.root)),
            "spec": spec.to_dict(),
            "created_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        }
        # merge entries a cooperating fleet worker indexed since we loaded
        # the manifest — a plain overwrite would un-index its runs (the
        # read-modify-write race stays, but every writer converges on the
        # union because run objects themselves are immutable)
        try:
            disk_runs = self._load_manifest()["runs"]
        except ValidationError:
            disk_runs = {}
        self._manifest["runs"] = {**disk_runs, **self._manifest["runs"]}
        self._write_manifest()
        return path

    # ------------------------------------------------------------------
    # content-addressed access: individual plan nodes
    # ------------------------------------------------------------------
    def get_point(self, key: str) -> dict[str, Any] | None:
        """The stored point payload for a plan-node ``key``, or None.

        Corrupt point objects are removed and counted as misses — the
        scheduler simply re-solves the node.
        """
        path = self._read_path(self.points, key)
        if path is None:
            increment("point_store_misses")
            return None
        try:
            payload, _ = parse_artifact(path.read_text(), verify=self.verify)
        except (CorruptArtifactError, OSError):
            path.unlink(missing_ok=True)
            increment("store_integrity_heals")
            increment("point_store_misses")
            return None
        increment("point_store_hits")
        return payload

    def put_point(self, key: str, payload: dict[str, Any]) -> Path | None:
        """Persist one plan node's payload (atomically; never raises on
        unserialisable payload metadata — the point is just not resumable)."""
        path = self._write_path(self.points, key)
        try:
            _write_json_atomic(
                path, payload, fault_key=f"point:{key}", envelope=True
            )
        except (TypeError, ValueError):
            increment("point_store_skipped")
            return None
        return path

    def heal_point(self, key: str) -> None:
        """Drop a stored point whose payload turned out to be unusable.

        :meth:`get_point` already heals *unreadable* JSON; this is the
        hook for payloads that parse but decode to the wrong shape —
        the scheduler deletes them so the node re-solves cleanly.
        """
        self._sharded_path(self.points, key).unlink(missing_ok=True)
        self._flat_path(self.points, key).unlink(missing_ok=True)

    def point_keys(self) -> list[str]:
        """Keys of every stored point object (both layouts)."""
        return sorted(p.stem for p in self._space_paths(self.points))

    # ------------------------------------------------------------------
    # the failure ledger: quarantined plan nodes
    # ------------------------------------------------------------------
    def put_failure(self, key: str, failure: NodeFailure) -> Path:
        """Record a quarantined node in the ``failures/`` space."""
        path = self._write_path(self.failures, key)
        _write_json_atomic(path, failure.to_payload(), envelope=True)
        self._has_failures = True
        return path

    def get_failure(self, key: str) -> NodeFailure | None:
        """The quarantine record for ``key``, or None (corruption = None)."""
        path = self._read_path(self.failures, key)
        if path is None:
            return None
        try:
            payload, _ = parse_artifact(path.read_text(), verify=self.verify)
            return NodeFailure.from_payload(payload)
        except (CorruptArtifactError, OSError, KeyError, TypeError):
            path.unlink(missing_ok=True)
            return None

    def failure_age_s(self, key: str) -> float | None:
        """Seconds since ``key``'s quarantine record was written, or None.

        Cooperating fleet workers use this to tell a failure quarantined
        *during the current run* (adopt it, don't burn a fresh retry
        budget on every worker) from a stale record left by an earlier
        invocation (which ``--resume`` deliberately re-attempts).
        """
        path = self._read_path(self.failures, key)
        if path is None:
            return None
        try:
            return max(0.0, time.time() - path.stat().st_mtime)
        except OSError:
            return None

    def clear_failure(self, key: str) -> None:
        """Erase ``key``'s quarantine record (a later solve succeeded)."""
        if self._has_failures:
            self._sharded_path(self.failures, key).unlink(missing_ok=True)
            self._flat_path(self.failures, key).unlink(missing_ok=True)

    def failure_keys(self) -> list[str]:
        """Keys of every quarantined node, sorted."""
        return sorted(p.stem for p in self._space_paths(self.failures))

    # ------------------------------------------------------------------
    # the blame ledger: fleet-wide poison-unit counts
    # ------------------------------------------------------------------
    def add_blame(self, key: str) -> int:
        """Count one executor crash against plan node ``key``; new total.

        A read-modify-write without locking: two workers blaming the same
        key at the same instant may lose one increment.  That only delays
        the poison threshold by one extra crash — acceptable for a ledger
        whose job is to stop *repeat* offenders — and every write is
        atomic, so the count never tears.
        """
        count = self.get_blame(key) + 1
        path = self._write_path(self.blame, key)
        _write_json_atomic(
            path,
            {"key": key, "count": count, "updated_unix": time.time()},
            envelope=True,
        )
        return count

    def get_blame(self, key: str) -> int:
        """Crash count recorded against ``key`` (0 if none/corrupt)."""
        payload = self._read_artifact(self.blame, key)
        if not isinstance(payload, dict):
            return 0
        count = payload.get("count")
        return count if isinstance(count, int) and count > 0 else 0

    def blame_counts(self) -> dict[str, int]:
        """Every blamed key and its count — one scan, for per-wave use."""
        counts: dict[str, int] = {}
        for path in self._space_paths(self.blame):
            count = self.get_blame(path.stem)
            if count:
                counts[path.stem] = count
        return counts

    def clear_blame(self, key: str) -> None:
        """Erase ``key``'s blame record (it finally solved cleanly)."""
        self._sharded_path(self.blame, key).unlink(missing_ok=True)
        self._flat_path(self.blame, key).unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def manifest(self) -> dict[str, Any]:
        """The manifest index (a copy; mutate via :meth:`put` only)."""
        return json.loads(json.dumps(self._manifest))

    def keys(self) -> list[str]:
        """Stored run keys, in insertion order."""
        return list(self._manifest["runs"])

    def __contains__(self, key: object) -> bool:
        return key in self._manifest["runs"]

    def __len__(self) -> int:
        return len(self._manifest["runs"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RunStore {self.root} ({len(self)} runs)>"
