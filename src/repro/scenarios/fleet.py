"""The fleet driver: N cooperating worker processes on one shared store.

:func:`run_fleet` forks ``workers`` OS processes, each of which runs the
full :func:`~repro.scenarios.runner.run_batch` against the same
:class:`~repro.scenarios.store.RunStore` under a
:class:`~repro.scenarios.lease.LeaseManager`.  No work queue and no
coordinator process exist: the *store* is the coordination plane.  Every
worker compiles the identical plan, claims dispatch units through the
``leases/`` space, reads peers' results back from the ``points/`` space,
and assembles every scenario's run-level artifact (deterministic, so
concurrent writes are idempotent).  That makes the driver optional —
pointing N independent ``python -m repro fleet`` (or even ``run
--resume``) invocations at one store directory cooperates exactly the
same way — and makes worker death a non-event: a dead worker's leases
expire, survivors steal its nodes, and nothing it completed is lost or
re-solved.

Each worker writes a report (``<store>/fleet/worker-<rank>.json``,
atomically — a killed worker leaves no torn report) with its perf
counters and per-scenario outcomes, plus heartbeats under
``<store>/fleet/heartbeats/<rank>.json``; :func:`run_fleet` aggregates
the reports into a :class:`FleetOutcome`.  The summed
``plan_point_solves`` across reports equals the plan's node count when
no worker died — the ``fleet_no_double_solve`` bench check and the fleet
tests assert exactly that.

``supervise=True`` adds the self-healing layer
(:mod:`repro.scenarios.supervisor`): crashed or heartbeat-silent workers
are respawned with backoff and resume from the store, graceful drains
(SIGTERM/SIGINT — :mod:`repro.scenarios.drain`) are honoured and never
respawned, and an optional whole-run deadline bounds the worst case.

``extra_env`` injects per-rank environment overrides into the children
before any work starts; the fault matrix uses it to arm a
``lease``-site crash in one worker only (rate 1.0), killing it the
moment it holds claims — the canonical expiry-and-takeover drill.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from .. import fsshim, perf
from ..errors import DrainError, ValidationError
from ..perf.retry import DEFAULT_RETRY, RetryPolicy
from .drain import DrainGuard, drain_exit_code
from .lease import DEFAULT_TTL_S, LeaseManager
from .registry import SCENARIOS
from .runner import run_batch
from .spec import ScenarioSpec
from .store import RunStore, _write_json_atomic
from .supervisor import HeartbeatWriter, Supervisor

__all__ = ["FleetOutcome", "WorkerReport", "run_fleet"]

FLEET_DIR = "fleet"

#: exit codes a worker reports through its process status
EXIT_OK = 0
EXIT_FAILED_NODES = 3  # the batch completed but quarantined nodes
EXIT_ERROR = 4  # the worker's run_batch raised


@dataclass(frozen=True)
class WorkerReport:
    """One worker's self-report, read back from its JSON artifact."""

    rank: int
    pid: int
    owner: str
    ok: bool
    error: str | None
    counters: dict[str, int]
    elapsed_s: float
    runs: tuple[dict[str, Any], ...]
    drained: int | None = None  # the signal a graceful drain honoured

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "WorkerReport":
        return cls(
            rank=int(payload["rank"]),
            pid=int(payload["pid"]),
            owner=str(payload["owner"]),
            ok=bool(payload["ok"]),
            error=payload.get("error"),
            counters={k: int(v) for k, v in payload.get("counters", {}).items()},
            elapsed_s=float(payload.get("elapsed_s", 0.0)),
            runs=tuple(payload.get("runs", ())),
            drained=payload.get("drained"),
        )


@dataclass(frozen=True)
class FleetOutcome:
    """A finished fleet run: per-worker reports plus the aggregate view.

    ``complete`` means every requested scenario's run-level artifact is
    in the store — the fleet's actual contract; individual workers may
    have died (``exit_codes``) without affecting it.  ``counters`` sums
    the surviving workers' perf counters, so
    ``counters["plan_point_solves"]`` is the fleet-wide solve count the
    no-double-solve checks compare against the plan's node count.
    """

    store_root: Path
    reports: tuple[WorkerReport, ...]
    exit_codes: tuple[int | None, ...]
    complete: bool
    counters: dict[str, int] = field(default_factory=dict)
    #: supervision audit trail: one payload per respawn (supervised runs)
    respawns: tuple[dict[str, Any], ...] = ()
    #: True when a supervised run hit its whole-run deadline
    deadline_exceeded: bool = False

    @property
    def ok(self) -> bool:
        return self.complete and all(code == EXIT_OK for code in self.exit_codes)


def _resolve_specs(
    specs: list[ScenarioSpec | str],
    *,
    fast: bool,
    fem_resolution: str | None,
    calibrate: bool | None,
) -> list[ScenarioSpec]:
    resolved = []
    for spec in specs:
        if isinstance(spec, str):
            spec = SCENARIOS.get(spec)
        resolved.append(
            spec.resolved(
                fast=fast, fem_resolution=fem_resolution, calibrate=calibrate
            )
        )
    return resolved


def _report_path(root: Path, rank: int) -> Path:
    return root / FLEET_DIR / f"worker-{rank}.json"


def read_reports(root: Path, workers: int) -> list[WorkerReport]:
    """Every rank's report that survived the run, skipping the rest.

    A killed worker writes no report (``os._exit`` skips the finally
    block) and a worker dying mid-``os.replace`` on an exotic filesystem
    can leave a truncated or garbled one; neither may poison the fleet
    aggregation — the missing rank's exit code already tells the story.
    """
    reports = []
    for rank in range(workers):
        path = _report_path(root, rank)
        try:
            reports.append(
                WorkerReport.from_payload(json.loads(path.read_text()))
            )
        except (
            OSError,
            json.JSONDecodeError,
            KeyError,
            ValueError,
            # a garbled report can parse to a non-dict, or to a dict
            # whose fields have the wrong shape — from_payload then
            # raises these rather than the JSON/key errors above
            TypeError,
            AttributeError,
        ):
            continue
    return reports


def _worker_main(
    rank: int,
    store_root: str,
    spec_dicts: list[dict[str, Any]],
    *,
    resume: bool,
    fast: bool,
    ttl_s: float,
    poll_s: float,
    retry: RetryPolicy | None,
    env: Mapping[str, str] | None,
) -> None:
    """One fleet worker: claim, solve, beat, read back, report, exit.

    Runs in a child process.  The exit code mirrors the CLI contract
    (0 ok, 3 quarantined nodes, 4 the run itself raised, ``128 +
    signum`` for a graceful drain); the report JSON carries the details
    either way.  Heartbeats land in the store's ``fleet/heartbeats/``
    space on every plan completion, so the supervisor can tell a slow
    worker from a dead or hung one.
    """
    if env:
        os.environ.update(env)
    # honour an inherited laggy-filesystem shim (chaos soak arms it
    # through the environment; a fresh ``spawn`` child starts unshimmed)
    fsshim.activate_from_env()
    start = time.perf_counter()
    specs = [ScenarioSpec.from_dict(d) for d in spec_dicts]
    store = RunStore(store_root)
    claims = LeaseManager(
        store, owner=f"w{rank}.pid{os.getpid()}", ttl_s=ttl_s
    )
    guard = DrainGuard()
    guard.install()
    beats = HeartbeatWriter(store.root, rank)
    beats.beat(force=True)  # visible before the first (possibly slow) solve

    def progress(event: dict[str, Any]) -> None:
        beats.beat(
            claim=event.get("key"),
            held=len(claims.held),
            done=event.get("done"),
            total=event.get("total"),
        )

    perf.reset()
    ok, error, runs, drained = False, None, [], None
    try:
        # the specs are pre-resolved by the parent; ``fast`` is passed
        # anyway so the assembled metadata matches a single-process
        # ``run_batch(..., fast=...)`` byte for byte
        batch = run_batch(
            list(specs),
            store=store,
            resume=resume,
            fast=fast,
            claims=claims,
            poll_s=poll_s,
            retry=retry,
            progress=progress,
            drain=guard,
        )
        ok = not any(run.failed for run in batch.runs)
        runs = [
            {
                "scenario_id": run.spec.scenario_id,
                "key": run.key,
                "from_store": run.from_store,
                "failed": run.failed,
            }
            for run in batch.runs
        ]
    except DrainError as exc:
        drained = exc.signum
    except Exception as exc:  # noqa: BLE001 — the report is the channel
        error = f"{type(exc).__name__}: {exc}"
    finally:
        claims.release_all()
        payload = {
            "rank": rank,
            "pid": os.getpid(),
            "owner": claims.owner,
            "ok": ok,
            "error": error,
            "drained": drained,
            "counters": perf.stats()["counters"],
            "elapsed_s": time.perf_counter() - start,
            "runs": runs,
        }
        path = _report_path(store.root, rank)
        path.parent.mkdir(exist_ok=True)
        # atomic: a worker killed mid-report must leave the previous
        # (or no) report, never a truncated one
        _write_json_atomic(path, payload)
        beats.beat(force=True)
    if drained is not None:
        raise SystemExit(drain_exit_code(drained))
    raise SystemExit(
        EXIT_ERROR if error else (EXIT_OK if ok else EXIT_FAILED_NODES)
    )


def run_fleet(
    specs: list[ScenarioSpec | str],
    *,
    store: RunStore | str | Path,
    workers: int = 4,
    resume: bool = True,
    fast: bool = False,
    fem_resolution: str | None = None,
    calibrate: bool | None = None,
    ttl_s: float = DEFAULT_TTL_S,
    poll_s: float = 0.05,
    retry: RetryPolicy | None = DEFAULT_RETRY,
    extra_env: Mapping[int, Mapping[str, str]] | None = None,
    timeout_s: float | None = None,
    supervise: bool = False,
    max_respawns: int = 3,
    stall_timeout_s: float | None = None,
    deadline_s: float | None = None,
) -> FleetOutcome:
    """Run ``specs`` across ``workers`` cooperating processes.

    Specs are resolved in the parent (so every worker compiles the
    byte-identical plan) and shipped as dicts.  ``resume`` defaults to
    True — the store read-back *is* the inter-worker result channel, and
    it doubles as recovery from any earlier partial run.  ``extra_env``
    maps worker rank to environment overrides applied in that child
    before it starts (fault-injection cells use it to kill exactly one
    worker).  ``timeout_s`` bounds each worker's join; workers still
    alive afterwards are terminated and reported with their exit code.

    ``supervise=True`` runs the workers under a
    :class:`~repro.scenarios.supervisor.Supervisor`: abnormally-dead
    workers are respawned (up to ``max_respawns`` per rank, with
    crash-loop backoff) and resume from the store; a worker alive but
    heartbeat-silent for ``stall_timeout_s`` is killed and respawned
    too; ``deadline_s`` bounds the whole supervised run (on expiry every
    worker is terminated and the outcome reports
    ``deadline_exceeded``).  Every respawn lands in
    :attr:`FleetOutcome.respawns`.
    """
    if workers < 1:
        raise ValidationError(f"fleet needs >= 1 worker, got {workers}")
    resolved = _resolve_specs(
        specs, fast=fast, fem_resolution=fem_resolution, calibrate=calibrate
    )
    root = store.root if isinstance(store, RunStore) else Path(store)
    RunStore(root)  # materialise the layout before the children race on it
    for rank in range(workers):
        _report_path(root, rank).unlink(missing_ok=True)

    spec_dicts = [spec.to_dict() for spec in resolved]
    ctx = multiprocessing.get_context()

    def spawn(rank: int):
        proc = ctx.Process(
            target=_worker_main,
            args=(rank, str(root), spec_dicts),
            kwargs={
                "resume": resume,
                "fast": fast,
                "ttl_s": ttl_s,
                "poll_s": poll_s,
                "retry": retry,
                "env": dict((extra_env or {}).get(rank, {})),
            },
            name=f"repro-fleet-{rank}",
        )
        proc.start()
        return proc

    procs = [spawn(rank) for rank in range(workers)]

    respawn_events: tuple[dict[str, Any], ...] = ()
    deadline_exceeded = False
    if supervise:
        sup = Supervisor(
            root,
            spawn,
            max_respawns=max_respawns,
            stall_timeout_s=stall_timeout_s,
            deadline_s=deadline_s if deadline_s is not None else timeout_s,
        )
        final = sup.run(dict(enumerate(procs)))
        exit_codes = [final[rank] for rank in range(workers)]
        respawn_events = tuple(e.to_payload() for e in sup.events)
        deadline_exceeded = sup.deadline_exceeded
    else:
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        exit_codes = []
        for proc in procs:
            remaining = (
                None
                if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            proc.join(remaining)
            if proc.is_alive():
                proc.terminate()
                proc.join(5.0)
            exit_codes.append(proc.exitcode)

    reports = read_reports(root, workers)
    counters: dict[str, int] = {}
    for report in reports:
        for name, value in report.counters.items():
            counters[name] = counters.get(name, 0) + value

    # the fleet's contract is the store, not the processes: complete when
    # every requested scenario's run-level artifact landed
    final = RunStore(root)
    complete = all(final.get(spec.content_hash()) is not None for spec in resolved)
    return FleetOutcome(
        store_root=root,
        reports=tuple(reports),
        exit_codes=tuple(exit_codes),
        complete=complete,
        counters=counters,
        respawns=respawn_events,
        deadline_exceeded=deadline_exceeded,
    )
