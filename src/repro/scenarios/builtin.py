"""The paper's experiments as registry entries.

Figures 4–7, Table I and the case study are nothing but six
:class:`~repro.scenarios.spec.ScenarioSpec` instances — the geometry and
sweep values come straight from the captions (mirroring
:mod:`repro.experiments.params`), and
:func:`~repro.scenarios.runner.run_scenario` reproduces the legacy
``repro.experiments.figN.run()`` results exactly (asserted by
``tests/test_scenarios.py``).
"""

from __future__ import annotations

from .registry import SCENARIOS
from .spec import (
    AxisSpec,
    GeometryParams,
    GeometryRule,
    NonlinearParams,
    ScenarioSpec,
    TransientParams,
)


@SCENARIOS.register
def fig4() -> ScenarioSpec:
    """Fig. 4: the radius sweep with the aspect-ratio substrate switch."""
    return ScenarioSpec(
        scenario_id="fig4",
        title="Fig. 4: max ΔT vs TTSV radius",
        description="max ΔT vs TTSV radius (1–20 µm), thin/thick substrate regimes",
        axis=AxisSpec(
            parameter="radius_um",
            values=(1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0),
            fast_values=(1.0, 3.0, 5.0, 8.0, 12.0, 20.0),
        ),
        geometry=GeometryParams(t_ild_um=4.0, t_bond_um=1.0, liner_um=0.5),
        rules=(
            GeometryRule(set={"t_si_upper_um": 5.0}, upto=5.0),
            GeometryRule(set={"t_si_upper_um": 45.0}, above=5.0),
        ),
        models=("a:paper", "b:100", "1d"),
        metadata={
            "caption": "tL=0.5um, tD=4um, tb=1um; tSi2,3 = 5um (r<=5) / 45um (r>5)"
        },
    )


def _fig5_spec(scenario_id: str, title: str, postprocess: str | None) -> ScenarioSpec:
    return ScenarioSpec(
        scenario_id=scenario_id,
        title=title,
        description="max ΔT vs liner thickness; Model B at the Table I segment counts",
        axis=AxisSpec(
            parameter="liner_um",
            values=(0.5, 1.0, 1.5, 2.0, 2.5, 3.0),
            fast_values=(0.5, 1.5, 3.0),
        ),
        geometry=GeometryParams(
            t_si_upper_um=45.0, t_ild_um=7.0, t_bond_um=1.0, radius_um=5.0
        ),
        models=("a:paper", "b:1,1,1", "b:2,20,20", "b:10,100,100", "b:50,500,500", "1d"),
        postprocess=postprocess,
        metadata={
            "caption": "r=5um, tD=7um, tb=1um, tSi2,3=45um",
            "segment_counts": [1, 20, 100, 500],
        },
    )


@SCENARIOS.register
def fig5() -> ScenarioSpec:
    """Fig. 5: the liner sweep (doubles as the Table I study)."""
    return _fig5_spec("fig5", "Fig. 5: max ΔT vs liner thickness", None)


@SCENARIOS.register
def table1() -> ScenarioSpec:
    """Table I: the Fig. 5 sweep post-processed into the accuracy table."""
    return _fig5_spec(
        "table1",
        "Table I: error and run time vs # of segments in Model B",
        "table1",
    )


@SCENARIOS.register
def fig6() -> ScenarioSpec:
    """Fig. 6: the non-monotonic substrate-thickness sweep."""
    return ScenarioSpec(
        scenario_id="fig6",
        title="Fig. 6: max ΔT vs substrate thickness (non-monotonic)",
        description="max ΔT vs upper-substrate thickness (5–80 µm)",
        axis=AxisSpec(
            parameter="t_si_upper_um",
            values=(5.0, 10.0, 15.0, 20.0, 30.0, 45.0, 60.0, 80.0),
            fast_values=(5.0, 20.0, 45.0, 80.0),
        ),
        geometry=GeometryParams(
            t_ild_um=7.0, t_bond_um=1.0, radius_um=8.0, liner_um=1.0
        ),
        models=("a:paper", "b:100", "1d"),
        metadata={"caption": "tL=1um, tD=7um, tb=1um, r=8um"},
    )


@SCENARIOS.register
def fig7() -> ScenarioSpec:
    """Fig. 7: the constant-metal-area cluster sweep."""
    return ScenarioSpec(
        scenario_id="fig7",
        title="Fig. 7: max ΔT vs number of TTSVs (constant metal area)",
        description="max ΔT vs cluster size n (Eq. 22 transform, constant metal area)",
        axis=AxisSpec(
            parameter="cluster_count",
            values=(1, 2, 4, 9, 16),
            fast_values=(1, 2, 4),
        ),
        geometry=GeometryParams(
            t_si_upper_um=20.0, t_ild_um=4.0, t_bond_um=1.0, radius_um=10.0, liner_um=1.0
        ),
        models=("a:paper", "b:100", "1d"),
        metadata={"caption": "tL=1um, tD=4um, tb=1um, tSi2,3=20um, r0=10um"},
    )


@SCENARIOS.register
def fem3d_power() -> ScenarioSpec:
    """A 3-D Cartesian FEM power sweep — the matrix-batched showcase.

    Every point shares the block geometry and differs only in a uniform
    power multiplier, so the (expensive, cache-sensitive) 3-D system is
    voxelised, assembled and factorised exactly once per run and each
    point costs one back-substitution.  Also the only builtin that
    exercises the ``fem3d`` factory grammar end-to-end.
    """
    return ScenarioSpec(
        scenario_id="fem3d_power",
        title="3-D FEM check: max ΔT vs uniform power scale",
        description=(
            "uniform power scaling of the Fig. 7 block against the 3-D "
            "Cartesian FEM (explicit via, squared-liner equivalent); one "
            "shared system matrix across the whole sweep"
        ),
        axis=AxisSpec(
            parameter="power_scale",
            values=(0.25, 0.5, 0.75, 1.0, 1.25, 1.5),
            fast_values=(0.5, 1.0),
        ),
        geometry=GeometryParams(
            t_si_upper_um=20.0, t_ild_um=4.0, t_bond_um=1.0, radius_um=10.0,
            liner_um=1.0,
        ),
        models=("a:paper", "1d"),
        reference="fem3d:12x12x24",
        calibrate=False,
        metadata={
            "caption": "tL=1um, tD=4um, tb=1um, tSi2,3=20um, r=10um; "
            "power scaled uniformly per point"
        },
    )


@SCENARIOS.register
def transient_spike() -> ScenarioSpec:
    """A 4x power spike against the Fig. 5 block, swept over TTSV radius.

    The first builtin of the ``transient`` physics kind: each radius gets
    one backward-Euler step-response trajectory of Model A's RC network
    (plane-lumped thermal mass), answering how fast — and how far — the
    planes heat up when the workload steps to four times its steady
    power.  All three trajectories share nothing but their time grid
    (the radius changes the network), but repeated drive levels of one
    network would factorise once via the matrix-group plane.
    """
    return ScenarioSpec(
        scenario_id="transient_spike",
        title="Transient: plane heat-up under a 4x power spike",
        description=(
            "backward-Euler step response of Model A's RC network under a "
            "4x power step; one trajectory per TTSV radius"
        ),
        kind="transient",
        axis=AxisSpec(
            parameter="radius_um",
            values=(2.0, 5.0, 10.0),
            fast_values=(5.0,),
        ),
        geometry=GeometryParams(
            t_si_upper_um=45.0, t_ild_um=7.0, t_bond_um=1.0, liner_um=0.5
        ),
        models=("a:paper",),
        calibrate=False,
        transient=TransientParams(
            t_end_s=5e-3, n_steps=200, power_scale=4.0
        ),
        metadata={"caption": "tL=0.5um, tD=7um, tb=1um, tSi2,3=45um; q -> 4q at t=0"},
    )


@SCENARIOS.register
def nonlinear_hotspot() -> ScenarioSpec:
    """k(T) fixed-point solves at rising power — the hotspot feedback loop.

    The first builtin of the ``nonlinear`` physics kind: silicon's
    conductivity drops ~0.3 %/K, so the hotter the stack runs the worse
    it spreads heat.  Each power level converges Model A under the
    library k(T) slopes and reports the converged rise next to its
    constant-k baseline; the baselines are ordinary solve nodes that
    dedup against steady-state scenarios and share Model A's point
    geometry across the sweep.
    """
    return ScenarioSpec(
        scenario_id="nonlinear_hotspot",
        title="Nonlinear: k(T) feedback vs power level",
        description=(
            "temperature-dependent-conductivity fixed point around Model A "
            "at 1-4x the paper's power; converged vs constant-k rises"
        ),
        kind="nonlinear",
        axis=AxisSpec(
            parameter="power_scale",
            values=(1.0, 2.0, 4.0),
            fast_values=(2.0,),
        ),
        geometry=GeometryParams(
            t_si_upper_um=45.0, t_ild_um=7.0, t_bond_um=1.0, radius_um=5.0,
            liner_um=0.5,
        ),
        models=("a:paper",),
        calibrate=False,
        nonlinear=NonlinearParams(tolerance=1e-8),
        metadata={"caption": "r=5um, tL=0.5um, tD=7um, tb=1um; k(T) slopes from the library"},
    )


@SCENARIOS.register
def case_study() -> ScenarioSpec:
    """Section IV-E: the 3-D DRAM-µP system (with recalibration)."""
    return ScenarioSpec(
        scenario_id="case_study",
        title="Section IV-E: 3-D DRAM-uP case study",
        description="the 3-D DRAM-µP system; calibrate=True re-fits Model A vs our FEM",
        kind="case_study",
        models=(),
        model_b_segments=1000,
    )
