"""Graceful drain: SIGTERM/SIGINT become an orderly stop, not an abort.

A :class:`DrainGuard` turns the first shutdown signal into a *request*:
the handler records the signal and returns, and the scheduler observes
the request at its next safe point — after the current completion has
been committed — where it stops claiming new units, releases every held
lease, and raises :class:`~repro.errors.DrainError`.  Every point that
already landed stays in the store, so ``--resume`` continues exactly
where the drain stopped.  A *second* signal restores the default
disposition and re-raises itself: the escape hatch when the user really
means "die now".

The CLI (``run``/``batch``) and every fleet worker install a guard, map
the drain to exit code ``128 + signum`` (130 for Ctrl-C/SIGINT, 143 for
SIGTERM — the conventional shell codes), and print a resume hint.  The
fleet supervisor treats those exit codes as *deliberate* and never
respawns a drained worker.
"""

from __future__ import annotations

import os
import signal
from contextlib import contextmanager
from typing import Iterator

from ..errors import DrainError

__all__ = ["DRAIN_SIGNALS", "DrainGuard", "drain_exit_code", "is_drain_exit"]

#: the signals a guard converts into drain requests
DRAIN_SIGNALS = (signal.SIGTERM, signal.SIGINT)


def drain_exit_code(signum: int) -> int:
    """The conventional shell exit code for dying on ``signum``."""
    return 128 + signum


def is_drain_exit(code: int | None) -> bool:
    """True when a process exit code means "drained on request".

    Covers both the cooperative path (the worker caught the signal and
    exited ``128 + signum``) and the raw-kill path multiprocessing
    reports as a negative exit code (``-signum``) — for the *drain*
    signals only, so a SIGKILL (no graceful path exists) stays a crash.
    """
    if code is None:
        return False
    return any(
        code == drain_exit_code(s) or code == -int(s) for s in DRAIN_SIGNALS
    )


class DrainGuard:
    """Converts shutdown signals into a checkable drain request.

    Use as ``with guard.installed(): ...`` (or call
    :meth:`install`/:meth:`uninstall` explicitly).  Signal handlers can
    only be installed on the main thread; elsewhere :meth:`install`
    degrades to a no-op and the guard simply never fires.
    """

    def __init__(self) -> None:
        self._signum: int | None = None
        self._previous: dict[int, object] = {}

    def _handle(self, signum: int, frame: object) -> None:
        if self._signum is not None:
            # the user insists: restore the default and die the normal way
            signal.signal(signum, signal.SIG_DFL)
            os.kill(os.getpid(), signum)
            return
        self._signum = signum

    def install(self) -> None:
        try:
            for signum in DRAIN_SIGNALS:
                self._previous[signum] = signal.signal(signum, self._handle)
        except ValueError:  # not the main thread: no signals here anyway
            self._previous.clear()

    def uninstall(self) -> None:
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        self._previous.clear()

    @contextmanager
    def installed(self) -> Iterator["DrainGuard"]:
        self.install()
        try:
            yield self
        finally:
            self.uninstall()

    @property
    def requested(self) -> int | None:
        """The signal that requested the drain, or None."""
        return self._signum

    def check(self) -> None:
        """Raise :class:`DrainError` when a drain has been requested."""
        if self._signum is not None:
            raise DrainError(self._signum)
