"""Lease-based node claims for multi-worker plan execution.

When N cooperating workers (:mod:`repro.scenarios.fleet`) execute one
compiled plan against one :class:`~repro.scenarios.store.RunStore`, the
store's ``points/`` space is the result channel — but something must
stop two workers from solving the same node concurrently.  That
something is a **lease**: an atomic claim file under the store's
``leases/`` space, held by exactly one worker at a time and expiring on
its own if the holder dies.

Protocol (plain POSIX filesystem operations, no daemon, no sidecar):

* **Claim** — the worker writes the claim payload to a unique temp file
  and hard-links it to ``leases/<xx>/<key>.claim``.  ``link(2)`` fails
  with ``EEXIST`` when the name is taken, so exactly one worker wins,
  and the claim file is always complete (the link publishes fully
  written bytes).
* **Fencing token** — ``time.monotonic_ns()`` at claim time.  It is
  strictly increasing across every process on the machine, so any later
  claimant of the same key holds a strictly larger token and a zombie's
  stale (smaller) token can be rejected without a coordination sidecar.
* **Expiry** — the claim stores a ``CLOCK_MONOTONIC`` deadline
  (``time.monotonic()`` + TTL), comparable across processes on one
  machine and immune to wall-clock steps.  Holders renew well before
  the deadline; a claim past its deadline is *stale* and up for grabs.
  A wall-clock twin (``deadline_unix``) rides along purely for offline
  tooling: monotonic clocks are per-boot, so ``fsck`` scanning a store
  after a reboot (or copied from another host) classifies expiry by
  wall time instead.
* **Steal** — a worker takes a stale (or unparseable) claim by renaming
  it to a unique tombstone.  ``rename(2)`` succeeds for exactly one
  contender — the losers see ``ENOENT`` and back off — after which the
  winner unlinks the tombstone and claims the now-free name normally.
* **Zombie write guard** — before committing a result, the holder calls
  :meth:`LeaseManager.check`, which re-reads the claim file and raises
  :class:`~repro.errors.LeaseLostError` unless it still carries this
  worker's owner id *and* token.  A worker that lost its lease mid-solve
  therefore never publishes over the usurper; the error is transient
  (see :data:`~repro.perf.retry.TRANSIENT_TYPES`) and the retry loop
  re-observes the store.

The verify-then-write renew/release pair is not atomic against a
concurrent steal, but a steal requires the claim to be *past its
deadline* while renewals happen at a fraction of the TTL — the races
left open need a holder that is alive yet silent for a whole TTL, which
is exactly the condition the TTL is tuned to declare "dead".  Even
then, plan results are content-addressed and byte-identical across
workers, so the worst case is a duplicate write of identical bytes, not
corruption.

Counters (:func:`repro.perf.stats`): ``lease_acquired``,
``lease_conflicts``, ``lease_steals``, ``lease_renewals``,
``lease_released``, ``lease_lost``.

Fault injection: :meth:`LeaseManager.acquire` passes through the
``lease`` site *after* the claim lands, so an injected crash kills a
worker while it holds a lease — the exact shape whose recovery
(expiry, steal, reschedule) this module exists to provide.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from .. import faults
from ..errors import LeaseLostError
from ..perf import increment
from .store import RunStore

__all__ = ["DEFAULT_TTL_S", "Lease", "LeaseManager"]

#: default claim lifetime; fleet workers renew every TTL/3
DEFAULT_TTL_S = 30.0

CLAIM_SUFFIX = ".claim"


@dataclass(frozen=True)
class Lease:
    """One parsed claim file."""

    key: str
    owner: str
    token: int
    deadline: float  # CLOCK_MONOTONIC seconds
    ttl_s: float
    #: wall-clock companion to ``deadline``.  The live protocol never
    #: reads it — monotonic time is what's comparable between running
    #: processes — but monotonic clocks are only meaningful within one
    #: boot of one machine, so an *offline* scrubber (``fsck``) on a
    #: rebooted or foreign host classifies expiry by this instead.
    #: 0.0 on claims written by older versions.
    deadline_unix: float = 0.0

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.deadline

    def to_payload(self) -> dict:
        return {
            "key": self.key,
            "owner": self.owner,
            "token": self.token,
            "deadline": self.deadline,
            "ttl_s": self.ttl_s,
            "deadline_unix": self.deadline_unix,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Lease":
        return cls(
            key=str(payload["key"]),
            owner=str(payload["owner"]),
            token=int(payload["token"]),
            deadline=float(payload["deadline"]),
            ttl_s=float(payload["ttl_s"]),
            deadline_unix=float(payload.get("deadline_unix", 0.0)),
        )


class LeaseManager:
    """Claims, renewals and releases for one worker on one store.

    ``owner`` defaults to a string unique per manager instance (pid +
    a monotonic stamp), so two managers — even in one process, as in
    tests running two drivers against one store — never mistake each
    other's claims for their own.
    """

    def __init__(
        self,
        store: RunStore,
        *,
        owner: str | None = None,
        ttl_s: float = DEFAULT_TTL_S,
    ) -> None:
        if ttl_s <= 0:
            raise ValueError(f"lease ttl_s must be > 0, got {ttl_s}")
        self.store = store
        self.space = store.leases
        self.owner = owner or f"pid{os.getpid()}.{time.monotonic_ns():x}"
        self.ttl_s = float(ttl_s)
        #: leases this manager believes it holds: key -> fencing token
        self.held: dict[str, int] = {}

    # ------------------------------------------------------------------
    # claim-file plumbing
    # ------------------------------------------------------------------
    def _claim_path(self, key: str) -> Path:
        return RunStore._sharded_path(self.space, key, CLAIM_SUFFIX)

    def _unique_path(self, key: str, tag: str) -> Path:
        name = f"{key}.{tag}.{self.owner}.{time.monotonic_ns():x}"
        return self._claim_path(key).parent / name

    def peek(self, key: str) -> Lease | None:
        """The current claim on ``key``, or None (missing or unreadable).

        An unreadable/corrupt claim reads as None — callers treat that
        exactly like a stale claim and steal it, which heals torn files
        left by a worker that died mid-tombstone.
        """
        return self._read_lease(self._claim_path(key))

    @staticmethod
    def _read_lease(path: Path) -> Lease | None:
        try:
            return Lease.from_payload(json.loads(path.read_text()))
        except (OSError, json.JSONDecodeError, KeyError, ValueError, TypeError):
            return None

    def _write_unique(self, key: str, lease: Lease, tag: str) -> Path:
        path = self._unique_path(key, tag)
        path.parent.mkdir(exist_ok=True)
        path.write_text(json.dumps(lease.to_payload()) + "\n")
        return path

    # ------------------------------------------------------------------
    # the protocol
    # ------------------------------------------------------------------
    def acquire(self, key: str) -> bool:
        """Try to claim ``key``; True on success.

        A live foreign claim is a conflict (False); a stale or corrupt
        claim is stolen via the rename-tombstone dance and re-claimed.
        Losing any race simply returns False — the caller's dispatch
        loop moves on and revisits the node later.
        """
        if key in self.held:
            # re-entrant: a retry or a later wave claims what it already
            # holds — refresh the deadline instead of racing ourselves
            # (a failed renewal means the lease was lost; fall through
            # and contend for a fresh claim like anyone else)
            if self.renew(key):
                return True
        claim = self._claim_path(key)
        lease = Lease(
            key=key,
            owner=self.owner,
            token=time.monotonic_ns(),
            deadline=time.monotonic() + self.ttl_s,
            ttl_s=self.ttl_s,
            deadline_unix=time.time() + self.ttl_s,
        )
        tmp = self._write_unique(key, lease, "new")
        try:
            os.link(tmp, claim)
        except FileExistsError:
            current = self.peek(key)
            if current is not None and not current.expired:
                increment("lease_conflicts")
                return False
            # stale or unreadable: exactly one contender wins the rename
            tombstone = self._unique_path(key, "stale")
            try:
                os.replace(claim, tombstone)
            except FileNotFoundError:
                increment("lease_conflicts")
                return False
            # the rename is atomic but not conditional: between the peek
            # above and the replace, a rival may have finished the whole
            # steal dance and linked a *fresh* claim under the same name —
            # in which case what we just tombstoned is live.  Read it back
            # before declaring victory, and hand a live claim straight
            # back (same bytes, so its holder's owner+token guard keeps
            # passing).  The hand-back is not seamless: if the rightful
            # holder renews or checks in the gap between the tombstone
            # rename and the restoring link, it sees its claim missing,
            # records the lease lost, and abandons the node — leaving a
            # live claim with no holder that blocks the key for up to one
            # full TTL until it expires and is stolen again.  Fencing
            # still holds (nobody double-publishes); the cost is bounded
            # extra latency on one key, accepted to keep the protocol to
            # plain link/rename/unlink.
            stolen = self._read_lease(tombstone)
            if stolen is not None and not stolen.expired:
                try:
                    os.link(tombstone, claim)
                except FileExistsError:
                    # a third contender claimed meanwhile; the displaced
                    # holder's fencing token reports the loss at commit
                    pass
                tombstone.unlink(missing_ok=True)
                increment("lease_conflicts")
                return False
            # the tombstone is ours to drop; then retry the claim once
            tombstone.unlink(missing_ok=True)
            increment("lease_steals")
            try:
                os.link(tmp, claim)
            except FileExistsError:
                increment("lease_conflicts")
                return False
        finally:
            tmp.unlink(missing_ok=True)
        self.held[key] = lease.token
        increment("lease_acquired")
        if faults.active():
            faults.inject("lease", key)
        return True

    def acquire_many(self, keys: Iterable[str]) -> list[str]:
        """Claim every key in ``keys`` that is free; returns the wins."""
        return [key for key in keys if self.acquire(key)]

    def check(self, key: str) -> None:
        """Raise :class:`LeaseLostError` unless we still hold ``key``.

        The zombie write guard: call immediately before committing a
        result for ``key``.
        """
        token = self.held.get(key)
        current = self.peek(key) if token is not None else None
        if (
            token is None
            or current is None
            or current.owner != self.owner
            or current.token != token
        ):
            self.held.pop(key, None)
            increment("lease_lost")
            raise LeaseLostError(
                f"lease on {key} lost by {self.owner} (claim now "
                f"{'missing' if current is None else f'held by {current.owner}'})"
            )

    def renew(self, key: str) -> bool:
        """Extend our claim on ``key`` by a fresh TTL; False if lost.

        Refuses to renew a claim that already expired (a stealer may
        own the name by now) — that lease is recorded as lost instead.
        """
        token = self.held.get(key)
        if token is None:
            return False
        current = self.peek(key)
        if (
            current is None
            or current.owner != self.owner
            or current.token != token
            or current.expired
        ):
            self.held.pop(key, None)
            increment("lease_lost")
            return False
        renewed = Lease(
            key=key,
            owner=self.owner,
            token=token,
            deadline=time.monotonic() + self.ttl_s,
            ttl_s=self.ttl_s,
            deadline_unix=time.time() + self.ttl_s,
        )
        tmp = self._write_unique(key, renewed, "renew")
        os.replace(tmp, self._claim_path(key))
        increment("lease_renewals")
        return True

    def renew_all(self) -> int:
        """Renew every held lease; returns how many survived."""
        return sum(self.renew(key) for key in list(self.held))

    def release(self, key: str) -> None:
        """Drop our claim on ``key`` (a no-op if we lost it meanwhile)."""
        token = self.held.pop(key, None)
        if token is None:
            return
        current = self.peek(key)
        if current is None or current.owner != self.owner or current.token != token:
            increment("lease_lost")
            return
        self._claim_path(key).unlink(missing_ok=True)
        increment("lease_released")

    def release_all(self) -> None:
        for key in list(self.held):
            self.release(key)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<LeaseManager owner={self.owner!r} held={len(self.held)} "
            f"ttl={self.ttl_s:g}s>"
        )
