"""Run a scenario spec through the experiment engine.

:func:`run_scenario` is the generic entry point the CLI's ``run`` and
``batch`` subcommands sit on: resolve the spec (fast values, mesh
override, calibration policy), consult the :class:`RunStore` keyed on the
spec's content hash, and only if the store misses build the models via
:func:`repro.core.factory.make_model`, expand the axis into geometry
points and hand the sweep to
:func:`repro.experiments.harness.run_sweep_experiment` (which in turn
runs on the pluggable :class:`repro.perf.SweepExecutor` engine).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from ..core.factory import make_model, parse_model_spec
from ..core.sweep import Configurator
from ..errors import ValidationError
from ..experiments import case_study as case_study_module
from ..experiments.harness import (
    ExperimentResult,
    calibrated_model_a,
    run_sweep_experiment,
)
from ..experiments.table1_segments import rows_from_fig5
from ..geometry import PowerSpec, TSVCluster, paper_stack, paper_tsv
from ..perf import SweepExecutor
from ..units import um
from .registry import SCENARIOS
from .spec import ScenarioSpec
from .store import RunStore


@dataclass(frozen=True)
class StoredCaseStudy:
    """A case-study run reloaded from the store (payload-backed view)."""

    payload: dict[str, Any]

    @property
    def title(self) -> str:
        return self.payload.get("title", case_study_module.TITLE)

    def rises(self) -> dict[str, float]:
        return dict(self.payload["rises"])

    def rows(self) -> list[list[Any]]:
        out: list[list[Any]] = [["model", "max ΔT [°C]", "solve time [ms]"]]
        runtimes = self.payload.get("runtimes_ms", {})
        for name, rise in self.payload["rises"].items():
            out.append([name, rise, runtimes.get(name, float("nan"))])
        recal = self.payload.get("recalibrated")
        if recal is not None:
            out.append(
                [
                    f"model_a (recal. k1={recal['k1']:.2f}, k2={recal['k2']:.2f})",
                    recal["max_rise"],
                    float("nan"),
                ]
            )
        return out

    def to_payload(self) -> dict[str, Any]:
        return self.payload


@dataclass(frozen=True)
class ScenarioRun:
    """One completed :func:`run_scenario` call.

    ``result`` is an :class:`~repro.experiments.harness.ExperimentResult`
    for sweeps (reconstructed from the payload on a store hit) or a
    :class:`~repro.experiments.case_study.CaseStudyExperiment` /
    :class:`StoredCaseStudy` for the case study; ``from_store`` says
    whether anything was actually solved.
    """

    spec: ScenarioSpec  # the resolved spec that keyed the run
    key: str  # spec.content_hash(); the RunStore address
    result: Any
    from_store: bool


def _power_spec(spec: ScenarioSpec) -> PowerSpec:
    kwargs = dict(spec.power)
    if kwargs.get("plane_powers") is not None:
        kwargs["plane_powers"] = tuple(kwargs["plane_powers"])
    return PowerSpec(**kwargs)


def _configurator(spec: ScenarioSpec) -> Configurator:
    """The (stack, via, power) callback a sweep spec expands into."""
    axis = spec.axis
    assert axis is not None  # guaranteed by ScenarioSpec validation
    base = spec.geometry.to_dict()
    power = _power_spec(spec)

    def configure(value):
        geo = dict(base)
        for rule in spec.rules:
            if rule.applies(value):
                geo.update(rule.set)
        if axis.parameter != "cluster_count":
            geo[axis.parameter] = float(value)
        stack = paper_stack(
            n_planes=geo["n_planes"],
            t_si_upper=um(geo["t_si_upper_um"]),
            t_ild=um(geo["t_ild_um"]),
            t_bond=um(geo["t_bond_um"]),
        )
        via_kwargs: dict[str, float] = {
            "radius": um(geo["radius_um"]),
            "liner_thickness": um(geo["liner_um"]),
        }
        if geo["extension_um"] is not None:
            via_kwargs["extension"] = um(geo["extension_um"])
        via = paper_tsv(**via_kwargs)
        if axis.parameter == "cluster_count":
            return stack, TSVCluster(via, int(value)), power
        return stack, via, power

    return configure


def _run_sweep(
    spec: ScenarioSpec, *, executor: SweepExecutor | None, fast: bool, key: str
) -> ExperimentResult:
    axis = spec.axis
    configure = _configurator(spec)
    reference = make_model(spec.reference)
    models = [make_model(m) for m in spec.models]
    if spec.calibrate:
        # same slot the legacy experiments used: right after the first model
        models.insert(
            min(1, len(models)),
            calibrated_model_a(
                axis.values, configure, reference, n_samples=spec.calibration_samples
            ),
        )
    result = run_sweep_experiment(
        experiment_id=spec.scenario_id,
        title=spec.title,
        x_label=axis.x_label,
        values=list(axis.values),
        configure=configure,
        models=models,
        reference=reference,
        executor=executor,
        metadata={**dict(spec.metadata), "fast": fast, "spec_hash": key},
    )
    if spec.postprocess == "table1":
        metadata = dict(result.metadata)
        metadata["table_rows"] = rows_from_fig5(result)
        result = replace(result, metadata=metadata)
    return result


def _run_case_study(spec: ScenarioSpec):
    parsed = parse_model_spec(spec.reference)
    if parsed.kind != "fem":
        raise ValidationError(
            f"the case study needs an axisymmetric 'fem[:...]' reference, "
            f"got {spec.reference!r}"
        )
    # the spec is already resolved: ``fast`` has been folded into
    # model_b_segments, so never pass fast=True here — case_study.run would
    # re-trim the segments behind the content hash's back and the store
    # would file the trimmed result under the full-accuracy key
    return case_study_module.run(
        fem_resolution=parsed.arg,
        fast=False,
        recalibrate=spec.calibrate,
        model_b_segments=spec.model_b_segments,
    )


def run_scenario(
    spec: ScenarioSpec | str,
    *,
    executor: SweepExecutor | None = None,
    store: RunStore | None = None,
    fast: bool = False,
    fem_resolution: str | None = None,
    calibrate: bool | None = None,
) -> ScenarioRun:
    """Run one scenario (a spec, or a registered scenario id).

    The spec is first :meth:`~ScenarioSpec.resolved` against the run-time
    choices so the content hash covers exactly what runs.  With a
    ``store``, a hash hit returns the stored payload — reconstructed into
    an :class:`ExperimentResult` for sweeps — without solving anything;
    a miss runs the scenario and stores its payload.  ``executor`` picks
    the sweep execution strategy (serial default; the CLI's ``--jobs N``
    passes a :class:`~repro.perf.ParallelExecutor`).
    """
    if isinstance(spec, str):
        spec = SCENARIOS.get(spec)
    spec = spec.resolved(fast=fast, fem_resolution=fem_resolution, calibrate=calibrate)
    key = spec.content_hash()
    if store is not None:
        payload = store.get(key)
        if payload is not None:
            if spec.kind == "case_study":
                result: Any = StoredCaseStudy(payload)
            else:
                result = ExperimentResult.from_payload(payload)
            return ScenarioRun(spec=spec, key=key, result=result, from_store=True)
    if spec.kind == "case_study":
        result = _run_case_study(spec)
    else:
        result = _run_sweep(spec, executor=executor, fast=fast, key=key)
    if store is not None:
        store.put(key, result.to_payload(), spec)
    return ScenarioRun(spec=spec, key=key, result=result, from_store=False)
