"""Run scenario specs through the execution-plan engine.

:func:`run_scenario` is the generic entry point the CLI's ``run``
subcommand sits on; :func:`run_batch` is the many-scenario variant behind
``batch``.  Both resolve the spec(s) (fast values, mesh override,
calibration policy), consult the :class:`RunStore` keyed on each spec's
content hash, and compile whatever missed into ONE merged
:class:`~repro.scenarios.plan.ExecutionPlan` — a flat DAG of
content-keyed point/calibration/reference nodes, deduplicated across
scenarios — which the :mod:`~repro.scenarios.scheduler` streams over the
pluggable :class:`repro.perf.SweepExecutor` engine.  Per-scenario
:class:`~repro.experiments.harness.ExperimentResult`\\ s are then
reassembled from the executed nodes, byte-identically to the historical
eager path (kept here as :func:`_run_sweep_eager` and pinned by the
equivalence tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from ..core.factory import make_model
from ..experiments.harness import (
    ExperimentResult,
    calibrated_model_a,
    run_sweep_experiment,
)
from ..experiments.table1_segments import rows_from_fig5
from ..perf import DEFAULT_RETRY, NodeFailure, RetryPolicy, SweepExecutor
from .physics import (
    result_from_store_payload,
    run_nonlinear_spec_direct,
    run_transient_spec_direct,
)
from .plan import (
    StoredCaseStudy,
    _configurator,
    _power_spec,
    assemble_scenario,
    compile_plan,
    run_case_study_spec,
)
from .drain import DrainGuard
from .lease import LeaseManager
from .registry import SCENARIOS
from .scheduler import ProgressFn, execute_plan
from .spec import ScenarioSpec
from .store import RunStore

__all__ = [
    "BatchRun",
    "ScenarioRun",
    "StoredCaseStudy",
    "run_batch",
    "run_scenario",
]


@dataclass(frozen=True)
class ScenarioRun:
    """One completed scenario run.

    ``result`` is an :class:`~repro.experiments.harness.ExperimentResult`
    for sweeps (reconstructed from the payload on a store hit) or a
    :class:`~repro.experiments.case_study.CaseStudyExperiment` /
    :class:`StoredCaseStudy` for the case study; ``from_store`` says
    whether anything was actually solved.  When plan nodes this scenario
    needs were quarantined (exhausted their retry budget), ``result`` is
    None and ``failures`` holds their ledger records — the scenario is
    *failed*, not silently absent, and a later ``--resume`` re-attempts
    exactly those nodes.
    """

    spec: ScenarioSpec  # the resolved spec that keyed the run
    key: str  # spec.content_hash(); the RunStore address
    result: Any
    from_store: bool
    failures: tuple[NodeFailure, ...] = ()

    @property
    def failed(self) -> bool:
        return bool(self.failures)


@dataclass(frozen=True)
class BatchRun:
    """A completed :func:`run_batch`: per-scenario runs plus plan stats.

    ``stats`` merges the compiler's node counts (``nodes_total``,
    ``nodes_deduped``, per-kind counts) with the scheduler's satisfaction
    counts (``solved`` / ``cache`` / ``store`` / ``failed``) and
    ``run_store_hits``.  ``failures`` is the batch-wide quarantine
    ledger — one record per failed plan node, deduplicated across the
    scenarios that share it.
    """

    runs: tuple[ScenarioRun, ...]
    stats: dict[str, int] = field(default_factory=dict)
    failures: tuple[NodeFailure, ...] = ()


def _run_sweep_eager(
    spec: ScenarioSpec, *, executor: SweepExecutor | None, fast: bool, key: str
) -> ExperimentResult:
    """The historical one-scenario-at-a-time path (pre-plan-compiler).

    Kept as the reference implementation: the equivalence tests assert the
    plan-compiled path produces byte-identical payloads to this.
    """
    axis = spec.axis
    configure = _configurator(spec)
    reference = make_model(spec.reference)
    models = [make_model(m) for m in spec.models]
    if spec.calibrate:
        # same slot the legacy experiments used: right after the first model
        models.insert(
            min(1, len(models)),
            calibrated_model_a(
                axis.values, configure, reference, n_samples=spec.calibration_samples
            ),
        )
    result = run_sweep_experiment(
        experiment_id=spec.scenario_id,
        title=spec.title,
        x_label=axis.x_label,
        values=list(axis.values),
        configure=configure,
        models=models,
        reference=reference,
        executor=executor,
        metadata={**dict(spec.metadata), "fast": fast, "spec_hash": key},
    )
    if spec.postprocess == "table1":
        metadata = dict(result.metadata)
        metadata["table_rows"] = rows_from_fig5(result)
        result = replace(result, metadata=metadata)
    return result


def _run_scenario_eager(
    spec: ScenarioSpec | str,
    *,
    executor: SweepExecutor | None = None,
    store: RunStore | None = None,
    fast: bool = False,
    fem_resolution: str | None = None,
    calibrate: bool | None = None,
) -> ScenarioRun:
    """The pre-plan-compiler :func:`run_scenario` (reference for tests)."""
    if isinstance(spec, str):
        spec = SCENARIOS.get(spec)
    spec = spec.resolved(fast=fast, fem_resolution=fem_resolution, calibrate=calibrate)
    key = spec.content_hash()
    if store is not None:
        payload = store.get(key)
        if payload is not None:
            result: Any = result_from_store_payload(spec, payload)
            return ScenarioRun(spec=spec, key=key, result=result, from_store=True)
    if spec.kind == "case_study":
        result = run_case_study_spec(spec)
    elif spec.kind == "transient":
        result = run_transient_spec_direct(spec, fast=fast)
    elif spec.kind == "nonlinear":
        result = run_nonlinear_spec_direct(spec, fast=fast)
    else:
        result = _run_sweep_eager(spec, executor=executor, fast=fast, key=key)
    if store is not None:
        store.put(key, result.to_payload(), spec)
    return ScenarioRun(spec=spec, key=key, result=result, from_store=False)


def run_batch(
    specs: list[ScenarioSpec | str],
    *,
    executor: SweepExecutor | None = None,
    store: RunStore | None = None,
    resume: bool = False,
    fast: bool = False,
    fem_resolution: str | None = None,
    calibrate: bool | None = None,
    progress: ProgressFn | None = None,
    group_matrices: bool = True,
    stack_batches: bool = True,
    retry: RetryPolicy | None = DEFAULT_RETRY,
    claims: LeaseManager | None = None,
    poll_s: float = 0.05,
    drain: DrainGuard | None = None,
) -> BatchRun:
    """Run many scenarios as one merged, deduplicated execution plan.

    Each spec is resolved and checked against the run store first (a hash
    hit returns the stored payload without compiling anything).  The
    misses are compiled together, so calibration samples, reference
    solves and sweep points shared *between* scenarios are solved exactly
    once; with a ``store`` every solved node lands in the point-level
    object space as it completes, and ``resume=True`` reads those points
    back so an interrupted batch continues where it stopped.
    ``group_matrices`` (default on) lets the scheduler dispatch nodes
    that share a system matrix — power sweeps, shared geometries — as
    matrix groups: one factorization, one RHS per point, bit-identical
    results.  ``stack_batches`` (default on) additionally stacks nodes
    with structurally congruent but *different* matrices — geometry
    sweeps over the small network models — into single batched dense
    solves, also bit-identical.  ``retry`` is the fault-tolerance policy (see
    :func:`~repro.scenarios.scheduler.execute_plan`): failures retry,
    then quarantine — a scenario whose nodes exhausted their budget comes
    back as a *failed* :class:`ScenarioRun` (``result=None`` plus the
    ledger records) while every other scenario completes normally.
    ``claims`` makes this invocation one cooperating member of a fleet of
    workers sharing ``store`` (see :mod:`repro.scenarios.fleet`): nodes
    are solved under lease, peer results are read back from the point
    space (paced by ``poll_s``), and every worker assembles every
    scenario — run-level artifacts are deterministic, so concurrent
    writes are idempotent.  ``drain`` (a
    :class:`~repro.scenarios.drain.DrainGuard`) lets a shutdown signal
    stop the plan at a safe point: landed points stay committed, held
    leases are released, and :class:`~repro.errors.DrainError`
    propagates out for the caller to map to an exit code.
    """
    resolved: list[ScenarioSpec] = []
    for spec in specs:
        if isinstance(spec, str):
            spec = SCENARIOS.get(spec)
        resolved.append(
            spec.resolved(fast=fast, fem_resolution=fem_resolution, calibrate=calibrate)
        )
    runs: list[ScenarioRun | None] = [None] * len(resolved)
    to_plan: list[tuple[int, ScenarioSpec]] = []
    run_store_hits = 0
    for i, spec in enumerate(resolved):
        key = spec.content_hash()
        if store is not None:
            payload = store.get(key)
            if payload is not None:
                result: Any = result_from_store_payload(spec, payload)
                runs[i] = ScenarioRun(
                    spec=spec, key=key, result=result, from_store=True
                )
                run_store_hits += 1
                continue
        to_plan.append((i, spec))

    stats: dict[str, int] = {"run_store_hits": run_store_hits}
    if to_plan:
        plan = compile_plan([spec for _, spec in to_plan], fast=fast)

        # assemble and store each scenario the moment its last node lands,
        # so a batch that fails on scenario N still keeps every finished
        # scenario's run-level artifact (same incremental behaviour as the
        # pre-plan one-at-a-time loop)
        node_results: dict[str, Any] = {}
        pending: list[tuple[int, ScenarioSpec, Any, set[str]]] = []
        for (i, spec), entry in zip(to_plan, plan.scenarios):
            if entry.assembly is not None:
                needed = {
                    key
                    for keys in entry.assembly.node_keys.values()
                    for key in keys
                }
            elif entry.physics is not None:
                needed = {
                    key
                    for keys in entry.physics.node_keys.values()
                    for key in keys
                }
            else:
                needed = {entry.node_key}
            pending.append((i, spec, entry, needed))

        def on_node(key: str, value: Any) -> None:
            node_results[key] = value
            for i, spec, entry, needed in pending:
                needed.discard(key)
                if not needed and runs[i] is None:
                    result = assemble_scenario(entry, node_results)
                    if store is not None:
                        store.put(entry.run_key, result.to_payload(), spec)
                    runs[i] = ScenarioRun(
                        spec=spec, key=entry.run_key, result=result,
                        from_store=False,
                    )

        outcome = execute_plan(
            plan,
            executor=executor,
            store=store,
            resume=resume,
            progress=progress,
            on_node=on_node,
            group_matrices=group_matrices,
            stack_batches=stack_batches,
            retry=retry,
            claims=claims,
            poll_s=poll_s,
            drain=drain,
        )
        stats.update(plan.stats)
        stats.update(outcome.counts)
        all_failures = tuple(outcome.failures.values())
        # scenarios whose needed nodes were quarantined never assembled in
        # on_node: surface them as failed runs carrying their ledger slice
        for i, spec, entry, needed in pending:
            if runs[i] is None:
                related = tuple(
                    outcome.failures[k]
                    for k in sorted(needed)
                    if k in outcome.failures
                )
                runs[i] = ScenarioRun(
                    spec=spec,
                    key=entry.run_key,
                    result=None,
                    from_store=False,
                    failures=related,
                )
        assert all(run is not None for run in runs)
        return BatchRun(
            runs=tuple(runs), stats=stats, failures=all_failures
        )  # type: ignore[arg-type]
    return BatchRun(runs=tuple(runs), stats=stats)  # type: ignore[arg-type]


def run_scenario(
    spec: ScenarioSpec | str,
    *,
    executor: SweepExecutor | None = None,
    store: RunStore | None = None,
    fast: bool = False,
    fem_resolution: str | None = None,
    calibrate: bool | None = None,
    resume: bool = False,
    progress: ProgressFn | None = None,
    group_matrices: bool = True,
    stack_batches: bool = True,
    retry: RetryPolicy | None = DEFAULT_RETRY,
    drain: DrainGuard | None = None,
) -> ScenarioRun:
    """Run one scenario (a spec, or a registered scenario id).

    The spec is first :meth:`~ScenarioSpec.resolved` against the run-time
    choices so the content hash covers exactly what runs.  With a
    ``store``, a hash hit returns the stored payload — reconstructed into
    an :class:`ExperimentResult` for sweeps — without solving anything; a
    miss compiles the spec into a single-scenario execution plan (see
    :func:`run_batch`), whose assembled payload is byte-identical to the
    historical eager path.  ``executor`` picks the sweep execution
    strategy (serial default; the CLI's ``--jobs N`` passes a
    :class:`~repro.perf.ParallelExecutor`); ``resume`` reuses stored
    point-level artifacts from an interrupted earlier run.
    """
    batch = run_batch(
        [spec],
        executor=executor,
        store=store,
        resume=resume,
        fast=fast,
        fem_resolution=fem_resolution,
        calibrate=calibrate,
        progress=progress,
        group_matrices=group_matrices,
        stack_batches=stack_batches,
        retry=retry,
        drain=drain,
    )
    return batch.runs[0]
