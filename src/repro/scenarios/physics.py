"""Physics-kind execution: transient and nonlinear scenarios as plan work.

The spec layer declares *what* a transient or nonlinear scenario is
(:class:`~repro.scenarios.spec.TransientParams` /
:class:`~repro.scenarios.spec.NonlinearParams`); this module supplies the
pieces that make those kinds executable through the same machinery the
steady-state sweeps use:

* :func:`build_transient_circuit` — Model A's network with thermal mass
  attached per the capacitance policy (the circuit the RC step response
  integrates);
* :class:`TransientModel` — a model-shaped adapter around one network +
  time grid.  It dispatches through the ordinary
  :class:`~repro.perf.PointTask` machinery, and because the backward-Euler
  left-hand matrix C/dt + G is power-independent it also implements the
  matrix-group contract (``assembly_key`` / ``solve_batch``): trajectories
  sharing a network factorise once and integrate per drive level;
* :class:`NonlinearModel` — the k(T) fixed-point chain around any inner
  model, seeded with a precomputed linear baseline (a plain
  :class:`~repro.scenarios.plan.SolveNode` shared — and deduplicated —
  with steady-state scenarios at the same point);
* :class:`TransientExperiment` / :class:`NonlinearExperiment` — the
  scenario-level result containers with exact JSON payload round-trips
  for the run store;
* :func:`run_transient_spec_direct` / :func:`run_nonlinear_spec_direct` —
  the reference implementations: plain :func:`~repro.network.step_response`
  / :class:`~repro.core.nonlinear.NonlinearSolver` library calls, which
  the planned path must match byte-for-byte (asserted by tests and the
  bench checks).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.factory import make_model
from ..core.model_a import ModelA, build_model_a_circuit, bulk_node
from ..core.nonlinear import NonlinearResult, NonlinearSolver
from ..core.result import ModelResult
from ..errors import ExperimentError, ValidationError
from ..geometry import PowerSpec, Stack3D, TSV, TSVCluster, validate_tsv_in_stack
from ..geometry.tsv import as_cluster
from ..network import (
    ThermalCircuit,
    TransientResult,
    pulse_train_scales,
    step_response,
    transient_lhs,
)
from ..network.solve import factorized_solver
from ..perf import content_key, model_key
from .spec import NonlinearParams, ScenarioSpec, TransientParams

#: x-axis placeholder for axis-less physics scenarios (one base-geometry point)
BASE_POINT_VALUE = "base"
BASE_POINT_LABEL = "geometry"


def transient_model_name(inner_name: str) -> str:
    """Report/series name of a transient trajectory of one inner model."""
    return f"transient({inner_name})"


def nonlinear_model_name(inner_name: str) -> str:
    """Report/series name of a k(T) fixed point around one inner model."""
    return f"nonlinear({inner_name})"


def default_observed_nodes(stack: Stack3D) -> tuple[str, ...]:
    """The plane bulk nodes — what a transient scenario observes by default."""
    return tuple(bulk_node(j) for j in range(stack.n_planes))


def plane_capacitance(stack: Stack3D, plane_index: int, policy: str) -> float:
    """Thermal capacitance (J/K) lumped onto one plane's bulk node.

    ``"plane_lumped"`` spreads the substrate material's ρ·cp over the
    plane's full thickness (the library's historical transient example);
    ``"substrate_ild"`` sums the substrate and ILD capacities from their
    own materials and thicknesses.
    """
    plane = stack.planes[plane_index]
    if policy == "plane_lumped":
        return (
            stack.footprint_area
            * plane.thickness
            * plane.substrate.material.volumetric_heat_capacity
        )
    if policy == "substrate_ild":
        return stack.footprint_area * (
            plane.substrate.thickness
            * plane.substrate.material.volumetric_heat_capacity
            + plane.ild.thickness * plane.ild.material.volumetric_heat_capacity
        )
    raise ValidationError(f"unknown capacitance policy {policy!r}")


def build_transient_circuit(
    model: ModelA,
    stack: Stack3D,
    via: TSV | TSVCluster,
    power: PowerSpec,
    capacitance: str = "plane_lumped",
) -> ThermalCircuit:
    """Model A's Fig. 2 network with per-plane thermal mass attached.

    The resistive skeleton and the heat sources are exactly what the
    steady-state :class:`~repro.core.model_a.ModelA` solve assembles; the
    capacitance policy adds one capacitor per plane bulk node, turning
    G·ΔT = q into the RC system C·dΔT/dt + G·ΔT = q(t).
    """
    if not isinstance(model, ModelA):
        raise ValidationError(
            f"transient circuits are built from Model A networks, "
            f"got {type(model).__name__}"
        )
    cluster = as_cluster(via)
    validate_tsv_in_stack(stack, cluster.member)
    heats = tuple(power.plane_heat(stack, j) for j in range(stack.n_planes))
    circuit = build_model_a_circuit(model.resistances(stack, cluster), heats)
    for j, _plane in stack.iter_planes():
        circuit.add_capacitor(
            bulk_node(j), plane_capacitance(stack, j, capacitance)
        )
    return circuit


# ---------------------------------------------------------------------------
# model-shaped adapters (the units the scheduler dispatches)
# ---------------------------------------------------------------------------
class TransientModel:
    """One RC step response as a dispatchable, model-shaped unit of work.

    ``solve(stack, via, power)`` integrates the backward-Euler trajectory
    of the inner Model A network under the given drive power and returns
    the :class:`~repro.network.TransientResult` restricted to the observed
    nodes.  The adapter carries only the *right-hand-side-invariant*
    configuration plus the drive shape — time grid, capacitance policy,
    observed nodes, pulse-train parameters — never the drive *level*:
    the plan bakes ``power_scale`` into each node's power, and the drive
    shape only rescales the per-step sources, so the left-hand matrix
    C/dt + G (and hence :meth:`assembly_key`) is shared across drive
    levels and the adapter implements the matrix-group contract:
    ``solve_batch`` factorises once and integrates one trajectory per
    drive — bit-identical to per-point solves (factorization is
    deterministic and shared through the factor cache either way).
    """

    def __init__(
        self,
        model: ModelA,
        params: TransientParams,
        observe: tuple[str, ...],
    ) -> None:
        self.model = model
        self.t_end_s = params.t_end_s
        self.n_steps = params.n_steps
        self.capacitance = params.capacitance
        self.drive = params.drive
        self.period_s = params.period_s
        self.duty = params.duty
        self.observe = tuple(observe)
        self.name = transient_model_name(model.name)

    def _drive_scales(self) -> np.ndarray | None:
        """Per-step source scales, or ``None`` for the constant step drive."""
        if self.drive == "step":
            return None
        return pulse_train_scales(
            self.t_end_s, self.n_steps, self.period_s, self.duty
        )

    def _circuit(
        self, stack: Stack3D, via: TSV | TSVCluster, power: PowerSpec
    ) -> ThermalCircuit:
        return build_transient_circuit(
            self.model, stack, via, power, self.capacitance
        )

    def solve(
        self, stack: Stack3D, via: TSV | TSVCluster, power: PowerSpec
    ) -> TransientResult:
        result = step_response(
            self._circuit(stack, via, power),
            t_end=self.t_end_s,
            n_steps=self.n_steps,
            drive=self._drive_scales(),
        )
        return result.observed(self.observe)

    def assembly_key(
        self, stack: Stack3D, via: TSV | TSVCluster
    ) -> str | None:
        """Content hash of the backward-Euler system C/dt + G at (stack, via).

        The matrix depends on the network (inner model config, stack,
        via), the capacitance policy and the time grid — everything in
        this adapter's configuration — but not on the drive power, which
        only shapes the per-step right-hand side.
        """
        return content_key(
            "transient_assembly/v1", model_key(self), stack, as_cluster(via)
        )

    def solve_batch(
        self,
        stack: Stack3D,
        via: TSV | TSVCluster,
        powers: Sequence[PowerSpec],
    ) -> list[TransientResult]:
        """Integrate many drive levels of one network.

        The left-hand matrix is assembled and factorised once
        (:func:`~repro.network.transient_lhs` + the precomputed-solver
        hook of :func:`~repro.network.step_response`); each drive level
        costs its per-step back-substitutions only.
        """
        powers = list(powers)
        if not powers:
            return []
        circuits = [self._circuit(stack, via, power) for power in powers]
        dt = self.t_end_s / self.n_steps
        step_solver = factorized_solver(transient_lhs(circuits[0], dt))
        drive = self._drive_scales()
        return [
            step_response(
                circuit,
                t_end=self.t_end_s,
                n_steps=self.n_steps,
                step_solver=step_solver,
                drive=drive,
            ).observed(self.observe)
            for circuit in circuits
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TransientModel {self.name!r}>"


class NonlinearModel:
    """One k(T) fixed-point chain as a dispatchable, model-shaped unit.

    ``initial`` optionally carries the precomputed constant-k baseline —
    the plan lowers it as an ordinary solve node shared (and deduplicated)
    with steady-state scenarios, and the scheduler hands the landed result
    in here.  Solves are deterministic, so seeded and unseeded chains are
    bit-identical.
    """

    def __init__(
        self,
        model: Any,
        params: NonlinearParams,
        initial: ModelResult | None = None,
    ) -> None:
        self.model = model
        self.params = params
        self.initial = initial
        self.name = nonlinear_model_name(model.name)

    def solve(
        self, stack: Stack3D, via: TSV | TSVCluster, power: PowerSpec
    ) -> NonlinearResult:
        solver = NonlinearSolver(
            self.model,
            tolerance=self.params.tolerance,
            max_iterations=self.params.max_iterations,
            relaxation=self.params.relaxation,
            slope_scale=self.params.slope_scale,
        )
        return solver.solve(stack, via, power, initial=self.initial)

    def assembly_key(
        self, stack: Stack3D, via: TSV | TSVCluster
    ) -> str | None:
        """Always None: iterations re-assemble at updated conductivities."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<NonlinearModel {self.name!r}>"


# ---------------------------------------------------------------------------
# scenario-level result containers
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TransientExperiment:
    """A completed transient scenario: one trajectory per (model, value).

    ``results[name][i]`` is the observed-node trajectory of adapter
    ``name`` at ``x_values[i]``.  The payload round-trips exactly —
    trajectories are deterministic and carry no wall-clock times.
    """

    experiment_id: str
    title: str
    x_label: str
    x_values: list[Any]
    results: dict[str, list[TransientResult]]
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def series(self) -> dict[str, list[float]]:
        """Final (steady-state) max rise per model per value."""
        return {
            name: [float(r.final.max()) for r in trajectories]
            for name, trajectories in self.results.items()
        }

    def result_at(self, model_name: str, value: Any) -> TransientResult:
        """The trajectory of one model at one axis value."""
        try:
            i = self.x_values.index(value)
            return self.results[model_name][i]
        except (KeyError, ValueError):
            raise ValidationError(
                f"no trajectory for ({model_name!r}, {value!r}); models: "
                f"{sorted(self.results)}, values: {self.x_values}"
            ) from None

    def rows(self) -> list[list[Any]]:
        """Report rows: final/peak rise and the 90 % settle time per point."""
        out: list[list[Any]] = [
            ["value", "model", "final ΔT [°C]", "peak ΔT [°C]", "t90 [µs]"]
        ]
        for i, value in enumerate(self.x_values):
            for name, trajectories in self.results.items():
                r = trajectories[i]
                hottest = r.nodes[int(np.argmax(r.final))]
                out.append(
                    [
                        value,
                        name,
                        float(r.final.max()),
                        r.peak_rise,
                        r.settle_time(hottest) * 1e6,
                    ]
                )
        return out

    def to_payload(self) -> dict[str, Any]:
        return {
            "kind": "transient",
            "experiment_id": self.experiment_id,
            "title": self.title,
            "x_label": self.x_label,
            "x_values": list(self.x_values),
            "series": self.series,
            "results": {
                name: [r.to_payload() for r in trajectories]
                for name, trajectories in self.results.items()
            },
            "metadata": self.metadata,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "TransientExperiment":
        try:
            return cls(
                experiment_id=payload["experiment_id"],
                title=payload["title"],
                x_label=payload["x_label"],
                x_values=list(payload["x_values"]),
                results={
                    name: [TransientResult.from_payload(p) for p in trajectories]
                    for name, trajectories in payload["results"].items()
                },
                metadata=dict(payload.get("metadata", {})),
            )
        except (KeyError, TypeError) as exc:
            raise ExperimentError(
                f"malformed transient experiment payload: {exc!r}"
            ) from exc


@dataclass(frozen=True)
class NonlinearExperiment:
    """A completed nonlinear scenario: one fixed point per (model, value).

    Every :class:`~repro.core.nonlinear.NonlinearResult` carries its
    constant-k baseline (``history[0]``), so the linear-vs-nonlinear
    comparison needs no separate reference sweep.
    """

    experiment_id: str
    title: str
    x_label: str
    x_values: list[Any]
    results: dict[str, list[NonlinearResult]]
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def series(self) -> dict[str, list[float]]:
        """Converged max rise per model per value."""
        return {
            name: [r.max_rise for r in results]
            for name, results in self.results.items()
        }

    def result_at(self, model_name: str, value: Any) -> NonlinearResult:
        """The fixed-point result of one model at one axis value."""
        try:
            i = self.x_values.index(value)
            return self.results[model_name][i]
        except (KeyError, ValueError):
            raise ValidationError(
                f"no result for ({model_name!r}, {value!r}); models: "
                f"{sorted(self.results)}, values: {self.x_values}"
            ) from None

    def rows(self) -> list[list[Any]]:
        """Report rows: linear vs converged rise and loop diagnostics."""
        out: list[list[Any]] = [
            ["value", "model", "linear ΔT [°C]", "k(T) ΔT [°C]", "lin err %", "iters"]
        ]
        for i, value in enumerate(self.x_values):
            for name, results in self.results.items():
                r = results[i]
                out.append(
                    [
                        value,
                        name,
                        r.linear_rise,
                        r.max_rise,
                        r.linear_error * 100.0,
                        r.iterations,
                    ]
                )
        return out

    def to_payload(self) -> dict[str, Any]:
        return {
            "kind": "nonlinear",
            "experiment_id": self.experiment_id,
            "title": self.title,
            "x_label": self.x_label,
            "x_values": list(self.x_values),
            "series": self.series,
            "results": {
                name: [r.to_payload() for r in results]
                for name, results in self.results.items()
            },
            "metadata": self.metadata,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "NonlinearExperiment":
        try:
            return cls(
                experiment_id=payload["experiment_id"],
                title=payload["title"],
                x_label=payload["x_label"],
                x_values=list(payload["x_values"]),
                results={
                    name: [NonlinearResult.from_payload(p) for p in results]
                    for name, results in payload["results"].items()
                },
                metadata=dict(payload.get("metadata", {})),
            )
        except (KeyError, TypeError) as exc:
            raise ExperimentError(
                f"malformed nonlinear experiment payload: {exc!r}"
            ) from exc


def result_from_store_payload(spec: ScenarioSpec, payload: dict[str, Any]) -> Any:
    """Reconstruct a run-level store payload into the kind's result type."""
    if spec.kind == "transient":
        return TransientExperiment.from_payload(payload)
    if spec.kind == "nonlinear":
        return NonlinearExperiment.from_payload(payload)
    if spec.kind == "case_study":
        from .plan import StoredCaseStudy

        return StoredCaseStudy(payload)
    from ..experiments.harness import ExperimentResult

    return ExperimentResult.from_payload(payload)


# ---------------------------------------------------------------------------
# direct (reference) execution — plain library calls, no plan machinery
# ---------------------------------------------------------------------------
def _drive_power(power: PowerSpec, params: TransientParams) -> PowerSpec:
    return power if params.power_scale == 1.0 else power.scaled(params.power_scale)


def run_transient_spec_direct(
    spec: ScenarioSpec, *, fast: bool = False
) -> TransientExperiment:
    """A transient scenario via direct :func:`step_response` library calls.

    The reference implementation the planned path must match byte-for-byte
    (same expansion into points, but every trajectory integrated by plain
    library composition — no nodes, caches or stores involved).
    """
    from .plan import scenario_axis_points

    params = spec.transient
    assert params is not None  # guaranteed by ScenarioSpec validation
    x_label, values, points = scenario_axis_points(spec)
    drive = (
        pulse_train_scales(
            params.t_end_s, params.n_steps, params.period_s, params.duty
        )
        if params.drive == "pulse_train"
        else None
    )
    results: dict[str, list[TransientResult]] = {}
    for model_spec in spec.models:
        inner = make_model(model_spec)
        name = transient_model_name(inner.name)
        if name in results:
            raise ExperimentError(f"duplicate model names in scenario: {name}")
        trajectories = []
        for stack, via, power in points:
            circuit = build_transient_circuit(
                inner, stack, via, _drive_power(power, params), params.capacitance
            )
            full = step_response(
                circuit, t_end=params.t_end_s, n_steps=params.n_steps, drive=drive
            )
            trajectories.append(
                full.observed(params.observe or default_observed_nodes(stack))
            )
        results[name] = trajectories
    return TransientExperiment(
        experiment_id=spec.scenario_id,
        title=spec.title,
        x_label=x_label,
        x_values=list(values),
        results=results,
        metadata={
            **dict(spec.metadata), "fast": fast, "spec_hash": spec.content_hash(),
        },
    )


def run_nonlinear_spec_direct(
    spec: ScenarioSpec, *, fast: bool = False
) -> NonlinearExperiment:
    """A nonlinear scenario via direct :class:`NonlinearSolver` library calls."""
    from .plan import scenario_axis_points

    params = spec.nonlinear
    assert params is not None  # guaranteed by ScenarioSpec validation
    x_label, values, points = scenario_axis_points(spec)
    results: dict[str, list[NonlinearResult]] = {}
    for model_spec in spec.models:
        inner = make_model(model_spec)
        name = nonlinear_model_name(inner.name)
        if name in results:
            raise ExperimentError(f"duplicate model names in scenario: {name}")
        solver = NonlinearSolver(
            inner,
            tolerance=params.tolerance,
            max_iterations=params.max_iterations,
            relaxation=params.relaxation,
            slope_scale=params.slope_scale,
        )
        results[name] = [
            solver.solve(stack, via, power) for stack, via, power in points
        ]
    return NonlinearExperiment(
        experiment_id=spec.scenario_id,
        title=spec.title,
        x_label=x_label,
        x_values=list(values),
        results=results,
        metadata={
            **dict(spec.metadata), "fast": fast, "spec_hash": spec.content_hash(),
        },
    )
