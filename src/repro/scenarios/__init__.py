"""Declarative scenarios: spec-driven experiments, registry and run store.

This package turns experiments into data.  A
:class:`~repro.scenarios.spec.ScenarioSpec` describes a sweep (axis,
geometry, power, models, reference, calibration policy), the case study,
an RC transient (``kind: "transient"`` — time grid, capacitance policy,
drive power, observed nodes) or a k(T) fixed point (``kind: "nonlinear"``
— slope policy and loop controls)
as a frozen, JSON-round-trippable value with a stable content hash; the
:data:`~repro.scenarios.registry.SCENARIOS` registry maps ids to specs
(the paper's six experiments are builtin entries); the
:class:`~repro.scenarios.store.RunStore` keeps finished runs as
content-addressed JSON artifacts so unchanged specs are store hits; and
:func:`~repro.scenarios.runner.run_scenario` executes any spec on the
:mod:`repro.perf` sweep engine.

CLI: ``python -m repro run <id|file.json>``, ``python -m repro list``,
``python -m repro batch <dir>``.
"""

from .physics import (
    NonlinearExperiment,
    NonlinearModel,
    TransientExperiment,
    TransientModel,
    build_transient_circuit,
    run_nonlinear_spec_direct,
    run_transient_spec_direct,
)
from .fleet import FleetOutcome, WorkerReport, run_fleet
from .fsck import FsckReport, scrub
from .lease import LeaseManager
from .plan import ExecutionPlan, ScenarioPlan, compile_plan
from .registry import SCENARIOS, ScenarioRegistry
from .runner import BatchRun, ScenarioRun, StoredCaseStudy, run_batch, run_scenario
from .scheduler import ScheduleOutcome, execute_plan
from .spec import (
    AXIS_LABELS,
    AXIS_PARAMETERS,
    AxisSpec,
    GeometryParams,
    GeometryRule,
    NonlinearParams,
    ScenarioSpec,
    TransientParams,
)
from .store import RunStore

# registering the builtin scenarios is an import side effect by design:
# any importer of repro.scenarios sees the paper's six entries
from . import builtin as _builtin  # noqa: F401  (registration side effect)

__all__ = [
    "AXIS_LABELS",
    "AXIS_PARAMETERS",
    "AxisSpec",
    "BatchRun",
    "ExecutionPlan",
    "FleetOutcome",
    "FsckReport",
    "GeometryParams",
    "GeometryRule",
    "LeaseManager",
    "NonlinearExperiment",
    "NonlinearModel",
    "NonlinearParams",
    "RunStore",
    "SCENARIOS",
    "ScenarioPlan",
    "ScenarioRegistry",
    "ScenarioRun",
    "ScenarioSpec",
    "ScheduleOutcome",
    "StoredCaseStudy",
    "TransientExperiment",
    "TransientModel",
    "TransientParams",
    "WorkerReport",
    "build_transient_circuit",
    "compile_plan",
    "execute_plan",
    "run_batch",
    "run_fleet",
    "run_nonlinear_spec_direct",
    "run_scenario",
    "run_transient_spec_direct",
    "scrub",
]
