"""Topological execution of compiled plans on the sweep executors.

:func:`execute_plan` walks the merged node graph a
:func:`~repro.scenarios.plan.compile_plan` call produced:

* ready :class:`~repro.scenarios.plan.SolveNode`\\ s are first resolved
  against the global result cache, then (``resume=True``) against the
  :class:`~repro.scenarios.store.RunStore`'s point-level object space;
* the remaining ready nodes are regrouped for dispatch.  Nodes sharing a
  non-None ``assembly_key`` — the same system matrix, different
  right-hand sides (power sweeps, calibration samples, repeated
  geometries across scenarios) — become one
  :class:`~repro.perf.MatrixGroupTask` solved through the model's
  ``solve_batch``: voxelise/assemble/factorise once, back-substitute per
  member, with the shared payload shipped once under parallel dispatch.
  Of what remains, solve nodes sharing a non-None ``batch_class_key`` —
  structurally congruent systems with *different* matrices (geometry
  sweeps over the small network models) — become one
  :class:`~repro.perf.StackedBatchTask` solved via
  :func:`repro.core.base.solve_stacked`: every member's dense system is
  assembled and all of them go through one batched ``(m, n, n)`` LAPACK
  call instead of m Python-level solver round-trips.  Everything else
  falls back to per-point
  :class:`~repro.perf.PointTask`\\ s (one dispatch per geometry, not per
  model — the same batching the eager sweep used).  All shapes stream
  over the executor's :meth:`~repro.perf.SweepExecutor.submit_stream`
  as-completed interface; ``group_matrices=False`` /
  ``stack_batches=False`` disable the regroupings (the paths are
  bit-identical — asserted by tests and the ``multi_rhs_identical`` /
  ``stacked_identical`` bench checks);
* the physics kinds flow through the same machinery:
  :class:`~repro.scenarios.plan.TransientNode`\\ s dispatch like solve
  nodes (their adapter's ``solve``/``solve_batch`` integrate the
  backward-Euler trajectory; same-network trajectories share an
  ``assembly_key`` and factorise once per group), and
  :class:`~repro.scenarios.plan.NonlinearNode`\\ s dispatch once their
  linear baseline — an ordinary, deduplicatable solve node — lands,
  seeding the k(T) fixed-point chain with its result;
* :class:`~repro.scenarios.plan.CalibrationNode`\\ s run in the parent as
  soon as their reference solves land — mid-stream, between completions —
  and their dependent calibrated solve nodes dispatch in the next
  executor wave.  Finished fits are memoized in the result cache keyed on
  (reference config, sample solve keys) via
  :func:`repro.perf.calibration_fit_key`, so repeated in-process batches
  skip the least-squares fit too (counters
  ``calibration_fit_hits`` / ``calibration_fit_misses``);
* every completed node is written into the store's point space
  (``points/<key>.json``) so a killed batch resumes from its solved
  points;
* failures are *results*, not scheduler-unwinding exceptions: tasks
  stream over the executor's capture-mode
  :meth:`~repro.perf.SweepExecutor.submit_stream_safe`, a failed
  multi-node task (a matrix group, a multi-model point bucket) degrades
  to per-member solo dispatch so one bad RHS cannot sink its group, solo
  failures retry under the :class:`~repro.perf.RetryPolicy` (exponential
  backoff with deterministic jitter; each attempt is an independent
  fault-injection draw), and whatever exhausts its budget is
  *quarantined*: recorded as a :class:`~repro.perf.NodeFailure` in
  ``ScheduleOutcome.failures`` (and the store's ``failures/`` space)
  while the rest of the plan completes.  Nodes depending on a
  quarantined node cascade into the ledger instead of deadlocking the
  walk.  ``retry=None`` restores the historical raise-on-failure path;
* with a :class:`~repro.scenarios.lease.LeaseManager` (``claims=...``)
  the scheduler runs as one member of a cooperating *fleet*
  (:mod:`repro.scenarios.fleet`): content-keyed dispatch nodes are
  claimed unit-at-a-time before solving (matrix groups and stacked
  batches claim whole, so the batch tiers survive distribution), nodes
  a peer holds are deferred and their results read back from the point
  space, failures a peer quarantines during the run are adopted from
  the ledger (counter ``plan_failures_adopted``), a dead peer's expired
  claims are stolen, and every commit is fenced —
  ``put_point``-before-release, with a
  :class:`~repro.errors.LeaseLostError` check that keeps a usurped
  worker from publishing over its successor.

Every solve is deterministic and batched solves are bit-identical to
per-point solves, so cache hits, store hits, fresh solves and group
membership are all numerically interchangeable — scheduling order never
changes the assembled results.  Counters land in
:func:`repro.perf.stats`: ``plan_point_solves`` (actual solves
dispatched), ``plan_transient_solves`` / ``plan_nonlinear_solves`` (the
physics-kind subsets), ``plan_matrix_groups`` / ``plan_grouped_solves``
(matrix groups dispatched and the nodes they carried),
``plan_stacked_batches`` / ``plan_stacked_solves`` (stacked batches
dispatched and the nodes they carried),
``plan_calibrations``, ``point_store_hits`` / ``point_store_misses``,
``plan_retries`` (failed dispatches re-attempted),
``plan_group_degradations`` (multi-node tasks split after a failure),
``plan_quarantined`` (nodes that exhausted their budget),
``plan_poison_degradations`` (nodes forced solo by the fleet-wide blame
ledger) and ``plan_poison_quarantined`` (nodes quarantined outright for
repeatedly crashing executors — see the store's ``blame/`` space and
:class:`~repro.perf.RetryPolicy`'s ``poison_solo_after`` /
``poison_quarantine_after`` thresholds).
"""

from __future__ import annotations

import hashlib
import os
import time
from collections import defaultdict, deque
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from ..calibration import fit_coefficients
from ..core.nonlinear import NonlinearResult
from ..core.result import ModelResult
from ..errors import DrainError, ExperimentError, LeaseLostError
from ..experiments.harness import calibrated_model_from_fit
from ..network.transient import TransientResult
from ..perf import (
    MatrixGroupTask,
    PointTask,
    SerialExecutor,
    StackedBatchTask,
    SweepExecutor,
    SweepTask,
    calibration_fit_key,
    content_key,
    increment,
    result_cache,
    solve_key,
)
from ..perf.memo import memoized_fit
from ..perf.retry import (
    DEFAULT_RETRY,
    PROPAGATE_TYPES,
    NodeFailure,
    RetryPolicy,
    TaskFailure,
    failure_from_exception,
)
from ..resistances import FittingCoefficients
from .physics import NonlinearModel
from .plan import (
    DISPATCH_NODE_TYPES,
    CalibrationNode,
    CaseStudyNode,
    ExecutionPlan,
    NonlinearNode,
    SolveNode,
    StoredCaseStudy,
    TransientNode,
    is_content_key,
    run_case_study_spec,
)
from .drain import DrainGuard
from .lease import LeaseManager
from .store import RunStore

#: progress callback: one event dict per completed node
#: ``{"done", "total", "key", "kind", "source", "elapsed_s"}`` with source
#: in ``{"solved", "cache", "store"}``; ``elapsed_s`` is the wall-clock
#: time since the previous completion (the stream's per-node cadence).
#: Freshly solved nodes additionally carry ``"dispatch"`` — how the solve
#: was dispatched: ``"point"`` (solo/per-point bucket), ``"group"``
#: (multi-RHS matrix group) or ``"stacked"`` (cross-matrix stacked batch)
ProgressFn = Callable[[dict[str, Any]], None]

#: audit hook for the chaos harness: when this names a directory, every
#: *fresh* point commit (a solve landed under this process's own lease —
#: not cache republishes, not store read-backs) appends its node key to
#: ``<dir>/<pid>.solves``.  The append happens after ``put_point``
#: succeeds and before the lease is released, so a kill at any instant
#: can only under-record, never attribute a commit that did not happen —
#: which is what lets ``scripts/chaos_soak.py`` assert *zero
#: double-solves*: the lease fencing guarantees at most one committed
#: solve per key fleet-wide, and the union of ledgers proves it.
SOLVE_LEDGER_ENV = "REPRO_SOLVE_LEDGER"


def _record_solve(key: str) -> None:
    ledger_dir = os.environ.get(SOLVE_LEDGER_ENV)
    if not ledger_dir:
        return
    try:
        path = os.path.join(ledger_dir, f"{os.getpid()}.solves")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(key + "\n")
    except OSError:
        # the audit trail must never fail the run it audits
        pass


#: completion hook: ``(node key, node result)`` the moment a node finishes
#: (:func:`repro.scenarios.runner.run_batch` uses it to assemble and store
#: each scenario as soon as its last node lands)
OnNodeFn = Callable[[str, Any], None]


@dataclass
class ScheduleOutcome:
    """Executed node results plus how each unit of work was satisfied.

    ``failures`` is the failure ledger: one
    :class:`~repro.perf.NodeFailure` per quarantined node (a node that
    exhausted its retry budget, failed non-transiently, or depends on one
    that did).  Quarantined keys never appear in ``results``.
    """

    results: dict[str, Any]
    counts: dict[str, int] = field(
        default_factory=lambda: {"solved": 0, "cache": 0, "store": 0}
    )
    failures: dict[str, NodeFailure] = field(default_factory=dict)


def execute_plan(
    plan: ExecutionPlan,
    *,
    executor: SweepExecutor | None = None,
    store: RunStore | None = None,
    resume: bool = False,
    progress: ProgressFn | None = None,
    on_node: OnNodeFn | None = None,
    group_matrices: bool = True,
    stack_batches: bool = True,
    retry: RetryPolicy | None = DEFAULT_RETRY,
    claims: LeaseManager | None = None,
    poll_s: float = 0.05,
    drain: DrainGuard | None = None,
) -> ScheduleOutcome:
    """Execute every node of ``plan`` and return the per-key results.

    ``store`` enables point-level persistence (always written when given);
    ``resume`` additionally *reads* stored points, so an interrupted batch
    picks up from its solved points instead of re-solving them.
    ``group_matrices`` controls the matrix-batched dispatch: ready nodes
    sharing an ``assembly_key`` are solved as one group (factor once, one
    RHS per node) unless disabled — results are bit-identical either way.
    ``stack_batches`` controls the cross-matrix stacked tier below it:
    ungrouped solve nodes sharing a ``batch_class_key`` are solved as one
    batched dense call unless disabled — also bit-identical either way.
    ``retry`` is the fault-tolerance policy: transient task failures are
    retried up to ``retry.max_attempts`` dispatches (solo, with backoff),
    multi-node tasks degrade to per-member dispatch on failure, and
    exhausted nodes land in ``ScheduleOutcome.failures`` instead of
    raising; ``retry=None`` disables capture entirely — the historical
    behaviour where the first worker exception unwinds the scheduler.

    ``claims`` turns this scheduler into one cooperating member of a
    *fleet*: every content-keyed dispatch node is solved only under an
    acquired :mod:`~repro.scenarios.lease` claim, whole dispatch units
    (matrix groups, stacked batches, point buckets) are claimed together
    so the batch tiers survive distribution, nodes claimed by a peer are
    *deferred* — their results are read back from the store when the
    peer commits them (``poll_s`` paces that wait), a dead peer's claims
    expire and its nodes are stolen, and results are committed
    put-before-release with a fencing check so a worker that lost its
    lease mid-solve never publishes over its usurper.  Requires
    ``store`` (the point space is the inter-worker result channel).
    Deterministic solves make any interleaving byte-identical to the
    single-process path.

    ``drain`` is a :class:`~repro.scenarios.drain.DrainGuard`: when a
    shutdown signal has been observed, the scheduler stops at its next
    safe point — after the in-flight completion has been committed —
    releases every held lease, and raises
    :class:`~repro.errors.DrainError`.  Landed points stay in the store,
    so ``resume=True`` continues exactly where the drain stopped.
    """
    executor = executor or SerialExecutor()
    if claims is not None and store is None:
        raise ExperimentError(
            "claim-aware execution needs a store: the point space is the "
            "only channel through which cooperating workers exchange results"
        )
    nodes = plan.nodes
    outcome = ScheduleOutcome(results={})
    results = outcome.results
    failures = outcome.failures
    attempts: dict[str, int] = {}  # failed dispatches per node key
    solo: set[str] = set()  # keys that must dispatch alone (post-failure)
    #: this wave's snapshot of the store's fleet-wide poison-unit ledger
    blame_snapshot: dict[str, int] = {}
    poison_forced: set[str] = set()  # keys already counted as poison-solo
    #: nodes claimed by a cooperating worker: key -> (node, model, cache_key)
    deferred: dict[str, tuple[Any, Any, str | None]] = {}
    wall_start = time.time()  # gates peer-failure adoption to this run
    last_renew = time.monotonic()

    indegree: dict[str, int] = {}
    dependents: dict[str, list[str]] = defaultdict(list)
    for key, node in nodes.items():
        deps = set(node.deps)
        missing = deps - nodes.keys()
        if missing:
            raise ExperimentError(
                f"plan node {key} depends on unknown node(s) {sorted(missing)}"
            )
        indegree[key] = len(deps)
        for dep in deps:
            dependents[dep].append(key)

    ready_solve: list[Any] = []
    ready_other: deque[CalibrationNode | CaseStudyNode] = deque()
    for key, node in nodes.items():
        if indegree[key] == 0:
            if isinstance(node, DISPATCH_NODE_TYPES):
                ready_solve.append(node)
            else:
                ready_other.append(node)

    total = len(nodes)
    done = 0
    last_completion = time.perf_counter()

    def complete(node: Any, source: str, dispatch: str | None = None) -> None:
        """Shared bookkeeping for a node leaving the graph (success or
        quarantine): counts, dependent unlocking — with failed-dependency
        cascade — and the progress event."""
        nonlocal done, last_completion
        done += 1
        outcome.counts[source] = outcome.counts.get(source, 0) + 1
        for dep_key in dependents[node.key]:
            indegree[dep_key] -= 1
            if indegree[dep_key] == 0:
                dep = nodes[dep_key]
                failed_deps = sorted(set(dep.deps) & failures.keys())
                if failed_deps:
                    quarantine_dependency(dep, failed_deps)
                elif isinstance(dep, DISPATCH_NODE_TYPES):
                    ready_solve.append(dep)
                else:
                    ready_other.append(dep)
        now = time.perf_counter()
        elapsed, last_completion = now - last_completion, now
        if progress is not None:
            event = {
                "done": done,
                "total": total,
                "key": node.key,
                "kind": node.kind,
                "source": source,
                "elapsed_s": elapsed,
            }
            if dispatch is not None:
                event["dispatch"] = dispatch
            progress(event)

    def finish(
        node: Any, value: Any, source: str, dispatch: str | None = None
    ) -> None:
        results[node.key] = value
        if store is not None and is_content_key(node.key):
            # a success supersedes any quarantine record from an earlier run
            store.clear_failure(node.key)
        if on_node is not None:
            on_node(node.key, value)
        complete(node, source, dispatch)

    def quarantine(node: Any, failure: NodeFailure) -> None:
        """Retire ``node`` into the failure ledger; the plan keeps going."""
        failures[node.key] = failure
        increment("plan_quarantined")
        if store is not None and is_content_key(node.key):
            # ledger-before-release: peers observing the freed claim find
            # the failure record and adopt it instead of re-attempting
            store.put_failure(node.key, failure)
        if claims is not None:
            claims.release(node.key)
        complete(node, "failed")

    def quarantine_task_failure(
        node: Any, failure: TaskFailure, n_attempts: int
    ) -> None:
        quarantine(
            node,
            NodeFailure(
                key=node.key,
                kind=node.kind,
                error_class=failure.error_class,
                message=failure.message,
                traceback_digest=failure.traceback_digest,
                attempts=n_attempts,
            ),
        )

    def quarantine_dependency(dep: Any, failed_deps: list[str]) -> None:
        quarantine(
            dep,
            NodeFailure(
                key=dep.key,
                kind=dep.kind,
                error_class="DependencyError",
                message=(
                    "depends on quarantined node(s): "
                    + ", ".join(failed_deps)
                ),
                traceback_digest="",
                attempts=0,
            ),
        )

    def run_calibration(node: CalibrationNode) -> None:
        if resume and store is not None and is_content_key(node.key):
            payload = store.get_point(node.key)
            if payload is not None:
                try:
                    coefficients = FittingCoefficients(
                        payload["k1"], payload["k2"], payload["c_bond"]
                    )
                except (KeyError, TypeError, ValueError):
                    # readable JSON but not a calibration payload: heal it
                    # away and re-fit rather than resume a poisoned point
                    store.heal_point(node.key)
                else:
                    finish(node, coefficients, "store")
                    return
        # the node key IS the fit identity (reference config + sample solve
        # keys), so the finished CalibrationResult memoizes under a key
        # derived from it — repeated in-process batches skip the
        # least-squares fit, not just the point solves
        fit_key = (
            calibration_fit_key(node.key) if is_content_key(node.key) else None
        )

        def compute():
            targets = [results[k].max_rise for k in node.sample_keys]
            fit = fit_coefficients(list(node.samples), None, targets=targets)
            increment("plan_calibrations")
            return fit

        try:
            fit, from_cache = memoized_fit(fit_key, compute)
        except PROPAGATE_TYPES:
            raise
        except Exception as exc:
            if retry is None:
                raise
            # parent-side nodes get no retries: a deterministic fit that
            # failed once will fail again, so it goes straight to the ledger
            quarantine_task_failure(node, failure_from_exception(exc), 1)
            return
        source = "cache" if from_cache else "solved"
        coefficients = fit.coefficients
        if store is not None and is_content_key(node.key):
            store.put_point(
                node.key,
                {
                    "kind": "calibration",
                    "k1": coefficients.k1,
                    "k2": coefficients.k2,
                    "c_bond": coefficients.c_bond,
                    "residual_rms": fit.residual_rms,
                },
            )
        finish(node, coefficients, source)

    def run_case_study(node: CaseStudyNode) -> None:
        if resume and store is not None and is_content_key(node.key):
            payload = store.get_point(node.key)
            if payload is not None:
                finish(node, StoredCaseStudy(payload), "store")
                return
        try:
            result = run_case_study_spec(node.spec)
        except PROPAGATE_TYPES:
            raise
        except Exception as exc:
            if retry is None:
                raise
            quarantine_task_failure(node, failure_from_exception(exc), 1)
            return
        if store is not None and is_content_key(node.key):
            store.put_point(node.key, result.to_payload())
        finish(node, result, "solved")

    def drain_parent_nodes() -> bool:
        ran = False
        while ready_other:
            node = ready_other.popleft()
            if isinstance(node, CalibrationNode):
                run_calibration(node)
            else:
                run_case_study(node)
            ran = True
        return ran

    def node_cache_key(node: Any, model: Any) -> str | None:
        """The result-cache key for a dispatchable node, or None (never cache).

        For concrete picklable models the plan key IS the cache key;
        opaque plan keys are compile-local and must not reach the cache.
        Calibrated models get their key only now that the fitted
        coefficients exist.
        """
        if isinstance(node, SolveNode) and node.model is None:
            return solve_key(model, node.stack, node.via, node.power)
        return node.key if is_content_key(node.key) else None

    def node_payload_result(node: Any, payload: dict[str, Any]) -> Any:
        """Decode a stored point payload into the node's result type."""
        if isinstance(node, TransientNode):
            return TransientResult.from_payload(payload)
        if isinstance(node, NonlinearNode):
            return NonlinearResult.from_payload(payload)
        return ModelResult.from_payload(payload)

    def node_model(node: Any) -> Any:
        """The dispatchable model instance a ready node solves with.

        Solve nodes carry their model (or materialise the calibrated one
        from the landed fit); transient nodes carry their adapter; a
        nonlinear node's chain is seeded with its landed linear baseline.
        """
        if isinstance(node, NonlinearNode):
            return NonlinearModel(
                node.model, node.params, initial=results[node.linear]
            )
        if node.model is None:
            return calibrated_model_from_fit(
                results[node.calibration], name=node.model_name
            )
        return node.model

    # ------------------------------------------------------------------
    # fleet cooperation: lease claiming, peer read-back, failure adoption
    # ------------------------------------------------------------------
    def finish_from_store(entry: tuple[Any, Any, str | None]) -> bool:
        """Finish a node from a peer's stored payload; False on miss."""
        node, _, cache_key = entry
        payload = store.get_point(node.key)
        if payload is None:
            return False
        try:
            result = node_payload_result(node, payload)
        except (KeyError, TypeError, ValueError):
            store.heal_point(node.key)
            return False
        if cache_key is not None:
            result_cache.put(cache_key, result)
        finish(node, result, "store")
        return True

    def adopt_peer_failure(node: Any) -> bool:
        """Adopt a failure a peer quarantined *during this run*.

        Records written before this run started are stale — ``--resume``
        deliberately re-attempts them — so adoption is gated on the
        ledger file's age: only a record younger than this execution is
        a cooperating worker's verdict on the very plan we are running.
        """
        failure = store.get_failure(node.key)
        if failure is None:
            return False
        age = store.failure_age_s(node.key)
        if age is None or time.time() - age < wall_start:
            return False
        failures[node.key] = failure
        increment("plan_failures_adopted")
        complete(node, "failed")
        return True

    def claim_entry(entry: tuple[Any, Any, str | None]) -> bool:
        """Secure ``entry`` for local dispatch; False removes it.

        False means the node left this worker's hands: a peer holds its
        lease (deferred — its result will be read back), a peer already
        quarantined it (adopted), or a peer's result landed between our
        store check and our claim (finished from store).  Nodes without
        a content key cannot be shared through the store at all, so
        every worker simply computes them locally.
        """
        node = entry[0]
        if not is_content_key(node.key):
            return True
        if adopt_peer_failure(node):
            return False
        if not claims.acquire(node.key):
            deferred[node.key] = entry
            return False
        # the claim is ours, but a peer may have completed-and-released
        # this node since our resume check: the store is the arbiter
        if finish_from_store(entry):
            claims.release(node.key)
            return False
        return True

    def claim_units(grouped, stacks, buckets) -> tuple[dict, list, list]:
        """Claim whole dispatch units, rotated so workers spread out.

        Units are claimed member-by-member but *visited* whole — a
        worker that wins any member of a matrix group tends to win the
        rest in the same pass, so the batch tiers survive distribution —
        and the visiting order is rotated by a hash of this worker's
        owner id, so N workers hitting the same ready wave start
        claiming at different units instead of racing door-to-door in
        lockstep.  (Batched solves are batch-size invariant, so a unit
        split by a lost race is still byte-identical — just less
        batched.)  An idle worker whose own share is exhausted keeps
        visiting and takes whatever is still unclaimed: work stealing
        falls out of the same loop.
        """
        units: list[tuple[str, Any]] = (
            [("group", akey) for akey in grouped]
            + [("stack", i) for i in range(len(stacks))]
            + [("bucket", i) for i in range(len(buckets))]
        )
        if not units:
            return grouped, stacks, buckets
        seed = hashlib.blake2b(
            claims.owner.encode(), digest_size=4
        ).digest()
        offset = int.from_bytes(seed, "big") % len(units)
        kept_groups: dict[str, list] = {}
        kept_stacks: list[list] = []
        kept_buckets: list[dict] = []
        for shape, ref in units[offset:] + units[:offset]:
            if shape == "group":
                members = [e for e in grouped[ref] if claim_entry(e)]
                if members:
                    kept_groups[ref] = members
            elif shape == "stack":
                members = [e for e in stacks[ref] if claim_entry(e)]
                if members:
                    kept_stacks.append(members)
            else:
                bucket = {
                    name: e
                    for name, e in buckets[ref].items()
                    if claim_entry(e)
                }
                if bucket:
                    kept_buckets.append(bucket)
        return kept_groups, kept_stacks, kept_buckets

    def poll_deferred() -> bool:
        """Resolve deferred nodes; True when any left deferral.

        A deferred node comes back three ways: its holder committed a
        result (read back from the store), its holder quarantined it
        (adopted from the ledger), or its holder died — the lease
        expired, the steal succeeds, and the node returns to our own
        ready set.
        """
        progressed = False
        for key, entry in list(deferred.items()):
            node = entry[0]
            if finish_from_store(entry) or adopt_peer_failure(node):
                del deferred[key]
                progressed = True
            elif claims.acquire(key):
                del deferred[key]
                ready_solve.append(node)
                progressed = True
        return progressed

    def maybe_renew() -> None:
        """Extend this worker's claims well before any can expire."""
        nonlocal last_renew
        now = time.monotonic()
        if claims is not None and now - last_renew >= claims.ttl_s / 3.0:
            claims.renew_all()
            last_renew = now

    def check_drain() -> None:
        """Honour a pending drain request at this safe point.

        Everything that already landed is committed; every lease this
        worker still holds is released so peers (or a later ``--resume``)
        pick the nodes up immediately instead of waiting out the TTL.
        """
        if drain is not None and drain.requested is not None:
            if claims is not None:
                claims.release_all()
            raise DrainError(drain.requested)

    while done < total:
        check_drain()
        progressed = drain_parent_nodes()
        if claims is not None and deferred:
            progressed = poll_deferred() or progressed
        if not ready_solve:
            if progressed:
                continue
            if claims is not None and deferred:
                # every remaining node is in a peer's hands: wait for
                # results (or expired claims) instead of busy-spinning
                check_drain()
                maybe_renew()
                time.sleep(poll_s)
                continue
            raise ExperimentError("execution plan has a dependency cycle")

        batch, ready_solve = ready_solve, []
        dispatch: list[tuple[Any, Any, str | None]] = []
        for node in batch:
            model = node_model(node)
            cache_key = node_cache_key(node, model)
            cached = (
                result_cache.get(cache_key) if cache_key is not None else None
            )
            if cached is not None:
                # persist cache-satisfied nodes too: resume must not depend
                # on the in-memory cache of the killed process
                if store is not None and is_content_key(node.key):
                    store.put_point(node.key, cached.to_payload())
                finish(node, cached, "cache")
                continue
            if resume and store is not None and is_content_key(node.key):
                payload = store.get_point(node.key)
                if payload is not None:
                    try:
                        result = node_payload_result(node, payload)
                    except (KeyError, TypeError, ValueError):
                        # valid JSON, wrong shape (e.g. a healed-over write
                        # from an older schema): treat as a miss and re-solve
                        store.heal_point(node.key)
                    else:
                        if cache_key is not None:
                            result_cache.put(cache_key, result)
                        finish(node, result, "store")
                        continue
            dispatch.append((node, model, cache_key))

        # poison-unit isolation: consult the store's fleet-wide blame
        # ledger before building dispatch units.  A node whose executors
        # have crashed poison_solo_after times (across every worker and
        # every supervisor respawn) is forced out of the batch tiers into
        # solo dispatch; past poison_quarantine_after it goes straight to
        # the failure ledger without costing this worker a single pool
        # rebuild.
        if store is not None and retry is not None and dispatch:
            blame_snapshot = store.blame_counts()
            if blame_snapshot:
                kept: list[tuple[Any, Any, str | None]] = []
                for entry in dispatch:
                    node = entry[0]
                    count = (
                        blame_snapshot.get(node.key, 0)
                        if is_content_key(node.key)
                        else 0
                    )
                    if count >= retry.poison_quarantine_after:
                        increment("plan_poison_quarantined")
                        quarantine(
                            node,
                            NodeFailure(
                                key=node.key,
                                kind=node.kind,
                                error_class="PoisonedUnitError",
                                message=(
                                    f"poison unit: crashed its executor "
                                    f"{count}x fleet-wide (threshold "
                                    f"{retry.poison_quarantine_after})"
                                ),
                                traceback_digest="",
                                attempts=attempts.get(node.key, 0),
                            ),
                        )
                        continue
                    if count >= retry.poison_solo_after and node.key not in solo:
                        solo.add(node.key)
                        if node.key not in poison_forced:
                            poison_forced.add(node.key)
                            increment("plan_poison_degradations")
                    kept.append(entry)
                dispatch = kept

        # matrix groups first: nodes sharing an assembly_key solve the
        # identical system matrix and differ only in their RHS, so they
        # dispatch as one MatrixGroupTask (voxelise/assemble/factor once,
        # back-substitute per member; the shared payload crosses the
        # process boundary once).  Singleton "groups" gain nothing and
        # fall back to per-point batching with everything else.
        # nodes that already failed once dispatch *solo*: out of any matrix
        # group or multi-model bucket, so the retry's blame is unambiguous
        # and one repeat offender cannot sink innocents again
        solo_entries = [e for e in dispatch if e[0].key in solo]
        dispatch = [e for e in dispatch if e[0].key not in solo]

        grouped: dict[str, list[tuple[Any, Any, str | None]]] = {}
        ungrouped: list[tuple[Any, Any, str | None]] = []
        if group_matrices:
            by_assembly: dict[str, list] = defaultdict(list)
            for entry in dispatch:
                akey = entry[0].assembly_key
                if akey is not None:
                    by_assembly[akey].append(entry)
                else:
                    ungrouped.append(entry)
            for akey, members in by_assembly.items():
                if len(members) > 1:
                    grouped[akey] = members
                else:
                    ungrouped.extend(members)
        else:
            ungrouped = list(dispatch)

        # stacked batches second: leftover solve nodes sharing a
        # batch_class_key assemble structurally congruent systems with
        # *different* matrices (a geometry sweep over a small network
        # model), so there is no factor to share — instead every member's
        # dense system is assembled and the whole class solves as one
        # batched (m, n, n) LAPACK call.  Singletons gain nothing and
        # fall through to per-point batching.
        stacks: list[list[tuple[Any, Any, str | None]]] = []
        if stack_batches:
            by_class: dict[str, list] = defaultdict(list)
            rest: list[tuple[Any, Any, str | None]] = []
            for entry in ungrouped:
                node, model, _ = entry
                bkey = (
                    model.batch_class_key(node.stack, node.via)
                    if isinstance(node, SolveNode)
                    else None
                )
                if bkey is not None:
                    by_class[bkey].append(entry)
                else:
                    rest.append(entry)
            for members in by_class.values():
                if len(members) > 1:
                    stacks.append(members)
                else:
                    rest.extend(members)
            ungrouped = rest

        # the rest regroups into per-point tasks, so one dispatch message
        # carries every model of a sweep point (the same batching — and
        # pickling cost — as the eager sweep); two nodes only share a
        # task when their geometry matches and their model names don't
        # collide (e.g. two different model_a_cal fits)
        buckets: list[dict[str, tuple[Any, Any, str | None]]] = []
        by_point: dict[str, list[dict]] = defaultdict(list)
        for node, model, cache_key in ungrouped:
            point_key = content_key(node.stack, node.via, node.power)
            if point_key is None:
                buckets.append({node.model_name: (node, model, cache_key)})
                continue
            for bucket in by_point[point_key]:
                if node.model_name not in bucket:
                    bucket[node.model_name] = (node, model, cache_key)
                    break
            else:
                bucket = {node.model_name: (node, model, cache_key)}
                by_point[point_key].append(bucket)
                buckets.append(bucket)

        for entry in solo_entries:
            buckets.append({entry[0].model_name: entry})

        if claims is not None:
            grouped, stacks, buckets = claim_units(grouped, stacks, buckets)

        # multi-node tiers dispatch before the point buckets: their
        # results land (and unlock dependents inline) while the solo
        # stream is still running, so a late solo failure under
        # ``retry=None`` cannot unwind scenarios whose batched nodes
        # already completed
        tasks: list[SweepTask] = []
        groups = list(grouped.values())
        for i, members in enumerate(groups):
            node, model, _ = members[0]
            increment("plan_matrix_groups")
            increment("plan_grouped_solves", len(members))
            tasks.append(
                MatrixGroupTask(
                    index=i,
                    stack=node.stack,
                    via=node.via,
                    model=model,
                    powers=tuple(m[0].power for m in members),
                )
            )
        for i, members in enumerate(stacks):
            increment("plan_stacked_batches")
            increment("plan_stacked_solves", len(members))
            tasks.append(
                StackedBatchTask(
                    index=i,
                    members=tuple(
                        (model, node.stack, node.via, node.power)
                        for node, model, _ in members
                    ),
                )
            )
        for i, bucket in enumerate(buckets):
            node, _, _ = next(iter(bucket.values()))
            tasks.append(
                PointTask(
                    index=i,
                    value=node.value,
                    stack=node.stack,
                    via=node.via,
                    power=node.power,
                    models=tuple(model for _, model, _ in bucket.values()),
                    # retries draw fresh fault-injection decisions
                    attempt=(
                        attempts.get(node.key, 0) if len(bucket) == 1 else 0
                    ),
                )
            )

        def land(
            node: Any, cache_key: str | None, result: Any, dispatch: str
        ) -> None:
            increment("plan_point_solves")
            if isinstance(node, (TransientNode, NonlinearNode)):
                increment(f"plan_{node.kind}_solves")
            if cache_key is not None:
                result_cache.put(cache_key, result)
            if store is not None and is_content_key(node.key):
                if claims is not None:
                    try:
                        # the zombie write guard: commit only while the
                        # lease is provably still ours (put-before-release)
                        claims.check(node.key)
                    except LeaseLostError:
                        # usurped mid-solve — the usurper publishes; our
                        # byte-identical result still satisfies this
                        # worker's own plan locally
                        finish(node, result, "solved", dispatch)
                        return
                store.put_point(node.key, result.to_payload())
                _record_solve(node.key)
                if node.key in blame_snapshot:
                    # it finally solved cleanly: absolve it so a lingering
                    # blame count cannot poison-quarantine future runs
                    store.clear_blame(node.key)
                    blame_snapshot.pop(node.key, None)
                if claims is not None:
                    claims.release(node.key)
            finish(node, result, "solved", dispatch)

        def task_members(task: SweepTask) -> list[tuple[Any, Any, str | None]]:
            if isinstance(task, MatrixGroupTask):
                # a parallel executor may have split the group into RHS
                # sub-blocks; task.offset realigns them with the members
                return groups[task.index][
                    task.offset : task.offset + len(task.powers)
                ]
            if isinstance(task, StackedBatchTask):
                return stacks[task.index][
                    task.offset : task.offset + len(task.members)
                ]
            return list(buckets[task.index].values())

        def handle_failure(task: SweepTask, failure: TaskFailure) -> None:
            members = task_members(task)
            if len(members) > 1:
                # blame inside a multi-node dispatch is unknowable from the
                # outside (one bad RHS column, one crashing model) — degrade
                # to per-member solo dispatch instead of charging anyone an
                # attempt, so innocents complete and the culprit identifies
                # itself on its own retry
                increment("plan_group_degradations")
                for node, _, _ in members:
                    solo.add(node.key)
                    ready_solve.append(node)
                return
            node = members[0][0]
            n = attempts.get(node.key, 0) + 1
            attempts[node.key] = n
            if (
                store is not None
                and is_content_key(node.key)
                and failure.error_class == "WorkerCrashError"
            ):
                # a solo crash is unambiguous blame: count it in the
                # fleet-wide ledger so peers (and respawned workers) stop
                # feeding this unit to fresh executors, and quarantine it
                # here the moment it crosses the threshold
                count = store.add_blame(node.key)
                if count >= retry.poison_quarantine_after:
                    increment("plan_poison_quarantined")
                    quarantine_task_failure(node, failure, n)
                    return
            if failure.transient and n < retry.max_attempts:
                increment("plan_retries")
                solo.add(node.key)
                time.sleep(retry.delay_s(n, node.key))
                ready_solve.append(node)
                return
            quarantine_task_failure(node, failure, n)

        if retry is None:
            stream = executor.submit_stream(tasks)
        else:
            stream = executor.submit_stream_safe(
                tasks, timeout_s=retry.node_timeout_s
            )
        for task, solved in stream:
            # drain between completions: the finished result has been
            # committed by land(); anything still in flight is abandoned
            # (its lease is released, a peer or a resume re-solves it)
            check_drain()
            maybe_renew()
            if isinstance(solved, TaskFailure):
                handle_failure(task, solved)
            elif isinstance(task, (MatrixGroupTask, StackedBatchTask)):
                shape = "group" if isinstance(task, MatrixGroupTask) else "stacked"
                for (node, _, cache_key), result in zip(
                    task_members(task), solved
                ):
                    land(node, cache_key, result, shape)
            else:
                for node, _, cache_key in buckets[task.index].values():
                    land(node, cache_key, solved[node.model_name], "point")
            # calibrations whose samples just landed run immediately,
            # unlocking their calibrated solves for the next wave
            drain_parent_nodes()

    return outcome
