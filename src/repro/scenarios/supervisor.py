"""Fleet supervision: heartbeats, dead/stuck detection, bounded respawn.

PR 8's fleet made worker death *survivable* — expired leases are stolen,
nothing completed is lost — but a dead worker stayed dead, so a fleet
could finish a run with one survivor doing everyone's work.  This module
adds the supervision layer:

* every fleet worker owns a :class:`HeartbeatWriter` and beats into
  ``<store>/fleet/heartbeats/<rank>.json`` — a small atomic JSON record
  carrying the worker's pid, a ``CLOCK_MONOTONIC`` stamp (comparable
  across processes on one machine, immune to wall-clock steps), its most
  recent claim, and progress counts;
* the :class:`Supervisor` (driven by ``run_fleet(..., supervise=True)``,
  CLI ``python -m repro fleet ... --supervise``) polls child processes
  and heartbeats.  A worker that *exited abnormally* (crash, signal) or
  *went silent* (no heartbeat within the stall timeout — a hung solve, a
  livelocked loop) is killed if needed and respawned with crash-loop
  backoff, up to ``max_respawns`` per rank.  Respawned workers resume
  from the store (``resume=True`` is the fleet default), so they re-join
  mid-run without re-solving anything;
* exits that are *deliberate* are never respawned: clean completion,
  completion with quarantined nodes (exit 3), and graceful drains
  (exit ``128 + signum`` or a raw SIGTERM/SIGINT death — see
  :func:`~repro.scenarios.drain.is_drain_exit`);
* an optional whole-run ``deadline_s`` bounds the entire supervised run:
  on expiry every worker is terminated and the fleet reports incomplete.

Every respawn is recorded as a :class:`RespawnEvent` and lands in the
fleet report, so a chaotic run leaves an audit trail of who died, why,
and how often.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Protocol

from ..perf import increment
from .drain import is_drain_exit

__all__ = [
    "HEARTBEAT_DIR",
    "Heartbeat",
    "HeartbeatWriter",
    "RespawnEvent",
    "Supervisor",
    "heartbeat_path",
    "read_heartbeat",
]

#: heartbeat files live under the store's fleet directory
HEARTBEAT_DIR = "fleet/heartbeats"

#: exit codes that mean "this worker finished on purpose" (no respawn):
#: clean, and completed-with-quarantined-nodes
_DELIBERATE_EXITS = (0, 3)


def heartbeat_path(root: str | Path, rank: int) -> Path:
    return Path(root) / HEARTBEAT_DIR / f"{rank}.json"


@dataclass(frozen=True)
class Heartbeat:
    """One parsed heartbeat record."""

    rank: int
    pid: int
    stamp: float  # CLOCK_MONOTONIC seconds at beat time
    wall_unix: float
    claim: str | None  # the worker's most recent claim / completed node
    held: int  # leases held at beat time
    done: int
    total: int

    def age_s(self) -> float:
        """Seconds since this beat, on the shared monotonic clock."""
        return max(0.0, time.monotonic() - self.stamp)


def read_heartbeat(root: str | Path, rank: int) -> Heartbeat | None:
    """Rank's latest heartbeat, or None (missing/torn reads as silent)."""
    try:
        payload = json.loads(heartbeat_path(root, rank).read_text())
        return Heartbeat(
            rank=int(payload["rank"]),
            pid=int(payload["pid"]),
            stamp=float(payload["stamp"]),
            wall_unix=float(payload.get("wall_unix", 0.0)),
            claim=payload.get("claim"),
            held=int(payload.get("held", 0)),
            done=int(payload.get("done", 0)),
            total=int(payload.get("total", 0)),
        )
    except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
        return None


class HeartbeatWriter:
    """The worker side: periodic atomic beats into the heartbeat file.

    ``beat`` is cheap enough to call on every progress event — it
    self-throttles to ``min_interval_s`` except when forced — and writes
    via rename so the supervisor never reads a torn record.
    """

    def __init__(
        self, root: str | Path, rank: int, *, min_interval_s: float = 0.2
    ) -> None:
        self.path = heartbeat_path(root, rank)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.rank = rank
        self.min_interval_s = min_interval_s
        self._last = 0.0
        self._claim: str | None = None
        self._held = 0
        self._done = 0
        self._total = 0

    def beat(
        self,
        *,
        claim: str | None = None,
        held: int | None = None,
        done: int | None = None,
        total: int | None = None,
        force: bool = False,
    ) -> None:
        if claim is not None:
            self._claim = claim
        if held is not None:
            self._held = held
        if done is not None:
            self._done = done
        if total is not None:
            self._total = total
        now = time.monotonic()
        if not force and now - self._last < self.min_interval_s:
            return
        self._last = now
        payload = {
            "rank": self.rank,
            "pid": os.getpid(),
            "stamp": now,
            "wall_unix": time.time(),
            "claim": self._claim,
            "held": self._held,
            "done": self._done,
            "total": self._total,
        }
        tmp = self.path.with_suffix(f".{os.getpid()}.tmp")
        try:
            tmp.write_text(json.dumps(payload) + "\n")
            os.replace(tmp, self.path)
        except OSError:
            # a failed beat must never kill the worker it describes
            tmp.unlink(missing_ok=True)


@dataclass(frozen=True)
class RespawnEvent:
    """One supervision action, for the fleet report's audit trail."""

    rank: int
    reason: str  # "crash" (abnormal exit) or "stall" (silent heartbeat)
    exit_code: int | None  # the dead incarnation's exit code
    respawn: int  # 1-based respawn count for this rank
    at_s: float  # seconds since supervision started

    def to_payload(self) -> dict[str, Any]:
        return {
            "rank": self.rank,
            "reason": self.reason,
            "exit_code": self.exit_code,
            "respawn": self.respawn,
            "at_s": round(self.at_s, 3),
        }


class _WorkerProcess(Protocol):  # the multiprocessing.Process surface used
    pid: int | None
    exitcode: int | None

    def is_alive(self) -> bool: ...
    def join(self, timeout: float | None = None) -> None: ...
    def terminate(self) -> None: ...
    def kill(self) -> None: ...


class Supervisor:
    """Watch a fleet's workers; kill the stuck, respawn the dead.

    ``spawn(rank)`` must return a *started* worker process for that
    rank; the supervisor owns every process lifecycle from then on.
    ``max_respawns`` bounds respawns per rank; crash-loop backoff
    (``backoff_s * 2^(respawn-1)``, capped at ``max_backoff_s``) spaces
    them out so a deterministic instant crash cannot hot-loop.  A rank
    is declared *stalled* when its process is alive but its heartbeat is
    older than ``stall_timeout_s`` (None disables stall detection).  A
    beat that *predates the incarnation's spawn* — the previous
    incarnation's leftover file — counts as absent, so every fresh
    (re)spawn gets the full stall timeout as grace before its first
    beat, the same grace a rank that has never beaten gets.
    ``deadline_s`` bounds the whole supervised run.
    """

    def __init__(
        self,
        root: str | Path,
        spawn: Callable[[int], _WorkerProcess],
        *,
        max_respawns: int = 3,
        stall_timeout_s: float | None = None,
        deadline_s: float | None = None,
        backoff_s: float = 0.5,
        max_backoff_s: float = 10.0,
        poll_s: float = 0.2,
    ) -> None:
        self.root = Path(root)
        self.spawn = spawn
        self.max_respawns = max_respawns
        self.stall_timeout_s = stall_timeout_s
        self.deadline_s = deadline_s
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        self.poll_s = poll_s
        self.events: list[RespawnEvent] = []
        self.deadline_exceeded = False

    def _kill(self, proc: _WorkerProcess) -> None:
        proc.terminate()
        proc.join(2.0)
        if proc.is_alive():
            proc.kill()
            proc.join(2.0)

    def _stalled(self, rank: int, started_at: float) -> bool:
        if self.stall_timeout_s is None:
            return False
        beat = read_heartbeat(self.root, rank)
        if beat is None or beat.stamp < started_at:
            # never beaten *by this incarnation*: a leftover heartbeat
            # from the previous one must not condemn a fresh respawn
            # before its first beat — grant the stall timeout from
            # (re)spawn time instead
            return time.monotonic() - started_at > self.stall_timeout_s
        return beat.age_s() > self.stall_timeout_s

    def run(self, procs: dict[int, _WorkerProcess]) -> dict[int, int | None]:
        """Supervise ``procs`` (rank -> started process) to completion.

        Returns each rank's *final* exit code (the last incarnation's).
        """
        start = time.monotonic()
        spawned_at = {rank: start for rank in procs}
        respawns: dict[int, int] = {rank: 0 for rank in procs}
        final: dict[int, int | None] = {rank: None for rank in procs}
        #: ranks whose story is over (finished, drained, or budget spent)
        retired: set[int] = set()
        #: pending respawns: rank -> (not-before monotonic time, reason, code)
        pending: dict[int, tuple[float, str, int | None]] = {}

        def schedule_respawn(rank: int, reason: str, code: int | None) -> None:
            respawns[rank] += 1
            if respawns[rank] > self.max_respawns:
                # budget spent: the rank stays dead, survivors absorb it
                retired.add(rank)
                final[rank] = code
                return
            delay = min(
                self.backoff_s * 2.0 ** (respawns[rank] - 1),
                self.max_backoff_s,
            )
            pending[rank] = (time.monotonic() + delay, reason, code)

        while True:
            now = time.monotonic()
            if (
                self.deadline_s is not None
                and now - start > self.deadline_s
                and not self.deadline_exceeded
            ):
                # whole-run deadline: stop everything, report incomplete
                self.deadline_exceeded = True
                pending.clear()
                for rank, proc in procs.items():
                    if rank not in retired and proc.is_alive():
                        self._kill(proc)

            for rank, (not_before, reason, code) in list(pending.items()):
                if now < not_before:
                    continue
                del pending[rank]
                self.events.append(
                    RespawnEvent(
                        rank=rank,
                        reason=reason,
                        exit_code=code,
                        respawn=respawns[rank],
                        at_s=now - start,
                    )
                )
                increment("fleet_respawns")
                procs[rank] = self.spawn(rank)
                spawned_at[rank] = time.monotonic()

            live = False
            for rank, proc in procs.items():
                if rank in retired or rank in pending:
                    continue
                if not proc.is_alive():
                    code = proc.exitcode
                    if (
                        self.deadline_exceeded
                        or code in _DELIBERATE_EXITS
                        or is_drain_exit(code)
                    ):
                        retired.add(rank)
                        final[rank] = code
                    else:
                        schedule_respawn(rank, "crash", code)
                    continue
                if self._stalled(rank, spawned_at[rank]):
                    # alive but silent: a hung or livelocked worker keeps
                    # its leases renewed forever — kill it so they expire
                    # and a fresh incarnation (or a peer) takes over
                    self._kill(proc)
                    schedule_respawn(rank, "stall", proc.exitcode)
                    continue
                live = True

            if not live and not pending:
                break
            time.sleep(self.poll_s)
        return final
