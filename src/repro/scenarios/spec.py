"""Declarative scenario specifications.

A :class:`ScenarioSpec` is a frozen, JSON-serialisable description of one
experiment: which parameter is swept over which values, the block geometry
the sweep perturbs, the power specification, which models run, which
reference they are judged against, and the calibration policy.  The
paper's figures are just six such specs (:mod:`repro.scenarios.builtin`);
arbitrary new workloads are JSON files with the same schema, runnable via
``python -m repro run path/to/scenario.json`` with no Python changes.

Every spec has a stable :meth:`~ScenarioSpec.content_hash` over its
canonical JSON form.  The hash keys the content-addressed
:class:`~repro.scenarios.store.RunStore` (re-running an unchanged spec is
a store hit, not a solve) and composes with the :mod:`repro.perf` cache
keys, which already content-hash the per-point geometry the spec expands
into.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any

from ..core.factory import parse_model_spec
from ..errors import ValidationError

#: sweepable parameters: geometry fields (µm), the Eq.-(22) cluster size,
#: and a uniform power multiplier (``power_scale`` leaves the geometry —
#: and hence every assembled system matrix — untouched, so its sweep
#: points form one matrix group: factor once, one RHS per point)
AXIS_PARAMETERS = (
    "radius_um",
    "liner_um",
    "t_si_upper_um",
    "t_ild_um",
    "t_bond_um",
    "cluster_count",
    "power_scale",
)

#: default x-axis label per sweepable parameter (matches the paper figures)
AXIS_LABELS = {
    "radius_um": "radius [um]",
    "liner_um": "liner [um]",
    "t_si_upper_um": "tSi2,3 [um]",
    "t_ild_um": "tD [um]",
    "t_bond_um": "tb [um]",
    "cluster_count": "n TTSVs",
    "power_scale": "power scale",
}

#: allowed keys of the ``power`` mapping (kwargs of PowerSpec)
POWER_KEYS = (
    "device_power_density",
    "ild_power_density",
    "plane_powers",
    "ild_fraction",
)

KINDS = ("sweep", "case_study", "transient", "nonlinear")
POSTPROCESSES = (None, "table1")

#: how transient scenarios attach thermal mass to the network nodes
CAPACITANCE_POLICIES = ("plane_lumped", "substrate_ild")

#: how transient scenarios shape the power sources in time
DRIVE_SHAPES = ("step", "pulse_train")


def _require_number(name: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(f"{name} must be a number, got {value!r}")
    return float(value)


def _reject_unknown(kind: str, data: Mapping[str, Any], known: Sequence[str]) -> None:
    unknown = sorted(set(data) - set(known))
    if unknown:
        raise ValidationError(
            f"unknown {kind} field(s) {unknown}; known: {sorted(known)}"
        )


@dataclass(frozen=True)
class GeometryParams:
    """The Section-IV block geometry a scenario perturbs (lengths in µm).

    Defaults are the paper's common parameters; each scenario overrides the
    dimensions its caption fixes, the sweep axis overrides one per point,
    and :class:`GeometryRule` entries override piecewise along the axis
    (e.g. Fig. 4's aspect-ratio substrate switch).  ``extension_um`` of
    ``None`` keeps the paper's default via extension.
    """

    n_planes: int = 3
    t_si_upper_um: float = 45.0
    t_ild_um: float = 4.0
    t_bond_um: float = 1.0
    radius_um: float = 5.0
    liner_um: float = 0.5
    extension_um: float | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.n_planes, int) or self.n_planes < 1:
            raise ValidationError(f"n_planes must be a positive int, got {self.n_planes!r}")
        for name in ("t_si_upper_um", "t_ild_um", "t_bond_um", "radius_um", "liner_um"):
            if _require_number(name, getattr(self, name)) <= 0.0:
                raise ValidationError(f"{name} must be positive, got {getattr(self, name)!r}")
        if self.extension_um is not None and _require_number(
            "extension_um", self.extension_um
        ) < 0.0:
            raise ValidationError(f"extension_um must be >= 0, got {self.extension_um!r}")

    def to_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GeometryParams":
        _reject_unknown("geometry", data, [f.name for f in fields(cls)])
        return cls(**data)


@dataclass(frozen=True)
class GeometryRule:
    """A piecewise geometry override along the sweep axis.

    The rule applies at axis value ``v`` when ``above < v <= upto`` (either
    bound may be omitted); matching rules apply in order, later ones win.
    ``set`` maps :class:`GeometryParams` field names to replacement values.
    """

    set: Mapping[str, Any]
    above: float | None = None
    upto: float | None = None

    def __post_init__(self) -> None:
        if not self.set:
            raise ValidationError("a geometry rule must set at least one field")
        known = [f.name for f in fields(GeometryParams)]
        _reject_unknown("geometry rule", self.set, known)
        if self.above is None and self.upto is None:
            raise ValidationError(
                "a geometry rule needs an 'above' and/or 'upto' bound "
                "(otherwise set the value in 'geometry' directly)"
            )

    def applies(self, value: float) -> bool:
        if self.above is not None and not value > self.above:
            return False
        if self.upto is not None and not value <= self.upto:
            return False
        return True

    def to_dict(self) -> dict[str, Any]:
        return {"set": dict(self.set), "above": self.above, "upto": self.upto}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GeometryRule":
        _reject_unknown("rule", data, ("set", "above", "upto"))
        return cls(**data)


@dataclass(frozen=True)
class AxisSpec:
    """The swept parameter and its values (plus an optional fast subset)."""

    parameter: str
    values: tuple[Any, ...]
    label: str | None = None
    fast_values: tuple[Any, ...] | None = None

    def __post_init__(self) -> None:
        if self.parameter not in AXIS_PARAMETERS:
            raise ValidationError(
                f"unknown axis parameter {self.parameter!r}; "
                f"known: {list(AXIS_PARAMETERS)}"
            )
        object.__setattr__(self, "values", tuple(self.values))
        if self.fast_values is not None:
            object.__setattr__(self, "fast_values", tuple(self.fast_values))
        for seq_name in ("values", "fast_values"):
            seq = getattr(self, seq_name)
            if seq is None:
                continue
            if not seq:
                raise ValidationError(f"axis {seq_name} must be non-empty")
            for v in seq:
                if self.parameter == "cluster_count":
                    if not isinstance(v, int) or isinstance(v, bool) or v < 1:
                        raise ValidationError(
                            f"cluster_count values must be positive ints, got {v!r}"
                        )
                else:
                    if _require_number("axis value", v) <= 0.0:
                        raise ValidationError(f"axis values must be positive, got {v!r}")

    @property
    def x_label(self) -> str:
        return self.label or AXIS_LABELS[self.parameter]

    def to_dict(self) -> dict[str, Any]:
        return {
            "parameter": self.parameter,
            "values": list(self.values),
            "label": self.label,
            "fast_values": None if self.fast_values is None else list(self.fast_values),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AxisSpec":
        _reject_unknown("axis", data, ("parameter", "values", "label", "fast_values"))
        return cls(**data)


@dataclass(frozen=True)
class TransientParams:
    """The ``kind == "transient"`` physics: an RC step response.

    ``t_end_s``/``n_steps`` set the backward-Euler time grid,
    ``capacitance`` picks how thermal mass is lumped onto the network
    nodes (``"plane_lumped"`` puts each plane's full-thickness substrate
    ρ·cp·V on its bulk node — the historical library example;
    ``"substrate_ild"`` sums the substrate and ILD capacities from their
    own materials and thicknesses), ``power_scale`` is the drive level
    (the spike magnitude relative to the scenario's steady power), and
    ``observe`` names the circuit nodes whose traces are kept (empty =
    every plane bulk node).

    ``drive`` shapes the sources in time.  The default ``"step"`` is the
    classic step response (sources on at t=0, held constant).
    ``"pulse_train"`` drives them with a rectangular duty-cycle wave:
    on for ``duty`` of every ``period_s`` seconds, off for the rest,
    sampled with a zero-order hold at each backward-Euler step's start.
    ``period_s``/``duty`` are required for ``"pulse_train"`` and must be
    omitted for ``"step"``.  The drive only reshapes the right-hand
    side — the system matrix (and its factorization) is shared across
    drive shapes of one geometry.
    """

    t_end_s: float
    n_steps: int = 200
    capacitance: str = "plane_lumped"
    power_scale: float = 1.0
    observe: tuple[str, ...] = ()
    drive: str = "step"
    period_s: float | None = None
    duty: float | None = None

    def __post_init__(self) -> None:
        if _require_number("t_end_s", self.t_end_s) <= 0.0:
            raise ValidationError(f"t_end_s must be positive, got {self.t_end_s!r}")
        if not isinstance(self.n_steps, int) or isinstance(self.n_steps, bool) \
                or self.n_steps < 1:
            raise ValidationError(
                f"n_steps must be a positive int, got {self.n_steps!r}"
            )
        if self.capacitance not in CAPACITANCE_POLICIES:
            raise ValidationError(
                f"capacitance must be one of {CAPACITANCE_POLICIES}, "
                f"got {self.capacitance!r}"
            )
        if _require_number("power_scale", self.power_scale) <= 0.0:
            raise ValidationError(
                f"power_scale must be positive, got {self.power_scale!r}"
            )
        object.__setattr__(self, "observe", tuple(self.observe))
        for node in self.observe:
            if not node or not isinstance(node, str):
                raise ValidationError(
                    f"observe entries must be non-empty node names, got {node!r}"
                )
        if self.drive not in DRIVE_SHAPES:
            raise ValidationError(
                f"drive must be one of {DRIVE_SHAPES}, got {self.drive!r}"
            )
        if self.drive == "pulse_train":
            if self.period_s is None or self.duty is None:
                raise ValidationError(
                    "pulse_train drive needs both period_s and duty"
                )
            if _require_number("period_s", self.period_s) <= 0.0:
                raise ValidationError(
                    f"period_s must be positive, got {self.period_s!r}"
                )
            duty = _require_number("duty", self.duty)
            if not 0.0 < duty <= 1.0:
                raise ValidationError(
                    f"duty must be in (0, 1], got {self.duty!r}"
                )
        elif self.period_s is not None or self.duty is not None:
            raise ValidationError(
                "period_s/duty only apply to the pulse_train drive"
            )

    def to_dict(self) -> dict[str, Any]:
        data = {
            "t_end_s": self.t_end_s,
            "n_steps": self.n_steps,
            "capacitance": self.capacitance,
            "power_scale": self.power_scale,
            "observe": list(self.observe),
        }
        # the drive keys appear only when a non-default shape is set, so
        # the serialized form — and hence every stored step-response
        # spec's content hash — is unchanged by the grammar extension
        if self.drive != "step":
            data["drive"] = self.drive
            data["period_s"] = self.period_s
            data["duty"] = self.duty
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TransientParams":
        _reject_unknown("transient", data, [f.name for f in fields(cls)])
        kwargs = dict(data)
        if "observe" in kwargs:
            kwargs["observe"] = tuple(kwargs["observe"])
        return cls(**kwargs)


@dataclass(frozen=True)
class NonlinearParams:
    """The ``kind == "nonlinear"`` physics: a k(T) fixed-point solve.

    ``slope_scale`` is the slope policy — a multiplier on every material's
    dk/dT (1 keeps the library values, 0 recovers the linear solve,
    larger values probe sensitivity); ``tolerance``/``max_iterations``/
    ``relaxation`` control the fixed-point loop.  Every converged result
    carries its linear (constant-k) baseline for comparison.
    """

    tolerance: float = 1e-6
    max_iterations: int = 30
    relaxation: float = 1.0
    slope_scale: float = 1.0

    def __post_init__(self) -> None:
        if _require_number("tolerance", self.tolerance) <= 0.0:
            raise ValidationError(
                f"tolerance must be positive, got {self.tolerance!r}"
            )
        if not isinstance(self.max_iterations, int) \
                or isinstance(self.max_iterations, bool) or self.max_iterations < 1:
            raise ValidationError(
                f"max_iterations must be a positive int, got {self.max_iterations!r}"
            )
        relaxation = _require_number("relaxation", self.relaxation)
        if not 0.0 < relaxation <= 1.0:
            raise ValidationError(
                f"relaxation must be in (0, 1], got {self.relaxation!r}"
            )
        _require_number("slope_scale", self.slope_scale)

    def to_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NonlinearParams":
        _reject_unknown("nonlinear", data, [f.name for f in fields(cls)])
        return cls(**data)


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, data-defined experiment.

    ``kind == "sweep"`` runs every model of ``models`` (spec strings for
    :func:`repro.core.factory.make_model`) plus the ``reference`` over the
    ``axis``; ``calibrate`` additionally fits a ``model_a_cal`` against the
    reference on up to ``calibration_samples`` axis points (the paper's
    own coefficient workflow).  ``postprocess="table1"`` derives the
    accuracy/runtime table from the finished sweep.  ``kind ==
    "case_study"`` runs the Section IV-E DRAM-µP system instead
    (``model_b_segments`` sets its Model B size; ``calibrate`` maps to the
    recalibration step).

    Two further *physics kinds* run the library's extensions beyond the
    paper.  ``kind == "transient"`` integrates the RC step response of
    each model's network (``transient`` holds the time grid, capacitance
    policy, drive power and observed nodes; models must be Model A specs);
    ``kind == "nonlinear"`` runs the k(T) fixed-point solve around each
    model (``nonlinear`` holds the slope policy and loop controls), each
    converged point carrying its constant-k baseline.  Both accept an
    optional ``axis`` — one trajectory / fixed-point chain per axis value
    — or run a single point at the base geometry; neither calibrates nor
    uses the ``reference``.
    """

    scenario_id: str
    title: str
    kind: str = "sweep"
    description: str = ""
    axis: AxisSpec | None = None
    geometry: GeometryParams = field(default_factory=GeometryParams)
    power: Mapping[str, Any] = field(default_factory=dict)
    rules: tuple[GeometryRule, ...] = ()
    models: tuple[str, ...] = ("a:paper", "b:100", "1d")
    reference: str = "fem:medium"
    calibrate: bool = True
    calibration_samples: int = 4
    postprocess: str | None = None
    model_b_segments: int = 1000
    metadata: Mapping[str, Any] = field(default_factory=dict)
    transient: TransientParams | None = None
    nonlinear: NonlinearParams | None = None

    def __post_init__(self) -> None:
        if not self.scenario_id or not isinstance(self.scenario_id, str):
            raise ValidationError("scenario_id must be a non-empty string")
        if not self.title or not isinstance(self.title, str):
            raise ValidationError("title must be a non-empty string")
        if self.kind not in KINDS:
            raise ValidationError(f"kind must be one of {KINDS}, got {self.kind!r}")
        object.__setattr__(self, "rules", tuple(self.rules))
        object.__setattr__(self, "models", tuple(self.models))
        if self.kind == "sweep":
            if self.axis is None:
                raise ValidationError("a sweep scenario needs an 'axis'")
            if not self.models:
                raise ValidationError("a sweep scenario needs at least one model")
        if self.kind == "transient":
            if self.transient is None:
                raise ValidationError(
                    "a transient scenario needs 'transient' parameters "
                    "(t_end_s at minimum)"
                )
            if not self.models:
                raise ValidationError("a transient scenario needs at least one model")
            for spec in self.models:
                if parse_model_spec(spec).kind != "a":
                    raise ValidationError(
                        f"transient scenarios integrate Model A networks; "
                        f"model {spec!r} is not an 'a[:...]' spec"
                    )
        elif self.transient is not None:
            raise ValidationError(
                f"'transient' parameters only apply to kind 'transient', "
                f"not {self.kind!r}"
            )
        if self.kind == "nonlinear":
            if self.nonlinear is None:
                raise ValidationError(
                    "a nonlinear scenario needs 'nonlinear' parameters "
                    "(defaults are fine: {})"
                )
            if not self.models:
                raise ValidationError("a nonlinear scenario needs at least one model")
        elif self.nonlinear is not None:
            raise ValidationError(
                f"'nonlinear' parameters only apply to kind 'nonlinear', "
                f"not {self.kind!r}"
            )
        if self.kind in ("transient", "nonlinear") and self.calibrate:
            raise ValidationError(
                f"{self.kind} scenarios do not calibrate; set calibrate=false"
            )
        for spec in self.models:
            parse_model_spec(spec)  # raises ValidationError on bad grammar
        parse_model_spec(self.reference)
        _reject_unknown("power", self.power, POWER_KEYS)
        if self.postprocess not in POSTPROCESSES:
            raise ValidationError(
                f"postprocess must be one of {POSTPROCESSES}, got {self.postprocess!r}"
            )
        if self.postprocess is not None and self.kind != "sweep":
            raise ValidationError(
                f"postprocess {self.postprocess!r} only applies to sweep scenarios"
            )
        if not isinstance(self.calibration_samples, int) or self.calibration_samples < 2:
            raise ValidationError(
                f"calibration_samples must be an int >= 2, got {self.calibration_samples!r}"
            )
        if not isinstance(self.model_b_segments, int) or self.model_b_segments < 1:
            raise ValidationError(
                f"model_b_segments must be a positive int, got {self.model_b_segments!r}"
            )

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (the JSON schema; see README 'Scenario files').

        The physics blocks are emitted only when set: a sweep/case-study
        spec's canonical JSON — and hence its :meth:`content_hash` and
        every run-store key derived from it — is byte-identical to what
        pre-physics-kind versions produced, so existing stores stay warm.
        """
        data = {
            "scenario_id": self.scenario_id,
            "title": self.title,
            "kind": self.kind,
            "description": self.description,
            "axis": None if self.axis is None else self.axis.to_dict(),
            "geometry": self.geometry.to_dict(),
            "power": dict(self.power),
            "rules": [r.to_dict() for r in self.rules],
            "models": list(self.models),
            "reference": self.reference,
            "calibrate": self.calibrate,
            "calibration_samples": self.calibration_samples,
            "postprocess": self.postprocess,
            "model_b_segments": self.model_b_segments,
            "metadata": dict(self.metadata),
        }
        if self.transient is not None:
            data["transient"] = self.transient.to_dict()
        if self.nonlinear is not None:
            data["nonlinear"] = self.nonlinear.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Validate and build a spec from its plain-dict form."""
        if not isinstance(data, Mapping):
            raise ValidationError(f"scenario must be a JSON object, got {type(data).__name__}")
        _reject_unknown("scenario", data, [f.name for f in fields(cls)])
        kwargs = dict(data)
        if kwargs.get("axis") is not None:
            kwargs["axis"] = AxisSpec.from_dict(kwargs["axis"])
        if "geometry" in kwargs:
            kwargs["geometry"] = GeometryParams.from_dict(kwargs["geometry"])
        if "rules" in kwargs:
            kwargs["rules"] = tuple(GeometryRule.from_dict(r) for r in kwargs["rules"])
        if "power" in kwargs:
            power = dict(kwargs["power"])
            if power.get("plane_powers") is not None:
                power["plane_powers"] = tuple(power["plane_powers"])
            kwargs["power"] = power
        if "models" in kwargs:
            kwargs["models"] = tuple(kwargs["models"])
        if kwargs.get("transient") is not None:
            kwargs["transient"] = TransientParams.from_dict(kwargs["transient"])
        if kwargs.get("nonlinear") is not None:
            kwargs["nonlinear"] = NonlinearParams.from_dict(kwargs["nonlinear"])
        return cls(**kwargs)

    def dumps(self) -> str:
        """The spec as pretty-printed JSON."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"

    def dump(self, path: str | Path) -> Path:
        """Write the spec as JSON and return the path."""
        path = Path(path)
        path.write_text(self.dumps())
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ScenarioSpec":
        """Load a spec from a JSON file."""
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValidationError(f"{path} is not valid JSON: {exc}") from None
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def content_hash(self) -> str:
        """Stable digest of the spec's canonical JSON form.

        Two specs hash equal iff they describe the same experiment; the
        hash keys the :class:`~repro.scenarios.store.RunStore` and is safe
        to combine with :func:`repro.perf.content_key` cache keys.
        """
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"), allow_nan=False
        )
        return hashlib.blake2b(canonical.encode(), digest_size=16).hexdigest()

    # ------------------------------------------------------------------
    # derived specs
    # ------------------------------------------------------------------
    def resolved(
        self,
        *,
        fast: bool = False,
        fem_resolution: str | None = None,
        calibrate: bool | None = None,
    ) -> "ScenarioSpec":
        """The spec with run-time choices folded in.

        ``fast`` substitutes the axis' ``fast_values`` (and trims the case
        study's Model B); ``fem_resolution`` rewrites an ``fem[:...]`` /
        ``fem3d[:...]`` reference to the given preset; ``calibrate``
        overrides the spec's calibration policy.  The result is a plain
        spec, so its :meth:`content_hash` reflects exactly what runs.
        """
        spec = self
        if fast:
            if spec.axis is not None and spec.axis.fast_values is not None:
                spec = replace(
                    spec,
                    axis=replace(spec.axis, values=spec.axis.fast_values, fast_values=None),
                )
            if spec.kind == "case_study" and spec.model_b_segments > 100:
                spec = replace(spec, model_b_segments=100)
        if fem_resolution is not None:
            name, _, _ = spec.reference.partition(":")
            if name in ("fem", "fem3d"):
                spec = replace(spec, reference=f"{name}:{fem_resolution}")
        if calibrate is not None and calibrate != spec.calibrate:
            spec = replace(spec, calibrate=calibrate)
        return spec
