"""The scenario registry.

:data:`SCENARIOS` is the process-wide registry the CLI consults:
``python -m repro run fig4`` looks the id up here, ``python -m repro
list`` prints its contents.  The paper's six experiments are registered in
:mod:`repro.scenarios.builtin`; downstream code adds its own scenarios
with the decorator::

    from repro.scenarios import SCENARIOS, ScenarioSpec

    @SCENARIOS.register
    def my_sweep() -> ScenarioSpec:
        return ScenarioSpec(scenario_id="my_sweep", ...)

or by handing a ready spec to :meth:`ScenarioRegistry.add`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from ..errors import ValidationError
from .spec import ScenarioSpec


class ScenarioRegistry:
    """A name → :class:`ScenarioSpec` mapping with decorator registration."""

    def __init__(self) -> None:
        self._specs: dict[str, ScenarioSpec] = {}

    def add(self, spec: ScenarioSpec, *, replace: bool = False) -> ScenarioSpec:
        """Register a spec under its ``scenario_id``."""
        if not isinstance(spec, ScenarioSpec):
            raise ValidationError(f"expected a ScenarioSpec, got {type(spec).__name__}")
        if spec.scenario_id in self._specs and not replace:
            raise ValidationError(
                f"scenario {spec.scenario_id!r} is already registered "
                f"(pass replace=True to override)"
            )
        self._specs[spec.scenario_id] = spec
        return spec

    def register(
        self, builder: Callable[[], ScenarioSpec]
    ) -> Callable[[], ScenarioSpec]:
        """Decorator: call ``builder`` once and register the spec it returns."""
        self.add(builder())
        return builder

    def get(self, scenario_id: str) -> ScenarioSpec:
        """The spec registered under ``scenario_id``."""
        try:
            return self._specs[scenario_id]
        except KeyError:
            known = ", ".join(sorted(self._specs)) or "(none)"
            raise ValidationError(
                f"unknown scenario {scenario_id!r}; registered: {known}"
            ) from None

    def ids(self) -> list[str]:
        """Registered scenario ids, in registration order."""
        return list(self._specs)

    def specs(self) -> list[ScenarioSpec]:
        """Registered specs, in registration order."""
        return list(self._specs.values())

    def __contains__(self, scenario_id: object) -> bool:
        return scenario_id in self._specs

    def __iter__(self) -> Iterator[str]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)


#: the process-wide registry (builtin scenarios register themselves here)
SCENARIOS = ScenarioRegistry()
