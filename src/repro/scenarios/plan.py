"""Execution-plan compiler: scenarios → a flat DAG of content-keyed nodes.

:func:`compile_plan` lowers a list of *resolved*
:class:`~repro.scenarios.spec.ScenarioSpec`\\ s into one merged task graph
whose nodes are the individual units of work a scenario decomposes into:

* :class:`SolveNode` — one model solved at one (stack, via, power) point,
  keyed by :func:`repro.perf.solve_key` (the same content key the result
  cache uses, so plan identity and cache identity coincide);
* :class:`CalibrationNode` — a k1/k2 coefficient fit against reference
  rises, depending on the reference :class:`SolveNode`\\ s at its sample
  points (which are shared with the sweep itself);
* :class:`CaseStudyNode` — the Section IV-E case study as one opaque
  unit, keyed by its spec hash.

Identical keys across scenarios merge into a single node — a batch of
scenarios sharing calibration samples, FEM reference solves or whole
sweep points solves each shared point exactly once (the
amortize-shared-structure win; counted as ``plan_nodes_deduped`` in
:func:`repro.perf.stats`).  The :mod:`~repro.scenarios.scheduler`
topologically executes the merged graph; :func:`assemble_scenario` then
rebuilds each scenario's :class:`~repro.experiments.harness.ExperimentResult`
from the executed nodes through the exact same assembly code the eager
path uses (:func:`repro.experiments.harness.assemble_experiment`), so the
planned and eager paths produce byte-identical payloads.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field, replace
from typing import Any

from ..core.factory import make_model, parse_model_spec
from ..core.sweep import Configurator, expand_points
from ..errors import ExperimentError, ValidationError
from ..experiments import case_study as case_study_module
from ..experiments.harness import (
    assemble_experiment,
    calibration_sample_indexes,
)
from ..experiments.table1_segments import rows_from_fig5
from ..geometry import PowerSpec, Stack3D, TSV, TSVCluster, paper_stack, paper_tsv
from ..perf import calibration_key, content_key, increment, model_key, solve_key
from ..units import um
from .physics import (
    BASE_POINT_LABEL,
    BASE_POINT_VALUE,
    TransientModel,
    default_observed_nodes,
    nonlinear_model_name,
    transient_model_name,
)
from .spec import ScenarioSpec

#: the model name calibration nodes materialise (the paper's workflow)
CALIBRATED_MODEL_NAME = "model_a_cal"


def is_content_key(key: str) -> bool:
    """Whether ``key`` is a stable content address.

    ``opaque:`` fallback keys (unpicklable work) are unique per compile —
    they must never be used as result-cache keys, persisted to the point
    store, or folded into derived content keys, or two unrelated nodes
    could alias across compiles.
    """
    return not key.startswith("opaque:")


@dataclass(frozen=True)
class StoredCaseStudy:
    """A case-study run reloaded from the store (payload-backed view)."""

    payload: dict[str, Any]

    @property
    def title(self) -> str:
        return self.payload.get("title", case_study_module.TITLE)

    def rises(self) -> dict[str, float]:
        return dict(self.payload["rises"])

    def rows(self) -> list[list[Any]]:
        out: list[list[Any]] = [["model", "max ΔT [°C]", "solve time [ms]"]]
        runtimes = self.payload.get("runtimes_ms", {})
        for name, rise in self.payload["rises"].items():
            out.append([name, rise, runtimes.get(name, float("nan"))])
        recal = self.payload.get("recalibrated")
        if recal is not None:
            out.append(
                [
                    f"model_a (recal. k1={recal['k1']:.2f}, k2={recal['k2']:.2f})",
                    recal["max_rise"],
                    float("nan"),
                ]
            )
        return out

    def to_payload(self) -> dict[str, Any]:
        return self.payload


def _power_spec(spec: ScenarioSpec) -> PowerSpec:
    kwargs = dict(spec.power)
    if kwargs.get("plane_powers") is not None:
        kwargs["plane_powers"] = tuple(kwargs["plane_powers"])
    return PowerSpec(**kwargs)


def _build_geometry(geo: Mapping[str, Any]) -> tuple[Stack3D, TSV]:
    """(stack, via) for one resolved geometry-parameter mapping."""
    stack = paper_stack(
        n_planes=geo["n_planes"],
        t_si_upper=um(geo["t_si_upper_um"]),
        t_ild=um(geo["t_ild_um"]),
        t_bond=um(geo["t_bond_um"]),
    )
    via_kwargs: dict[str, float] = {
        "radius": um(geo["radius_um"]),
        "liner_thickness": um(geo["liner_um"]),
    }
    if geo["extension_um"] is not None:
        via_kwargs["extension"] = um(geo["extension_um"])
    return stack, paper_tsv(**via_kwargs)


def _configurator(spec: ScenarioSpec) -> Configurator:
    """The (stack, via, power) callback a sweep spec expands into."""
    axis = spec.axis
    assert axis is not None  # guaranteed by ScenarioSpec validation
    base = spec.geometry.to_dict()
    power = _power_spec(spec)

    def configure(value):
        geo = dict(base)
        for rule in spec.rules:
            if rule.applies(value):
                geo.update(rule.set)
        if axis.parameter not in ("cluster_count", "power_scale"):
            geo[axis.parameter] = float(value)
        stack, via = _build_geometry(geo)
        point_power = (
            power.scaled(float(value))
            if axis.parameter == "power_scale"
            else power
        )
        if axis.parameter == "cluster_count":
            return stack, TSVCluster(via, int(value)), point_power
        return stack, via, point_power

    return configure


def scenario_axis_points(
    spec: ScenarioSpec,
) -> tuple[str, list[Any], list[tuple[Stack3D, Any, PowerSpec]]]:
    """(x_label, values, points) a physics scenario expands into.

    With an ``axis`` this is the ordinary sweep expansion (geometry rules
    included); without one, a single point at the spec's base geometry
    under the :data:`BASE_POINT_VALUE` placeholder.  Shared by the plan
    compiler and the direct reference runners so both expand identically.
    """
    if spec.axis is not None:
        values = list(spec.axis.values)
        return spec.axis.x_label, values, expand_points(values, _configurator(spec))
    stack, via = _build_geometry(spec.geometry.to_dict())
    return BASE_POINT_LABEL, [BASE_POINT_VALUE], [(stack, via, _power_spec(spec))]


# ---------------------------------------------------------------------------
# plan nodes
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SolveNode:
    """One model solved at one sweep point.

    ``model`` is the concrete model instance, or ``None`` for a calibrated
    model that only exists once its ``calibration`` node has run (the
    scheduler materialises it from the fitted coefficients).

    ``assembly_key`` is the content hash of the linear system the solve
    assembles — the model's :meth:`~repro.core.base.ThermalTSVModel.assembly_key`
    at (stack, via), independent of the power/RHS — or ``None`` when the
    model declares no power-independent assembly.  Ready nodes sharing an
    ``assembly_key`` are regrouped by the scheduler into one
    :class:`~repro.perf.MatrixGroupTask` (factor once, one RHS per point).
    """

    key: str
    value: Any
    stack: Any
    via: Any
    power: Any
    model_name: str
    model: Any = None
    calibration: str | None = None  # key of the CalibrationNode, if any
    assembly_key: str | None = None

    @property
    def kind(self) -> str:
        return "solve"

    @property
    def deps(self) -> tuple[str, ...]:
        return () if self.calibration is None else (self.calibration,)


@dataclass(frozen=True)
class CalibrationNode:
    """A coefficient fit whose targets are reference solve nodes."""

    key: str
    sample_keys: tuple[str, ...]  # reference SolveNode keys, sample order
    samples: tuple[Any, ...]  # (stack, via, power) triples, sample order
    name: str = CALIBRATED_MODEL_NAME

    @property
    def kind(self) -> str:
        return "calibrate"

    @property
    def deps(self) -> tuple[str, ...]:
        return self.sample_keys


@dataclass(frozen=True)
class CaseStudyNode:
    """The Section IV-E case study as one opaque, content-keyed unit."""

    key: str
    spec: ScenarioSpec

    @property
    def kind(self) -> str:
        return "case_study"

    @property
    def deps(self) -> tuple[str, ...]:
        return ()


@dataclass(frozen=True)
class TransientNode:
    """One backward-Euler trajectory: a network + time grid + drive power.

    ``model`` is a :class:`~repro.scenarios.physics.TransientModel`
    adapter; the node dispatches through the ordinary point/matrix-group
    machinery.  ``assembly_key`` hashes the power-independent left-hand
    matrix C/dt + G, so same-network trajectories at different drive
    levels regroup into one :class:`~repro.perf.MatrixGroupTask` (factor
    once, integrate per drive).
    """

    key: str
    value: Any
    stack: Any
    via: Any
    power: Any
    model_name: str
    model: Any
    assembly_key: str | None = None

    @property
    def kind(self) -> str:
        return "transient"

    @property
    def deps(self) -> tuple[str, ...]:
        return ()


@dataclass(frozen=True)
class NonlinearNode:
    """One k(T) fixed-point chain seeded by its linear baseline.

    ``linear`` is the key of the plain (constant-k) :class:`SolveNode` of
    the inner ``model`` at the same point — an ordinary content-keyed node
    that deduplicates against steady-state scenarios wherever the stack is
    unchanged, and (for models with a power-independent assembly) rides
    the matrix-group dispatch.  The chain itself re-assembles at updated
    conductivities every iteration, so it never groups
    (``assembly_key`` is None) and runs as a per-point dispatch once its
    baseline lands.
    """

    key: str
    value: Any
    stack: Any
    via: Any
    power: Any
    model_name: str
    model: Any  # the inner steady-state model (not an adapter)
    params: Any  # NonlinearParams
    linear: str
    assembly_key: str | None = None

    @property
    def kind(self) -> str:
        return "nonlinear"

    @property
    def deps(self) -> tuple[str, ...]:
        return (self.linear,)


PlanNode = SolveNode | CalibrationNode | CaseStudyNode | TransientNode | NonlinearNode

#: node types the scheduler dispatches onto the sweep executors (the rest
#: — calibrations, case studies — run in the parent process)
DISPATCH_NODE_TYPES = (SolveNode, TransientNode, NonlinearNode)


# ---------------------------------------------------------------------------
# per-scenario assembly records
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SweepAssembly:
    """Everything needed to rebuild one sweep's ExperimentResult from nodes."""

    x_label: str
    values: tuple[Any, ...]
    model_names: tuple[str, ...]  # non-reference models, report order
    reference_name: str
    #: model name -> node key per value index (includes the reference)
    node_keys: dict[str, tuple[str, ...]]
    metadata: dict[str, Any]
    postprocess: str | None = None


@dataclass(frozen=True)
class PhysicsAssembly:
    """Everything needed to rebuild one physics scenario from its nodes."""

    kind: str  # "transient" | "nonlinear"
    x_label: str
    values: tuple[Any, ...]
    model_names: tuple[str, ...]  # adapter names, report order
    #: model name -> node key per value index
    node_keys: dict[str, tuple[str, ...]]
    metadata: dict[str, Any]


@dataclass(frozen=True)
class ScenarioPlan:
    """One scenario's slice of the merged plan."""

    spec: ScenarioSpec  # resolved; its content hash is the run-store key
    run_key: str
    assembly: SweepAssembly | None = None  # sweeps
    node_key: str | None = None  # case studies
    physics: PhysicsAssembly | None = None  # transient / nonlinear


@dataclass
class ExecutionPlan:
    """The compiled, deduplicated task graph for a batch of scenarios."""

    nodes: dict[str, PlanNode] = field(default_factory=dict)
    scenarios: list[ScenarioPlan] = field(default_factory=list)
    stats: dict[str, int] = field(default_factory=lambda: {
        "nodes_total": 0,
        "nodes_deduped": 0,
        "solve_nodes": 0,
        "calibrate_nodes": 0,
        "case_study_nodes": 0,
        "transient_nodes": 0,
        "nonlinear_nodes": 0,
    })
    _opaque: int = 0

    def add(self, node: PlanNode) -> str:
        """Insert ``node``, merging with an existing identical node."""
        existing = self.nodes.get(node.key)
        if existing is not None:
            if existing.kind != node.kind:  # pragma: no cover - hash collision
                raise ExperimentError(
                    f"plan key collision between {existing.kind!r} and "
                    f"{node.kind!r} nodes: {node.key}"
                )
            self.stats["nodes_deduped"] += 1
            return node.key
        self.nodes[node.key] = node
        self.stats["nodes_total"] += 1
        self.stats[f"{node.kind}_nodes"] = (
            self.stats.get(f"{node.kind}_nodes", 0) + 1
        )
        return node.key

    def next_opaque_key(self, hint: str) -> str:
        """A unique non-content key for unhashable work (never dedups)."""
        self._opaque += 1
        return f"opaque:{hint}:{self._opaque}"


# ---------------------------------------------------------------------------
# compilation
# ---------------------------------------------------------------------------
def _solve_node_key(plan: ExecutionPlan, model: Any, stack, via, power) -> str:
    key = solve_key(model, stack, via, power)
    if key is None:  # unpicklable model: still runs, just never dedups
        key = plan.next_opaque_key(getattr(model, "name", "model"))
    return key


def _compile_sweep(plan: ExecutionPlan, spec: ScenarioSpec, *, fast: bool) -> None:
    axis = spec.axis
    assert axis is not None
    values = list(axis.values)
    points = expand_points(values, _configurator(spec))
    reference = make_model(spec.reference)
    models = [make_model(m) for m in spec.models]
    model_names = [m.name for m in models]
    if spec.calibrate:
        # same report slot the eager path uses: right after the first model
        model_names.insert(min(1, len(model_names)), CALIBRATED_MODEL_NAME)
    all_names = [*model_names, reference.name]
    if len(set(all_names)) != len(all_names):
        raise ExperimentError(f"duplicate model names in experiment: {all_names}")

    node_keys: dict[str, list[str]] = {name: [] for name in all_names}
    for stack, via, power in points:
        for model in [*models, reference]:
            key = plan.add(
                SolveNode(
                    key=_solve_node_key(plan, model, stack, via, power),
                    value=None,
                    stack=stack,
                    via=via,
                    power=power,
                    model_name=model.name,
                    model=model,
                    assembly_key=model.assembly_key(stack, via),
                )
            )
            node_keys[model.name].append(key)

    if spec.calibrate:
        sample_idx = calibration_sample_indexes(
            len(values), spec.calibration_samples
        )
        sample_keys = tuple(node_keys[reference.name][i] for i in sample_idx)
        samples = tuple(points[i] for i in sample_idx)
        # opaque sample keys are compile-local (and can repeat their
        # counter across compiles), so a fit depending on one must get an
        # opaque key too — the shared calibration_key formula also keys
        # the fit's result-cache entry on the eager path
        cal_key = calibration_key(
            model_key(reference),
            tuple(k if is_content_key(k) else None for k in sample_keys),
            CALIBRATED_MODEL_NAME,
        ) or plan.next_opaque_key("calibration")
        plan.add(
            CalibrationNode(
                key=cal_key, sample_keys=sample_keys, samples=samples,
            )
        )
        for stack, via, power in points:
            # a content key derived from an opaque parent would *look*
            # stable while actually depending on compile-local state
            point_key = (
                content_key("cal_solve/v1", cal_key, stack, via, power)
                if is_content_key(cal_key)
                else None
            )
            key = plan.add(
                SolveNode(
                    key=point_key or plan.next_opaque_key(CALIBRATED_MODEL_NAME),
                    value=None,
                    stack=stack,
                    via=via,
                    power=power,
                    model_name=CALIBRATED_MODEL_NAME,
                    model=None,
                    calibration=cal_key,
                )
            )
            node_keys[CALIBRATED_MODEL_NAME].append(key)

    run_key = spec.content_hash()
    plan.scenarios.append(
        ScenarioPlan(
            spec=spec,
            run_key=run_key,
            assembly=SweepAssembly(
                x_label=axis.x_label,
                values=tuple(values),
                model_names=tuple(model_names),
                reference_name=reference.name,
                node_keys={name: tuple(keys) for name, keys in node_keys.items()},
                metadata={
                    **dict(spec.metadata), "fast": fast, "spec_hash": run_key,
                },
                postprocess=spec.postprocess,
            ),
        )
    )


def _compile_case_study(plan: ExecutionPlan, spec: ScenarioSpec) -> None:
    run_key = spec.content_hash()
    node_key = plan.add(CaseStudyNode(key=f"case_study:{run_key}", spec=spec))
    plan.scenarios.append(
        ScenarioPlan(spec=spec, run_key=run_key, node_key=node_key)
    )


def _physics_scenario_plan(
    plan: ExecutionPlan,
    spec: ScenarioSpec,
    *,
    kind: str,
    x_label: str,
    values: list[Any],
    node_keys: dict[str, list[str]],
    fast: bool,
) -> None:
    run_key = spec.content_hash()
    plan.scenarios.append(
        ScenarioPlan(
            spec=spec,
            run_key=run_key,
            physics=PhysicsAssembly(
                kind=kind,
                x_label=x_label,
                values=tuple(values),
                model_names=tuple(node_keys),
                node_keys={name: tuple(keys) for name, keys in node_keys.items()},
                metadata={
                    **dict(spec.metadata), "fast": fast, "spec_hash": run_key,
                },
            ),
        )
    )


def _compile_transient(
    plan: ExecutionPlan, spec: ScenarioSpec, *, fast: bool
) -> None:
    """Lower a transient spec: one trajectory node per (model, point).

    Same-network trajectories share an ``assembly_key`` (the C/dt + G
    matrix is drive-independent), so a multi-drive scenario — or several
    scenarios over one geometry — regroups into matrix groups that
    factorise once.
    """
    params = spec.transient
    assert params is not None  # guaranteed by ScenarioSpec validation
    x_label, values, points = scenario_axis_points(spec)
    node_keys: dict[str, list[str]] = {}
    for model_spec in spec.models:
        inner = make_model(model_spec)
        name = transient_model_name(inner.name)
        if name in node_keys:
            raise ExperimentError(f"duplicate model names in scenario: {name}")
        node_keys[name] = []
        adapters: dict[int, TransientModel] = {}  # per n_planes (observe varies)
        for stack, via, power in points:
            adapter = adapters.get(stack.n_planes)
            if adapter is None:
                observe = params.observe or default_observed_nodes(stack)
                adapter = TransientModel(inner, params, observe)
                adapters[stack.n_planes] = adapter
            drive = (
                power
                if params.power_scale == 1.0
                else power.scaled(params.power_scale)
            )
            key = plan.add(
                TransientNode(
                    key=_solve_node_key(plan, adapter, stack, via, drive),
                    value=None,
                    stack=stack,
                    via=via,
                    power=drive,
                    model_name=name,
                    model=adapter,
                    assembly_key=adapter.assembly_key(stack, via),
                )
            )
            node_keys[name].append(key)
    _physics_scenario_plan(
        plan, spec, kind="transient", x_label=x_label, values=values,
        node_keys=node_keys, fast=fast,
    )


def _compile_nonlinear(
    plan: ExecutionPlan, spec: ScenarioSpec, *, fast: bool
) -> None:
    """Lower a nonlinear spec: per (model, point), a linear baseline solve
    node plus the fixed-point chain depending on it.

    The baseline is an ordinary content-keyed :class:`SolveNode` — it
    deduplicates against steady-state scenarios at the same point and
    groups by the inner model's ``assembly_key`` — while the chain itself
    is dispatched once the baseline lands, seeded with its result.
    """
    params = spec.nonlinear
    assert params is not None  # guaranteed by ScenarioSpec validation
    x_label, values, points = scenario_axis_points(spec)
    node_keys: dict[str, list[str]] = {}
    for model_spec in spec.models:
        inner = make_model(model_spec)
        name = nonlinear_model_name(inner.name)
        if name in node_keys:
            raise ExperimentError(f"duplicate model names in scenario: {name}")
        node_keys[name] = []
        for stack, via, power in points:
            linear_key = plan.add(
                SolveNode(
                    key=_solve_node_key(plan, inner, stack, via, power),
                    value=None,
                    stack=stack,
                    via=via,
                    power=power,
                    model_name=inner.name,
                    model=inner,
                    assembly_key=inner.assembly_key(stack, via),
                )
            )
            # a content key derived from an opaque baseline would *look*
            # stable while depending on compile-local state (same rule as
            # calibrated solves)
            nl_key = (
                content_key(
                    "nonlinear/v1", model_key(inner), params, stack, via, power
                )
                if is_content_key(linear_key)
                else None
            )
            key = plan.add(
                NonlinearNode(
                    key=nl_key or plan.next_opaque_key(name),
                    value=None,
                    stack=stack,
                    via=via,
                    power=power,
                    model_name=name,
                    model=inner,
                    params=params,
                    linear=linear_key,
                )
            )
            node_keys[name].append(key)
    _physics_scenario_plan(
        plan, spec, kind="nonlinear", x_label=x_label, values=values,
        node_keys=node_keys, fast=fast,
    )


def compile_plan(
    specs: Sequence[ScenarioSpec], *, fast: bool = False
) -> ExecutionPlan:
    """Lower resolved scenario specs into one merged, deduplicated plan.

    ``specs`` must already be :meth:`~ScenarioSpec.resolved` — the plan
    reflects exactly what runs.  ``fast`` is only recorded into result
    metadata (the eager path records the same flag); the fast value
    subsets themselves were folded in by ``resolved``.
    """
    plan = ExecutionPlan()
    for spec in specs:
        if spec.kind == "case_study":
            _compile_case_study(plan, spec)
        elif spec.kind == "transient":
            _compile_transient(plan, spec, fast=fast)
        elif spec.kind == "nonlinear":
            _compile_nonlinear(plan, spec, fast=fast)
        else:
            _compile_sweep(plan, spec, fast=fast)
    if plan.stats["nodes_deduped"]:
        increment("plan_nodes_deduped", plan.stats["nodes_deduped"])
    return plan


# ---------------------------------------------------------------------------
# case-study execution (shared by the scheduler and the eager runner)
# ---------------------------------------------------------------------------
def run_case_study_spec(spec: ScenarioSpec):
    """Run a resolved case-study spec through the legacy experiment code."""
    parsed = parse_model_spec(spec.reference)
    if parsed.kind != "fem":
        raise ValidationError(
            f"the case study needs an axisymmetric 'fem[:...]' reference, "
            f"got {spec.reference!r}"
        )
    # the spec is already resolved: ``fast`` has been folded into
    # model_b_segments, so never pass fast=True here — case_study.run would
    # re-trim the segments behind the content hash's back and the store
    # would file the trimmed result under the full-accuracy key
    return case_study_module.run(
        fem_resolution=parsed.arg,
        fast=False,
        recalibrate=spec.calibrate,
        model_b_segments=spec.model_b_segments,
    )


# ---------------------------------------------------------------------------
# reassembly
# ---------------------------------------------------------------------------
def assemble_scenario(
    entry: ScenarioPlan, node_results: dict[str, Any]
) -> Any:
    """Rebuild one scenario's result from the executed plan nodes.

    Sweeps go through the exact assembly code the eager path uses
    (:func:`~repro.experiments.harness.assemble_experiment` on a
    re-keyed :class:`~repro.core.sweep.SweepResult`), so a planned run's
    payload is byte-identical to an eager run's.  Physics scenarios
    (transient/nonlinear) collect their per-point results into the
    matching experiment container; case studies return their node's
    result directly.
    """
    if entry.physics is not None:
        from .physics import NonlinearExperiment, TransientExperiment

        a = entry.physics
        container = (
            TransientExperiment if a.kind == "transient" else NonlinearExperiment
        )
        return container(
            experiment_id=entry.spec.scenario_id,
            title=entry.spec.title,
            x_label=a.x_label,
            x_values=list(a.values),
            results={
                name: [node_results[key] for key in a.node_keys[name]]
                for name in a.model_names
            },
            metadata=dict(a.metadata),
        )
    if entry.assembly is None:
        assert entry.node_key is not None
        return node_results[entry.node_key]
    a = entry.assembly
    from ..core.sweep import assemble_sweep

    all_names = [*a.model_names, a.reference_name]
    point_results = [
        {name: node_results[a.node_keys[name][i]] for name in all_names}
        for i in range(len(a.values))
    ]
    sweep_result = assemble_sweep(
        a.x_label, list(a.values), all_names, point_results, dict(a.metadata)
    )
    result = assemble_experiment(
        experiment_id=entry.spec.scenario_id,
        title=entry.spec.title,
        x_label=a.x_label,
        values=list(a.values),
        model_names=list(a.model_names),
        reference_name=a.reference_name,
        result=sweep_result,
        metadata=dict(a.metadata),
    )
    if a.postprocess == "table1":
        metadata = dict(result.metadata)
        metadata["table_rows"] = rows_from_fig5(result)
        result = replace(result, metadata=metadata)
    return result
