"""Store integrity scrubbing: ``python -m repro fsck <store> [--repair]``.

A :class:`~repro.scenarios.store.RunStore` is self-healing on the read
path — a corrupt artifact reads as a miss and is deleted — but the read
path only ever visits keys some plan asks for.  ``fsck`` walks the whole
store offline and classifies every file it finds:

**Damage** (exit code 1, fixed by ``--repair``):

* ``corrupt`` — an ``objects/``, ``points/``, ``failures/`` or ``blame/``
  artifact whose envelope checksum fails, whose body does not parse, or
  which is truncated/unreadable.  Repair deletes it (and, for a run
  object, its manifest entry) so the node simply re-solves on resume.
* ``orphaned-manifest-entry`` — the manifest indexes a run object whose
  file is gone.  Repair drops the entry.
* ``unindexed-object`` — a run object exists on disk with no manifest
  entry, so no reader will ever return it.  Repair deletes it (the
  entry cannot be reconstructed — it carries the producing spec).
* ``mis-sharded`` — an artifact filed under the wrong shard directory,
  invisible to every reader.  Repair moves it to its correct shard
  (or deletes it when the correct path is already occupied).
* ``corrupt-manifest`` — ``manifest.json`` itself does not parse.
  Repair resets it to an empty index, which makes every healthy run
  object read as ``unindexed-object`` — those are *reported but never
  deleted in the same pass* (the repair pass exits non-zero), so a
  one-byte manifest corruption cannot silently erase the whole
  ``objects/`` space; a deliberate second ``--repair`` removes them.

**Notes** (reported, removable with ``--repair``, but *not* damage —
every one is a shape the live protocols produce and tolerate, so a
store that just survived a chaotic fleet run still fscks clean):

* ``expired-claim`` — a lease past its deadline (its holder died;
  any live worker would steal it).  Judged by the claim's wall-clock
  ``deadline_unix`` — the monotonic deadline the live protocol uses is
  only meaningful within the boot that wrote it, and fsck may run after
  a reboot or against a store copied from another host.  Legacy claims
  without a wall deadline fall back to the monotonic clock, with a
  deadline more than one TTL beyond this boot's clock read as
  cross-boot (and therefore expired).
* ``torn-claim`` — an unreadable claim file (died mid-write; stealable
  for the same reason).
* ``stale-tombstone`` — a leftover rename-tombstone or unique temp file
  from the lease steal dance.
* ``tmp-litter`` — an atomic-write temp file whose writer was killed
  between creation and rename.
* ``legacy-flat`` — an artifact still in the pre-shard flat layout
  (readable; ``python -m repro migrate`` moves it).

The scrub never *writes* anything unless ``--repair`` is given.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from ..errors import CorruptArtifactError
from .store import (
    BLAME_DIR,
    FAILURES_DIR,
    LEASES_DIR,
    MANIFEST_NAME,
    MANIFEST_VERSION,
    OBJECTS_DIR,
    POINTS_DIR,
    _write_json_atomic,
    parse_artifact,
    shard_prefix,
)

__all__ = ["DAMAGE_KINDS", "Finding", "FsckReport", "scrub"]

#: finding kinds that mean data is wrong or unreachable (exit non-zero)
DAMAGE_KINDS = frozenset(
    {
        "corrupt",
        "corrupt-manifest",
        "orphaned-manifest-entry",
        "unindexed-object",
        "mis-sharded",
    }
)

#: the artifact spaces scrubbed for envelope/parse damage
ARTIFACT_SPACES = (OBJECTS_DIR, POINTS_DIR, FAILURES_DIR, BLAME_DIR)


@dataclass
class Finding:
    """One problem (or note) the scrub observed."""

    space: str
    kind: str
    path: str  # relative to the store root
    key: str
    detail: str
    repaired: bool = False

    @property
    def damage(self) -> bool:
        return self.kind in DAMAGE_KINDS


@dataclass
class FsckReport:
    """Everything one scrub pass found."""

    root: Path
    repair: bool
    scanned: dict[str, int] = field(default_factory=dict)
    findings: list[Finding] = field(default_factory=list)

    @property
    def damage(self) -> list[Finding]:
        return [f for f in self.findings if f.damage]

    @property
    def notes(self) -> list[Finding]:
        return [f for f in self.findings if not f.damage]

    @property
    def clean(self) -> bool:
        """No damage (notes alone leave a store healthy)."""
        return not self.damage

    @property
    def exit_code(self) -> int:
        """0 when clean, or when ``--repair`` fixed every damage finding."""
        if self.clean:
            return 0
        return 0 if all(f.repaired for f in self.damage) else 1

    def table(self) -> str:
        """The human-readable scrub report."""
        lines = [f"fsck {self.root}"]
        lines.append(
            "  scanned: "
            + "  ".join(f"{space}={n}" for space, n in sorted(self.scanned.items()))
        )
        if not self.findings:
            lines.append("  store is clean")
            return "\n".join(lines)
        by_kind: dict[str, list[Finding]] = {}
        for finding in self.findings:
            by_kind.setdefault(finding.kind, []).append(finding)
        width = max(len(kind) for kind in by_kind)
        for kind in sorted(by_kind, key=lambda k: (k not in DAMAGE_KINDS, k)):
            found = by_kind[kind]
            tag = "DAMAGE" if found[0].damage else "note"
            fixed = sum(f.repaired for f in found)
            fixed_text = f"  repaired={fixed}" if self.repair else ""
            lines.append(f"  {kind:<{width}}  {tag:<6}  count={len(found)}{fixed_text}")
            for finding in found[:8]:
                lines.append(f"    {finding.path}: {finding.detail}")
            if len(found) > 8:
                lines.append(f"    ... and {len(found) - 8} more")
        verdict = "clean" if self.clean else (
            "repaired" if self.exit_code == 0 else "DAMAGED"
        )
        lines.append(f"  verdict: {verdict}")
        return "\n".join(lines)


def _artifact_files(space: Path, suffix: str = ".json") -> Iterator[tuple[Path, bool]]:
    """Every ``(path, sharded)`` artifact in a space, deterministic order."""
    for path in sorted(space.glob(f"*{suffix}")):
        yield path, False
    for path in sorted(space.glob(f"*/*{suffix}")):
        yield path, True


def _unlink(path: Path, finding: Finding, repair: bool) -> None:
    if repair:
        path.unlink(missing_ok=True)
        finding.repaired = True


def _scrub_artifact_space(
    report: FsckReport, root: Path, space_name: str, *, repair: bool
) -> dict[str, Path]:
    """Scrub one artifact space; returns healthy ``key -> path``."""
    space = root / space_name
    healthy: dict[str, Path] = {}
    count = 0
    for path, sharded in _artifact_files(space):
        count += 1
        key = path.stem
        rel = str(path.relative_to(root))
        if sharded and path.parent.name != shard_prefix(key):
            finding = Finding(
                space_name,
                "mis-sharded",
                rel,
                key,
                f"filed under {path.parent.name}/, belongs in {shard_prefix(key)}/",
            )
            report.findings.append(finding)
            if repair:
                target = space / shard_prefix(key) / path.name
                if target.exists():
                    path.unlink(missing_ok=True)
                else:
                    target.parent.mkdir(exist_ok=True)
                    path.replace(target)
                    healthy[key] = target
                finding.repaired = True
            continue
        try:
            parse_artifact(path.read_text(), verify=True)
        except (OSError, CorruptArtifactError) as exc:
            finding = Finding(space_name, "corrupt", rel, key, str(exc))
            report.findings.append(finding)
            _unlink(path, finding, repair)
            continue
        if not sharded:
            report.findings.append(
                Finding(space_name, "legacy-flat", rel, key, "flat legacy layout")
            )
        healthy[key] = path
    report.scanned[space_name] = count
    return healthy


def _scrub_manifest(
    report: FsckReport, root: Path, objects: dict[str, Path], *, repair: bool
) -> None:
    """Cross-check ``manifest.json`` against the healthy run objects."""
    manifest_path = root / MANIFEST_NAME
    runs: dict[str, dict] = {}
    dirty = False
    manifest_reset = False
    if manifest_path.exists():
        try:
            manifest = json.loads(manifest_path.read_text())
            if manifest.get("version") != MANIFEST_VERSION:
                raise ValueError(f"unknown version {manifest.get('version')!r}")
            runs = dict(manifest["runs"])
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            finding = Finding(
                "manifest", "corrupt-manifest", MANIFEST_NAME, "-", str(exc)
            )
            report.findings.append(finding)
            if repair:
                _write_json_atomic(
                    manifest_path, {"version": MANIFEST_VERSION, "runs": {}}
                )
                finding.repaired = True
                manifest_reset = True
            runs = {}
            dirty = False
    for key in sorted(set(runs) - set(objects)):
        finding = Finding(
            "manifest",
            "orphaned-manifest-entry",
            MANIFEST_NAME,
            key,
            "manifest indexes a run object that is missing or corrupt",
        )
        report.findings.append(finding)
        if repair:
            del runs[key]
            dirty = True
            finding.repaired = True
    for key in sorted(set(objects) - set(runs)):
        path = objects[key]
        if manifest_reset:
            # the index was just rebuilt from nothing, so *every* healthy
            # object reads as unindexed — deleting them now would turn a
            # one-byte manifest corruption into losing the whole objects
            # space.  Report only; the operator sees the blast radius and
            # a deliberate second ``--repair`` pass removes them.
            report.findings.append(
                Finding(
                    OBJECTS_DIR,
                    "unindexed-object",
                    str(path.relative_to(root)),
                    key,
                    "unindexed after manifest reset (kept this pass; "
                    "re-run --repair to remove)",
                )
            )
            continue
        finding = Finding(
            OBJECTS_DIR,
            "unindexed-object",
            str(path.relative_to(root)),
            key,
            "run object has no manifest entry (unreachable)",
        )
        report.findings.append(finding)
        _unlink(path, finding, repair)
    if repair and dirty:
        _write_json_atomic(
            manifest_path, {"version": MANIFEST_VERSION, "runs": runs}
        )


def _scrub_leases(report: FsckReport, root: Path, *, repair: bool) -> None:
    """Classify everything in ``leases/``: claims, tombstones, litter."""
    space = root / LEASES_DIR
    count = 0
    for path in sorted(space.glob("**/*")):
        if path.is_dir():
            continue
        count += 1
        rel = str(path.relative_to(root))
        if not path.name.endswith(".claim"):
            finding = Finding(
                LEASES_DIR,
                "stale-tombstone",
                rel,
                path.name.split(".", 1)[0],
                "leftover steal tombstone / claim temp file",
            )
            report.findings.append(finding)
            _unlink(path, finding, repair)
            continue
        key = path.stem
        try:
            claim = json.loads(path.read_text())
            deadline = float(claim["deadline"])
            ttl_s = float(claim["ttl_s"])
            deadline_unix = float(claim.get("deadline_unix", 0.0))
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            finding = Finding(
                LEASES_DIR, "torn-claim", rel, key, "unreadable claim (stealable)"
            )
            report.findings.append(finding)
            _unlink(path, finding, repair)
            continue
        # Expiry must be judged on a clock that survives the writer's
        # process: the claim's monotonic deadline only means anything
        # within the boot that wrote it, and fsck runs offline — maybe
        # after a reboot, maybe against a store copied from another
        # host.  Claims carry a wall-clock twin for exactly this; for
        # legacy claims without one, fall back to the monotonic clock
        # but treat a deadline implausibly far beyond this boot's clock
        # (more than one TTL out, which no renewal can produce) as
        # cross-boot — its holder cannot be alive here.
        if deadline_unix > 0.0:
            expired = time.time() >= deadline_unix
            detail = "claim past its deadline (holder presumed dead)"
        else:
            now = time.monotonic()
            cross_boot = deadline - now > ttl_s + 1.0
            expired = cross_boot or now >= deadline
            detail = (
                "claim deadline from another boot (holder cannot be alive)"
                if cross_boot
                else "claim past its deadline (holder presumed dead)"
            )
        if expired:
            finding = Finding(LEASES_DIR, "expired-claim", rel, key, detail)
            report.findings.append(finding)
            _unlink(path, finding, repair)
    report.scanned[LEASES_DIR] = count


def _scrub_tmp_litter(report: FsckReport, root: Path, *, repair: bool) -> None:
    for path in sorted(root.glob("**/*.tmp")):
        finding = Finding(
            path.relative_to(root).parts[0] if path.parent != root else "root",
            "tmp-litter",
            str(path.relative_to(root)),
            path.name.split(".", 1)[0],
            "atomic-write temp file (writer killed before rename)",
        )
        report.findings.append(finding)
        _unlink(path, finding, repair)


def scrub(root: str | Path, *, repair: bool = False) -> FsckReport:
    """Scrub one store; see the module docstring for the taxonomy."""
    root = Path(root)
    report = FsckReport(root=root, repair=repair)
    objects: dict[str, Path] = {}
    for space_name in ARTIFACT_SPACES:
        healthy = _scrub_artifact_space(report, root, space_name, repair=repair)
        if space_name == OBJECTS_DIR:
            objects = healthy
    _scrub_manifest(report, root, objects, repair=repair)
    _scrub_leases(report, root, repair=repair)
    _scrub_tmp_litter(report, root, repair=repair)
    return report
