"""ttsv-thermal — analytical heat-transfer models for thermal TSVs.

Reproduction of Xu, Pavlidis, De Micheli, "Analytical Heat Transfer Model
for Thermal Through-Silicon Vias", DATE 2011.

Quickstart
----------
>>> from repro import ModelA, PowerSpec, paper_stack, paper_tsv
>>> stack = paper_stack()
>>> result = ModelA().solve(stack, paper_tsv(), PowerSpec())
>>> result.max_rise > 0
True
"""

from .core import (
    Model1D,
    ModelA,
    ModelB,
    ModelResult,
    SegmentScheme,
    SweepResult,
    ThermalTSVModel,
    make_model,
    solve_three_plane_closed_form,
    sweep,
)
from .geometry import (
    TSV,
    DevicePlane,
    Layer,
    LayerKind,
    PowerSpec,
    Stack3D,
    TSVCluster,
    paper_stack,
    paper_tsv,
)
from .materials import Material
from .resistances import FittingCoefficients, compute_model_a_resistances
from . import perf

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # models
    "ThermalTSVModel",
    "ModelA",
    "ModelB",
    "Model1D",
    "ModelResult",
    "SegmentScheme",
    "make_model",
    "solve_three_plane_closed_form",
    "sweep",
    "SweepResult",
    # geometry
    "Layer",
    "LayerKind",
    "DevicePlane",
    "Stack3D",
    "TSV",
    "TSVCluster",
    "PowerSpec",
    "paper_stack",
    "paper_tsv",
    # materials & resistances
    "Material",
    "FittingCoefficients",
    "compute_model_a_resistances",
    # performance subsystem (executors, caches, bench harness)
    "perf",
]
