"""Terminal line plots.

The paper's figures are regenerated as data tables plus these ASCII plots,
so the benchmark harness can show the *shape* (who wins, where curves
cross, where the Fig. 6 minimum sits) without a plotting stack.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..errors import ValidationError

#: marker characters assigned to series in order
MARKERS = "ox+*#@%&"


def ascii_plot(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    width: int = 72,
    height: int = 20,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one or more y(x) series on a character canvas.

    Each series gets a marker from :data:`MARKERS`; a legend line maps
    markers to names.  Points are plotted at their nearest cell; later
    series overwrite earlier ones where they collide.
    """
    if not series:
        raise ValidationError("need at least one series")
    if len(series) > len(MARKERS):
        raise ValidationError(f"at most {len(MARKERS)} series supported")
    if width < 16 or height < 6:
        raise ValidationError("canvas too small (min 16x6)")
    xs = np.asarray(list(x), dtype=float)
    if xs.size < 2:
        raise ValidationError("need at least two x points")
    all_y: list[np.ndarray] = []
    for name, ys in series.items():
        arr = np.asarray(list(ys), dtype=float)
        if arr.shape != xs.shape:
            raise ValidationError(
                f"series {name!r} has {arr.size} points, x has {xs.size}"
            )
        all_y.append(arr)
    y_min = min(float(a.min()) for a in all_y)
    y_max = max(float(a.max()) for a in all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(xs.min()), float(xs.max())

    canvas = [[" "] * width for _ in range(height)]
    for marker, (name, ys) in zip(MARKERS, series.items()):
        arr = np.asarray(list(ys), dtype=float)
        cols = np.rint((xs - x_min) / (x_max - x_min) * (width - 1)).astype(int)
        rows = np.rint((arr - y_min) / (y_max - y_min) * (height - 1)).astype(int)
        for c, r in zip(cols, rows):
            canvas[height - 1 - r][c] = marker

    left = [f"{y_max:10.2f} |", *(["           |"] * (height - 2)), f"{y_min:10.2f} |"]
    lines = [lab + "".join(row) for lab, row in zip(left, canvas)]
    lines.append("           +" + "-" * width)
    x_axis = f"{x_min:<12.3g}{' ' * max(0, width - 24)}{x_max:>12.3g}"
    lines.append("            " + x_axis)
    legend = "   ".join(
        f"{marker}={name}" for marker, name in zip(MARKERS, series.keys())
    )
    lines.append(f"   legend: {legend}")
    if x_label or y_label:
        lines.append(f"   x: {x_label}   y: {y_label}")
    return "\n".join(lines)
