"""Export sweep/series data to CSV and JSON.

Experiments write their raw data next to the printed tables so results can
be re-plotted or diffed across runs without re-solving anything.
"""

from __future__ import annotations

import csv
import json
from collections.abc import Sequence
from pathlib import Path
from typing import Any

from ..errors import ValidationError


def export_series_csv(
    path: str | Path,
    x_label: str,
    x_values: Sequence[Any],
    series: dict[str, Sequence[float]],
) -> Path:
    """Write an x column plus one column per series; returns the path."""
    if not series:
        raise ValidationError("need at least one series")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValidationError(
                f"series {name!r} has {len(ys)} points, x has {len(x_values)}"
            )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([x_label, *series.keys()])
        for i, x in enumerate(x_values):
            writer.writerow([x, *(series[name][i] for name in series)])
    return path


def export_json(path: str | Path, payload: dict[str, Any]) -> Path:
    """Write a JSON document (pretty-printed, stable key order)."""
    if not isinstance(payload, dict):
        raise ValidationError("payload must be a dict")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str))
    return path


def read_series_csv(path: str | Path) -> tuple[str, list[float], dict[str, list[float]]]:
    """Read back a CSV written by :func:`export_series_csv`."""
    path = Path(path)
    with path.open() as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if not header or len(header) < 2:
            raise ValidationError(f"{path} is not a series CSV")
        x_label, *names = header
        x_values: list[float] = []
        series: dict[str, list[float]] = {name: [] for name in names}
        for row in reader:
            x_values.append(float(row[0]))
            for name, value in zip(names, row[1:]):
                series[name].append(float(value))
    return x_label, x_values, series
