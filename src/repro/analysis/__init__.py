"""Analysis: error metrics, convergence studies, tables, plots, export."""

from .ascii_plot import ascii_plot
from .convergence import (
    ConvergencePoint,
    mesh_convergence,
    richardson_extrapolate,
    segment_convergence,
)
from .export import export_json, export_series_csv, read_series_csv
from .metrics import (
    ErrorMetrics,
    crossover_points,
    is_monotonic,
    relative_errors,
    series_errors,
)
from .report import format_kv_block, format_series_table, format_table
from .sensitivity import Sensitivity, sensitivity, sensitivity_table

__all__ = [
    "ErrorMetrics",
    "series_errors",
    "relative_errors",
    "crossover_points",
    "is_monotonic",
    "format_table",
    "format_series_table",
    "format_kv_block",
    "ascii_plot",
    "export_series_csv",
    "export_json",
    "read_series_csv",
    "segment_convergence",
    "mesh_convergence",
    "richardson_extrapolate",
    "ConvergencePoint",
    "Sensitivity",
    "sensitivity",
    "sensitivity_table",
]
