"""Plain-text reporting: aligned tables for experiment outputs.

The benchmark harness prints the same rows the paper's tables/figures
report; these helpers keep the formatting in one place.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from ..errors import ValidationError


def format_table(
    rows: Sequence[Sequence[Any]],
    *,
    header: bool = True,
    float_format: str = "{:.2f}",
) -> str:
    """Render rows as an aligned monospace table.

    The first row is treated as the header when ``header`` is True.
    Floats are formatted with ``float_format``; other values with str().
    """
    if not rows:
        raise ValidationError("cannot format an empty table")
    width = len(rows[0])
    if any(len(r) != width for r in rows):
        raise ValidationError("all rows must have the same number of columns")

    def render(value: Any) -> str:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return str(value)
        if isinstance(value, int):
            return str(value)
        return float_format.format(value)

    cells = [[render(v) for v in row] for row in rows]
    widths = [max(len(row[c]) for row in cells) for c in range(width)]
    lines: list[str] = []
    for i, row in enumerate(cells):
        line = "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        lines.append(line)
        if header and i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_series_table(
    x_label: str,
    x_values: Sequence[Any],
    series: dict[str, Sequence[float]],
    *,
    float_format: str = "{:.2f}",
) -> str:
    """Table with one x column and one column per named series."""
    names = list(series)
    if not names:
        raise ValidationError("need at least one series")
    for name in names:
        if len(series[name]) != len(x_values):
            raise ValidationError(
                f"series {name!r} has {len(series[name])} points, "
                f"x has {len(x_values)}"
            )
    rows: list[list[Any]] = [[x_label, *names]]
    for i, x in enumerate(x_values):
        rows.append([x, *(series[name][i] for name in names)])
    return format_table(rows, float_format=float_format)


def format_kv_block(title: str, items: dict[str, Any]) -> str:
    """A titled key/value block for experiment metadata."""
    if not title:
        raise ValidationError("title must be non-empty")
    key_width = max((len(k) for k in items), default=0)
    lines = [title, "=" * len(title)]
    for key, value in items.items():
        lines.append(f"{key.ljust(key_width)} : {value}")
    return "\n".join(lines)
