"""Error metrics between model series and a reference series.

The paper reports "maximum difference (absolute value)" and "average
difference" of each model's ΔT against FEM over a sweep (e.g. Table I);
:func:`series_errors` computes exactly those.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError


@dataclass(frozen=True, slots=True)
class ErrorMetrics:
    """Relative error statistics of a series against a reference."""

    max_error: float  # max |rel. error|
    avg_error: float  # mean |rel. error|
    rms_error: float
    signed_mean: float  # mean rel. error (sign shows over/underestimation)

    def as_percentages(self) -> dict[str, float]:
        """The metrics in percent, for reports."""
        return {
            "max_%": self.max_error * 100.0,
            "avg_%": self.avg_error * 100.0,
            "rms_%": self.rms_error * 100.0,
            "signed_mean_%": self.signed_mean * 100.0,
        }


def relative_errors(
    series: Sequence[float], reference: Sequence[float]
) -> np.ndarray:
    """Pointwise (series − reference)/reference."""
    s = np.asarray(series, dtype=float)
    ref = np.asarray(reference, dtype=float)
    if s.shape != ref.shape:
        raise ValidationError(
            f"series ({s.shape}) and reference ({ref.shape}) lengths differ"
        )
    if s.size == 0:
        raise ValidationError("empty series")
    if np.any(ref == 0.0):
        raise ValidationError("reference contains zeros; relative error undefined")
    return (s - ref) / ref


def series_errors(
    series: Sequence[float], reference: Sequence[float]
) -> ErrorMetrics:
    """The paper's max/avg |relative error| plus RMS and signed mean."""
    err = relative_errors(series, reference)
    return ErrorMetrics(
        max_error=float(np.max(np.abs(err))),
        avg_error=float(np.mean(np.abs(err))),
        rms_error=float(np.sqrt(np.mean(err**2))),
        signed_mean=float(np.mean(err)),
    )


def crossover_points(
    values: Sequence[float], series: Sequence[float]
) -> list[float]:
    """Interpolated x-positions where a series changes slope sign.

    Used to locate the Fig. 6 minimum (ΔT vs substrate thickness is
    non-monotonic); returns an empty list for monotonic series.
    """
    x = np.asarray(values, dtype=float)
    y = np.asarray(series, dtype=float)
    if x.shape != y.shape or x.size < 3:
        raise ValidationError("need at least three matched points")
    slopes = np.diff(y)
    out: list[float] = []
    for i in range(slopes.size - 1):
        if slopes[i] == 0.0:
            out.append(float(x[i + 1]))
        elif slopes[i] * slopes[i + 1] < 0.0:
            # slope crosses zero between segment midpoints — linear estimate
            m0 = 0.5 * (x[i] + x[i + 1])
            m1 = 0.5 * (x[i + 1] + x[i + 2])
            t = slopes[i] / (slopes[i] - slopes[i + 1])
            out.append(float(m0 + t * (m1 - m0)))
    return out


def is_monotonic(series: Sequence[float], *, increasing: bool) -> bool:
    """Weak monotonicity check used by shape assertions in experiments."""
    y = np.asarray(series, dtype=float)
    if y.size < 2:
        raise ValidationError("need at least two points")
    d = np.diff(y)
    return bool(np.all(d >= 0.0) if increasing else np.all(d <= 0.0))
