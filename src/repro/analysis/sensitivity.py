"""Parameter sensitivity of the maximum temperature rise.

Central finite differences of max ΔT with respect to each geometric
parameter, evaluated with any model (Model A by default — cheap enough for
dense Jacobians).  This operationalises the paper's Section IV discussion:
the signs and magnitudes it derives from Eqs. (7)–(16) become one function
call, and the Fig. 6 non-monotonicity shows up as a sign change of the
substrate-thickness sensitivity.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..core.base import ThermalTSVModel
from ..core.model_a import ModelA
from ..errors import ValidationError
from ..geometry import PowerSpec, Stack3D, TSV
from ..units import require_positive

#: parameter name -> (stack, via) updater with the new absolute value
_Updater = Callable[[Stack3D, TSV, float], tuple[Stack3D, TSV]]

PARAMETERS: dict[str, tuple[Callable[[Stack3D, TSV], float], _Updater]] = {
    "radius": (
        lambda stack, via: via.radius,
        lambda stack, via, v: (stack, via.with_radius(v)),
    ),
    "liner_thickness": (
        lambda stack, via: via.liner_thickness,
        lambda stack, via, v: (stack, via.with_liner_thickness(v)),
    ),
    "substrate_thickness": (
        lambda stack, via: stack.planes[-1].substrate.thickness,
        lambda stack, via, v: (stack.with_substrate_thickness(v), via),
    ),
}


@dataclass(frozen=True)
class Sensitivity:
    """One parameter's local sensitivity."""

    parameter: str
    value: float
    derivative: float  # d(max ΔT)/d(parameter), K per metre
    normalised: float  # (p/ΔT)·dΔT/dp — dimensionless elasticity

    @property
    def direction(self) -> str:
        """'heats' / 'cools' / 'neutral' as the parameter increases."""
        if self.derivative > 0.0:
            return "heats"
        if self.derivative < 0.0:
            return "cools"
        return "neutral"


def sensitivity(
    stack: Stack3D,
    via: TSV,
    power: PowerSpec,
    parameter: str,
    *,
    model: ThermalTSVModel | None = None,
    step: float = 0.02,
) -> Sensitivity:
    """Central-difference sensitivity of max ΔT to one parameter.

    Parameters
    ----------
    parameter:
        One of ``radius``, ``liner_thickness``, ``substrate_thickness``.
    step:
        Relative perturbation (default ±2 %).
    """
    try:
        read, update = PARAMETERS[parameter]
    except KeyError:
        raise ValidationError(
            f"unknown parameter {parameter!r}; known: {sorted(PARAMETERS)}"
        ) from None
    require_positive("step", step)
    model = model or ModelA()
    value = read(stack, via)
    delta = value * step
    lo_stack, lo_via = update(stack, via, value - delta)
    hi_stack, hi_via = update(stack, via, value + delta)
    rise_lo = model.solve(lo_stack, lo_via, power).max_rise
    rise_hi = model.solve(hi_stack, hi_via, power).max_rise
    rise_0 = model.solve(stack, via, power).max_rise
    derivative = (rise_hi - rise_lo) / (2.0 * delta)
    return Sensitivity(
        parameter=parameter,
        value=value,
        derivative=derivative,
        normalised=derivative * value / rise_0,
    )


def sensitivity_table(
    stack: Stack3D,
    via: TSV,
    power: PowerSpec,
    *,
    model: ThermalTSVModel | None = None,
    step: float = 0.02,
) -> list[Sensitivity]:
    """Sensitivities of every known parameter at the operating point."""
    return [
        sensitivity(stack, via, power, name, model=model, step=step)
        for name in PARAMETERS
    ]
