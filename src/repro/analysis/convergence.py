"""Convergence studies.

Two questions the paper raises quantitatively:

* Table I — how does Model B's accuracy/runtime trade off against its
  segment count?  (:func:`segment_convergence`)
* implicitly — is the FVM reference itself converged?
  (:func:`mesh_convergence` plus Richardson extrapolation)
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..core.model_b import ModelB
from ..errors import ValidationError
from ..fem import FEMReference
from ..geometry import PowerSpec, Stack3D, TSV, TSVCluster


@dataclass(frozen=True)
class ConvergencePoint:
    """One resolution level of a convergence study."""

    level: int | str
    max_rise: float
    solve_time: float
    n_unknowns: int


def segment_convergence(
    stack: Stack3D,
    via: "TSV | TSVCluster",
    power: PowerSpec,
    segment_counts: Sequence[int],
    **model_b_kwargs,
) -> list[ConvergencePoint]:
    """Model B max-ΔT versus segment count (Table I's sweep axis)."""
    if not segment_counts:
        raise ValidationError("need at least one segment count")
    out: list[ConvergencePoint] = []
    for n in segment_counts:
        result = ModelB(n, **model_b_kwargs).solve(stack, via, power)
        out.append(
            ConvergencePoint(
                level=n,
                max_rise=result.max_rise,
                solve_time=result.solve_time,
                n_unknowns=result.n_unknowns,
            )
        )
    return out


def mesh_convergence(
    stack: Stack3D,
    via: "TSV | TSVCluster",
    power: PowerSpec,
    resolutions: Sequence[str | tuple[int, ...]] = ("coarse", "medium", "fine"),
    *,
    solver: str = "axisym",
) -> list[ConvergencePoint]:
    """FVM max-ΔT versus mesh resolution."""
    if not resolutions:
        raise ValidationError("need at least one resolution")
    out: list[ConvergencePoint] = []
    for res in resolutions:
        result = FEMReference(res, solver=solver).solve(stack, via, power)
        out.append(
            ConvergencePoint(
                level=str(res),
                max_rise=result.max_rise,
                solve_time=result.solve_time,
                n_unknowns=result.n_unknowns,
            )
        )
    return out


def richardson_extrapolate(coarse: float, fine: float, *, order: float = 2.0, ratio: float = 2.0) -> float:
    """Richardson-extrapolated limit from two resolution levels.

    Assumes the error scales as h^order and the fine mesh is ``ratio``
    times finer than the coarse one.
    """
    if order <= 0.0 or ratio <= 1.0:
        raise ValidationError("order must be positive and ratio > 1")
    factor = ratio**order
    return (factor * fine - coarse) / (factor - 1.0)
