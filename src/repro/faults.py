"""Deterministic fault injection for the fault-tolerant execute path.

Testing retries, worker-crash recovery and corrupt-artifact healing needs
failures that are *repeatable* — CI cannot wait for a real worker to die.
This module is a process-safe injection registry: :func:`configure` arms
it with a fault rate, the fault kinds to inject, and a seed; every
instrumented **site** then asks :func:`inject` (or :func:`corrupt_text`)
whether a fault fires for a given key.  The decision is a pure hash of
``(seed, site, key)``, so a run is bit-reproducible: the same seed
injects the same faults at the same points, and a retried dispatch —
whose key carries the attempt number — gets an independent draw, which is
exactly how a transient real-world failure behaves.

Sites (each guards one seam of the execute path):

* ``solve`` — one model solve inside a :class:`~repro.perf.PointTask`;
* ``group-solve`` — one :class:`~repro.perf.MatrixGroupTask` batch solve;
* ``stacked-solve`` — one :class:`~repro.perf.StackedBatchTask` stacked
  batch solve (the cross-matrix tier; a crashed batch must degrade to
  per-point dispatch exactly like a failed matrix group);
* ``store-write`` — a :class:`~repro.scenarios.store.RunStore` artifact
  write (corruption simulates data lost between write and fsync);
* ``lease`` — a :mod:`repro.scenarios.lease` claim acquisition (a crash
  here kills a fleet worker while it *holds* leases — the shape that
  exercises expiry and takeover on the surviving workers).

Kinds (not every kind makes sense at every site — see
:data:`SITE_KINDS`):

* ``crash`` — ``os._exit`` inside a pool worker (the real thing: the
  pool breaks and the parent must recover); outside a worker it raises
  :class:`~repro.errors.WorkerCrashError` so serial execution stays
  testable without killing the test process;
* ``delay`` — sleep ``delay_s`` seconds (drives timeout paths);
* ``error`` — raise :class:`~repro.errors.SolverError` (the poisoned
  solve / poisoned-cache shape);
* ``corrupt`` — truncate a store payload before it is written (the
  reader-side healing path).

Configuration is propagated to pool workers through environment
variables (``REPRO_FAULT_RATE`` etc.), so it survives both ``fork`` and
``spawn`` start methods and can be set from a shell around the CLI
without any flags.  With the registry unarmed every hook is a single
dictionary lookup — the production path pays nothing measurable.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass

from .errors import SolverError, ValidationError, WorkerCrashError

__all__ = [
    "FaultConfig",
    "KINDS",
    "SITES",
    "SITE_KINDS",
    "active",
    "config",
    "configure",
    "corrupt_text",
    "decide",
    "inject",
    "reset",
]

#: every fault kind the registry can inject
KINDS = ("crash", "delay", "error", "corrupt")

#: every instrumented site
SITES = ("solve", "group-solve", "stacked-solve", "store-write", "lease")

#: which kinds are meaningful at which site: execution sites take the
#: execution faults, the store site takes the data faults (a crash inside
#: ``put_point`` would just be a crash around a solve — already covered)
SITE_KINDS = {
    "solve": ("crash", "delay", "error"),
    "group-solve": ("crash", "delay", "error"),
    "stacked-solve": ("crash", "delay", "error"),
    "store-write": ("delay", "corrupt"),
    "lease": ("crash", "delay"),
}

ENV_RATE = "REPRO_FAULT_RATE"
ENV_KINDS = "REPRO_FAULT_KINDS"
ENV_SITES = "REPRO_FAULT_SITES"
ENV_SEED = "REPRO_FAULT_SEED"
ENV_DELAY_S = "REPRO_FAULT_DELAY_S"

_ENV_VARS = (ENV_RATE, ENV_KINDS, ENV_SITES, ENV_SEED, ENV_DELAY_S)

#: exit code of an injected worker crash (distinguishable in waitpid logs)
CRASH_EXIT_CODE = 73


@dataclass(frozen=True)
class FaultConfig:
    """One armed injection configuration (frozen; :func:`configure` makes it)."""

    rate: float = 0.0
    kinds: tuple[str, ...] = ()
    sites: tuple[str, ...] = SITES
    seed: int = 0
    delay_s: float = 0.05

    @property
    def armed(self) -> bool:
        return self.rate > 0.0 and bool(self.kinds) and bool(self.sites)


_INACTIVE = FaultConfig()
_config: FaultConfig | None = None  # parent-side explicit configuration


def _increment(name: str) -> None:
    # imported lazily: repro.perf's own modules import this one, and a
    # module-level import back into the package would complete the cycle
    from .perf.stats import increment

    increment(name)


def _normalize(name: str, values, allowed: tuple[str, ...]) -> tuple[str, ...]:
    if isinstance(values, str):
        values = tuple(v for v in values.split(",") if v)
    values = tuple(values)
    unknown = [v for v in values if v not in allowed]
    if unknown:
        raise ValidationError(f"unknown fault {name} {unknown}; allowed: {allowed}")
    return values


def configure(
    *,
    rate: float,
    kinds=KINDS,
    sites=SITES,
    seed: int = 0,
    delay_s: float = 0.05,
) -> FaultConfig:
    """Arm the registry and export the config to future pool workers.

    ``rate`` is the per-draw injection probability in [0, 1]; ``kinds``
    and ``sites`` may be tuples or comma-separated strings (the env-var
    form).  The configuration is written into ``os.environ`` so worker
    processes created afterwards — under either start method — resolve
    the identical config.
    """
    global _config
    if not 0.0 <= rate <= 1.0:
        raise ValidationError(f"fault rate must be in [0, 1], got {rate}")
    if delay_s < 0:
        raise ValidationError(f"fault delay_s must be >= 0, got {delay_s}")
    cfg = FaultConfig(
        rate=float(rate),
        kinds=_normalize("kinds", kinds, KINDS),
        sites=_normalize("sites", sites, SITES),
        seed=int(seed),
        delay_s=float(delay_s),
    )
    _config = cfg
    os.environ[ENV_RATE] = repr(cfg.rate)
    os.environ[ENV_KINDS] = ",".join(cfg.kinds)
    os.environ[ENV_SITES] = ",".join(cfg.sites)
    os.environ[ENV_SEED] = str(cfg.seed)
    os.environ[ENV_DELAY_S] = repr(cfg.delay_s)
    return cfg


def reset() -> None:
    """Disarm the registry and clear the exported environment."""
    global _config
    _config = None
    for var in _ENV_VARS:
        os.environ.pop(var, None)


def config() -> FaultConfig:
    """The effective configuration: explicit, env-resolved, or inactive.

    Pool workers never call :func:`configure` — they resolve the parent's
    exported environment on every decision, which keeps the registry
    correct under ``spawn`` (fresh interpreter) and under tests that
    monkeypatch the environment directly.
    """
    if _config is not None:
        return _config
    rate_text = os.environ.get(ENV_RATE)
    if rate_text is None:
        return _INACTIVE
    try:
        return FaultConfig(
            rate=float(rate_text),
            kinds=_normalize("kinds", os.environ.get(ENV_KINDS, ",".join(KINDS)), KINDS),
            sites=_normalize("sites", os.environ.get(ENV_SITES, ",".join(SITES)), SITES),
            seed=int(os.environ.get(ENV_SEED, "0")),
            delay_s=float(os.environ.get(ENV_DELAY_S, "0.05")),
        )
    except (ValueError, ValidationError) as exc:
        raise ValidationError(f"invalid {ENV_RATE} environment: {exc}") from None


def active() -> bool:
    """Whether any fault can currently fire (the hooks' fast path)."""
    return config().armed


def decide(site: str, key: str) -> str | None:
    """The fault kind injected at ``(site, key)``, or None.

    Pure function of ``(seed, site, key)``: one blake2b digest supplies
    both the rate draw (56 bits) and the kind choice (8 bits), so reruns
    and cross-process decisions agree exactly.
    """
    cfg = config()
    if not cfg.armed or site not in cfg.sites:
        return None
    kinds = [k for k in cfg.kinds if k in SITE_KINDS.get(site, ())]
    if not kinds:
        return None
    digest = hashlib.blake2b(
        f"{cfg.seed}|{site}|{key}".encode(), digest_size=8
    ).digest()
    draw = int.from_bytes(digest[:7], "big") / float(1 << 56)
    if draw >= cfg.rate:
        return None
    return kinds[digest[7] % len(kinds)]


def _in_pool_worker() -> bool:
    return multiprocessing.parent_process() is not None


def inject(site: str, key: str) -> None:
    """Fire the configured fault for ``(site, key)``, if any.

    ``crash`` kills the current process when it is a pool worker
    (``os._exit`` — no cleanup, exactly like a segfault or OOM kill) and
    raises :class:`WorkerCrashError` otherwise; ``delay`` sleeps;
    ``error`` raises :class:`SolverError`.  ``corrupt`` never fires here —
    it only applies to payload bytes via :func:`corrupt_text`.
    """
    kind = decide(site, key)
    if kind is None or kind == "corrupt":
        return
    _increment(f"fault_injected_{kind}")
    if kind == "delay":
        time.sleep(config().delay_s)
    elif kind == "error":
        raise SolverError(f"injected fault at {site}:{key}")
    elif kind == "crash":
        if _in_pool_worker():
            os._exit(CRASH_EXIT_CODE)
        raise WorkerCrashError(f"injected worker crash at {site}:{key}")


def corrupt_text(site: str, key: str, text: str) -> str:
    """``text``, truncated when a ``corrupt`` fault fires at ``(site, key)``.

    Truncating at half length always breaks a JSON document whose closing
    bracket is its last character, which is every artifact the store
    writes — the reader-side healing path must treat it as a miss.
    """
    if decide(site, key) != "corrupt":
        return text
    _increment("fault_injected_corrupt")
    return text[: max(1, len(text) // 2)]
